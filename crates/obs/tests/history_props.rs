//! Property-based tests of the metrics-history ring buffer: wraparound
//! bookkeeping and a full JSON round-trip through `tac25d_obs::json`
//! (metric names drawn from a pool of escaper-hostile strings; values
//! constrained to the f64-exact integer range the hand-rolled JSON
//! number model uses).

use std::collections::BTreeMap;

use proptest::prelude::*;
use tac25d_obs::history::History;
use tac25d_obs::json::{parse, Value};

/// Names the JSON escaper must handle: dots, quotes, backslashes,
/// spaces, control characters, non-ASCII.
const NAME_POOL: &[&str] = &[
    "serve.requests",
    "thermal.pcg_iterations",
    "a b c",
    "quote\"inside",
    "back\\slash",
    "tab\there",
    "newline\nhere",
    "µ.non_ascii.héllo",
    "trailing.dot.",
    "",
];

fn any_name() -> impl Strategy<Value = String> {
    prop::sample::select(NAME_POOL.iter().map(|s| (*s).to_owned()).collect())
}

/// Counter values exactly representable as f64 (the JSON number model).
const MAX_EXACT: u64 = 1 << 53;

/// Counter pairs, possibly with duplicate names (deduped by the caller
/// so the rendered JSON object has unique keys).
fn any_counter_pairs() -> impl Strategy<Value = Vec<(String, u64)>> {
    prop::collection::vec((any_name(), 0..MAX_EXACT), 0..6)
}

/// Gauge pairs; finite values only (non-finite floats deliberately
/// render as JSON null).
fn any_gauge_pairs() -> impl Strategy<Value = Vec<(String, f64)>> {
    prop::collection::vec((any_name(), -1.0e12..1.0e12f64), 0..4)
}

/// Collapses duplicate names, keeping the last write (map semantics).
fn dedupe<V: Clone>(pairs: Vec<(String, V)>) -> Vec<(String, V)> {
    let map: BTreeMap<String, V> = pairs.into_iter().collect();
    map.into_iter().collect()
}

proptest! {
    /// Any push sequence keeps at most `capacity` samples, retains the
    /// newest, and assigns strictly increasing sequence numbers.
    #[test]
    fn ring_keeps_newest_with_monotone_seqs(
        capacity in 1usize..8,
        pushes in 0usize..24,
    ) {
        let h = History::new(capacity, 1000);
        for tag in 0..pushes {
            let seq = h.push(vec![("tag".to_owned(), tag as u64)], Vec::new());
            prop_assert_eq!(seq, tag as u64);
        }
        let samples = h.samples();
        prop_assert_eq!(samples.len(), pushes.min(capacity));
        for (i, s) in samples.iter().enumerate() {
            // Oldest retained sample is push #(pushes - len), newest is
            // the final push; seq mirrors the push index exactly.
            let expected = (pushes - samples.len() + i) as u64;
            prop_assert_eq!(s.seq, expected);
            prop_assert_eq!(s.counters[0].1, expected);
        }
    }

    /// `to_json` → render → parse reproduces every retained sample:
    /// seq order, counters and gauges survive the hand-rolled JSON
    /// layer bit-exactly, for escaper-hostile metric names.
    #[test]
    fn json_round_trips_samples(
        raw_counter_sets in prop::collection::vec(any_counter_pairs(), 1..5),
        raw_gauges in any_gauge_pairs(),
    ) {
        let counter_sets: Vec<Vec<(String, u64)>> =
            raw_counter_sets.into_iter().map(dedupe).collect();
        let gauges = dedupe(raw_gauges);
        let h = History::new(8, 250);
        for counters in &counter_sets {
            h.push(counters.clone(), gauges.clone());
        }
        let doc = h.to_json().render();
        let v = parse(&doc).expect("history JSON parses");
        prop_assert_eq!(v.get("capacity").and_then(Value::as_f64), Some(8.0));
        prop_assert_eq!(v.get("interval_ms").and_then(Value::as_f64), Some(250.0));
        let samples = v.get("samples").and_then(Value::as_array).expect("samples");
        prop_assert_eq!(samples.len(), counter_sets.len());
        for (i, (sample, counters)) in samples.iter().zip(&counter_sets).enumerate() {
            prop_assert_eq!(
                sample.get("seq").and_then(Value::as_f64),
                Some(i as f64)
            );
            for (name, want) in counters {
                let got = sample
                    .get("counters")
                    .and_then(|c| c.get(name))
                    .and_then(Value::as_f64);
                prop_assert_eq!(got, Some(*want as f64), "counter {:?}", name);
            }
            for (name, want) in &gauges {
                let got = sample
                    .get("gauges")
                    .and_then(|g| g.get(name))
                    .and_then(Value::as_f64);
                prop_assert_eq!(got, Some(*want), "gauge {:?}", name);
            }
        }
    }
}
