//! # tac25d-obs — structured observability for the tac25d stack
//!
//! Three pieces, all dependency-free (vendored-stub policy):
//!
//! 1. a global **metrics registry** ([`registry`]) of named counters,
//!    gauges and log2 histograms with Prometheus-text and JSON exporters;
//! 2. a **span API** ([`span`], via the [`span!`] macro) building a
//!    hierarchical timing tree with per-span self/total time and
//!    thread-safe aggregation across the crossbeam-parallel greedy;
//! 3. a **JSONL event sink** ([`sink`]) selected by `TAC25D_OBS=path.jsonl`
//!    streaming span open/close events and counter snapshots.
//!
//! Metric names follow `crate.component.metric`
//! (e.g. `thermal.pcg_iterations`); span names follow `crate.stage`
//! (e.g. `optimizer.greedy_start`). See DESIGN.md §8.
//!
//! Enablement: obs is on when `TAC25D_OBS` is set non-empty, when
//! `TAC25D_PROFILE=1`, or after [`force_enable`] (tests). The env checks
//! are cached in `OnceLock`s; when disabled, `span!` reads one
//! relaxed-atomic + one cached bool and touches no clock.
//!
//! ```no_run
//! use tac25d_obs as obs;
//!
//! fn solve() {
//!     let _span = obs::span!("thermal.pcg_solve");
//!     obs::counter!("thermal.pcg_solves").inc();
//!     obs::counter!("thermal.pcg_iterations").add(17);
//!     obs::histogram!("thermal.pcg_iterations_per_solve").record(17);
//! }
//! ```

pub mod history;
pub mod json;
pub mod profile;
pub mod registry;
pub mod sink;
pub mod span;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

static FORCED: AtomicBool = AtomicBool::new(false);

fn env_enabled() -> bool {
    static ENV_ENABLED: OnceLock<bool> = OnceLock::new();
    *ENV_ENABLED.get_or_init(|| {
        std::env::var_os("TAC25D_OBS").is_some_and(|v| !v.is_empty())
            || std::env::var_os("TAC25D_PROFILE").is_some_and(|v| v == "1")
    })
}

/// Whether observability is on (env-selected or forced). Span guards are
/// inert and sinks silent when this is false; counters still record (a
/// relaxed atomic add costs less than a branch worth guarding it with).
pub fn enabled() -> bool {
    FORCED.load(Ordering::Relaxed) || env_enabled()
}

/// Turns observability on for this process regardless of environment
/// (used by tests and `tac25d obs-report --bless` flows).
pub fn force_enable() {
    FORCED.store(true, Ordering::Relaxed);
    epoch();
}

/// Process-wide epoch: the instant of first obs use. All sink timestamps
/// and `total_wall_s` are measured from here. Bench mains call this first
/// thing so "uptime" ≈ wall time of the run.
pub fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Time since [`epoch`].
pub fn uptime() -> Duration {
    epoch().elapsed()
}

/// The worker-thread override selected by `TAC25D_THREADS` (cached in a
/// `OnceLock` like the other env hooks). `None` when unset or invalid —
/// consumers fall back to `available_parallelism`. Respected by the bench
/// `parallel_map` pool, the optimizer's multi-start greedy workers and the
/// serve daemon's worker pool; results are thread-count-independent by
/// construction, so this only trades wall time for cores.
pub fn threads_override() -> Option<usize> {
    static THREADS: OnceLock<Option<usize>> = OnceLock::new();
    *THREADS.get_or_init(|| parse_threads(std::env::var("TAC25D_THREADS").ok().as_deref()))
}

/// Parses a `TAC25D_THREADS` value: a positive integer, anything else —
/// including `0`, empty or garbage — is `None`. Split from
/// [`threads_override`] so tests can exercise the parsing without racing
/// on the cached process environment.
pub fn parse_threads(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Call-site-cached counter handle: `counter!("thermal.pcg_solves").inc()`.
/// The registry lock is taken once per call site, then the `Arc` is served
/// from a `static OnceLock`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __OBS_COUNTER: ::std::sync::OnceLock<::std::sync::Arc<$crate::registry::Counter>> =
            ::std::sync::OnceLock::new();
        &**__OBS_COUNTER.get_or_init(|| $crate::registry::counter($name))
    }};
}

/// Call-site-cached gauge handle: `gauge!("thermal.pcg_final_residual").set(r)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __OBS_GAUGE: ::std::sync::OnceLock<::std::sync::Arc<$crate::registry::Gauge>> =
            ::std::sync::OnceLock::new();
        &**__OBS_GAUGE.get_or_init(|| $crate::registry::gauge($name))
    }};
}

/// Call-site-cached histogram handle:
/// `histogram!("thermal.pcg_iterations_per_solve").record(n)`.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __OBS_HISTOGRAM: ::std::sync::OnceLock<
            ::std::sync::Arc<$crate::registry::Histogram>,
        > = ::std::sync::OnceLock::new();
        &**__OBS_HISTOGRAM.get_or_init(|| $crate::registry::histogram($name))
    }};
}

/// Opens a timing span for the current scope:
/// `let _span = obs::span!("thermal.pcg_solve");`. Binds the guard — a
/// bare `obs::span!(..);` statement would drop immediately and time
/// nothing (the guard type is `#[must_use]` for this reason).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_resolve_and_cache() {
        let c = crate::counter!("test.lib.macro_counter");
        c.reset();
        c.inc();
        // Second expansion at a different call site resolves to the same
        // registered metric.
        assert_eq!(crate::counter!("test.lib.macro_counter").get(), 1);
        crate::gauge!("test.lib.macro_gauge").set(2.5);
        assert_eq!(crate::gauge!("test.lib.macro_gauge").get(), 2.5);
        crate::histogram!("test.lib.macro_hist").record(9);
        assert!(crate::histogram!("test.lib.macro_hist").count() >= 1);
    }

    #[test]
    fn uptime_is_monotonic() {
        let a = crate::uptime();
        let b = crate::uptime();
        assert!(b >= a);
    }

    #[test]
    fn thread_override_parsing() {
        assert_eq!(crate::parse_threads(None), None);
        assert_eq!(crate::parse_threads(Some("")), None);
        assert_eq!(crate::parse_threads(Some("0")), None);
        assert_eq!(crate::parse_threads(Some("-2")), None);
        assert_eq!(crate::parse_threads(Some("four")), None);
        assert_eq!(crate::parse_threads(Some("1")), Some(1));
        assert_eq!(crate::parse_threads(Some(" 8 ")), Some(8));
    }
}
