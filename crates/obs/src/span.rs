//! Hierarchical span timing.
//!
//! `SpanGuard::enter("thermal.pcg_solve")` (or the `span!` macro) pushes a
//! frame on a thread-local stack and, on drop, folds the elapsed time into
//! a global per-path aggregate. Paths are the `/`-joined chain of span
//! names from that thread's root, so nesting is visible
//! (`optimizer.optimize/optimizer.greedy_start/thermal.leakage_fixed_point`).
//! Worker threads spawned inside a span start their own root — the
//! aggregation merges by path, so the crossbeam-parallel greedy's starts
//! all fold into one `optimizer.greedy_start` line per thread-root shape.
//!
//! Self time is elapsed minus the time spent in child spans, tracked by
//! adding each child's elapsed into its parent frame at child drop.
//! When obs is disabled (`enabled()` false at enter), the guard is inert:
//! no clock read, no allocation, no lock.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::sink;

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Times this path was entered.
    pub count: u64,
    /// Total wall time inside the span, nanoseconds.
    pub total_ns: u64,
    /// Total minus time attributed to child spans, nanoseconds.
    pub self_ns: u64,
    /// Shortest single entry, nanoseconds.
    pub min_ns: u64,
    /// Longest single entry, nanoseconds.
    pub max_ns: u64,
}

struct Frame {
    path: Arc<str>,
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

fn aggregate() -> &'static Mutex<BTreeMap<String, SpanStat>> {
    static AGG: OnceLock<Mutex<BTreeMap<String, SpanStat>>> = OnceLock::new();
    AGG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// RAII timer for one span entry. Construct via [`SpanGuard::enter`] or
/// the `span!` macro; the span closes when the guard drops.
#[must_use = "a span measures the scope holding the guard; dropping it immediately records ~0ns"]
pub struct SpanGuard {
    // None when neither obs nor a trace collector is active: drop is
    // then a no-op.
    start: Option<Instant>,
    // Whether to fold into the global aggregate/sink on drop.
    global: bool,
    // Whether the thread's trace collector recorded this span at enter.
    traced: bool,
}

impl SpanGuard {
    /// Opens a span named `name` under the current thread's span stack.
    /// Inert (no clock read, no allocation) when obs is disabled and no
    /// request trace collector is installed on this thread
    /// ([`crate::trace::begin`]). When only the collector is active the
    /// span is recorded request-locally and skips the global aggregate
    /// and sink entirely.
    pub fn enter(name: &str) -> SpanGuard {
        let global = crate::enabled();
        let traced = crate::trace::thread_traced();
        if !global && !traced {
            return SpanGuard {
                start: None,
                global: false,
                traced: false,
            };
        }
        if traced {
            crate::trace::on_span_open(name);
        }
        if !global {
            return SpanGuard {
                start: Some(Instant::now()),
                global: false,
                traced,
            };
        }
        let (path, depth) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path: Arc<str> = match stack.last() {
                Some(parent) => Arc::from(format!("{}/{name}", parent.path)),
                None => Arc::from(name),
            };
            let depth = stack.len();
            stack.push(Frame {
                path: Arc::clone(&path),
                child_ns: 0,
            });
            (path, depth)
        });
        if depth < sink::SPAN_EVENT_DEPTH {
            sink::emit_span_open(&path);
        }
        SpanGuard {
            start: Some(Instant::now()),
            global: true,
            traced,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed_ns = start.elapsed().as_nanos() as u64;
        if self.traced {
            crate::trace::on_span_close(elapsed_ns);
        }
        if !self.global {
            return;
        }
        let (frame, depth) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let frame = stack.pop().expect("span stack underflow");
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += elapsed_ns;
            }
            (frame, stack.len())
        });
        let self_ns = elapsed_ns.saturating_sub(frame.child_ns);
        {
            let mut agg = aggregate().lock().expect("span aggregate poisoned");
            let stat = agg.entry(frame.path.to_string()).or_insert(SpanStat {
                count: 0,
                total_ns: 0,
                self_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
            });
            stat.count += 1;
            stat.total_ns += elapsed_ns;
            stat.self_ns += self_ns;
            stat.min_ns = stat.min_ns.min(elapsed_ns);
            stat.max_ns = stat.max_ns.max(elapsed_ns);
        }
        if depth < sink::SPAN_EVENT_DEPTH {
            sink::emit_span_close(&frame.path, elapsed_ns);
        }
    }
}

/// Snapshot of all aggregated span paths, sorted by path.
pub fn snapshot() -> Vec<(String, SpanStat)> {
    let agg = aggregate().lock().expect("span aggregate poisoned");
    agg.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
}

/// Clears all aggregated spans (tests).
pub fn reset() {
    aggregate().lock().expect("span aggregate poisoned").clear();
}

/// Leaf name of a span path (`a/b/c` → `c`).
pub fn leaf_name(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

/// Nesting depth of a span path (`a` → 0, `a/b` → 1).
pub fn depth(path: &str) -> usize {
    path.matches('/').count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn stats_under(root: &str) -> Vec<(String, SpanStat)> {
        snapshot()
            .into_iter()
            .filter(|(path, _)| path == root || path.starts_with(&format!("{root}/")))
            .collect()
    }

    #[test]
    fn parent_child_self_time_sums_to_total() {
        crate::force_enable();
        let root = "test.span.tree_root";
        {
            let _outer = SpanGuard::enter(root);
            std::thread::sleep(Duration::from_millis(5));
            for _ in 0..2 {
                let _inner = SpanGuard::enter("test.span.tree_child");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        let stats = stats_under(root);
        assert_eq!(stats.len(), 2, "expected root + child paths: {stats:?}");
        let (_, outer) = stats.iter().find(|(p, _)| p == root).expect("root stat");
        let (child_path, child) = stats.iter().find(|(p, _)| p != root).expect("child stat");
        assert_eq!(child_path, &format!("{root}/test.span.tree_child"));
        assert_eq!(outer.count, 1);
        assert_eq!(child.count, 2);
        // Self + children == total, exactly by construction for one entry.
        assert_eq!(outer.self_ns + child.total_ns, outer.total_ns);
        // And self time should be roughly the 5ms slept outside children
        // (generous tolerance: sleep granularity + CI jitter).
        assert!(outer.self_ns >= 4_000_000, "outer self {}ns", outer.self_ns);
        assert!(
            outer.self_ns <= outer.total_ns - child.total_ns + 1,
            "self exceeds total-minus-children"
        );
        assert!(child.min_ns <= child.max_ns);
        assert!(child.total_ns >= 2 * child.min_ns);
    }

    #[test]
    fn sibling_threads_merge_by_path() {
        crate::force_enable();
        let root = "test.span.thread_root";
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move |_| {
                    let _g = SpanGuard::enter(root);
                    std::thread::sleep(Duration::from_millis(1));
                });
            }
        })
        .expect("scope");
        let stats = stats_under(root);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].1.count, 4);
    }

    #[test]
    fn disabled_guard_records_nothing() {
        // Note: other tests in this binary call force_enable(); use a
        // guard constructed while disabled only if nothing enabled obs
        // yet. Instead, test the inert path directly.
        let g = SpanGuard {
            start: None,
            global: false,
            traced: false,
        };
        drop(g);
        // No panic, no new paths named after this test.
        assert!(stats_under("test.span.never_entered").is_empty());
    }

    #[test]
    fn path_helpers() {
        assert_eq!(leaf_name("a/b/c"), "c");
        assert_eq!(leaf_name("solo"), "solo");
        assert_eq!(depth("a"), 0);
        assert_eq!(depth("a/b/c"), 2);
    }
}
