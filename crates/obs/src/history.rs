//! Fixed-capacity time-series sampler over the metrics registry.
//!
//! A [`History`] holds the last `capacity` registry snapshots in a ring
//! buffer. The serve daemon runs a background thread that calls
//! [`History::sample_registry`] every `TAC25D_OBS_HISTORY` milliseconds
//! (default 1000) and exports the buffer at `GET /metrics/history`.
//! Samples carry monotone sequence numbers so a scraper can detect both
//! wraparound (gaps in `seq` relative to buffer length) and restarts
//! (`seq` reset).
//!
//! Sizing: the default 256 samples × 1 s interval ≈ 4.5 minutes of
//! history; one sample is a few hundred bytes of counter/gauge pairs,
//! so the buffer tops out around 100 KB — small enough to keep resident
//! forever and serialize per scrape without a cache.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::json::{obj, Value};
use crate::registry;

/// Default ring capacity (samples).
pub const DEFAULT_CAPACITY: usize = 256;

/// Default sampling interval in milliseconds when `TAC25D_OBS_HISTORY`
/// is unset or unparsable.
pub const DEFAULT_INTERVAL_MS: u64 = 1000;

/// Parses a `TAC25D_OBS_HISTORY` value (interval in milliseconds). Any
/// non-positive or unparsable value falls back to the default. Split out
/// for tests, like [`crate::parse_threads`].
pub fn parse_interval_ms(value: Option<&str>) -> u64 {
    value
        .and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_INTERVAL_MS)
}

/// The sampling interval selected by the environment.
pub fn interval_ms_from_env() -> u64 {
    parse_interval_ms(std::env::var("TAC25D_OBS_HISTORY").ok().as_deref())
}

/// One point-in-time registry snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Monotone sequence number, starting at 0 per `History`.
    pub seq: u64,
    /// Capture time as microseconds since [`crate::epoch`].
    pub t_us: u64,
    /// All counters at capture time, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// All gauges at capture time, sorted by name.
    pub gauges: Vec<(String, f64)>,
}

struct Inner {
    next_seq: u64,
    samples: VecDeque<Sample>,
}

/// Fixed-capacity ring buffer of registry samples.
pub struct History {
    capacity: usize,
    interval_ms: u64,
    inner: Mutex<Inner>,
}

impl History {
    /// Creates an empty history holding at most `capacity` samples.
    pub fn new(capacity: usize, interval_ms: u64) -> History {
        History {
            capacity: capacity.max(1),
            interval_ms,
            inner: Mutex::new(Inner {
                next_seq: 0,
                samples: VecDeque::new(),
            }),
        }
    }

    /// Creates a history with the default capacity and the env-selected
    /// interval.
    pub fn from_env() -> History {
        History::new(DEFAULT_CAPACITY, interval_ms_from_env())
    }

    /// Maximum number of retained samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sampling interval the owner should use, milliseconds.
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("history poisoned").samples.len()
    }

    /// Whether no samples have been taken yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes an explicit sample (tests and custom samplers); evicts the
    /// oldest entry at capacity. Returns the assigned sequence number.
    pub fn push(&self, counters: Vec<(String, u64)>, gauges: Vec<(String, f64)>) -> u64 {
        let mut inner = self.inner.lock().expect("history poisoned");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.samples.len() == self.capacity {
            inner.samples.pop_front();
        }
        inner.samples.push_back(Sample {
            seq,
            t_us: crate::uptime().as_micros() as u64,
            counters,
            gauges,
        });
        seq
    }

    /// Snapshots the global registry into the ring. Returns the assigned
    /// sequence number.
    pub fn sample_registry(&self) -> u64 {
        self.push(registry::counter_snapshot(), registry::gauge_snapshot())
    }

    /// All retained samples, oldest first.
    pub fn samples(&self) -> Vec<Sample> {
        let inner = self.inner.lock().expect("history poisoned");
        inner.samples.iter().cloned().collect()
    }

    /// Renders the buffer as one JSON document:
    /// `{"capacity":..,"interval_ms":..,"samples":[{"seq":..,"t_us":..,
    /// "counters":{..},"gauges":{..}},..]}` (oldest first).
    pub fn to_json(&self) -> Value {
        let samples: Vec<Value> = self
            .samples()
            .into_iter()
            .map(|s| {
                obj(vec![
                    ("seq".to_owned(), Value::Number(s.seq as f64)),
                    ("t_us".to_owned(), Value::Number(s.t_us as f64)),
                    (
                        "counters".to_owned(),
                        obj(s
                            .counters
                            .into_iter()
                            .map(|(k, v)| (k, Value::Number(v as f64)))
                            .collect::<Vec<_>>()),
                    ),
                    (
                        "gauges".to_owned(),
                        obj(s
                            .gauges
                            .into_iter()
                            .map(|(k, v)| (k, Value::Number(v)))
                            .collect::<Vec<_>>()),
                    ),
                ])
            })
            .collect();
        obj(vec![
            ("capacity".to_owned(), Value::Number(self.capacity as f64)),
            (
                "interval_ms".to_owned(),
                Value::Number(self.interval_ms as f64),
            ),
            ("samples".to_owned(), Value::Array(samples)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(h: &History, tag: u64) -> u64 {
        h.push(vec![("test.history.c".to_owned(), tag)], Vec::new())
    }

    #[test]
    fn wraparound_at_capacity_keeps_newest() {
        let h = History::new(4, 50);
        for tag in 0..10 {
            sample(&h, tag);
        }
        assert_eq!(h.len(), 4);
        let samples = h.samples();
        let tags: Vec<u64> = samples.iter().map(|s| s.counters[0].1).collect();
        assert_eq!(tags, vec![6, 7, 8, 9]);
    }

    #[test]
    fn sequence_numbers_are_monotone_across_wraparound() {
        let h = History::new(3, 50);
        let seqs: Vec<u64> = (0..8).map(|tag| sample(&h, tag)).collect();
        assert_eq!(seqs, (0..8).collect::<Vec<u64>>());
        let retained: Vec<u64> = h.samples().iter().map(|s| s.seq).collect();
        assert_eq!(retained, vec![5, 6, 7]);
        for w in h.samples().windows(2) {
            assert!(w[1].seq == w[0].seq + 1);
            assert!(w[1].t_us >= w[0].t_us);
        }
    }

    #[test]
    fn sample_registry_captures_counters_and_gauges() {
        crate::counter!("test.history.reg_counter").add(11);
        crate::gauge!("test.history.reg_gauge").set(2.5);
        let h = History::new(8, 50);
        h.sample_registry();
        let s = &h.samples()[0];
        assert!(s
            .counters
            .iter()
            .any(|(k, v)| k == "test.history.reg_counter" && *v >= 11));
        assert!(s
            .gauges
            .iter()
            .any(|(k, v)| k == "test.history.reg_gauge" && *v == 2.5));
    }

    #[test]
    fn json_export_parses_and_matches() {
        let h = History::new(4, 250);
        h.push(
            vec![("test.history.j".to_owned(), 3)],
            vec![("test.history.g".to_owned(), -1.5)],
        );
        let doc = h.to_json().render();
        let v = crate::json::parse(&doc).expect("valid json");
        assert_eq!(v.get("capacity").and_then(Value::as_f64), Some(4.0));
        assert_eq!(v.get("interval_ms").and_then(Value::as_f64), Some(250.0));
        let samples = v.get("samples").and_then(Value::as_array).expect("samples");
        assert_eq!(samples.len(), 1);
        assert_eq!(
            samples[0]
                .get("counters")
                .and_then(|c| c.get("test.history.j"))
                .and_then(Value::as_f64),
            Some(3.0)
        );
        assert_eq!(
            samples[0]
                .get("gauges")
                .and_then(|g| g.get("test.history.g"))
                .and_then(Value::as_f64),
            Some(-1.5)
        );
    }

    #[test]
    fn interval_parsing() {
        assert_eq!(parse_interval_ms(None), DEFAULT_INTERVAL_MS);
        assert_eq!(parse_interval_ms(Some("")), DEFAULT_INTERVAL_MS);
        assert_eq!(parse_interval_ms(Some("0")), DEFAULT_INTERVAL_MS);
        assert_eq!(parse_interval_ms(Some("junk")), DEFAULT_INTERVAL_MS);
        assert_eq!(parse_interval_ms(Some("250")), 250);
        assert_eq!(parse_interval_ms(Some(" 50 ")), 50);
    }
}
