//! `BENCH_profile.json` writer, baseline drift checking and the timing
//! tree renderer backing `tac25d obs-report`.
//!
//! The profile schema (version 1):
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "bin": "fig8",
//!   "total_wall_s": 14.2,
//!   "spans": [{"path": "...", "count": N, "total_s": .., "self_s": ..,
//!              "min_s": .., "max_s": ..}, ...],
//!   "spans_by_name": {"thermal.pcg_solve": {"count": N, "total_s": ..,
//!                                           "self_s": ..}, ...},
//!   "counters": {"thermal.pcg_iterations": N, ...},
//!   "gauges": {"thermal.pcg_final_residual": X, ...},
//!   "histograms": {"name": {"count": N, "sum": S,
//!                           "buckets": [{"le": B, "n": C}, ...,
//!                                       {"le": "+Inf", "n": C}]}, ...}
//! }
//! ```
//!
//! Histogram buckets are sparse (empty finite buckets are skipped) but
//! always terminated by an explicit `"+Inf"` overflow bucket, so the full
//! 65-bucket range is representable and the largest finite bound never
//! masquerades as the end of the scale.
//!
//! `spans` keys by full `/`-joined path; `spans_by_name` rolls up by leaf
//! span name so consumers (CI drift check, acceptance criteria) can find
//! `thermal.pcg_solve` regardless of what it nested under.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use crate::json::{escape, parse, Value};
use crate::span::{self, SpanStat};

/// Counters pre-registered at startup so they appear in every profile
/// (zero-valued if the corresponding code path never ran).
pub const CANONICAL_COUNTERS: &[&str] = &[
    "thermal.pcg_solves",
    "thermal.pcg_iterations",
    "thermal.exact_solves",
    "thermal.anderson_accepted",
    "thermal.assembly_rows_reused",
    "thermal.mg_vcycles",
    "thermal.mg_refills",
    "thermal.mg_scaffold_hits",
    "thermal.mg_escalations",
    "thermal.mg_build_us",
    "evaluator.canonical_hits",
    "evaluator.exact_solves",
    "surrogate.predictions",
    "optimizer.greedy_starts",
    "optimizer.seeded_starts",
    "optimizer.analytic_descents",
    "optimizer.analytic_grad_evals",
    "optimizer.draft_refutes",
    "bench.rows_emitted",
    "serve.requests",
    "serve.shed",
    "serve.deadline_hits",
];

/// Counters the CI `profile` job guards against drift.
/// `thermal.mg_build_us` is deliberately absent: it measures wall time,
/// which is machine-dependent — the CI profile job checks it against the
/// run's own wall clock (≤ 10%) instead of against a blessed value.
pub const BASELINE_COUNTERS: &[&str] = &[
    "thermal.pcg_iterations",
    "thermal.exact_solves",
    "thermal.anderson_accepted",
    "thermal.assembly_rows_reused",
    "thermal.mg_vcycles",
    "thermal.mg_refills",
    "thermal.mg_scaffold_hits",
    "evaluator.exact_solves",
    "serve.shed",
    "serve.deadline_hits",
];

/// Baseline counters where only *increases* are regressions: dropping
/// below the blessed value (a faster solver, a better warm start) must
/// pass the gate without a re-bless, while exceeding it by the tolerance
/// still fails. `thermal.mg_vcycles` is 0 on the default path (the gate
/// rides along for free there) and guards V-cycle-count regressions on
/// the `TAC25D_SOLVER=mg` profile run.
/// `serve.shed` and `serve.deadline_hits` are blessed at 0 — any request
/// shedding or deadline expiry during a profile run is queue/backpressure
/// behavior regressing, while staying at 0 rides along for free.
/// `thermal.mg_refills` counts numeric hierarchy fills — growing past
/// the blessed value means models stopped sharing hierarchies (or mg ran
/// where it should not have), while needing fewer is an improvement.
/// `evaluator.exact_solves` counts exact coupled thermal/leakage solves
/// per run — the currency the analytic seeding saves. Creeping past the
/// blessed value means the seeding or the draft-then-verify search
/// quietly stopped firing; spending fewer is the whole point.
pub const ONE_SIDED_COUNTERS: &[&str] = &[
    "thermal.pcg_iterations",
    "thermal.mg_vcycles",
    "thermal.mg_refills",
    "evaluator.exact_solves",
    "serve.shed",
    "serve.deadline_hits",
];

/// The mirror image: improvement counters where only *decreases* are
/// regressions. These count work *saved* (accepted Anderson steps, CSR
/// rows patched instead of rebuilt), so exceeding the blessed value is
/// progress and passes outright, while falling below it by the tolerance
/// means an optimization quietly stopped firing.
/// `thermal.mg_scaffold_hits` counts symbolic-scaffold reuses on the
/// multigrid profile run — falling below the blessed value means the
/// shape-keyed amortization quietly stopped firing (0 on the default
/// path, where the gate rides along for free).
pub const ONE_SIDED_MIN_COUNTERS: &[&str] = &[
    "thermal.anderson_accepted",
    "thermal.assembly_rows_reused",
    "thermal.mg_scaffold_hits",
];

/// Relative drift allowed against the committed baseline (the parallel
/// greedy's lowest-index-winner early exit makes solve counts mildly
/// scheduling-dependent).
pub const DRIFT_TOLERANCE: f64 = 0.20;

/// Registers [`CANONICAL_COUNTERS`] so they show up in profiles and
/// counter snapshots even when untouched.
pub fn register_canonical_counters() {
    for name in CANONICAL_COUNTERS {
        crate::registry::counter(name);
    }
}

fn s(ns: u64) -> f64 {
    ns as f64 / 1e9
}

/// Leaf-name rollup of the span snapshot: name → (count, total_ns,
/// self_ns).
pub fn spans_by_name(snapshot: &[(String, SpanStat)]) -> BTreeMap<String, (u64, u64, u64)> {
    let mut out: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    for (path, stat) in snapshot {
        let e = out
            .entry(span::leaf_name(path).to_owned())
            .or_insert((0, 0, 0));
        e.0 += stat.count;
        e.1 += stat.total_ns;
        e.2 += stat.self_ns;
    }
    out
}

/// Renders the current registry + span state as a schema-v1 profile
/// document.
pub fn render_profile(bin: &str) -> String {
    register_canonical_counters();
    let snapshot = span::snapshot();
    let mut out = String::from("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"bin\": \"{}\",\n", escape(bin)));
    out.push_str(&format!(
        "  \"total_wall_s\": {:.6},\n",
        crate::uptime().as_secs_f64()
    ));
    out.push_str("  \"spans\": [\n");
    for (i, (path, stat)) in snapshot.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"path\": \"{}\", \"count\": {}, \"total_s\": {:.6}, \"self_s\": {:.6}, \"min_s\": {:.6}, \"max_s\": {:.6}}}{}\n",
            escape(path),
            stat.count,
            s(stat.total_ns),
            s(stat.self_ns),
            s(stat.min_ns),
            s(stat.max_ns),
            if i + 1 < snapshot.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"spans_by_name\": {\n");
    let by_name = spans_by_name(&snapshot);
    for (i, (name, (count, total_ns, self_ns))) in by_name.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"count\": {count}, \"total_s\": {:.6}, \"self_s\": {:.6}}}{}\n",
            escape(name),
            s(*total_ns),
            s(*self_ns),
            if i + 1 < by_name.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"counters\": {\n");
    let counters = crate::registry::counter_snapshot();
    for (i, (name, value)) in counters.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {value}{}\n",
            escape(name),
            if i + 1 < counters.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"gauges\": {\n");
    let gauges = crate::registry::gauge_snapshot();
    for (i, (name, value)) in gauges.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {value}{}\n",
            escape(name),
            if i + 1 < gauges.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"histograms\": {\n");
    let hists = crate::registry::histogram_snapshot();
    for (i, (name, buckets, count, sum)) in hists.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"count\": {count}, \"sum\": {sum}, \"buckets\": [",
            escape(name)
        ));
        // Finite buckets are sparse (zero buckets skipped); the overflow
        // bucket is always present as an explicit "+Inf" terminator so
        // consumers never mistake the largest finite bound (previously
        // printed as a raw u64::MAX) for the top of the range.
        let last = buckets.len() - 1;
        for (bi, c) in buckets.iter().take(last).enumerate() {
            if *c == 0 {
                continue;
            }
            out.push_str(&format!(
                "{{\"le\": {}, \"n\": {c}}}, ",
                crate::registry::bucket_upper_bound(bi)
            ));
        }
        out.push_str(&format!("{{\"le\": \"+Inf\", \"n\": {}}}", buckets[last]));
        out.push_str(&format!(
            "]}}{}\n",
            if i + 1 < hists.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Writes [`render_profile`] to `path`.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_profile(path: &Path, bin: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, render_profile(bin))
}

/// Extracts the [`BASELINE_COUNTERS`] from a parsed profile document as a
/// baseline JSON document (what `tests/obs/baseline.json` holds).
pub fn baseline_from_profile(profile: &Value) -> String {
    let mut out = String::from("{\n");
    for (i, name) in BASELINE_COUNTERS.iter().enumerate() {
        let v = profile
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        out.push_str(&format!(
            "  \"{name}\": {v}{}\n",
            if i + 1 < BASELINE_COUNTERS.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("}\n");
    out
}

/// One drift-check result row.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// Counter name.
    pub name: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Observed value from the fresh profile.
    pub observed: f64,
    /// `|observed - baseline| / baseline` (observed itself when the
    /// baseline is zero and observed is not). For [`ONE_SIDED_COUNTERS`]
    /// only the increase counts, for [`ONE_SIDED_MIN_COUNTERS`] only the
    /// decrease: improvements report 0.
    pub relative: f64,
    /// Whether `relative` exceeds the tolerance.
    pub exceeded: bool,
}

/// Compares a fresh profile against a committed baseline for every
/// [`BASELINE_COUNTERS`] entry. Counters in [`ONE_SIDED_COUNTERS`] gate
/// only regressions (observed above baseline), counters in
/// [`ONE_SIDED_MIN_COUNTERS`] gate only losses (observed below baseline);
/// every other counter drifts symmetrically.
pub fn check_drift(profile: &Value, baseline: &Value, tolerance: f64) -> Vec<Drift> {
    BASELINE_COUNTERS
        .iter()
        .map(|name| {
            let observed = profile
                .get("counters")
                .and_then(|c| c.get(name))
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            let base = baseline.get(name).and_then(Value::as_f64).unwrap_or(0.0);
            let delta = if ONE_SIDED_COUNTERS.contains(name) {
                (observed - base).max(0.0)
            } else if ONE_SIDED_MIN_COUNTERS.contains(name) {
                (base - observed).max(0.0)
            } else {
                (observed - base).abs()
            };
            let relative = if base == 0.0 {
                if delta == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                delta / base
            };
            Drift {
                name: (*name).to_owned(),
                baseline: base,
                observed,
                relative,
                exceeded: relative > tolerance,
            }
        })
        .collect()
}

/// Renders a parsed profile as a human-readable report: total wall time,
/// the indented span tree, the acceptance-named span rollups, and the top
/// counters with derived ratios.
pub fn render_report(profile: &Value) -> String {
    let mut out = String::new();
    let bin = profile.get("bin").and_then(Value::as_str).unwrap_or("?");
    let wall = profile
        .get("total_wall_s")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    out.push_str(&format!("== obs profile: {bin} ==\n"));
    out.push_str(&format!("total wall time: {wall:.3} s\n\n"));

    out.push_str("span tree (count, total s, self s):\n");
    if let Some(spans) = profile.get("spans").and_then(Value::as_array) {
        if spans.is_empty() {
            out.push_str("  (no spans recorded)\n");
        }
        for sp in spans {
            let path = sp.get("path").and_then(Value::as_str).unwrap_or("?");
            let count = sp.get("count").and_then(Value::as_f64).unwrap_or(0.0);
            let total = sp.get("total_s").and_then(Value::as_f64).unwrap_or(0.0);
            let self_s = sp.get("self_s").and_then(Value::as_f64).unwrap_or(0.0);
            let indent = "  ".repeat(span::depth(path) + 1);
            out.push_str(&format!(
                "{indent}{}  x{count:<6} total {total:>9.3}s  self {self_s:>9.3}s\n",
                span::leaf_name(path)
            ));
        }
    }

    out.push_str("\nkey spans (rolled up by name):\n");
    if let Some(by_name) = profile.get("spans_by_name").and_then(Value::as_object) {
        for (name, stat) in by_name {
            let count = stat.get("count").and_then(Value::as_f64).unwrap_or(0.0);
            let total = stat.get("total_s").and_then(Value::as_f64).unwrap_or(0.0);
            out.push_str(&format!("  {name:<36} x{count:<8} {total:>9.3}s\n"));
        }
    }

    out.push_str("\ntop counters:\n");
    let mut counters: Vec<(String, f64)> = profile
        .get("counters")
        .and_then(Value::as_object)
        .map(|pairs| {
            pairs
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
                .collect()
        })
        .unwrap_or_default();
    counters.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    for (name, value) in counters.iter().take(12) {
        out.push_str(&format!("  {name:<36} {value:>12.0}\n"));
    }

    let counter = |name: &str| -> f64 {
        profile
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
    };
    let exact = counter("thermal.exact_solves");
    let predictions = counter("surrogate.predictions");
    let pcg_iters = counter("thermal.pcg_iterations");
    let pcg_solves = counter("thermal.pcg_solves");
    out.push_str("\nderived:\n");
    if predictions + exact > 0.0 {
        out.push_str(&format!(
            "  screened-vs-exact ratio: {predictions:.0} predictions / {exact:.0} exact solves ({:.1}x)\n",
            if exact > 0.0 { predictions / exact } else { f64::INFINITY }
        ));
    }
    if pcg_solves > 0.0 {
        out.push_str(&format!(
            "  mean PCG iterations/solve: {:.1}\n",
            pcg_iters / pcg_solves
        ));
    }
    out
}

/// Renders the same data as [`render_report`] (plus the drift rows, when
/// a baseline was checked) as one machine-readable JSON document, so CI
/// can archive and diff `tac25d obs-report --json` output instead of
/// scraping the table.
pub fn render_report_json(profile: &Value, drifts: &[Drift]) -> String {
    let mut fields: Vec<(String, Value)> = Vec::new();
    for key in [
        "bin",
        "total_wall_s",
        "spans_by_name",
        "counters",
        "gauges",
        "histograms",
    ] {
        if let Some(v) = profile.get(key) {
            fields.push((key.to_owned(), v.clone()));
        }
    }
    let drift_rows: Vec<Value> = drifts
        .iter()
        .map(|d| {
            crate::json::obj(vec![
                ("name".to_owned(), Value::String(d.name.clone())),
                ("baseline".to_owned(), Value::Number(d.baseline)),
                ("observed".to_owned(), Value::Number(d.observed)),
                // Infinite drift (zero baseline, nonzero observed)
                // renders as null per the serializer's non-finite rule.
                ("relative".to_owned(), Value::Number(d.relative)),
                ("exceeded".to_owned(), Value::Bool(d.exceeded)),
            ])
        })
        .collect();
    fields.push(("drift".to_owned(), Value::Array(drift_rows)));
    crate::json::obj(fields).render()
}

/// Parses a profile or baseline file from disk.
///
/// # Errors
///
/// Returns a description of the IO or parse failure.
pub fn load_json(path: &Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_profile(pcg_iters: f64, exact: f64) -> Value {
        fake_profile_full(pcg_iters, exact, 0.0, 0.0, 0.0)
    }

    fn fake_profile_full(pcg_iters: f64, exact: f64, anderson: f64, rows: f64, hits: f64) -> Value {
        parse(&format!(
            r#"{{"schema_version": 1, "bin": "t", "total_wall_s": 1.0,
                "spans": [], "spans_by_name": {{}},
                "counters": {{"thermal.pcg_iterations": {pcg_iters},
                             "thermal.exact_solves": {exact},
                             "thermal.anderson_accepted": {anderson},
                             "thermal.assembly_rows_reused": {rows},
                             "thermal.mg_scaffold_hits": {hits}}},
                "gauges": {{}}, "histograms": {{}}}}"#
        ))
        .expect("fixture parses")
    }

    #[test]
    fn drift_within_tolerance_passes() {
        let profile = fake_profile(110.0, 10.0);
        let baseline = parse(r#"{"thermal.pcg_iterations": 100, "thermal.exact_solves": 10}"#)
            .expect("baseline parses");
        let drifts = check_drift(&profile, &baseline, DRIFT_TOLERANCE);
        assert_eq!(drifts.len(), BASELINE_COUNTERS.len());
        assert!(drifts.iter().all(|d| !d.exceeded), "{drifts:?}");
        assert!((drifts[0].relative - 0.10).abs() < 1e-12);
    }

    #[test]
    fn drift_beyond_tolerance_fails() {
        let profile = fake_profile(130.0, 10.0);
        let baseline = parse(r#"{"thermal.pcg_iterations": 100, "thermal.exact_solves": 10}"#)
            .expect("baseline parses");
        let drifts = check_drift(&profile, &baseline, DRIFT_TOLERANCE);
        assert!(drifts.iter().any(|d| d.exceeded));
    }

    #[test]
    fn zero_baseline_with_nonzero_observed_is_infinite_drift() {
        let profile = fake_profile(5.0, 0.0);
        let baseline = parse(r#"{"thermal.pcg_iterations": 0, "thermal.exact_solves": 0}"#)
            .expect("baseline parses");
        let drifts = check_drift(&profile, &baseline, DRIFT_TOLERANCE);
        let pcg = drifts
            .iter()
            .find(|d| d.name == "thermal.pcg_iterations")
            .unwrap();
        assert!(pcg.exceeded);
        let exact = drifts
            .iter()
            .find(|d| d.name == "thermal.exact_solves")
            .unwrap();
        assert!(!exact.exceeded);
    }

    #[test]
    fn one_sided_counter_improvement_passes_any_margin() {
        // pcg_iterations is gated one-sided: a 4x improvement must pass
        // without a re-bless, while the same swing upward fails.
        let improved = fake_profile(25.0, 10.0);
        let baseline = parse(r#"{"thermal.pcg_iterations": 100, "thermal.exact_solves": 10}"#)
            .expect("baseline parses");
        let drifts = check_drift(&improved, &baseline, DRIFT_TOLERANCE);
        let pcg = drifts
            .iter()
            .find(|d| d.name == "thermal.pcg_iterations")
            .unwrap();
        assert!(!pcg.exceeded, "{pcg:?}");
        assert_eq!(pcg.relative, 0.0);

        let regressed = fake_profile(175.0, 10.0);
        let drifts = check_drift(&regressed, &baseline, DRIFT_TOLERANCE);
        assert!(
            drifts
                .iter()
                .find(|d| d.name == "thermal.pcg_iterations")
                .unwrap()
                .exceeded
        );
    }

    #[test]
    fn min_sided_counter_gain_passes_and_loss_fails() {
        // Improvement counters gate only the downside: saving *more* rows
        // or accepting *more* Anderson steps than the blessed baseline is
        // progress, while losing them past the tolerance means the
        // optimization quietly stopped firing.
        let baseline = parse(
            r#"{"thermal.pcg_iterations": 100, "thermal.exact_solves": 10,
                "thermal.anderson_accepted": 50, "thermal.assembly_rows_reused": 1000,
                "thermal.mg_scaffold_hits": 20}"#,
        )
        .expect("baseline parses");

        let improved = fake_profile_full(100.0, 10.0, 200.0, 4000.0, 80.0);
        let drifts = check_drift(&improved, &baseline, DRIFT_TOLERANCE);
        for name in ONE_SIDED_MIN_COUNTERS {
            let d = drifts.iter().find(|d| &d.name == name).unwrap();
            assert!(!d.exceeded, "{d:?}");
            assert_eq!(d.relative, 0.0);
        }

        let regressed = fake_profile_full(100.0, 10.0, 10.0, 100.0, 2.0);
        let drifts = check_drift(&regressed, &baseline, DRIFT_TOLERANCE);
        for name in ONE_SIDED_MIN_COUNTERS {
            assert!(
                drifts.iter().find(|d| &d.name == name).unwrap().exceeded,
                "loss of {name} must fail the gate"
            );
        }
    }

    #[test]
    fn symmetric_counter_still_fails_on_large_decrease() {
        // exact_solves is not one-sided: losing half the exact solves is
        // as suspicious as doubling them.
        let profile = fake_profile(100.0, 4.0);
        let baseline = parse(r#"{"thermal.pcg_iterations": 100, "thermal.exact_solves": 10}"#)
            .expect("baseline parses");
        let drifts = check_drift(&profile, &baseline, DRIFT_TOLERANCE);
        assert!(
            drifts
                .iter()
                .find(|d| d.name == "thermal.exact_solves")
                .unwrap()
                .exceeded
        );
    }

    #[test]
    fn baseline_round_trips_through_profile() {
        let profile = fake_profile(892.0, 42.0);
        let baseline_doc = baseline_from_profile(&profile);
        let baseline = parse(&baseline_doc).expect("baseline parses");
        let drifts = check_drift(&profile, &baseline, 0.0);
        assert!(drifts.iter().all(|d| !d.exceeded));
    }

    #[test]
    fn rendered_profile_parses_and_contains_canonicals() {
        crate::force_enable();
        {
            let _g = crate::span::SpanGuard::enter("test.profile.render_span");
        }
        let doc = render_profile("unit-test");
        let v = parse(&doc).expect("profile parses");
        assert_eq!(v.get("bin").and_then(Value::as_str), Some("unit-test"));
        assert!(v.get("total_wall_s").and_then(Value::as_f64).is_some());
        for name in CANONICAL_COUNTERS {
            assert!(
                v.get("counters").and_then(|c| c.get(name)).is_some(),
                "canonical counter {name} missing"
            );
        }
        let report = render_report(&v);
        assert!(report.contains("total wall time"));
        assert!(report.contains("top counters"));
    }

    #[test]
    fn json_report_carries_table_data_and_drift() {
        let profile = fake_profile(130.0, 10.0);
        let baseline = parse(r#"{"thermal.pcg_iterations": 100, "thermal.exact_solves": 10}"#)
            .expect("baseline parses");
        let drifts = check_drift(&profile, &baseline, DRIFT_TOLERANCE);
        let doc = render_report_json(&profile, &drifts);
        let v = parse(&doc).expect("json report parses");
        assert_eq!(v.get("bin").and_then(Value::as_str), Some("t"));
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("thermal.pcg_iterations"))
                .and_then(Value::as_f64),
            Some(130.0)
        );
        let rows = v.get("drift").and_then(Value::as_array).expect("drift");
        assert_eq!(rows.len(), BASELINE_COUNTERS.len());
        let pcg = rows
            .iter()
            .find(|r| r.get("name").and_then(Value::as_str) == Some("thermal.pcg_iterations"))
            .expect("pcg row");
        assert_eq!(pcg.get("exceeded"), Some(&Value::Bool(true)));
    }

    #[test]
    fn histograms_close_with_explicit_inf_bucket() {
        crate::force_enable();
        let h = crate::registry::histogram("test.profile.inf_bucket");
        h.reset();
        h.record(3);
        h.record(300);
        h.record(u64::MAX); // lands in the overflow bucket
        let doc = render_profile("unit-test");
        let v = parse(&doc).expect("profile parses");
        let buckets = v
            .get("histograms")
            .and_then(|h| h.get("test.profile.inf_bucket"))
            .and_then(|h| h.get("buckets"))
            .and_then(Value::as_array)
            .expect("buckets present");
        let last = buckets.last().expect("non-empty");
        assert_eq!(last.get("le").and_then(Value::as_str), Some("+Inf"));
        assert_eq!(last.get("n").and_then(Value::as_f64), Some(1.0));
        // Every finite bucket keeps a numeric bound strictly below 2^63.
        for b in &buckets[..buckets.len() - 1] {
            let le = b.get("le").and_then(Value::as_f64).expect("numeric le");
            assert!(le < (1u64 << 63) as f64);
        }
    }
}
