//! JSONL event sink, selected by `TAC25D_OBS=path.jsonl`.
//!
//! Each event is one JSON object per line:
//!
//! ```text
//! {"ev":"span_open","path":"optimizer.optimize","t_us":1234}
//! {"ev":"span_close","path":"optimizer.optimize","t_us":5678,"dur_us":4444}
//! {"ev":"counters","t_us":9999,"counters":{...},"gauges":{...}}
//! {"ev":"report","name":"fig8","rows":12,"t_us":10000}
//! ```
//!
//! `t_us` is microseconds since the process-wide epoch (first obs use).
//! Span events are only streamed for shallow spans (depth <
//! [`SPAN_EVENT_DEPTH`]) — the PCG inner solves run hundreds of times per
//! greedy start and would swamp the file; their timing is still fully
//! captured in the aggregated span tree. Every line is flushed on write so
//! the stream survives `std::process::exit` (the writer is never dropped).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::{Mutex, OnceLock};

use crate::json::escape;

/// Spans at depth >= this are aggregated only, not streamed as events.
pub const SPAN_EVENT_DEPTH: usize = 2;

enum SinkState {
    Disabled,
    Active(Mutex<BufWriter<File>>),
}

fn sink() -> &'static SinkState {
    static SINK: OnceLock<SinkState> = OnceLock::new();
    SINK.get_or_init(|| {
        let Some(path) = std::env::var_os("TAC25D_OBS") else {
            return SinkState::Disabled;
        };
        if path.is_empty() {
            return SinkState::Disabled;
        }
        match File::create(&path) {
            Ok(f) => SinkState::Active(Mutex::new(BufWriter::new(f))),
            Err(e) => {
                eprintln!("tac25d-obs: cannot open {}: {e}", path.to_string_lossy());
                SinkState::Disabled
            }
        }
    })
}

/// Whether a JSONL sink is attached.
pub fn active() -> bool {
    matches!(sink(), SinkState::Active(_))
}

fn emit_line(line: &str) {
    if let SinkState::Active(w) = sink() {
        let mut w = w.lock().expect("obs sink poisoned");
        // Flush per line: the stream must be complete even if the process
        // exits without unwinding (bench bins end via main return, but
        // the golden harness kills children on timeout).
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

fn t_us() -> u128 {
    crate::uptime().as_micros()
}

/// Streams a span-open event.
pub fn emit_span_open(path: &str) {
    if active() {
        emit_line(&format!(
            "{{\"ev\":\"span_open\",\"path\":\"{}\",\"t_us\":{}}}",
            escape(path),
            t_us()
        ));
    }
}

/// Streams a span-close event with its duration.
pub fn emit_span_close(path: &str, dur_ns: u64) {
    if active() {
        emit_line(&format!(
            "{{\"ev\":\"span_close\",\"path\":\"{}\",\"t_us\":{},\"dur_us\":{}}}",
            escape(path),
            t_us(),
            dur_ns / 1_000
        ));
    }
}

/// Streams a full counter/gauge snapshot (called at report boundaries,
/// not per-event).
pub fn emit_counters_snapshot() {
    if !active() {
        return;
    }
    let mut line = format!("{{\"ev\":\"counters\",\"t_us\":{},\"counters\":{{", t_us());
    for (i, (name, value)) in crate::registry::counter_snapshot().iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&format!("\"{}\":{value}", escape(name)));
    }
    line.push_str("},\"gauges\":{");
    for (i, (name, value)) in crate::registry::gauge_snapshot().iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&format!("\"{}\":{value}", escape(name)));
    }
    line.push_str("}}");
    emit_line(&line);
}

/// Streams a report-finished event (one per `Report::finish`).
pub fn emit_report(name: &str, rows: usize) {
    if active() {
        emit_line(&format!(
            "{{\"ev\":\"report\",\"name\":\"{}\",\"rows\":{rows},\"t_us\":{}}}",
            escape(name),
            t_us()
        ));
    }
}
