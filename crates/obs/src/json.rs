//! A minimal JSON value model, parser, serializer and string escaper.
//!
//! The obs crate carries no external dependencies (vendored-stub policy),
//! so the profile/baseline readers, the JSONL sink and the serve daemon's
//! request/response protocol share this recursive-descent parser and the
//! matching [`render`] serializer instead of serde. It accepts exactly
//! RFC 8259 JSON; numbers are held as `f64` (every value this crate
//! round-trips — counters, seconds, bucket bounds — fits without loss at
//! the magnitudes involved).
//!
//! Rendering is deterministic: object keys keep their insertion order,
//! numbers use Rust's shortest round-trip `Display` form, and non-finite
//! floats (which RFC 8259 cannot represent) render as `null`. The serve
//! daemon's byte-for-byte response determinism rests on these properties.

use std::error::Error;
use std::fmt;

/// A parsed JSON value. Objects preserve key order (the writer sorts keys,
/// so parse→render is stable).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object value (`None` for non-objects and
    /// missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes the value as a compact JSON document. Object key order
    /// is preserved, numbers use Rust's shortest round-trip form, and
    /// non-finite floats render as `null` (RFC 8259 has no NaN/Inf).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => render_f64(*n, out),
            Value::String(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn render_f64(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if n.is_finite() {
        // Rust's `{}` for f64 is the shortest string that parses back to
        // the same bits — deterministic and round-trip exact — and never
        // uses scientific notation, which keeps the output strict JSON.
        let _ = write!(out, "{n}");
    } else {
        out.push_str("null");
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Number(f64::from(n))
    }
}

impl From<u16> for Value {
    fn from(n: u16) -> Self {
        Value::Number(f64::from(n))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::Array(items)
    }
}

impl From<Vec<(String, Value)>> for Value {
    fn from(pairs: Vec<(String, Value)>) -> Self {
        Value::Object(pairs)
    }
}

/// Builds an object value from `(key, value)` pairs in order — the
/// ergonomic constructor for response rendering:
/// `obj([("status", "ok".into())])`.
pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What was expected or found.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl Error for ParseError {}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns [`ParseError`] on any syntax violation.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included). Control characters use `\u00XX`.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| ParseError {
                offset: start,
                message: format!("invalid number {text:?}"),
            })
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by any obs
                            // producer; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Number(-1500.0));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            Value::String("a\nbA".to_owned())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x,y"}], "c": false}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Bool(false)));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").and_then(Value::as_str), Some("x,y"));
    }

    #[test]
    fn object_preserves_key_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn error_carries_offset() {
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let raw = "say \"hi\"\n\ttab\\slash\u{1}";
        let doc = format!("\"{}\"", escape(raw));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(raw));
    }

    #[test]
    fn render_escapes_quotes_backslashes_and_control_chars() {
        let v = Value::String("a\"b\\c\nd\re\tf\u{1}g".to_owned());
        assert_eq!(v.render(), r#""a\"b\\c\nd\re\tf\u0001g""#);
        // And the rendered document parses back to the same value.
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn render_non_finite_floats_as_null() {
        assert_eq!(Value::Number(f64::NAN).render(), "null");
        assert_eq!(Value::Number(f64::INFINITY).render(), "null");
        assert_eq!(Value::Number(f64::NEG_INFINITY).render(), "null");
        let doc = obj([("peak", Value::Number(f64::NAN))]).render();
        assert_eq!(doc, r#"{"peak":null}"#);
        assert!(parse(&doc).is_ok(), "must stay valid JSON");
    }

    #[test]
    fn render_numbers_round_trip_exactly() {
        for n in [
            0.0,
            -0.0,
            1.5,
            -273.15,
            84.999_999_999_999_99,
            1e-12,
            9_007_199_254_740_993.0,
            f64::MIN_POSITIVE,
        ] {
            let rendered = Value::Number(n).render();
            let back = parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), n.to_bits(), "{n} -> {rendered}");
        }
    }

    #[test]
    fn render_parse_round_trips_nested_documents() {
        let v = obj([
            ("name", "tac\u{fc}25d \"serve\"".into()),
            ("ok", true.into()),
            ("nothing", Value::Null),
            (
                "values",
                Value::Array(vec![1.25.into(), Value::Null, "x\\y".into()]),
            ),
            ("nested", obj([("k", 42u64.into())])),
        ]);
        let doc = v.render();
        assert_eq!(parse(&doc).unwrap(), v);
        // Key order survives the round trip (the serve determinism gate
        // compares responses byte for byte).
        assert_eq!(parse(&doc).unwrap().render(), doc);
    }

    #[test]
    fn display_matches_render() {
        let v = obj([("a", 1u64.into())]);
        assert_eq!(format!("{v}"), v.render());
    }
}
