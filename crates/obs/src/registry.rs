//! Global metrics registry: named counters, gauges and log2 histograms.
//!
//! All metric handles are `Arc`-shared atomics; the registry itself is a
//! trio of `Mutex<BTreeMap>`s that is only locked on first registration of
//! a name (call sites cache the `Arc` in a `OnceLock`, see the `counter!`
//! family of macros in the crate root) and when exporting. The hot path —
//! `Counter::inc` under the crossbeam-parallel greedy — is a single
//! relaxed atomic add.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::escape;

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `k`
/// (1..=63) holds values in `[2^(k-1), 2^k - 1]`, bucket 64 is the
/// overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. When a request trace collector is installed on this
    /// thread ([`crate::trace`]), the delta is also attributed to the
    /// in-flight request; the untraced cost is one extra relaxed load.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
        crate::trace::on_counter_add(self as *const Counter as usize, n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests and per-run profile isolation).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge storing an `f64` as atomic bits.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Stores `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket log2 histogram of `u64` samples.
///
/// Bucket boundaries are powers of two, so `record` is branch-light:
/// a `leading_zeros` and one atomic add. Suited to iteration counts and
/// microsecond durations where ~2x resolution is plenty.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a sample: 0 → 0, otherwise `64 - leading_zeros`,
/// i.e. bucket `k` covers `[2^(k-1), 2^k - 1]`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the overflow
/// bucket).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i < 64 {
        (1u64 << i) - 1
    } else {
        u64::MAX
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Per-bucket counts.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Upper bound of the bucket containing the `p`-th percentile
    /// (`p` in 0..=100), i.e. the log2-quantized quantile. Returns 0 for
    /// an empty histogram.
    pub fn percentile_upper_bound(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, c) in self.bucket_counts().iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Resets all buckets (tests and per-run profile isolation).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Gets or creates the counter named `name` (convention:
/// `crate.component.metric`).
pub fn counter(name: &str) -> Arc<Counter> {
    let mut map = registry()
        .counters
        .lock()
        .expect("counter registry poisoned");
    Arc::clone(map.entry(name.to_owned()).or_default())
}

/// Gets or creates the gauge named `name`.
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut map = registry().gauges.lock().expect("gauge registry poisoned");
    Arc::clone(map.entry(name.to_owned()).or_default())
}

/// Gets or creates the histogram named `name`.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut map = registry()
        .histograms
        .lock()
        .expect("histogram registry poisoned");
    Arc::clone(map.entry(name.to_owned()).or_default())
}

/// Resolves a counter address (as passed to the trace hook) back to its
/// registered name. Registration is permanent, so a captured address is
/// stable for the process lifetime. Linear in registry size — callers
/// resolve at render time, never on the request hot path.
pub fn counter_name_of(addr: usize) -> Option<String> {
    let map = registry()
        .counters
        .lock()
        .expect("counter registry poisoned");
    map.iter()
        .find(|(_, c)| Arc::as_ptr(c) as usize == addr)
        .map(|(name, _)| name.clone())
}

/// Snapshot of all counters, sorted by name.
pub fn counter_snapshot() -> Vec<(String, u64)> {
    let map = registry()
        .counters
        .lock()
        .expect("counter registry poisoned");
    map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
}

/// Snapshot of all gauges, sorted by name.
pub fn gauge_snapshot() -> Vec<(String, f64)> {
    let map = registry().gauges.lock().expect("gauge registry poisoned");
    map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
}

/// Snapshot of all histograms, sorted by name:
/// `(name, bucket_counts, count, sum)`.
pub fn histogram_snapshot() -> Vec<(String, [u64; HISTOGRAM_BUCKETS], u64, u64)> {
    let map = registry()
        .histograms
        .lock()
        .expect("histogram registry poisoned");
    map.iter()
        .map(|(k, v)| (k.clone(), v.bucket_counts(), v.count(), v.sum()))
        .collect()
}

/// Sanitizes a metric name for the Prometheus text format
/// (`[a-zA-Z0-9_]`, everything else becomes `_`).
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders every registered metric in the Prometheus text exposition
/// format (counters, gauges, and cumulative histogram buckets with
/// `+Inf`, `_sum` and `_count` series).
pub fn prometheus_text() -> String {
    let mut out = String::new();
    for (name, value) in counter_snapshot() {
        let n = prom_name(&name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
    }
    for (name, value) in gauge_snapshot() {
        let n = prom_name(&name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
    }
    for (name, buckets, count, sum) in histogram_snapshot() {
        let n = prom_name(&name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cumulative = 0u64;
        for (i, c) in buckets.iter().enumerate() {
            cumulative += c;
            // Only emit buckets up to the last non-empty one; always
            // close with +Inf.
            if *c > 0 || i == 0 {
                let le = bucket_upper_bound(i);
                if le != u64::MAX {
                    out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                }
            }
        }
        out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {count}\n"));
        out.push_str(&format!("{n}_sum {sum}\n"));
        out.push_str(&format!("{n}_count {count}\n"));
    }
    out
}

/// Renders every registered metric as one JSON object:
/// `{"counters": {..}, "gauges": {..}, "histograms": {..}}`.
pub fn metrics_json() -> String {
    let mut out = String::from("{\"counters\":{");
    let counters = counter_snapshot();
    for (i, (name, value)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{value}", escape(name)));
    }
    out.push_str("},\"gauges\":{");
    let gauges = gauge_snapshot();
    for (i, (name, value)) in gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{value}", escape(name)));
    }
    out.push_str("},\"histograms\":{");
    let histograms = histogram_snapshot();
    for (i, (name, buckets, count, sum)) in histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"count\":{count},\"sum\":{sum},\"buckets\":[",
            escape(name)
        ));
        // Sparse finite buckets plus an explicit "+Inf" overflow
        // terminator, mirroring the profile writer's schema.
        let last = buckets.len() - 1;
        for (bi, c) in buckets.iter().take(last).enumerate() {
            if *c == 0 {
                continue;
            }
            let le = bucket_upper_bound(bi);
            out.push_str(&format!("{{\"le\":{le},\"n\":{c}}},"));
        }
        out.push_str(&format!("{{\"le\":\"+Inf\",\"n\":{}}}", buckets[last]));
        out.push_str("]}");
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_atomic_under_scoped_threads() {
        let c = counter("test.registry.atomic_counter");
        c.reset();
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    let c = counter("test.registry.atomic_counter");
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        })
        .expect("scope");
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_stores_last_value() {
        let g = gauge("test.registry.gauge");
        g.set(-3.25);
        assert_eq!(g.get(), -3.25);
        g.set(1e9);
        assert_eq!(g.get(), 1e9);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Each bucket's range is [upper_bound(i-1)+1, upper_bound(i)].
        for i in 1..64 {
            let lo = bucket_upper_bound(i - 1) + 1;
            let hi = bucket_upper_bound(i);
            assert_eq!(bucket_index(lo), i, "low edge of bucket {i}");
            assert_eq!(bucket_index(hi), i, "high edge of bucket {i}");
        }
    }

    #[test]
    fn histogram_counts_and_mean() {
        let h = histogram("test.registry.hist_mean");
        h.reset();
        for v in [0u64, 1, 2, 3, 4] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 10);
        assert_eq!(h.mean(), 2.0);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1); // 0
        assert_eq!(counts[1], 1); // 1
        assert_eq!(counts[2], 2); // 2, 3
        assert_eq!(counts[3], 1); // 4
    }

    #[test]
    fn counter_name_resolves_by_address() {
        let c = counter("test.registry.named_counter");
        let addr = Arc::as_ptr(&c) as usize;
        assert_eq!(
            counter_name_of(addr).as_deref(),
            Some("test.registry.named_counter")
        );
        assert_eq!(counter_name_of(0xdead_beef), None);
    }

    #[test]
    fn percentile_upper_bounds() {
        let h = histogram("test.registry.pctl_hist");
        h.reset();
        assert_eq!(h.percentile_upper_bound(50.0), 0);
        for v in [1u64, 2, 2, 3, 100] {
            h.record(v);
        }
        // Buckets: 1 → [1,1], 2/3 → [2,3], 100 → [64,127].
        assert_eq!(h.percentile_upper_bound(20.0), 1);
        assert_eq!(h.percentile_upper_bound(50.0), 3);
        assert_eq!(h.percentile_upper_bound(80.0), 3);
        assert_eq!(h.percentile_upper_bound(99.0), 127);
        assert_eq!(h.percentile_upper_bound(100.0), 127);
    }

    #[test]
    fn prometheus_text_formats_all_kinds() {
        counter("test.registry.prom_counter").reset();
        counter("test.registry.prom_counter").add(7);
        gauge("test.registry.prom_gauge").set(1.5);
        let h = histogram("test.registry.prom_hist");
        h.reset();
        h.record(3);
        let text = prometheus_text();
        assert!(text.contains("# TYPE test_registry_prom_counter counter"));
        assert!(text.contains("test_registry_prom_counter 7"));
        assert!(text.contains("# TYPE test_registry_prom_gauge gauge"));
        assert!(text.contains("test_registry_prom_gauge 1.5"));
        assert!(text.contains("# TYPE test_registry_prom_hist histogram"));
        assert!(text.contains("test_registry_prom_hist_bucket{le=\"3\"}"));
        assert!(text.contains("test_registry_prom_hist_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("test_registry_prom_hist_sum 3"));
        assert!(text.contains("test_registry_prom_hist_count 1"));
    }

    #[test]
    fn metrics_json_is_valid_json() {
        counter("test.registry.json_counter").add(1);
        gauge("test.registry.json_gauge").set(2.0);
        histogram("test.registry.json_hist").record(5);
        let doc = metrics_json();
        let v = crate::json::parse(&doc).expect("exporter output parses");
        assert!(v
            .get("counters")
            .and_then(|c| c.get("test.registry.json_counter"))
            .and_then(crate::json::Value::as_f64)
            .is_some_and(|n| n >= 1.0));
        let hist = v
            .get("histograms")
            .and_then(|h| h.get("test.registry.json_hist"))
            .expect("histogram present");
        assert!(hist
            .get("count")
            .and_then(crate::json::Value::as_f64)
            .is_some_and(|n| n >= 1.0));
    }
}
