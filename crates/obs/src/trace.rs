//! Request-scoped trace collection.
//!
//! The global span aggregate ([`crate::span`]) folds every entry into one
//! process-wide tree, which is the right shape for a batch run but smears
//! concurrent daemon requests together. This module adds a **per-thread
//! collector**: a worker thread brackets one request with [`begin`] /
//! [`finish`], and while the collector is installed every `SpanGuard`
//! opened on that thread is recorded into a request-local span tree and
//! every `Counter::add` on that thread is accumulated as a request-local
//! delta (keyed by counter pointer; names are resolved lazily at render
//! time so the hot path never touches the registry lock).
//!
//! Cost model, in line with the ≤0.1% obs-off contract:
//!
//! - **No collector anywhere in the process:** `SpanGuard::enter` adds one
//!   relaxed atomic load + one thread-local bool read; `Counter::add` adds
//!   one relaxed atomic load. No clock reads, no allocation.
//! - **Collector on another thread:** same as above plus the thread-local
//!   bool read in `Counter::add` (the process-wide active count is
//!   non-zero, so the cheap global test no longer short-circuits).
//! - **Collector on this thread:** spans read the clock twice and push one
//!   node; counters update a small linear-probe vec (requests touch a
//!   handful of distinct counters, so linear scan beats hashing).
//!
//! The collector is independent of [`crate::enabled`]: a traced daemon
//! captures request span trees even when the global profile surface is
//! off, without paying for the global aggregate/sink.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use crate::json::{obj, Value};

/// Number of threads that currently have a collector installed. Checked
/// first (one relaxed load) so untraced processes skip the thread-local.
static ACTIVE_COLLECTORS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Cheap mirror of `CURRENT.is_some()` for the fast path.
    static TRACED: Cell<bool> = const { Cell::new(false) };
    static CURRENT: RefCell<Option<Box<TraceState>>> = const { RefCell::new(None) };
}

/// One node in a captured request span tree, in entry order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceNode {
    /// Span name as passed to `span!` (leaf name, not a `/`-joined path —
    /// nesting is explicit via `parent`).
    pub name: String,
    /// Index of the parent node in the capture, `None` for roots.
    pub parent: Option<usize>,
    /// Microseconds from `begin()` to span entry.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

struct TraceState {
    started: Instant,
    nodes: Vec<TraceNode>,
    /// Stack of open node indices (collector-local nesting).
    open: Vec<usize>,
    /// Per-counter deltas keyed by counter address (see
    /// [`crate::registry::counter_name_of`]).
    counters: Vec<(usize, u64)>,
}

/// A finished request capture: the span tree plus scoped counter deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCapture {
    /// Wall time between `begin()` and `finish()`, microseconds.
    pub wall_us: u64,
    /// Captured spans in entry order; parents precede children.
    pub nodes: Vec<TraceNode>,
    counters: Vec<(usize, u64)>,
}

/// Installs a collector on the current thread. Any capture already in
/// progress on this thread is discarded and restarted.
pub fn begin() {
    let state = Box::new(TraceState {
        started: Instant::now(),
        nodes: Vec::new(),
        open: Vec::new(),
        counters: Vec::new(),
    });
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        if cur.is_none() {
            ACTIVE_COLLECTORS.fetch_add(1, Ordering::Relaxed);
            TRACED.with(|t| t.set(true));
        }
        *cur = Some(state);
    });
}

/// Uninstalls the current thread's collector and returns its capture,
/// or `None` if [`begin`] was never called on this thread.
pub fn finish() -> Option<TraceCapture> {
    let state = CURRENT.with(|c| c.borrow_mut().take())?;
    ACTIVE_COLLECTORS.fetch_sub(1, Ordering::Relaxed);
    TRACED.with(|t| t.set(false));
    Some(TraceCapture {
        wall_us: state.started.elapsed().as_micros() as u64,
        nodes: state.nodes,
        counters: state.counters,
    })
}

/// Whether the current thread has a collector installed. One relaxed
/// atomic load when no thread does.
#[inline]
pub fn thread_traced() -> bool {
    ACTIVE_COLLECTORS.load(Ordering::Relaxed) != 0 && TRACED.with(Cell::get)
}

/// Span-entry hook, called by `SpanGuard::enter` only when
/// [`thread_traced`] already returned true.
pub(crate) fn on_span_open(name: &str) {
    CURRENT.with(|c| {
        if let Some(state) = c.borrow_mut().as_mut() {
            let parent = state.open.last().copied();
            let start_us = state.started.elapsed().as_micros() as u64;
            let idx = state.nodes.len();
            state.nodes.push(TraceNode {
                name: name.to_owned(),
                parent,
                start_us,
                dur_us: 0,
            });
            state.open.push(idx);
        }
    });
}

/// Span-exit hook, called by `SpanGuard::drop` for guards that were
/// entered while traced. Tolerates a collector swap between enter and
/// drop (the stale close is dropped on the floor).
pub(crate) fn on_span_close(elapsed_ns: u64) {
    CURRENT.with(|c| {
        if let Some(state) = c.borrow_mut().as_mut() {
            if let Some(idx) = state.open.pop() {
                state.nodes[idx].dur_us = elapsed_ns / 1_000;
            }
        }
    });
}

/// Counter hook, called by `Counter::add` with the counter's address.
/// The first check is a single relaxed load; everything past it only
/// runs on a traced thread.
#[inline]
pub(crate) fn on_counter_add(addr: usize, n: u64) {
    if ACTIVE_COLLECTORS.load(Ordering::Relaxed) == 0 || !TRACED.with(Cell::get) {
        return;
    }
    CURRENT.with(|c| {
        if let Some(state) = c.borrow_mut().as_mut() {
            if let Some(entry) = state.counters.iter_mut().find(|(a, _)| *a == addr) {
                entry.1 += n;
            } else {
                state.counters.push((addr, n));
            }
        }
    });
}

impl TraceCapture {
    /// Counter deltas with names resolved against the registry, sorted by
    /// name. Counters dropped from the registry since capture (never in
    /// practice — registration is permanent) are omitted.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .counters
            .iter()
            .filter_map(|&(addr, n)| crate::registry::counter_name_of(addr).map(|name| (name, n)))
            .collect();
        out.sort();
        out
    }

    /// Raw delta for one counter by registered name (0 if untouched).
    pub fn counter_delta(&self, name: &str) -> u64 {
        self.counters()
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, d)| d)
            .unwrap_or(0)
    }

    /// Indices of root nodes (spans with no captured parent).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].parent.is_none())
            .collect()
    }

    /// Renders the capture as a JSON value:
    /// `{"wall_us":..,"counters":{..},"spans":[nested tree]}`.
    pub fn to_json(&self) -> Value {
        let counters = obj(self
            .counters()
            .into_iter()
            .map(|(name, n)| (name, Value::Number(n as f64)))
            .collect::<Vec<_>>());
        let spans = Value::Array(
            self.roots()
                .into_iter()
                .map(|i| self.span_json(i))
                .collect(),
        );
        obj(vec![
            ("wall_us".to_owned(), Value::Number(self.wall_us as f64)),
            ("counters".to_owned(), counters),
            ("spans".to_owned(), spans),
        ])
    }

    fn span_json(&self, idx: usize) -> Value {
        let node = &self.nodes[idx];
        let children: Vec<Value> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].parent == Some(idx))
            .map(|i| self.span_json(i))
            .collect();
        let mut fields = vec![
            ("name".to_owned(), Value::String(node.name.clone())),
            ("start_us".to_owned(), Value::Number(node.start_us as f64)),
            ("dur_us".to_owned(), Value::Number(node.dur_us as f64)),
        ];
        if !children.is_empty() {
            fields.push(("children".to_owned(), Value::Array(children)));
        }
        obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanGuard;

    #[test]
    fn capture_records_span_tree_and_counters() {
        begin();
        {
            let _outer = SpanGuard::enter("test.trace.outer");
            crate::counter!("test.trace.cap_counter").add(3);
            {
                let _inner = SpanGuard::enter("test.trace.inner");
                crate::counter!("test.trace.cap_counter").add(2);
            }
        }
        let cap = finish().expect("capture");
        assert!(finish().is_none(), "finish is one-shot");
        assert_eq!(cap.nodes.len(), 2);
        assert_eq!(cap.nodes[0].name, "test.trace.outer");
        assert_eq!(cap.nodes[0].parent, None);
        assert_eq!(cap.nodes[1].name, "test.trace.inner");
        assert_eq!(cap.nodes[1].parent, Some(0));
        assert_eq!(cap.roots(), vec![0]);
        assert_eq!(cap.counter_delta("test.trace.cap_counter"), 5);
    }

    #[test]
    fn untraced_thread_captures_nothing() {
        assert!(!thread_traced());
        // Counter adds on an untraced thread must not leak into a
        // collector installed on a different thread.
        begin();
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(!thread_traced());
                let _g = SpanGuard::enter("test.trace.other_thread");
                crate::counter!("test.trace.other_counter").add(7);
            })
            .join()
            .expect("join");
        });
        let cap = finish().expect("capture");
        assert!(cap.nodes.is_empty(), "spans leaked: {:?}", cap.nodes);
        assert_eq!(cap.counter_delta("test.trace.other_counter"), 0);
    }

    #[test]
    fn capture_works_without_global_enable() {
        // Deliberately no force_enable(): the collector must see spans
        // even when the global aggregate is off. (Other tests in this
        // binary may have enabled obs — the stronger claim, "traced
        // spans skip the global aggregate", is span.rs's concern.)
        begin();
        {
            let _g = SpanGuard::enter("test.trace.no_global");
        }
        let cap = finish().expect("capture");
        assert_eq!(cap.nodes.len(), 1);
        assert!(cap.nodes[0].dur_us < 1_000_000);
    }

    #[test]
    fn begin_restarts_discarding_previous() {
        begin();
        crate::counter!("test.trace.restart_counter").add(9);
        begin();
        let cap = finish().expect("capture");
        assert_eq!(cap.counter_delta("test.trace.restart_counter"), 0);
        assert!(!thread_traced());
    }

    #[test]
    fn to_json_round_trips() {
        begin();
        {
            let _outer = SpanGuard::enter("test.trace.json_outer");
            let _inner = SpanGuard::enter("test.trace.json \"inner\"");
            crate::counter!("test.trace.json_counter").inc();
        }
        let cap = finish().expect("capture");
        let doc = cap.to_json().render();
        let parsed = crate::json::parse(&doc).expect("valid json");
        let spans = parsed
            .get("spans")
            .and_then(Value::as_array)
            .expect("spans");
        assert_eq!(spans.len(), 1);
        let child = spans[0]
            .get("children")
            .and_then(Value::as_array)
            .expect("children");
        assert_eq!(
            child[0].get("name").and_then(Value::as_str),
            Some("test.trace.json \"inner\"")
        );
        assert!(parsed
            .get("counters")
            .and_then(|c| c.get("test.trace.json_counter"))
            .is_some());
    }
}
