#![warn(missing_docs)]

//! # tac25d-cost
//!
//! The 2.5D manufacturing cost model of Stow et al. (ICCAD'16) as adopted by
//! *"Leveraging Thermally-Aware Chiplet Organization in 2.5D Systems to
//! Reclaim Dark Silicon"* (DATE 2018), Eqs. (1)–(4):
//!
//! 1. dies per wafer: `N = π·(φ/2)²/A − π·φ/√(2A)`;
//! 2. negative-binomial die yield: `Y = (1 + A·D₀/α)^(−α)`;
//! 3. per-die cost `C = C_wafer/(N·Y)` for CMOS dies and interposers;
//! 4. assembled 2.5D cost
//!    `C_2.5D = (n·C_chiplet + C_int + n·C_bond) / Y_bond^n`.
//!
//! ## A note on defect-density units
//!
//! Table II lists D₀ = 0.25/mm², but the paper's own worked example
//! ("increasing the single chip size from 20 mm × 20 mm to 40 mm × 40 mm
//! results in 27× higher cost") only reproduces if the yield formula takes
//! the die area in **cm²** — the conventional unit for defect densities.
//! This crate therefore expresses D₀ in defects/cm² (default 0.25) and
//! documents the discrepancy; see `defect_density_validates_27x_claim`.
//!
//! # Examples
//!
//! ```
//! use tac25d_cost::CostParams;
//!
//! let params = CostParams::paper();
//! let single_chip = params.single_chip_cost(18.0 * 18.0);
//! let system = params.assembly_cost(16, 4.5 * 4.5, 20.0 * 20.0);
//! // A minimal-interposer 16-chiplet system saves ≈36% (paper Sec. V-B).
//! assert!(system.total() < 0.7 * single_chip);
//! ```

use serde::{Deserialize, Serialize};

/// Computes dies per wafer (Eq. (1)): the wafer-area term minus the edge
/// loss term. Both the numerator geometry and the √2 edge correction follow
/// the paper verbatim.
///
/// Returns 0 when the die is too large for any to fit.
///
/// # Panics
///
/// Panics if `wafer_diameter_mm` or `die_area_mm2` is not strictly positive.
pub fn dies_per_wafer(wafer_diameter_mm: f64, die_area_mm2: f64) -> f64 {
    assert!(wafer_diameter_mm > 0.0, "wafer diameter must be positive");
    assert!(die_area_mm2 > 0.0, "die area must be positive");
    let r = wafer_diameter_mm / 2.0;
    let n = core::f64::consts::PI * r * r / die_area_mm2
        - core::f64::consts::PI * wafer_diameter_mm / (2.0 * die_area_mm2).sqrt();
    n.max(0.0)
}

/// Negative-binomial die yield (Eq. (2)): `(1 + A·D₀/α)^(−α)` with the die
/// area in mm² and D₀ in defects/cm² (see the module-level unit note).
///
/// # Panics
///
/// Panics if any argument is negative or `alpha` is zero.
pub fn die_yield(die_area_mm2: f64, defect_density_per_cm2: f64, alpha: f64) -> f64 {
    assert!(die_area_mm2 >= 0.0 && defect_density_per_cm2 >= 0.0);
    assert!(alpha > 0.0, "clustering parameter must be positive");
    let area_cm2 = die_area_mm2 / 100.0;
    (1.0 + area_cm2 * defect_density_per_cm2 / alpha).powf(-alpha)
}

/// All constants of the cost model (Table II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// CMOS wafer diameter, mm (300).
    pub wafer_diameter_mm: f64,
    /// Interposer wafer diameter, mm (300).
    pub interposer_wafer_diameter_mm: f64,
    /// CMOS wafer cost, dollars (5000).
    pub cmos_wafer_cost: f64,
    /// Interposer wafer cost, dollars (500 — older 65 nm process).
    pub interposer_wafer_cost: f64,
    /// Defect density D₀ in defects/cm² (0.25; see unit note).
    pub defect_density_per_cm2: f64,
    /// Defect clustering parameter α (3).
    pub clustering_alpha: f64,
    /// Interposer yield (0.98; passive interposers yield high).
    pub interposer_yield: f64,
    /// Per-chiplet bonding yield (0.99, applied serially).
    pub bond_yield: f64,
    /// Per-chiplet bonding cost, dollars. Not quantified in the paper
    /// (cited to [27]); chosen so the minimum-interposer 2.5D systems save
    /// ≈36% versus the single chip, the paper's headline cost number.
    pub bond_cost: f64,
}

impl CostParams {
    /// The paper's Table II constants.
    pub fn paper() -> Self {
        CostParams {
            wafer_diameter_mm: 300.0,
            interposer_wafer_diameter_mm: 300.0,
            cmos_wafer_cost: 5000.0,
            interposer_wafer_cost: 500.0,
            defect_density_per_cm2: 0.25,
            clustering_alpha: 3.0,
            interposer_yield: 0.98,
            bond_yield: 0.99,
            bond_cost: 0.125,
        }
    }

    /// Returns a copy with a different defect density (the Fig. 3(a) sweep).
    pub fn with_defect_density(mut self, d0_per_cm2: f64) -> Self {
        self.defect_density_per_cm2 = d0_per_cm2;
        self
    }

    /// Cost of one good CMOS die of the given area (Eq. (3), left form).
    ///
    /// # Panics
    ///
    /// Panics if the die does not fit on the wafer.
    pub fn cmos_die_cost(&self, die_area_mm2: f64) -> f64 {
        let n = dies_per_wafer(self.wafer_diameter_mm, die_area_mm2);
        assert!(
            n > 0.0,
            "die of {die_area_mm2} mm² does not fit on the wafer"
        );
        let y = die_yield(
            die_area_mm2,
            self.defect_density_per_cm2,
            self.clustering_alpha,
        );
        self.cmos_wafer_cost / (n * y)
    }

    /// Cost of one good interposer of the given area (Eq. (3), right form).
    ///
    /// # Panics
    ///
    /// Panics if the interposer does not fit on the wafer.
    pub fn interposer_cost(&self, area_mm2: f64) -> f64 {
        let n = dies_per_wafer(self.interposer_wafer_diameter_mm, area_mm2);
        assert!(
            n > 0.0,
            "interposer of {area_mm2} mm² does not fit on the wafer"
        );
        self.interposer_wafer_cost / (n * self.interposer_yield)
    }

    /// Cost of a monolithic single-chip system (`C_2D`).
    pub fn single_chip_cost(&self, die_area_mm2: f64) -> f64 {
        self.cmos_die_cost(die_area_mm2)
    }

    /// Full assembled 2.5D system cost (Eq. (4)) for `n` chiplets of
    /// `chiplet_area_mm2` each on an interposer of `interposer_area_mm2`,
    /// assuming known good dies.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn assembly_cost(
        &self,
        n: u32,
        chiplet_area_mm2: f64,
        interposer_area_mm2: f64,
    ) -> CostBreakdown {
        assert!(n > 0, "a 2.5D system needs at least one chiplet");
        let chiplets = f64::from(n) * self.cmos_die_cost(chiplet_area_mm2);
        let interposer = self.interposer_cost(interposer_area_mm2);
        let bonding = f64::from(n) * self.bond_cost;
        let assembly_yield = self.bond_yield.powi(n as i32);
        CostBreakdown {
            chiplets,
            interposer,
            bonding,
            assembly_yield,
        }
    }
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams::paper()
    }
}

/// Itemized 2.5D system cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Known-good-die cost of all chiplets, dollars.
    pub chiplets: f64,
    /// Interposer cost, dollars.
    pub interposer: f64,
    /// Bonding process cost, dollars.
    pub bonding: f64,
    /// Overall assembly yield `Y_bond^n` dividing the total.
    pub assembly_yield: f64,
}

impl CostBreakdown {
    /// Total system cost (Eq. (4)).
    pub fn total(&self) -> f64 {
        (self.chiplets + self.interposer + self.bonding) / self.assembly_yield
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dies_per_wafer_decreases_with_area() {
        let n_small = dies_per_wafer(300.0, 81.0);
        let n_big = dies_per_wafer(300.0, 324.0);
        assert!(n_small > 4.0 * n_big * 0.9, "{n_small} vs {n_big}");
        assert!(n_big > 150.0 && n_big < 200.0, "18x18 chip: {n_big}");
    }

    #[test]
    fn huge_die_yields_zero_dies() {
        assert_eq!(dies_per_wafer(300.0, 300.0 * 300.0), 0.0);
    }

    #[test]
    fn yield_is_probability_and_monotonic() {
        let y1 = die_yield(81.0, 0.25, 3.0);
        let y2 = die_yield(324.0, 0.25, 3.0);
        assert!(y1 > y2, "bigger dies yield worse");
        assert!((0.0..=1.0).contains(&y1) && (0.0..=1.0).contains(&y2));
        assert_eq!(die_yield(0.0, 0.25, 3.0), 1.0);
    }

    #[test]
    fn defect_density_validates_27x_claim() {
        // Paper Sec. III-C: a 40×40 mm chip costs 27× a 20×20 mm chip at
        // the Table II parameters. This pins down the cm² unit convention.
        let p = CostParams::paper();
        let ratio = p.single_chip_cost(1600.0) / p.single_chip_cost(400.0);
        assert!(
            (25.0..=30.0).contains(&ratio),
            "cost ratio {ratio:.1}, paper says 27x"
        );
    }

    #[test]
    fn minimal_interposer_16_chiplets_saves_about_36_percent() {
        // Paper Sec. V-B: "With the minimum interposer size, the system
        // cost decreases by 36%".
        let p = CostParams::paper();
        let c2d = p.single_chip_cost(324.0);
        let c = p.assembly_cost(16, 4.5 * 4.5, 400.0).total();
        let saving = 1.0 - c / c2d;
        assert!(
            (0.32..=0.40).contains(&saving),
            "16-chiplet minimal saving {saving:.3}, paper says 0.36"
        );
    }

    #[test]
    fn minimal_interposer_4_chiplets_saves_30_to_42_percent() {
        // Paper Sec. III-B / Fig. 3(a): 30–42% saving across D₀ 0.20–0.30.
        for d0 in [0.20, 0.25, 0.30] {
            let p = CostParams::paper().with_defect_density(d0);
            let c2d = p.single_chip_cost(324.0);
            let c = p.assembly_cost(4, 81.0, 400.0).total();
            let saving = 1.0 - c / c2d;
            assert!(
                (0.25..=0.45).contains(&saving),
                "D0={d0}: saving {saving:.3}"
            );
        }
    }

    #[test]
    fn equivalent_25d_system_cheaper_than_grown_single_chip() {
        // Paper Sec. III-C: 4 chiplets + 40×40 interposer is ~27% cheaper
        // than a 20×20 single chip, and the interposer is ~30% of its cost.
        let p = CostParams::paper();
        let single_20 = p.single_chip_cost(400.0);
        let sys = p.assembly_cost(4, 100.0, 1600.0);
        let saving = 1.0 - sys.total() / single_20;
        assert!(
            (0.15..=0.40).contains(&saving),
            "saving {saving:.3}, paper says ≈0.27"
        );
        let int_share = sys.interposer / (sys.total() * sys.assembly_yield);
        assert!(
            (0.20..=0.40).contains(&int_share),
            "interposer share {int_share:.3}, paper says ≈0.30"
        );
    }

    #[test]
    fn cost_increases_with_interposer_size() {
        let p = CostParams::paper();
        let mut last = 0.0;
        for edge in [20.0, 30.0, 40.0, 50.0] {
            let c = p.assembly_cost(16, 20.25, edge * edge).total();
            assert!(c > last, "cost must grow with interposer edge {edge}");
            last = c;
        }
    }

    #[test]
    fn sixty_four_chiplets_uneconomical_from_bonding_yield() {
        // Paper Sec. III-C: bonding yield makes high chiplet counts costly.
        let p = CostParams::paper();
        let c2d = p.single_chip_cost(324.0);
        let c64 = p.assembly_cost(64, 324.0 / 64.0, 400.0).total();
        assert!(
            c64 > 0.9 * c2d,
            "64-chiplet ({c64:.1}) should approach/exceed single chip ({c2d:.1})"
        );
    }

    #[test]
    fn higher_defect_density_saves_more() {
        // Fig. 3(a): the saving is higher for larger defect density.
        let saving = |d0: f64| {
            let p = CostParams::paper().with_defect_density(d0);
            1.0 - p.assembly_cost(4, 81.0, 400.0).total() / p.single_chip_cost(324.0)
        };
        assert!(saving(0.30) > saving(0.25));
        assert!(saving(0.25) > saving(0.20));
    }

    #[test]
    fn breakdown_total_divides_by_assembly_yield() {
        let b = CostBreakdown {
            chiplets: 30.0,
            interposer: 5.0,
            bonding: 1.0,
            assembly_yield: 0.9,
        };
        assert!((b.total() - 36.0 / 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_interposer_rejected() {
        let p = CostParams::paper();
        let _ = p.interposer_cost(300.0 * 300.0);
    }
}
