//! Monte Carlo validation of the negative-binomial yield model (Eq. (2)).
//!
//! The negative-binomial yield formula is the exact zero-defect
//! probability of a compound process: the local defect density is
//! Gamma(α, D₀/α)-distributed across dies (clustering), and defect counts
//! are Poisson given the density. Simulating that process directly must
//! reproduce `(1 + A·D₀/α)^(−α)` — a ground-truth check that the closed
//! form (and our unit conventions) encode the physics we claim.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tac25d_cost::die_yield;

/// Samples Gamma(k, θ) for integer k as a sum of exponentials.
fn sample_gamma_int(rng: &mut StdRng, k: u32, theta: f64) -> f64 {
    (0..k).map(|_| -theta * (1.0 - rng.gen::<f64>()).ln()).sum()
}

#[test]
fn negative_binomial_yield_matches_compound_poisson_simulation() {
    let alpha = 3u32;
    let d0_per_cm2 = 0.25;
    let mut rng = StdRng::seed_from_u64(20260705);
    for area_mm2 in [81.0, 324.0, 900.0] {
        let area_cm2 = area_mm2 / 100.0;
        let trials = 200_000;
        let mut good = 0u64;
        for _ in 0..trials {
            // Die-local defect density, then zero-defect Bernoulli via the
            // Poisson zero-class probability.
            let lambda =
                sample_gamma_int(&mut rng, alpha, d0_per_cm2 / f64::from(alpha)) * area_cm2;
            if rng.gen::<f64>() < (-lambda).exp() {
                good += 1;
            }
        }
        let simulated = good as f64 / trials as f64;
        let analytic = die_yield(area_mm2, d0_per_cm2, f64::from(alpha));
        let se = (analytic * (1.0 - analytic) / trials as f64).sqrt();
        assert!(
            (simulated - analytic).abs() < 5.0 * se + 1e-4,
            "area {area_mm2} mm²: simulated {simulated:.4} vs analytic {analytic:.4} (5σ = {:.4})",
            5.0 * se
        );
    }
}

#[test]
fn clustering_helps_yield_at_high_defect_counts() {
    // With the same mean defect density, clustered defects (small α) waste
    // fewer dies than Poisson defects (α → ∞): both analytically and in
    // simulation.
    let d0 = 0.5;
    let area = 900.0;
    let clustered = die_yield(area, d0, 1.0);
    let smoother = die_yield(area, d0, 10.0);
    let poisson_limit = (-area / 100.0 * d0).exp();
    assert!(clustered > smoother);
    assert!(smoother > poisson_limit);
}
