//! Property-based tests of the cost model.

use proptest::prelude::*;
use tac25d_cost::{die_yield, dies_per_wafer, CostParams};

proptest! {
    /// Yield is a probability, monotone decreasing in area and defect
    /// density.
    #[test]
    fn yield_monotonicity(
        a1 in 1.0..2000.0f64,
        da in 1.0..500.0f64,
        d0 in 0.01..1.0f64,
        dd in 0.01..0.5f64,
    ) {
        let y = die_yield(a1, d0, 3.0);
        prop_assert!((0.0..=1.0).contains(&y));
        prop_assert!(die_yield(a1 + da, d0, 3.0) < y);
        prop_assert!(die_yield(a1, d0 + dd, 3.0) < y);
    }

    /// Dies per wafer decreases with die area and is non-negative.
    #[test]
    fn dies_per_wafer_monotone(a in 1.0..5000.0f64, da in 1.0..1000.0f64) {
        let n1 = dies_per_wafer(300.0, a);
        let n2 = dies_per_wafer(300.0, a + da);
        prop_assert!(n1 >= n2);
        prop_assert!(n2 >= 0.0);
    }

    /// Per-die cost is monotone increasing in area (bigger dies are always
    /// more expensive — the yield and count terms compound).
    #[test]
    fn die_cost_monotone_in_area(a in 10.0..1000.0f64, da in 1.0..200.0f64) {
        let p = CostParams::paper();
        prop_assert!(p.cmos_die_cost(a + da) > p.cmos_die_cost(a));
    }

    /// Splitting a chip into chiplets always cuts the silicon cost term
    /// (the whole economic premise of 2.5D integration).
    #[test]
    fn chipletization_cuts_silicon_cost(area in 100.0..900.0f64, n in 2u32..32) {
        let p = CostParams::paper();
        let whole = p.cmos_die_cost(area);
        let split = f64::from(n) * p.cmos_die_cost(area / f64::from(n));
        prop_assert!(split < whole, "n={n}: {split} vs {whole}");
    }

    /// Assembled system cost is monotone in interposer area and in chiplet
    /// count overheads.
    #[test]
    fn assembly_monotone(
        int_area in 400.0..2500.0f64,
        d_area in 1.0..500.0f64,
    ) {
        let p = CostParams::paper();
        let c1 = p.assembly_cost(16, 20.25, int_area).total();
        let c2 = p.assembly_cost(16, 20.25, int_area + d_area).total();
        prop_assert!(c2 > c1);
    }

    /// The assembly yield divisor equals bond_yield^n exactly.
    #[test]
    fn assembly_yield_power_law(n in 1u32..64) {
        let p = CostParams::paper();
        let b = p.assembly_cost(n, 5.0, 400.0);
        prop_assert!((b.assembly_yield - 0.99f64.powi(n as i32)).abs() < 1e-12);
    }
}
