//! Closed-loop dynamic thermal management (DTM) simulation.
//!
//! The paper's related work (Sec. II) covers *runtime* mitigations — DVFS
//! throttling [2], thermally-safe power budgeting [6] — and argues they
//! "are not able to maximize the performance". This module makes the
//! comparison executable: a hysteretic DVFS governor reads the peak die
//! temperature periodically and steps the voltage/frequency level down when
//! a trigger is crossed (up again below the release point), while the
//! transient solver advances the package state. The achieved average IPS
//! shows exactly how much performance throttling leaves on the table — and
//! how a thermally-aware 2.5D organization, which rarely triggers, keeps
//! it.

use crate::allocation::mintemp_active_cores;
use crate::evaluator::EvalError;
use crate::system::SystemSpec;
use tac25d_floorplan::organization::ChipletLayout;
use tac25d_floorplan::raster::place_cores;
use tac25d_floorplan::units::Celsius;
use tac25d_power::benchmarks::Benchmark;
use tac25d_power::perf::system_ips;
use tac25d_thermal::model::{PackageModel, ThermalError};

/// Hysteretic DVFS governor parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtmPolicy {
    /// Step one VF level down when the sensed peak exceeds this.
    pub trigger: Celsius,
    /// Step one VF level up when the sensed peak falls below this.
    pub release: Celsius,
    /// Sensor sampling / governor period, seconds.
    pub period_s: f64,
}

impl Default for DtmPolicy {
    fn default() -> Self {
        DtmPolicy {
            trigger: Celsius(84.0),
            release: Celsius(78.0),
            period_s: 0.2,
        }
    }
}

/// Result of a DTM run.
#[derive(Debug, Clone)]
pub struct DtmResult {
    /// Time-average aggregate IPS over the run.
    pub avg_ips: f64,
    /// IPS at the nominal (unthrottled) level, for reference.
    pub nominal_ips: f64,
    /// Fraction of time spent below the nominal VF level.
    pub throttled_fraction: f64,
    /// Highest sensed peak temperature.
    pub peak: Celsius,
    /// Number of governor level changes.
    pub transitions: usize,
    /// Deepest VF-ladder level the governor reached (0 = nominal). Always
    /// `< points.len()`: the governor clamps at the ladder's slowest point
    /// instead of stepping off it.
    pub max_level: usize,
}

impl DtmResult {
    /// Performance retained versus running unthrottled at nominal
    /// (1.0 = DTM never had to throttle).
    pub fn retention(&self) -> f64 {
        self.avg_ips / self.nominal_ips
    }
}

/// Simulates `duration_s` of a benchmark under the DTM governor on an
/// organization, starting from ambient.
///
/// # Errors
///
/// Propagates layout/thermal errors.
///
/// # Panics
///
/// Panics if the policy is inconsistent (release ≥ trigger or non-positive
/// period) or `p` is out of range.
pub fn simulate_dtm(
    spec: &SystemSpec,
    layout: &ChipletLayout,
    benchmark: Benchmark,
    p: u16,
    policy: &DtmPolicy,
    duration_s: f64,
) -> Result<DtmResult, EvalError> {
    assert!(
        policy.release.value() < policy.trigger.value(),
        "hysteresis requires release < trigger"
    );
    assert!(policy.period_s > 0.0 && duration_s > policy.period_s);
    let stack = if layout.is_single_chip() {
        &spec.stack_2d
    } else {
        &spec.stack_25d
    };
    let model = PackageModel::new(&spec.chip, layout, &spec.rules, stack, spec.thermal.clone())
        .map_err(|e| match e {
            ThermalError::Layout(l) => EvalError::Layout(l),
            other => EvalError::Thermal(other),
        })?;
    let placed = place_cores(&spec.chip, layout, &spec.rules)?;
    let active = mintemp_active_cores(&spec.chip, p);
    let profile = benchmark.profile();
    let points = spec.vf.points();

    let steps = (duration_s / policy.period_s).ceil() as usize;
    // Governor state, updated inside the power-map closure from the sensed
    // (previous-step) temperature field — a true closed loop.
    let level = std::cell::Cell::new(0usize); // 0 = nominal
    let max_level = std::cell::Cell::new(0usize);
    let transitions = std::cell::Cell::new(0usize);
    let throttled_steps = std::cell::Cell::new(0usize);
    let ips_acc = std::cell::Cell::new(0.0f64);
    let trace = model
        .simulate_transient(
            None,
            |_, _, sensed| {
                // Sense and react before applying this step's power.
                if let Some(state) = sensed {
                    let peak = state.peak();
                    let lvl = level.get();
                    if peak.value() > policy.trigger.value() && lvl + 1 < points.len() {
                        level.set(lvl + 1);
                        transitions.set(transitions.get() + 1);
                    } else if peak.value() < policy.release.value() && lvl > 0 {
                        level.set(lvl - 1);
                        transitions.set(transitions.get() + 1);
                    }
                }
                let lvl = level.get();
                max_level.set(max_level.get().max(lvl));
                let op = points[lvl];
                if lvl > 0 {
                    throttled_steps.set(throttled_steps.get() + 1);
                }
                ips_acc.set(ips_acc.get() + system_ips(&profile, op, p).0);
                active
                    .iter()
                    .map(|c| {
                        let rect = placed[c.0 as usize].rect;
                        (
                            rect,
                            spec.core_power.active_power(&profile, op, Celsius(80.0)),
                        )
                    })
                    .collect()
            },
            policy.period_s,
            steps,
        )
        .map_err(EvalError::Thermal)?;

    let nominal_ips = system_ips(&profile, points[0], p).0;
    Ok(DtmResult {
        avg_ips: ips_acc.get() / steps as f64,
        nominal_ips,
        throttled_fraction: throttled_steps.get() as f64 / steps as f64,
        peak: Celsius(
            trace
                .samples
                .iter()
                .map(|s| s.peak.value())
                .fold(f64::NEG_INFINITY, f64::max),
        ),
        transitions: transitions.get(),
        max_level: max_level.get(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac25d_floorplan::units::Mm;

    fn spec() -> SystemSpec {
        let mut s = SystemSpec::fast();
        s.thermal.grid = 16;
        s
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn cool_system_never_throttles() {
        let spec = spec();
        let r = simulate_dtm(
            &spec,
            &ChipletLayout::Uniform {
                r: 4,
                gap: Mm(10.0),
            },
            Benchmark::Canneal,
            192,
            &DtmPolicy::default(),
            20.0,
        )
        .unwrap();
        assert_eq!(
            r.throttled_fraction, 0.0,
            "canneal on a wide 2.5D never throttles"
        );
        assert!((r.retention() - 1.0).abs() < 1e-12);
        assert_eq!(r.transitions, 0);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn hot_single_chip_throttles_and_loses_performance() {
        let spec = spec();
        let r = simulate_dtm(
            &spec,
            &ChipletLayout::SingleChip,
            Benchmark::Shock,
            256,
            &DtmPolicy::default(),
            60.0,
        )
        .unwrap();
        assert!(
            r.throttled_fraction > 0.3,
            "throttled {}",
            r.throttled_fraction
        );
        assert!(r.retention() < 0.95, "retention {}", r.retention());
        assert!(r.transitions >= 1);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn thermally_aware_organization_retains_more_performance() {
        // The paper's thesis in the dynamic setting: under the same DTM
        // governor, the 2.5D organization keeps more of the nominal IPS.
        let spec = spec();
        let chip = simulate_dtm(
            &spec,
            &ChipletLayout::SingleChip,
            Benchmark::Cholesky,
            256,
            &DtmPolicy::default(),
            40.0,
        )
        .unwrap();
        let chiplets = simulate_dtm(
            &spec,
            &ChipletLayout::Uniform { r: 4, gap: Mm(8.0) },
            Benchmark::Cholesky,
            256,
            &DtmPolicy::default(),
            40.0,
        )
        .unwrap();
        assert!(
            chiplets.retention() > chip.retention(),
            "2.5D {} vs 2D {}",
            chiplets.retention(),
            chip.retention()
        );
    }

    #[test]
    fn governor_clamps_at_the_bottom_of_the_vf_ladder() {
        // An absurdly low trigger keeps the sensed peak above it on every
        // sample, so the governor descends one level per period — and must
        // stop *at* the slowest ladder point, never past it.
        let spec = spec();
        let ladder = spec.vf.points().len();
        let r = simulate_dtm(
            &spec,
            &ChipletLayout::SingleChip,
            Benchmark::Shock,
            256,
            &DtmPolicy {
                trigger: Celsius(30.0),
                release: Celsius(29.0),
                period_s: 0.2,
            },
            3.0,
        )
        .unwrap();
        assert_eq!(
            r.max_level,
            ladder - 1,
            "descent must clamp at the last ladder level"
        );
        assert_eq!(
            r.transitions,
            ladder - 1,
            "one transition per level on a monotonic descent, then none"
        );
        assert!(r.throttled_fraction > 0.5);
        assert!(r.retention() < 1.0);
    }

    #[test]
    fn governor_never_leaves_nominal_when_trigger_is_unreachable() {
        // Dual invariant: a trigger above any physical temperature keeps
        // the governor pinned at level 0 (it cannot step above nominal).
        let spec = spec();
        let r = simulate_dtm(
            &spec,
            &ChipletLayout::SingleChip,
            Benchmark::Canneal,
            32,
            &DtmPolicy {
                trigger: Celsius(500.0),
                release: Celsius(499.0),
                period_s: 0.2,
            },
            3.0,
        )
        .unwrap();
        assert_eq!(r.max_level, 0);
        assert_eq!(r.transitions, 0);
        assert_eq!(r.throttled_fraction, 0.0);
        assert!((r.retention() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "release < trigger")]
    fn inconsistent_policy_rejected() {
        let spec = spec();
        let _ = simulate_dtm(
            &spec,
            &ChipletLayout::SingleChip,
            Benchmark::Canneal,
            32,
            &DtmPolicy {
                trigger: Celsius(80.0),
                release: Celsius(85.0),
                period_s: 0.1,
            },
            1.0,
        );
    }
}
