//! Reusable design-space sweeps — the library form of the paper's Figs.
//! 3(b), 5 and 6, so downstream users can regenerate (and extend) those
//! studies without going through the experiment binaries.

use crate::evaluator::{EvalError, Evaluator};
use crate::objective::Weights;
use crate::optimizer::{
    best_at_edge, interposer_edges, ChipletCount, OptimizeError, PlacementSearch,
};
use serde::{Deserialize, Serialize};
use tac25d_floorplan::organization::ChipletLayout;
use tac25d_floorplan::units::{Celsius, Mm};
use tac25d_power::benchmarks::Benchmark;

/// One point of a uniform-spacing sweep (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpacingPoint {
    /// Uniform gap between adjacent chiplets.
    pub gap: Mm,
    /// Interposer edge implied by the gap.
    pub interposer_edge: Mm,
    /// Peak temperature with all cores active at the given operating
    /// point (leakage-converged).
    pub peak: Celsius,
    /// Whether the organization meets the spec's threshold.
    pub feasible: bool,
}

/// Sweeps uniform chiplet spacing for one benchmark and chiplet grid
/// (all cores active at the nominal point — the Fig. 5 protocol).
///
/// Gaps producing interposers beyond the packaging cap are skipped.
///
/// # Errors
///
/// Propagates evaluation errors.
///
/// # Panics
///
/// Panics if `r` does not divide the chip's core grid or `max_gap`/`step`
/// are not positive.
pub fn uniform_spacing_sweep(
    ev: &Evaluator,
    benchmark: Benchmark,
    r: u16,
    max_gap: Mm,
    step: Mm,
) -> Result<Vec<SpacingPoint>, EvalError> {
    assert!(max_gap.value() > 0.0 && step.value() > 0.0);
    let spec = ev.spec();
    assert!(
        spec.chip.divisible_by(r),
        "r = {r} does not divide the core grid"
    );
    let op = spec.vf.nominal();
    let p = spec.chip.core_count();
    let mut out = Vec::new();
    let mut gap = 0.0;
    while gap <= max_gap.value() + 1e-9 {
        let layout = ChipletLayout::Uniform { r, gap: Mm(gap) };
        let edge = layout
            .interposer_edge(&spec.chip, &spec.rules)
            .expect("uniform layouts have interposers");
        if edge.value() > spec.rules.max_interposer.value() + 1e-9 {
            break;
        }
        let e = ev.evaluate(&layout, benchmark, op, p)?;
        out.push(SpacingPoint {
            gap: Mm(gap),
            interposer_edge: edge,
            peak: e.peak,
            feasible: e.feasible(spec.threshold),
        });
        gap += step.value();
    }
    Ok(out)
}

/// The first (smallest) uniform gap meeting the spec's threshold, if any.
pub fn threshold_crossing(points: &[SpacingPoint]) -> Option<Mm> {
    points.iter().find(|p| p.feasible).map(|p| p.gap)
}

/// One point of a max-performance-vs-size curve (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfCostPoint {
    /// Interposer edge.
    pub edge: Mm,
    /// Best feasible IPS at this edge, normalized to the baseline (`None`
    /// when no (f, p, placement) is feasible).
    pub normalized_perf: Option<f64>,
    /// System cost normalized to the baseline.
    pub normalized_cost: f64,
}

/// Sweeps interposer sizes for one benchmark and chiplet count, reporting
/// the best feasible normalized IPS and the normalized cost at each edge
/// (the Fig. 6 curves).
///
/// # Errors
///
/// Propagates optimizer errors (including a missing baseline).
pub fn perf_cost_sweep(
    ev: &Evaluator,
    benchmark: Benchmark,
    count: ChipletCount,
    search: PlacementSearch,
    seed: u64,
) -> Result<Vec<PerfCostPoint>, OptimizeError> {
    let spec = ev.spec();
    let chiplet_area = {
        let wc = spec.chip.edge().value() / f64::from(count.r());
        wc * wc
    };
    let baseline_cost = spec.cost.single_chip_cost(spec.chip.area().value());
    let mut out = Vec::new();
    for edge in interposer_edges(ev) {
        let cost = spec
            .cost
            .assembly_cost(count.n(), chiplet_area, edge.value() * edge.value())
            .total();
        let best = best_at_edge(
            ev,
            benchmark,
            Weights::performance_only(),
            count,
            edge,
            search,
            seed,
        )?;
        out.push(PerfCostPoint {
            edge,
            normalized_perf: best.map(|b| b.normalized_perf),
            normalized_cost: cost / baseline_cost,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemSpec;

    fn evaluator() -> Evaluator {
        let mut spec = SystemSpec::fast();
        spec.thermal.grid = 16;
        spec.edge_step = Mm(5.0);
        Evaluator::new(spec)
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn spacing_sweep_is_monotone_decreasing() {
        let ev = evaluator();
        let pts = uniform_spacing_sweep(&ev, Benchmark::Cholesky, 4, Mm(8.0), Mm(2.0)).unwrap();
        assert!(pts.len() >= 4);
        for w in pts.windows(2) {
            assert!(
                w[1].peak <= w[0].peak,
                "peak must fall with spacing: {:?}",
                w
            );
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn crossing_matches_feasibility_flags() {
        let ev = evaluator();
        let pts = uniform_spacing_sweep(&ev, Benchmark::Hpccg, 4, Mm(10.0), Mm(1.0)).unwrap();
        match threshold_crossing(&pts) {
            Some(gap) => {
                for p in &pts {
                    if p.gap.value() < gap.value() {
                        assert!(!p.feasible);
                    }
                }
            }
            None => assert!(pts.iter().all(|p| !p.feasible)),
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn spacing_sweep_respects_interposer_cap() {
        let ev = evaluator();
        // r=16 chiplets: max gap before the 50 mm cap is ~2 mm.
        let pts = uniform_spacing_sweep(&ev, Benchmark::Canneal, 16, Mm(10.0), Mm(0.5)).unwrap();
        assert!(pts.iter().all(|p| p.interposer_edge.value() <= 50.0 + 1e-9));
        assert!(pts.last().expect("non-empty").gap.value() <= 2.5);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn perf_cost_sweep_monotone_cost_and_step_perf() {
        let ev = evaluator();
        let pts = perf_cost_sweep(
            &ev,
            Benchmark::Hpccg,
            ChipletCount::Sixteen,
            PlacementSearch::MultiStartGreedy { starts: 10 },
            42,
        )
        .unwrap();
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[1].normalized_cost > w[0].normalized_cost);
            if let (Some(a), Some(b)) = (w[0].normalized_perf, w[1].normalized_perf) {
                assert!(b >= a - 1e-9, "perf never falls with size");
            }
        }
    }
}
