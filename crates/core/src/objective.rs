//! The optimization objective of Eq. (5):
//!
//! `minimize  α · IPS_2D / IPS_2.5D(f, p)  +  β · C_2.5D(n, s1, s2, s3) / C_2D`
//!
//! Both terms are normalized to the single-chip baseline; α and β are
//! unit-less designer weights.

use serde::{Deserialize, Serialize};
use tac25d_power::perf::Ips;

/// The designer weights (α, β) of Eq. (5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    /// Performance weight α.
    pub alpha: f64,
    /// Cost weight β.
    pub beta: f64,
}

impl Weights {
    /// Creates a weight pair.
    ///
    /// # Panics
    ///
    /// Panics if either weight is negative or both are zero.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha >= 0.0 && beta >= 0.0, "weights must be non-negative");
        assert!(alpha + beta > 0.0, "at least one weight must be positive");
        Weights { alpha, beta }
    }

    /// α = 1, β = 0 — pure performance maximization (Fig. 8's setting).
    pub fn performance_only() -> Self {
        Weights::new(1.0, 0.0)
    }

    /// α = 0, β = 1 — pure cost minimization.
    pub fn cost_only() -> Self {
        Weights::new(0.0, 1.0)
    }

    /// α = β = 0.5 — the balanced point of Fig. 7.
    pub fn balanced() -> Self {
        Weights::new(0.5, 0.5)
    }
}

impl Default for Weights {
    fn default() -> Self {
        Weights::performance_only()
    }
}

/// Evaluates Eq. (5) for a candidate with performance `ips` and cost
/// `cost_25d`, normalized to the baseline `ips_2d` / `cost_2d`.
///
/// # Panics
///
/// Panics if any performance or cost is not strictly positive.
pub fn objective_value(w: Weights, ips_2d: Ips, ips: Ips, cost_25d: f64, cost_2d: f64) -> f64 {
    assert!(ips_2d.0 > 0.0 && ips.0 > 0.0, "IPS must be positive");
    assert!(cost_25d > 0.0 && cost_2d > 0.0, "costs must be positive");
    w.alpha * (ips_2d.0 / ips.0) + w.beta * (cost_25d / cost_2d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_only_ignores_cost() {
        let w = Weights::performance_only();
        let a = objective_value(w, Ips(100.0), Ips(200.0), 1.0, 1.0);
        let b = objective_value(w, Ips(100.0), Ips(200.0), 99.0, 1.0);
        assert_eq!(a, b);
        assert!((a - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cost_only_ignores_performance() {
        let w = Weights::cost_only();
        let a = objective_value(w, Ips(100.0), Ips(1.0), 32.0, 64.0);
        assert!((a - 0.5).abs() < 1e-12);
    }

    #[test]
    fn balanced_averages_both_terms() {
        let w = Weights::balanced();
        // perf ratio 2 (inverse 0.5), cost ratio 0.64.
        let v = objective_value(w, Ips(1.0), Ips(2.0), 0.64, 1.0);
        assert!((v - 0.5 * (0.5 + 0.64)).abs() < 1e-12);
    }

    #[test]
    fn faster_and_cheaper_scores_lower() {
        let w = Weights::balanced();
        let worse = objective_value(w, Ips(1.0), Ips(1.0), 1.0, 1.0);
        let better = objective_value(w, Ips(1.0), Ips(1.5), 0.8, 1.0);
        assert!(better < worse);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn zero_weights_rejected() {
        let _ = Weights::new(0.0, 0.0);
    }
}
