//! Transient system evaluation: peak temperature of a *phased* workload on
//! a chiplet organization, via the thermal crate's backward-Euler solver.
//!
//! The steady-state flow (paper Sec. IV) conservatively holds every active
//! core at its phase-peak power forever. Real workloads breathe (the paper
//! samples Sniper statistics every 1 ms); duty-cycled phases let the
//! package's thermal mass absorb bursts, so the *transient* peak sits
//! between the average-power and peak-power steady states. This module
//! quantifies that headroom.

use crate::allocation::mintemp_active_cores;
use crate::evaluator::EvalError;
use crate::system::SystemSpec;
use tac25d_floorplan::organization::ChipletLayout;
use tac25d_floorplan::raster::place_cores;
use tac25d_floorplan::units::Celsius;
use tac25d_power::dvfs::OperatingPoint;
use tac25d_power::phases::PhasedWorkload;
use tac25d_thermal::model::{PackageModel, ThermalError};

/// Result of a transient workload evaluation.
#[derive(Debug, Clone)]
pub struct TransientEvaluation {
    /// Highest peak temperature observed over the simulated horizon.
    pub peak: Celsius,
    /// Peak temperature of the equivalent *constant-peak-power* steady
    /// state (what the paper's flow would check against the threshold).
    pub steady_peak: Celsius,
    /// Peak temperature of the *average-power* steady state (the lower
    /// bound the duty cycle could at best achieve).
    pub average_peak: Celsius,
    /// Simulated horizon, seconds.
    pub horizon_s: f64,
}

impl TransientEvaluation {
    /// The fraction of the burst headroom (steady-peak minus average-peak)
    /// that the package's thermal mass absorbed.
    pub fn headroom_absorbed(&self) -> f64 {
        let span = self.steady_peak.value() - self.average_peak.value();
        if span <= 0.0 {
            return 0.0;
        }
        ((self.steady_peak.value() - self.peak.value()) / span).clamp(0.0, 1.0)
    }
}

/// Simulates `periods` repetitions of a phased workload on an organization
/// and reports the transient peak against both steady-state bounds.
///
/// The simulation starts from the average-power steady state (a long-running
/// system's natural operating point) and steps at `dt_s`.
///
/// # Errors
///
/// Propagates layout/thermal errors.
///
/// # Panics
///
/// Panics if `dt_s` or `periods` is not positive, or `p` is out of range.
pub fn evaluate_transient(
    spec: &SystemSpec,
    layout: &ChipletLayout,
    workload: &PhasedWorkload,
    op: OperatingPoint,
    p: u16,
    dt_s: f64,
    periods: usize,
) -> Result<TransientEvaluation, EvalError> {
    assert!(periods > 0, "need at least one period");
    let stack = if layout.is_single_chip() {
        &spec.stack_2d
    } else {
        &spec.stack_25d
    };
    let model = PackageModel::new(&spec.chip, layout, &spec.rules, stack, spec.thermal.clone())
        .map_err(|e| match e {
            ThermalError::Layout(l) => EvalError::Layout(l),
            other => EvalError::Thermal(other),
        })?;
    let placed = place_cores(&spec.chip, layout, &spec.rules)?;
    let active = mintemp_active_cores(&spec.chip, p);
    let profile = workload.benchmark.profile();
    // Power maps at a representative temperature (transient leakage
    // coupling is second-order for the headroom question).
    let t_ref = Celsius(75.0);
    let sources_at = |activity: f64| -> Vec<_> {
        active
            .iter()
            .map(|c| {
                let rect = placed[c.0 as usize].rect;
                let dynamic = spec.core_power.dynamic(&profile, op) * activity;
                let leak = spec.core_power.active_power(&profile, op, t_ref)
                    - spec.core_power.dynamic(&profile, op);
                (rect, dynamic + leak)
            })
            .collect()
    };

    let steady_peak = model
        .solve(&sources_at(1.0))
        .map_err(EvalError::Thermal)?
        .peak();
    let avg_sources = sources_at(workload.average_activity());
    let average_state = model.solve(&avg_sources).map_err(EvalError::Thermal)?;
    let average_peak = average_state.peak();

    let horizon = workload.period() * periods as f64;
    let steps = (horizon / dt_s).ceil() as usize;
    let trace = model
        .simulate_transient(
            Some(&average_state),
            |_, t, _| sources_at(workload.activity_at(t)),
            dt_s,
            steps.max(1),
        )
        .map_err(EvalError::Thermal)?;
    let peak = trace
        .samples
        .iter()
        .map(|s| s.peak.value())
        .fold(f64::NEG_INFINITY, f64::max);
    Ok(TransientEvaluation {
        peak: Celsius(peak),
        steady_peak,
        average_peak,
        horizon_s: horizon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac25d_floorplan::units::Mm;
    use tac25d_power::benchmarks::Benchmark;

    fn spec() -> SystemSpec {
        let mut s = SystemSpec::fast();
        s.thermal.grid = 16;
        s
    }

    #[test]
    fn headroom_is_always_a_fraction() {
        // Pure-struct invariant sweep: whatever the three temperatures —
        // overshoot past the steady bound, undershoot below average,
        // inverted or degenerate spans — headroom_absorbed stays in [0, 1].
        let cases = [
            (80.0, 90.0, 70.0), // in between: the normal case
            (95.0, 90.0, 70.0), // transient overshoot → clamps to 0
            (60.0, 90.0, 70.0), // below average → clamps to 1
            (80.0, 70.0, 70.0), // zero span → defined as 0
            (80.0, 60.0, 70.0), // inverted bounds → defined as 0
        ];
        for (peak, steady, avg) in cases {
            let e = TransientEvaluation {
                peak: Celsius(peak),
                steady_peak: Celsius(steady),
                average_peak: Celsius(avg),
                horizon_s: 1.0,
            };
            let h = e.headroom_absorbed();
            assert!(
                (0.0..=1.0).contains(&h),
                "headroom {h} out of [0,1] for peak={peak} steady={steady} avg={avg}"
            );
        }
        let mid = TransientEvaluation {
            peak: Celsius(80.0),
            steady_peak: Celsius(90.0),
            average_peak: Celsius(70.0),
            horizon_s: 1.0,
        };
        assert!((mid.headroom_absorbed() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duty_cycled_workload_headroom_is_a_fraction_end_to_end() {
        // Small-grid end-to-end check of the same invariant on a real
        // duty-cycled solve (fast enough for the debug profile).
        let mut spec = spec();
        spec.thermal.grid = 12;
        let w = PhasedWorkload::bursty(Benchmark::Shock, 2.0, 0.3, 0.1);
        let r = evaluate_transient(
            &spec,
            &ChipletLayout::SingleChip,
            &w,
            spec.vf.nominal(),
            128,
            0.5,
            1,
        )
        .unwrap();
        let h = r.headroom_absorbed();
        assert!((0.0..=1.0).contains(&h), "headroom {h} out of [0,1]");
        assert!(
            r.average_peak <= r.steady_peak,
            "average-power bound above the peak-power bound"
        );
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn steady_workload_matches_steady_state() {
        let spec = spec();
        let w = PhasedWorkload::steady(Benchmark::Hpccg);
        let r = evaluate_transient(
            &spec,
            &ChipletLayout::Uniform { r: 4, gap: Mm(4.0) },
            &w,
            spec.vf.nominal(),
            256,
            2.0,
            3,
        )
        .unwrap();
        // Constant activity: transient peak equals both bounds.
        assert!((r.peak.value() - r.steady_peak.value()).abs() < 0.5);
        assert!((r.average_peak.value() - r.steady_peak.value()).abs() < 1e-9);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn bursty_workload_sits_between_the_bounds() {
        let spec = spec();
        // 30% duty, 2-second period: thermal mass should absorb a good
        // share of the burst.
        let w = PhasedWorkload::bursty(Benchmark::Shock, 2.0, 0.3, 0.1);
        let r = evaluate_transient(
            &spec,
            &ChipletLayout::SingleChip,
            &w,
            spec.vf.nominal(),
            256,
            0.1,
            4,
        )
        .unwrap();
        assert!(
            r.peak > r.average_peak && r.peak < r.steady_peak,
            "avg {} < transient {} < steady {}",
            r.average_peak,
            r.peak,
            r.steady_peak
        );
        assert!(r.headroom_absorbed() > 0.1, "{}", r.headroom_absorbed());
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn slower_bursts_absorb_less() {
        // Longer periods let the die track the burst: transient peak moves
        // toward the steady peak.
        let spec = spec();
        let fast = evaluate_transient(
            &spec,
            &ChipletLayout::SingleChip,
            &PhasedWorkload::bursty(Benchmark::Shock, 1.0, 0.4, 0.1),
            spec.vf.nominal(),
            256,
            0.05,
            4,
        )
        .unwrap();
        let slow = evaluate_transient(
            &spec,
            &ChipletLayout::SingleChip,
            &PhasedWorkload::bursty(Benchmark::Shock, 60.0, 0.4, 0.1),
            spec.vf.nominal(),
            256,
            1.0,
            2,
        )
        .unwrap();
        assert!(
            slow.headroom_absorbed() < fast.headroom_absorbed(),
            "slow {} vs fast {}",
            slow.headroom_absorbed(),
            fast.headroom_absorbed()
        );
    }
}
