//! The top-level system specification: every model and constant of the
//! paper's evaluation framework (Fig. 4(b)) in one place.

use tac25d_cost::CostParams;
use tac25d_floorplan::chip::ChipSpec;
use tac25d_floorplan::layers::StackSpec;
use tac25d_floorplan::organization::PackageRules;
use tac25d_floorplan::units::{Celsius, Mm};
use tac25d_noc::mesh::NocModel;
use tac25d_power::corepower::CorePowerModel;
use tac25d_power::dvfs::{paper_core_counts, VfTable};
use tac25d_thermal::model::ThermalConfig;

/// Everything needed to evaluate and optimize chiplet organizations.
#[derive(Debug, Clone)]
pub struct SystemSpec {
    /// The 256-core example chip.
    pub chip: ChipSpec,
    /// Packaging rules (guard band, 50 mm interposer cap, 0.5 mm lattice).
    pub rules: PackageRules,
    /// Layer stack of 2.5D packages.
    pub stack_25d: StackSpec,
    /// Layer stack of the single-chip baseline.
    pub stack_2d: StackSpec,
    /// Thermal solver configuration.
    pub thermal: ThermalConfig,
    /// Manufacturing cost constants.
    pub cost: CostParams,
    /// Mesh NoC power model.
    pub noc: NocModel,
    /// Per-core power model.
    pub core_power: CorePowerModel,
    /// DVFS table.
    pub vf: VfTable,
    /// Active-core-count sweep.
    pub core_counts: Vec<u16>,
    /// Peak-temperature threshold (Eq. (6)); the paper's default is 85 °C.
    pub threshold: Celsius,
    /// Interposer-edge sweep range and step for the optimizer (paper:
    /// 20–50 mm at 0.5 mm).
    pub edge_min: Mm,
    /// Largest interposer edge considered.
    pub edge_max: Mm,
    /// Interposer-edge enumeration step.
    pub edge_step: Mm,
}

impl SystemSpec {
    /// The paper's configuration (64×64 thermal grid, full sweeps).
    pub fn paper() -> Self {
        SystemSpec {
            chip: ChipSpec::scc_256(),
            rules: PackageRules::default(),
            stack_25d: StackSpec::system_25d(),
            stack_2d: StackSpec::baseline_2d(),
            thermal: ThermalConfig::default(),
            cost: CostParams::paper(),
            noc: NocModel::paper(),
            core_power: CorePowerModel::default(),
            vf: VfTable::paper(),
            core_counts: paper_core_counts(),
            threshold: Celsius(85.0),
            edge_min: Mm(20.0),
            edge_max: Mm(50.0),
            edge_step: Mm(0.5),
        }
    }

    /// A faster configuration for optimizer inner loops, tests and quick
    /// sweeps: 32×32 thermal grid and a 1 mm interposer-edge lattice. Peak
    /// temperatures track the full configuration closely (cells are still
    /// much smaller than chiplets).
    pub fn fast() -> Self {
        SystemSpec {
            thermal: ThermalConfig::fast(),
            edge_step: Mm(1.0),
            ..SystemSpec::paper()
        }
    }

    /// Returns a copy with a different temperature threshold (the paper's
    /// sensitivity study spans 75–105 °C).
    pub fn with_threshold(mut self, t: Celsius) -> Self {
        self.threshold = t;
        self
    }
}

impl Default for SystemSpec {
    fn default() -> Self {
        SystemSpec::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_matches_paper_constants() {
        let s = SystemSpec::paper();
        assert_eq!(s.chip.core_count(), 256);
        assert_eq!(s.threshold, Celsius(85.0));
        assert_eq!(s.thermal.grid, 64);
        assert_eq!(s.vf.points().len(), 5);
        assert_eq!(s.core_counts.len(), 8);
        assert_eq!(s.edge_min, Mm(20.0));
        assert_eq!(s.edge_max, Mm(50.0));
    }

    #[test]
    fn fast_spec_coarsens_only_numerics() {
        let s = SystemSpec::fast();
        assert_eq!(s.thermal.grid, 32);
        assert_eq!(s.threshold, Celsius(85.0));
        assert_eq!(s.chip, ChipSpec::scc_256());
    }

    #[test]
    fn with_threshold_overrides() {
        let s = SystemSpec::paper().with_threshold(Celsius(105.0));
        assert_eq!(s.threshold, Celsius(105.0));
    }
}
