#![warn(missing_docs)]

//! # tac25d-core
//!
//! The thermally-aware chiplet organizer — the primary contribution of
//! *"Leveraging Thermally-Aware Chiplet Organization in 2.5D Systems to
//! Reclaim Dark Silicon"* (DATE 2018) — built on the workspace's substrate
//! crates (floorplan, thermal, power, noc, cost):
//!
//! * [`system`] — the complete system specification (Fig. 4(b));
//! * [`allocation`] — the Mintemp chessboard workload-allocation policy;
//! * [`evaluator`] — the closed organization → floorplan → power → thermal
//!   loop, memoized, with thermal-simulation accounting;
//! * [`objective`] — the Eq. (5) performance/cost objective;
//! * [`multiapp`] — shared-design optimization across applications
//!   (worst-case / average / weighted-average, Sec. IV);
//! * [`optimizer`] — candidate enumeration (steps 1–2) and the multi-start
//!   greedy / exhaustive placement search (step 3).
//!
//! # Examples
//!
//! Find the optimal 2.5D organization for a benchmark:
//!
//! ```no_run
//! use tac25d_core::prelude::*;
//!
//! let ev = Evaluator::new(SystemSpec::fast());
//! let result = optimize(&ev, Benchmark::Cholesky, &OptimizerConfig::default())?;
//! if let Some(best) = result.best {
//!     println!(
//!         "{} at {} with {} cores: {:.0}% faster than the single chip",
//!         best.layout,
//!         best.candidate.op,
//!         best.candidate.active_cores,
//!         (best.normalized_perf - 1.0) * 100.0,
//!     );
//! }
//! # Ok::<(), tac25d_core::optimizer::OptimizeError>(())
//! ```

pub mod allocation;
pub mod dtm;
pub mod evaluator;
pub mod multiapp;
pub mod objective;
pub mod optimizer;
pub mod sweeps;
pub mod system;
pub mod transient_eval;

/// Convenient glob-import of the crate's primary types (re-exporting the
/// benchmark enum, which appears in almost every call).
pub mod prelude {
    pub use crate::allocation::{
        active_cores, mintemp_active_cores, mintemp_order, AllocationPolicy,
    };
    pub use crate::dtm::{simulate_dtm, DtmPolicy, DtmResult};
    pub use crate::evaluator::{single_chip_baseline, Baseline, EvalError, Evaluation, Evaluator};
    pub use crate::multiapp::{optimize_multi_app, MultiAppPolicy, MultiAppResult};
    pub use crate::objective::{objective_value, Weights};
    pub use crate::optimizer::{
        best_at_edge, enumerate_candidates, find_placement, find_placement_with, interposer_edges,
        optimize, optimize_with_filter, Candidate, ChipletCount, Fidelity, OptimizeError,
        OptimizeResult, OptimizerConfig, Organization, PlacementSearch, SearchStats,
    };
    pub use crate::sweeps::{
        perf_cost_sweep, threshold_crossing, uniform_spacing_sweep, PerfCostPoint, SpacingPoint,
    };
    pub use crate::system::SystemSpec;
    pub use crate::transient_eval::{evaluate_transient, TransientEvaluation};
    pub use tac25d_power::benchmarks::Benchmark;
    pub use tac25d_surrogate::{Prediction as SurrogatePrediction, SurrogateConfig};
}
