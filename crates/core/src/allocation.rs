//! The Mintemp workload-allocation policy.
//!
//! The paper uses the Mintemp policy of Zhang et al. (DATE'14) [20]:
//! threads are assigned "starting from outer rows or columns and then moving
//! to inner rows or columns of the whole system in a chessboard manner",
//! which minimizes operating temperature by pushing active cores toward the
//! chip periphery and interleaving them.
//!
//! We realize that as a total priority order over the logical core grid:
//!
//! 1. primary key — the ring index (distance from the grid boundary),
//!    outermost first;
//! 2. secondary key — chessboard parity (`(row + col) % 2`), even cells of
//!    a ring before odd cells, so a half-filled ring forms a checkerboard;
//! 3. tertiary key — row-major position, for determinism.

use tac25d_floorplan::chip::{ChipSpec, CoreId};

/// Alternative workload-allocation policies, for ablation against Mintemp
/// (the paper adopts Mintemp from [20]; the `allocation_ablation`
/// experiment quantifies how much that choice matters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocationPolicy {
    /// The paper's policy: outer rings first, chessboard interleaved.
    Mintemp,
    /// Naive clustered fill in row-major core order (worst case: a solid
    /// hot block in one corner).
    Clustered,
    /// Inner rings first — the thermal anti-pattern.
    InnerFirst,
    /// Chessboard interleaving over the whole chip without ring ordering.
    Checkerboard,
}

/// Returns the `p` active cores chosen by `policy`.
///
/// # Panics
///
/// Panics if `p` is zero or exceeds the chip's core count.
pub fn active_cores(chip: &ChipSpec, p: u16, policy: AllocationPolicy) -> Vec<CoreId> {
    assert!(
        p > 0 && p <= chip.core_count(),
        "active core count {p} out of 1..={}",
        chip.core_count()
    );
    let n = chip.cores_per_row();
    let mut order: Vec<CoreId> = chip.cores().collect();
    match policy {
        AllocationPolicy::Mintemp => return mintemp_active_cores(chip, p),
        AllocationPolicy::Clustered => {}
        AllocationPolicy::InnerFirst => {
            order.sort_by_key(|&c| {
                let (row, col) = chip.core_position(c);
                let ring = row.min(col).min(n - 1 - row).min(n - 1 - col);
                (std::cmp::Reverse(ring), (row + col) % 2, row, col)
            });
        }
        AllocationPolicy::Checkerboard => {
            order.sort_by_key(|&c| {
                let (row, col) = chip.core_position(c);
                ((row + col) % 2, row, col)
            });
        }
    }
    order.truncate(p as usize);
    order.sort_unstable();
    order
}

/// Returns the `p` active cores chosen by the Mintemp policy.
///
/// # Panics
///
/// Panics if `p` is zero or exceeds the chip's core count.
pub fn mintemp_active_cores(chip: &ChipSpec, p: u16) -> Vec<CoreId> {
    assert!(
        p > 0 && p <= chip.core_count(),
        "active core count {p} out of 1..={}",
        chip.core_count()
    );
    let mut order = mintemp_order(chip);
    order.truncate(p as usize);
    order.sort_unstable();
    order
}

/// The full Mintemp priority order (all cores, highest priority first).
pub fn mintemp_order(chip: &ChipSpec) -> Vec<CoreId> {
    let n = chip.cores_per_row();
    let mut cores: Vec<CoreId> = chip.cores().collect();
    cores.sort_by_key(|&c| {
        let (row, col) = chip.core_position(c);
        let ring = row.min(col).min(n - 1 - row).min(n - 1 - col);
        let parity = (row + col) % 2;
        (ring, parity, row, col)
    });
    cores
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> ChipSpec {
        ChipSpec::scc_256()
    }

    #[test]
    fn full_allocation_is_all_cores() {
        let active = mintemp_active_cores(&chip(), 256);
        assert_eq!(active.len(), 256);
        let ids: Vec<u16> = active.iter().map(|c| c.0).collect();
        assert_eq!(ids, (0..256).collect::<Vec<_>>());
    }

    #[test]
    fn small_allocations_sit_on_the_outer_ring() {
        let chip = chip();
        // The outer ring has 60 cores; 32 active cores must all be on it.
        let active = mintemp_active_cores(&chip, 32);
        for &c in &active {
            let (row, col) = chip.core_position(c);
            let ring = row.min(col).min(15 - row).min(15 - col);
            assert_eq!(ring, 0, "core at ({row},{col}) not on outer ring");
        }
    }

    #[test]
    fn partial_ring_fill_is_chessboard() {
        let chip = chip();
        let active = mintemp_active_cores(&chip, 30);
        // 30 < 60 (ring size) and < 32 (even-parity cells of the ring + ...):
        // every selected core has even (row+col) parity.
        for &c in &active {
            let (row, col) = chip.core_position(c);
            assert_eq!(
                (row + col) % 2,
                0,
                "core at ({row},{col}) breaks chessboard"
            );
        }
    }

    #[test]
    fn allocation_grows_monotonically() {
        // The first p cores of a (p+k)-core allocation are the p-core set.
        let chip = chip();
        let order = mintemp_order(&chip);
        for p in [32u16, 64, 128, 192] {
            let small: std::collections::BTreeSet<_> =
                mintemp_active_cores(&chip, p).into_iter().collect();
            let prefix: std::collections::BTreeSet<_> =
                order.iter().copied().take(p as usize).collect();
            assert_eq!(small, prefix);
        }
    }

    #[test]
    fn outer_rings_fill_before_inner() {
        let chip = chip();
        // 128 actives: rings 0 (60) + 1 (52) = 112 fully used, 16 in ring 2.
        let active = mintemp_active_cores(&chip, 128);
        let mut per_ring = [0u16; 8];
        for &c in &active {
            let (row, col) = chip.core_position(c);
            let ring = row.min(col).min(15 - row).min(15 - col);
            per_ring[ring as usize] += 1;
        }
        assert_eq!(per_ring[0], 60);
        assert_eq!(per_ring[1], 52);
        assert_eq!(per_ring[2], 16);
        assert_eq!(per_ring[3..].iter().sum::<u16>(), 0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            mintemp_active_cores(&chip(), 100),
            mintemp_active_cores(&chip(), 100)
        );
    }

    #[test]
    #[should_panic(expected = "out of 1..=")]
    fn zero_cores_rejected() {
        let _ = mintemp_active_cores(&chip(), 0);
    }

    #[test]
    fn policy_mintemp_matches_direct_function() {
        let chip = chip();
        for p in [32u16, 100, 256] {
            assert_eq!(
                active_cores(&chip, p, AllocationPolicy::Mintemp),
                mintemp_active_cores(&chip, p)
            );
        }
    }

    #[test]
    fn clustered_fills_row_major() {
        let chip = chip();
        let a = active_cores(&chip, 48, AllocationPolicy::Clustered);
        let ids: Vec<u16> = a.iter().map(|c| c.0).collect();
        assert_eq!(ids, (0..48).collect::<Vec<_>>());
    }

    #[test]
    fn inner_first_picks_the_center() {
        let chip = chip();
        let a = active_cores(&chip, 4, AllocationPolicy::InnerFirst);
        for &c in &a {
            let (row, col) = chip.core_position(c);
            assert!(
                (6..=9).contains(&row) && (6..=9).contains(&col),
                "({row},{col})"
            );
        }
    }

    #[test]
    fn checkerboard_has_uniform_parity() {
        let chip = chip();
        let a = active_cores(&chip, 128, AllocationPolicy::Checkerboard);
        for &c in &a {
            let (row, col) = chip.core_position(c);
            assert_eq!((row + col) % 2, 0);
        }
    }

    #[test]
    fn all_policies_return_sorted_unique_sets() {
        let chip = chip();
        for policy in [
            AllocationPolicy::Mintemp,
            AllocationPolicy::Clustered,
            AllocationPolicy::InnerFirst,
            AllocationPolicy::Checkerboard,
        ] {
            let a = active_cores(&chip, 96, policy);
            assert_eq!(a.len(), 96);
            assert!(a.windows(2).all(|w| w[0] < w[1]), "{policy:?}");
        }
    }
}
