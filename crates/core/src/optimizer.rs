//! The thermally-aware chiplet-organization optimizer (paper Sec. III-D).
//!
//! Three steps, exactly as the paper describes:
//!
//! 1. compute the performance of all 40 (f, p) pairs (the performance model
//!    is analytic here) and the cost of the 4-/16-chiplet systems for all
//!    discretized interposer sizes;
//! 2. form every (f, p, C_2.5D) combination, score it with the Eq. (5)
//!    objective and sort ascending;
//! 3. walk the sorted list and, for each combination, search the spacing
//!    space for a placement that meets the temperature threshold — with the
//!    multi-start greedy by default, or exhaustively for validation. The
//!    first combination with a feasible placement is the optimum (its
//!    objective value lower-bounds everything after it).
//!
//! For a fixed manufacturing cost the interposer edge is fixed, so
//! `2·s1 + s3` is constant and the greedy moves inside that manifold: a
//! ±0.5 mm step on s1 implies a ∓1.0 mm step on s3 and vice versa, and s2
//! steps freely below the Eq. (10) bound (which, on the manifold, reduces
//! to `s2 ≤ (2·s1+s3)/2`). Neighbors are visited in random order and starts
//! are random, per the paper's footnote 2.
//!
//! Physics-based tie acceleration (on by default, disable for strict paper
//! equivalence): when many consecutive candidates share the same objective
//! value — e.g. every interposer size of one (f, p) pair under α = 1,
//! β = 0 — peak temperature is monotone non-increasing in the interposer
//! edge at fixed (f, p, n), so the smallest feasible edge inside the tie
//! run is found by binary search instead of trying each edge in turn. The
//! selected organization is identical; only the number of thermal
//! simulations drops.

use crate::evaluator::{single_chip_baseline_screened, Baseline, EvalError, Evaluation, Evaluator};
use crate::objective::{objective_value, Weights};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use tac25d_floorplan::organization::{symmetric4_for_edge, ChipletLayout, Spacing};
use tac25d_floorplan::units::{Celsius, Mm, Watts};
use tac25d_obs as obs;
use tac25d_power::benchmarks::Benchmark;
use tac25d_power::dvfs::OperatingPoint;
use tac25d_power::perf::Ips;
use tac25d_surrogate::analytic::{snap_to_lattice, AnalyticConfig, Manifold16};

/// The chiplet counts the paper optimizes over (Sec. III-C limits the
/// search to 4 and 16 for bonding-yield reasons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChipletCount {
    /// 2×2 chiplets.
    Four,
    /// 4×4 chiplets.
    Sixteen,
}

impl ChipletCount {
    /// Chiplets per row/column.
    pub fn r(self) -> u16 {
        match self {
            ChipletCount::Four => 2,
            ChipletCount::Sixteen => 4,
        }
    }

    /// Total chiplet count.
    pub fn n(self) -> u32 {
        u32::from(self.r()) * u32::from(self.r())
    }

    /// Both paper options.
    pub fn both() -> Vec<ChipletCount> {
        vec![ChipletCount::Four, ChipletCount::Sixteen]
    }
}

impl fmt::Display for ChipletCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-chiplet", self.n())
    }
}

/// How the per-candidate spacing space is searched.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlacementSearch {
    /// The paper's multi-start greedy with the given number of random
    /// starting points (paper default: 10).
    MultiStartGreedy {
        /// Random starting points per candidate.
        starts: usize,
    },
    /// Evaluate every lattice placement (the paper's validation baseline).
    Exhaustive,
    /// Simulated annealing over the same lattice — an ablation alternative
    /// to the greedy (accepts uphill moves with probability
    /// `exp(−ΔT_peak / temp)`, geometric cooling).
    SimulatedAnnealing {
        /// Total annealing moves.
        iterations: usize,
        /// Initial acceptance temperature in °C of peak-temperature
        /// difference (e.g. 10.0).
        initial_temp: f64,
    },
}

/// Prediction fidelity of the per-candidate spacing search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum Fidelity {
    /// Every probed placement is solved exactly — the paper-equivalent
    /// default, and what all paper-figure binaries use.
    #[default]
    Exact,
    /// Screen placements with the multi-fidelity thermal surrogate
    /// (requires an evaluator built by `Evaluator::with_surrogate`;
    /// silently degrades to exact otherwise). Greedy moves are ranked by
    /// the surrogate prediction; the exact solver runs only at predicted
    /// local minima within `threshold + guard_band_c` (candidate
    /// feasibility claims) and at untrusted predictions the raw kernel
    /// cannot screen — so any placement *reported feasible* is always
    /// exact-solver-backed. Screening
    /// applies to the multi-start greedy and the single 4-chiplet
    /// placement check; the exhaustive and annealing searches stay exact
    /// (they exist for validation).
    Surrogate {
        /// Exact-verification margin above the temperature threshold, °C.
        guard_band_c: f64,
    },
}

impl Fidelity {
    /// The surrogate fidelity with the default guard band.
    pub fn surrogate_default() -> Self {
        Fidelity::Surrogate { guard_band_c: 5.0 }
    }
}

/// Whether the analytic-gradient placement seeding phase runs before the
/// screened multi-start greedy (see the module docs and
/// `tac25d_surrogate::analytic`). Seeding only changes *where the search
/// starts* — every feasibility claim stays exact-solver-backed — and it
/// never applies to the exact, exhaustive or annealing paths, which exist
/// for paper-equivalence validation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum SeedMode {
    /// Follow the process environment: seeding is on unless
    /// `TAC25D_SEED_MODE` is set to `off` (or `0`).
    #[default]
    Auto,
    /// Seed regardless of the environment.
    On,
    /// Never seed — bit-for-bit the pre-seeding search (same RNG stream,
    /// same probe order).
    Off,
}

/// Reads the `TAC25D_SEED_MODE` escape hatch once per process: `off`/`0`
/// disables the seeding phase everywhere a config leaves it on `Auto`.
pub fn env_seed_mode_on() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("TAC25D_SEED_MODE")
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                v != "off" && v != "0"
            })
            .unwrap_or(true)
    })
}

impl SeedMode {
    /// Resolves the mode against the process environment.
    #[must_use]
    pub fn enabled(self) -> bool {
        match self {
            SeedMode::Auto => env_seed_mode_on(),
            SeedMode::On => true,
            SeedMode::Off => false,
        }
    }
}

impl OptimizerConfig {
    /// Whether this run uses the draft-then-verify pipeline: analytic
    /// seeds, raw-kernel draft ranking, the screened baseline walk and
    /// tie-run truncation. Requires surrogate fidelity, an attached
    /// surrogate and the seed mode on — so the exact paper path and the
    /// `TAC25D_SEED_MODE=off` hatch keep the legacy search bit-for-bit.
    fn draft(&self, ev: &Evaluator) -> bool {
        matches!(self.fidelity, Fidelity::Surrogate { .. })
            && self.seeding.enabled()
            && ev.surrogate().is_some()
    }
}

/// Optimizer configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Objective weights (α, β).
    pub weights: Weights,
    /// Spacing-search strategy.
    pub search: PlacementSearch,
    /// RNG seed (starts and neighbor order are randomized, footnote 2).
    pub seed: u64,
    /// Chiplet counts to consider.
    pub chiplet_counts: Vec<ChipletCount>,
    /// Binary-search interposer edges inside equal-objective candidate
    /// runs instead of trying each in turn (same answer, fewer thermal
    /// simulations; see the module docs).
    pub accelerate_ties: bool,
    /// Exact or surrogate-screened placement evaluation.
    pub fidelity: Fidelity,
    /// Analytic-gradient placement seeding for the screened greedy.
    pub seeding: SeedMode,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            weights: Weights::performance_only(),
            search: PlacementSearch::MultiStartGreedy { starts: 10 },
            seed: 42,
            chiplet_counts: ChipletCount::both(),
            accelerate_ties: true,
            fidelity: Fidelity::Exact,
            seeding: SeedMode::Auto,
        }
    }
}

impl OptimizerConfig {
    /// The default configuration with an explicit RNG seed. Every random
    /// choice of the search (start points, neighbor visit order, annealing
    /// moves) derives deterministically from this seed, so two runs with
    /// the same seed and spec produce identical organizations — the
    /// contract the golden-trace regression harness pins.
    pub fn with_seed(seed: u64) -> Self {
        OptimizerConfig {
            seed,
            ..OptimizerConfig::default()
        }
    }
}

/// One (f, p, C_2.5D) combination of the sorted candidate list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Chiplet count.
    pub count: ChipletCount,
    /// Interposer edge (determines C_2.5D together with `count`).
    pub edge: Mm,
    /// Operating point.
    pub op: OperatingPoint,
    /// Active core count.
    pub active_cores: u16,
    /// Performance at (f, p).
    pub ips: Ips,
    /// System manufacturing cost, dollars.
    pub cost: f64,
    /// Eq. (5) objective value.
    pub objective: f64,
}

/// A feasible optimized organization.
#[derive(Debug, Clone)]
pub struct Organization {
    /// The winning candidate.
    pub candidate: Candidate,
    /// The concrete placement found for it.
    pub layout: ChipletLayout,
    /// Peak temperature of that placement.
    pub peak: Celsius,
    /// Total power at convergence.
    pub total_power: Watts,
    /// IPS_2.5D / IPS_2D.
    pub normalized_perf: f64,
    /// C_2.5D / C_2D.
    pub normalized_cost: f64,
}

impl fmt::Display for Organization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {} with {} cores on {} interposer: {:+.1}% IPS, {:+.1}% cost, peak {:.1}°C",
            self.layout,
            self.candidate.op,
            self.candidate.active_cores,
            self.candidate.edge,
            (self.normalized_perf - 1.0) * 100.0,
            (self.normalized_cost - 1.0) * 100.0,
            self.peak.value()
        )
    }
}

/// Search bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Total candidates enumerated.
    pub candidates_total: usize,
    /// Candidates whose spacing space was actually searched.
    pub candidates_tried: usize,
    /// Candidates skipped by interposer-edge pruning.
    pub candidates_pruned: usize,
    /// Distinct thermal simulations spent by this search.
    pub thermal_sims: usize,
    /// Surrogate predictions served while screening placements.
    pub surrogate_predictions: usize,
    /// Placements skipped on a trusted too-hot prediction (no exact solve).
    pub surrogate_skips: usize,
    /// Placements with a trusted near-threshold prediction that were
    /// verified with the exact solver.
    pub surrogate_verifications: usize,
    /// Placements evaluated exactly because the surrogate declined or was
    /// untrusted (warm-up, off-manifold queries, uncovered layouts).
    pub surrogate_fallbacks: usize,
    /// Placements ranked by the uncorrected kernel during the draft
    /// descent (seed mode): no exact solve was paid and no feasibility
    /// was claimed — the descent's end point is exact-verified instead.
    pub surrogate_raw_ranked: usize,
    /// Largest |predicted − exact| peak-temperature gap observed across
    /// the verified placements, °C.
    pub surrogate_max_abs_error_c: f64,
    /// Sum of those gaps, °C (divide by `surrogate_verifications` for the
    /// mean; see [`SearchStats::surrogate_mean_abs_error_c`]).
    pub surrogate_abs_error_sum_c: f64,
}

impl SearchStats {
    /// Mean |predicted − exact| over the verified placements, °C
    /// (`None` before any verification).
    pub fn surrogate_mean_abs_error_c(&self) -> Option<f64> {
        (self.surrogate_verifications > 0)
            .then(|| self.surrogate_abs_error_sum_c / self.surrogate_verifications as f64)
    }
}

/// Result of an optimization run.
#[derive(Debug, Clone)]
pub struct OptimizeResult {
    /// The optimal organization, or `None` if no (f, p, C) combination has
    /// a feasible placement (the system cannot run under the threshold).
    pub best: Option<Organization>,
    /// The single-chip baseline used for normalization.
    pub baseline: Baseline,
    /// Search statistics.
    pub stats: SearchStats,
}

/// Optimizer errors.
#[derive(Debug)]
pub enum OptimizeError {
    /// An evaluation failed.
    Eval(EvalError),
    /// Even the single-chip baseline has no feasible operating point, so
    /// Eq. (5) cannot be normalized.
    NoBaseline(Benchmark),
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::Eval(e) => write!(f, "evaluation failed: {e}"),
            OptimizeError::NoBaseline(b) => {
                write!(f, "no feasible single-chip baseline for {b}")
            }
        }
    }
}

impl Error for OptimizeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OptimizeError::Eval(e) => Some(e),
            OptimizeError::NoBaseline(_) => None,
        }
    }
}

impl From<EvalError> for OptimizeError {
    fn from(e: EvalError) -> Self {
        OptimizeError::Eval(e)
    }
}

/// The discretized interposer-edge sweep of the system spec.
pub fn interposer_edges(ev: &Evaluator) -> Vec<Mm> {
    let spec = ev.spec();
    let mut edges = Vec::new();
    let mut e = spec.edge_min.value();
    while e <= spec.edge_max.value() + 1e-9 {
        edges.push(Mm(e));
        e += spec.edge_step.value();
    }
    edges
}

/// Enumerates and sorts all (f, p, C_2.5D) combinations for a benchmark
/// (steps 1–2 of the paper's flow). Requires a feasible baseline for
/// normalization.
///
/// # Errors
///
/// [`OptimizeError::NoBaseline`] if the single chip is infeasible at every
/// operating point; evaluation errors otherwise.
pub fn enumerate_candidates(
    ev: &Evaluator,
    benchmark: Benchmark,
    weights: Weights,
    counts: &[ChipletCount],
) -> Result<(Vec<Candidate>, Baseline), OptimizeError> {
    enumerate_candidates_screened(ev, benchmark, weights, counts, false)
}

/// [`enumerate_candidates`] with an optional tier-1 screen over the
/// single-chip baseline walk (see
/// [`crate::evaluator::single_chip_baseline_screened`]). The optimizer
/// enables the screen only for surrogate-fidelity seeded searches; the
/// exact paper path never sees it.
///
/// # Errors
///
/// See [`enumerate_candidates`].
pub fn enumerate_candidates_screened(
    ev: &Evaluator,
    benchmark: Benchmark,
    weights: Weights,
    counts: &[ChipletCount],
    screen_baseline: bool,
) -> Result<(Vec<Candidate>, Baseline), OptimizeError> {
    let baseline = single_chip_baseline_screened(ev, benchmark, screen_baseline)?
        .ok_or(OptimizeError::NoBaseline(benchmark))?;
    let spec = ev.spec();
    let chiplet_area = |c: ChipletCount| {
        let wc = spec.chip.edge().value() / f64::from(c.r());
        wc * wc
    };
    let mut out = Vec::new();
    for &count in counts {
        let area = chiplet_area(count);
        for edge in interposer_edges(ev) {
            // Feasible geometry: spacings must be non-negative.
            let min_edge = spec.chip.edge().value() + 2.0 * spec.rules.guard.value();
            if edge.value() < min_edge - 1e-9 {
                continue;
            }
            let cost = spec
                .cost
                .assembly_cost(count.n(), area, edge.value() * edge.value())
                .total();
            for &op in spec.vf.points() {
                for &p in &spec.core_counts {
                    let ips = ev.ips(benchmark, op, p);
                    let objective =
                        objective_value(weights, baseline.ips, ips, cost, baseline.cost);
                    out.push(Candidate {
                        count,
                        edge,
                        op,
                        active_cores: p,
                        ips,
                        cost,
                        objective,
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| {
        a.objective
            .partial_cmp(&b.objective)
            .expect("objective is finite")
            .then(a.cost.partial_cmp(&b.cost).expect("cost is finite"))
            .then(b.ips.partial_cmp(&a.ips).expect("IPS is finite"))
            .then(a.edge.partial_cmp(&b.edge).expect("edge is finite"))
    });
    Ok((out, baseline))
}

/// Lattice coordinates of a 16-chiplet placement with fixed interposer
/// edge: `s1 = s1u·step`, `s3 = (free − 2·s1u)·step`, `s2 = s2u·step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct LatticePoint {
    s1u: i64,
    s2u: i64,
}

fn lattice_spacing(pt: LatticePoint, free_units: i64, step: f64) -> Spacing {
    Spacing::new(
        pt.s1u as f64 * step,
        pt.s2u as f64 * step,
        (free_units - 2 * pt.s1u) as f64 * step,
    )
}

/// A greedy descent objective: converged exact peaks order normally and
/// non-converged (runaway) points sort last.
fn peak_of(e: &Evaluation) -> f64 {
    if e.converged {
        e.peak.value()
    } else {
        f64::INFINITY
    }
}

/// The two screening margins of surrogate fidelity (both in °C above the
/// feasibility threshold).
#[derive(Debug, Clone, Copy)]
struct Guards {
    /// Corrected-prediction margin: trusted predictions within it are
    /// exact-verified, hotter ones skipped.
    band: f64,
    /// Raw-kernel margin: even untrusted predictions hotter than it are
    /// skipped (the uncorrected superposition bias is far smaller).
    raw: f64,
}

/// Outcome of probing one placement under (possible) surrogate screening.
enum Probe {
    /// Exactly evaluated — the only outcome that can claim feasibility.
    Exact(Arc<Evaluation>),
    /// Skipped on a too-hot prediction.
    Skipped,
}

/// A feasible placement paired with its exact evaluation.
type Placed = (ChipletLayout, Arc<Evaluation>);

/// Draft-mode probe of one 4-chiplet candidate inside a tie run. Unlike
/// [`Probe`], it has a third outcome for clearly-cool predictions that the
/// edge binary search may treat as feasible without an exact solve — only
/// the search's final winner must be exact-confirmed before it can claim
/// feasibility.
enum DraftProbe {
    /// Exactly evaluated and feasible.
    Feasible(ChipletLayout, Arc<Evaluation>),
    /// Predicted at least one guard band *below* the threshold: feasible
    /// for search-steering purposes, pending exact confirmation.
    Provisional(ChipletLayout),
    /// Exactly infeasible, or predicted clearly above the threshold.
    Infeasible,
}

/// Outcome of the draft binary search over one 4-chiplet tie-run subgroup.
enum DraftSubgroup {
    /// Smallest feasible edge, exact-solver-backed.
    Winner(usize, ChipletLayout, Arc<Evaluation>),
    /// No feasible edge in the subgroup.
    Infeasible,
    /// A provisional winner failed exact confirmation, so the search
    /// history is tainted; the caller redoes the subgroup with exact
    /// probes (memoized evaluations keep the redo cheap).
    Refuted,
}

/// Probes one 4-chiplet candidate for the draft tie-run search: clearly
/// cool predictions return [`DraftProbe::Provisional`] without an exact
/// solve; everything near or above the threshold delegates to the regular
/// screened probe.
fn probe4_draft(
    ev: &Evaluator,
    benchmark: Benchmark,
    cand: &Candidate,
    threshold: Celsius,
    guard: Guards,
    stats: &mut SearchStats,
) -> Result<DraftProbe, EvalError> {
    let spec = ev.spec();
    let Some(s3) = symmetric4_for_edge(&spec.chip, &spec.rules, cand.edge) else {
        return Ok(DraftProbe::Infeasible);
    };
    let layout = ChipletLayout::Symmetric4 { s3 };
    if let Some(pred) = ev.predict_peak(&layout, benchmark, cand.op, cand.active_cores) {
        // Every Symmetric4 candidate is the kernel's 2x2 reference layout,
        // so even the raw superposition is corrector-grade here.
        let est = if pred.trusted {
            pred.corrected_peak_c
        } else {
            pred.raw_peak_c
        };
        if est <= threshold.value() - guard.band {
            stats.surrogate_predictions += 1;
            stats.surrogate_raw_ranked += 1;
            return Ok(DraftProbe::Provisional(layout));
        }
    }
    match probe_placement(
        ev,
        benchmark,
        cand.op,
        cand.active_cores,
        &layout,
        threshold,
        Some(guard),
        stats,
    )? {
        Probe::Exact(e) if e.feasible(threshold) => Ok(DraftProbe::Feasible(layout, e)),
        _ => Ok(DraftProbe::Infeasible),
    }
}

/// Binary-searches one 4-chiplet tie-run subgroup for its smallest
/// feasible edge using draft probes, exact-confirming a provisional
/// winner before claiming it. Feasibility is monotone in the edge, so a
/// provisional mid-probe that was wrong can only surface as the *final*
/// winner (any exact-feasible smaller edge would prove the mid feasible
/// too) — which the confirmation catches, returning
/// [`DraftSubgroup::Refuted`].
#[allow(clippy::too_many_arguments)]
fn resolve_four_subgroup_draft(
    ev: &Evaluator,
    benchmark: Benchmark,
    run: &[Candidate],
    indices: &[usize],
    threshold: Celsius,
    guard: Guards,
    evaluated: &mut usize,
    stats: &mut SearchStats,
) -> Result<DraftSubgroup, EvalError> {
    let last = *indices.last().expect("groups are non-empty");
    *evaluated += 1;
    let mut best = match probe4_draft(ev, benchmark, &run[last], threshold, guard, stats)? {
        DraftProbe::Infeasible => return Ok(DraftSubgroup::Infeasible),
        DraftProbe::Feasible(layout, eval) => (last, layout, Some(eval)),
        DraftProbe::Provisional(layout) => (last, layout, None),
    };
    let (mut lo, mut hi) = (0usize, indices.len() - 1);
    while lo < hi {
        let mid = (lo + hi) / 2;
        *evaluated += 1;
        match probe4_draft(ev, benchmark, &run[indices[mid]], threshold, guard, stats)? {
            DraftProbe::Feasible(layout, eval) => {
                best = (indices[mid], layout, Some(eval));
                hi = mid;
            }
            DraftProbe::Provisional(layout) => {
                best = (indices[mid], layout, None);
                hi = mid;
            }
            DraftProbe::Infeasible => lo = mid + 1,
        }
    }
    let (idx, layout, eval) = best;
    let eval = match eval {
        Some(e) => e,
        None => {
            stats.surrogate_fallbacks += 1;
            let e = ev.evaluate(&layout, benchmark, run[idx].op, run[idx].active_cores)?;
            if !e.feasible(threshold) {
                obs::counter!("optimizer.draft_refutes").inc();
                return Ok(DraftSubgroup::Refuted);
            }
            e
        }
    };
    Ok(DraftSubgroup::Winner(idx, layout, eval))
}

/// How many of the descender's distinct continuous optima are snapped to
/// the lattice and used as greedy starts.
const SEED_TOP_K: usize = 4;

/// Runs the analytic placement descender for one 16-chiplet candidate and
/// returns its top optima snapped to the spacing lattice, coolest proxy
/// first. Empty when the candidate's power map cannot be decomposed per
/// chiplet (the greedy then runs unseeded, bit-for-bit the legacy path).
///
/// The per-chiplet watts come from the same decomposition the surrogate
/// uses (mintemp active-core placement plus area-weighted NoC power),
/// evaluated once at a mid-manifold representative spacing — the power
/// split across chiplets is spacing-independent, only the NoC total moves
/// slightly, and the proxy needs the split, not the absolute watts.
fn analytic_seed_points(
    ev: &Evaluator,
    benchmark: Benchmark,
    candidate: &Candidate,
    free_units: i64,
    step: f64,
    s1_max: i64,
    s2_max: i64,
) -> Vec<LatticePoint> {
    let representative = LatticePoint {
        s1u: free_units / 4,
        s2u: free_units / 4,
    };
    let layout = ChipletLayout::Symmetric16 {
        spacing: lattice_spacing(representative, free_units, step),
    };
    let Some(input) = ev.surrogate_input(&layout, benchmark, candidate.op, candidate.active_cores)
    else {
        return Vec::new();
    };
    if input.active_per_chiplet.len() != 16 || input.noc_per_chiplet.len() != 16 {
        return Vec::new();
    }
    let spec = ev.spec();
    let profile = benchmark.profile();
    // Leakage is temperature-dependent; the threshold is as good a fixed
    // point as any — the proxy only needs the relative power split.
    let per_core = spec
        .core_power
        .active_power(&profile, candidate.op, spec.threshold);
    let mut watts = [0.0f64; 16];
    for (w, (active, noc)) in watts
        .iter_mut()
        .zip(input.active_per_chiplet.iter().zip(&input.noc_per_chiplet))
    {
        *w = f64::from(*active) * per_core + noc;
    }
    let manifold = Manifold16 {
        wc: spec.chip.edge().value() / 4.0,
        guard: spec.rules.guard.value(),
        free: free_units as f64 * step,
        watts,
    };
    obs::counter!("optimizer.analytic_descents").inc();
    let outcome = manifold.descend(&AnalyticConfig::default());
    obs::counter!("optimizer.analytic_grad_evals").add(outcome.grad_evals as u64);
    let snapped = snap_to_lattice(&outcome.optima, step, s1_max, s2_max, SEED_TOP_K);
    obs::counter!("optimizer.seeded_starts").add(snapped.len() as u64);
    snapped
        .into_iter()
        .map(|(s1u, s2u)| LatticePoint { s1u, s2u })
        .collect()
}

/// Probes one placement: exact solve, unless a surrogate prediction puts
/// it above the applicable guard band over the threshold.
#[allow(clippy::too_many_arguments)]
fn probe_placement(
    ev: &Evaluator,
    benchmark: Benchmark,
    op: OperatingPoint,
    p: u16,
    layout: &ChipletLayout,
    threshold: Celsius,
    guard: Option<Guards>,
    stats: &mut SearchStats,
) -> Result<Probe, EvalError> {
    obs::counter!("optimizer.moves_evaluated").inc();
    if let Some(guard) = guard {
        if let Some(pred) = ev.predict_peak(layout, benchmark, op, p) {
            stats.surrogate_predictions += 1;
            if pred.trusted {
                if pred.corrected_peak_c > threshold.value() + guard.band {
                    stats.surrogate_skips += 1;
                    return Ok(Probe::Skipped);
                }
                let e = ev.evaluate(layout, benchmark, op, p)?;
                stats.surrogate_verifications += 1;
                if e.converged {
                    let gap = (pred.corrected_peak_c - e.peak.value()).abs();
                    stats.surrogate_max_abs_error_c = stats.surrogate_max_abs_error_c.max(gap);
                    stats.surrogate_abs_error_sum_c += gap;
                }
                return Ok(Probe::Exact(e));
            }
            if pred.raw_peak_c > threshold.value() + guard.raw {
                stats.surrogate_skips += 1;
                return Ok(Probe::Skipped);
            }
            stats.surrogate_fallbacks += 1;
            return Ok(Probe::Exact(ev.evaluate(layout, benchmark, op, p)?));
        }
        stats.surrogate_fallbacks += 1;
    }
    Ok(Probe::Exact(ev.evaluate(layout, benchmark, op, p)?))
}

/// Searches the spacing space of one candidate for a placement meeting the
/// threshold. Returns the placement and its evaluation, or `None`.
/// Exact-fidelity convenience wrapper around [`find_placement_with`].
pub fn find_placement(
    ev: &Evaluator,
    benchmark: Benchmark,
    candidate: &Candidate,
    search: PlacementSearch,
    seed: u64,
) -> Result<Option<(ChipletLayout, Arc<Evaluation>)>, EvalError> {
    let cfg = OptimizerConfig {
        search,
        seed,
        ..OptimizerConfig::default()
    };
    find_placement_with(ev, benchmark, candidate, &cfg, &mut SearchStats::default())
}

/// Searches the spacing space of one candidate for a placement meeting the
/// threshold, honoring `cfg.fidelity` and accumulating surrogate-screening
/// counters into `stats`. Any returned placement is exact-solver-backed
/// regardless of fidelity.
pub fn find_placement_with(
    ev: &Evaluator,
    benchmark: Benchmark,
    candidate: &Candidate,
    cfg: &OptimizerConfig,
    stats: &mut SearchStats,
) -> Result<Option<(ChipletLayout, Arc<Evaluation>)>, EvalError> {
    let spec = ev.spec();
    let threshold = spec.threshold;
    let seed = cfg.seed;
    let guard = match (cfg.fidelity, ev.surrogate()) {
        (Fidelity::Surrogate { guard_band_c }, Some(s)) => Some(Guards {
            band: guard_band_c,
            raw: s.config().raw_guard_band_c.max(guard_band_c),
        }),
        _ => None,
    };
    match candidate.count {
        ChipletCount::Four => {
            let Some(s3) = symmetric4_for_edge(&spec.chip, &spec.rules, candidate.edge) else {
                return Ok(None);
            };
            let layout = ChipletLayout::Symmetric4 { s3 };
            // Every Symmetric4 candidate *is* the kernel's 2×2 reference
            // layout (a uniform grid at the candidate edge), so the raw
            // superposition there is corrector-grade. In draft/seed mode
            // the probe screens with the tight verification band instead
            // of the wide raw band — clearly-infeasible 4-chiplet
            // candidates stop paying an exact solve each.
            let guard = match guard {
                Some(g) if cfg.seeding.enabled() => Some(Guards {
                    band: g.band,
                    raw: g.band,
                }),
                other => other,
            };
            match probe_placement(
                ev,
                benchmark,
                candidate.op,
                candidate.active_cores,
                &layout,
                threshold,
                guard,
                stats,
            )? {
                Probe::Exact(e) => Ok(e.feasible(threshold).then_some((layout, e))),
                Probe::Skipped => Ok(None),
            }
        }
        ChipletCount::Sixteen => {
            let step = spec.rules.step.value();
            let wc = spec.chip.edge().value() / 4.0;
            let free = candidate.edge.value() - 4.0 * wc - 2.0 * spec.rules.guard.value();
            if free < -1e-9 {
                return Ok(None);
            }
            let free_units = (free / step).round() as i64;
            let s1_max = free_units / 2;
            let s2_max = free_units / 2; // Eq. (10) on the fixed-edge manifold
            let try_point =
                |pt: LatticePoint| -> Result<(ChipletLayout, Arc<Evaluation>), EvalError> {
                    obs::counter!("optimizer.moves_evaluated").inc();
                    let layout = ChipletLayout::Symmetric16 {
                        spacing: lattice_spacing(pt, free_units, step),
                    };
                    let e =
                        ev.evaluate(&layout, benchmark, candidate.op, candidate.active_cores)?;
                    Ok((layout, e))
                };
            match cfg.search {
                PlacementSearch::Exhaustive => {
                    // Any feasible placement is equally optimal for Eq. (5)
                    // — the objective depends only on (f, p, C), not on the
                    // spacing triple — so the scan stops at the first hit.
                    // Infeasible candidates still pay the full-lattice scan,
                    // which is exactly the cost the paper's greedy avoids.
                    for s1u in 0..=s1_max {
                        for s2u in 0..=s2_max {
                            let (layout, e) = try_point(LatticePoint { s1u, s2u })?;
                            if e.feasible(threshold) {
                                return Ok(Some((layout, e)));
                            }
                        }
                    }
                    Ok(None)
                }
                PlacementSearch::SimulatedAnnealing {
                    iterations,
                    initial_temp,
                } => {
                    assert!(iterations > 0, "annealing needs at least one move");
                    assert!(initial_temp > 0.0, "annealing temperature must be positive");
                    let salt = (candidate.edge.value() * 2.0) as u64
                        ^ ((candidate.op.freq_mhz as u64) << 16)
                        ^ (u64::from(candidate.active_cores) << 32);
                    let mut rng = StdRng::seed_from_u64(seed ^ salt ^ 0x5A5A);
                    let mut current = LatticePoint {
                        s1u: rng.gen_range(0..=s1_max),
                        s2u: rng.gen_range(0..=s2_max),
                    };
                    let (layout, e) = try_point(current)?;
                    if e.feasible(threshold) {
                        return Ok(Some((layout, e)));
                    }
                    let mut current_peak = peak_of(&e);
                    // Geometric cooling to ~1% of the initial temperature.
                    let cooling = 0.01f64.powf(1.0 / iterations as f64);
                    let mut temp = initial_temp;
                    for _ in 0..iterations {
                        let nb = LatticePoint {
                            s1u: (current.s1u + rng.gen_range(-1i64..=1)).clamp(0, s1_max),
                            s2u: (current.s2u + rng.gen_range(-1i64..=1)).clamp(0, s2_max),
                        };
                        if nb != current {
                            let (layout, e) = try_point(nb)?;
                            if e.feasible(threshold) {
                                return Ok(Some((layout, e)));
                            }
                            let delta = peak_of(&e) - current_peak;
                            if delta <= 0.0
                                || (delta.is_finite() && rng.gen::<f64>() < (-delta / temp).exp())
                            {
                                current = nb;
                                current_peak = peak_of(&e);
                            }
                        }
                        temp *= cooling;
                    }
                    Ok(None)
                }
                PlacementSearch::MultiStartGreedy { starts } => {
                    assert!(starts > 0, "greedy needs at least one start");
                    // Deterministic per-candidate RNG stream.
                    let salt = (candidate.edge.value() * 2.0) as u64
                        ^ ((candidate.op.freq_mhz as u64) << 16)
                        ^ (u64::from(candidate.active_cores) << 32);
                    if let Some(guard) = guard {
                        // Screened greedy: descend on surrogate
                        // predictions and run the exact solver only at
                        // untrusted points the raw kernel cannot screen
                        // and at predicted local minima near the
                        // threshold (the only points that could yield a
                        // feasibility claim). Sequential, so the online
                        // corrector trains in a deterministic order.
                        let mut rng = StdRng::seed_from_u64(seed ^ salt);
                        let layout_of = |pt: LatticePoint| ChipletLayout::Symmetric16 {
                            spacing: lattice_spacing(pt, free_units, step),
                        };
                        // Draft mode rides with the seeding switch: when
                        // on, untrusted points are *ranked* by the raw
                        // kernel instead of paying an exact solve each —
                        // the exact solver confirms only at the descent's
                        // end. When off, the loop below is bit-for-bit
                        // the legacy warm-up search.
                        let draft = cfg.seeding.enabled();
                        // Scores one lattice point: Ok((found, peak,
                        // band)) where `found` carries a feasible exact
                        // evaluation, `peak` ranks the point for descent
                        // and `band` is Some(margin) when the peak is an
                        // unverified estimate whose local minima within
                        // `threshold + margin` deserve exact verification.
                        type Scored = (Option<(ChipletLayout, Arc<Evaluation>)>, f64, Option<f64>);
                        let score = |pt: LatticePoint,
                                     stats: &mut SearchStats|
                         -> Result<Scored, EvalError> {
                            obs::counter!("optimizer.moves_evaluated").inc();
                            let layout = layout_of(pt);
                            if let Some(pred) = ev.predict_peak(
                                &layout,
                                benchmark,
                                candidate.op,
                                candidate.active_cores,
                            ) {
                                stats.surrogate_predictions += 1;
                                if pred.trusted {
                                    stats.surrogate_skips += 1;
                                    return Ok((None, pred.corrected_peak_c, Some(guard.band)));
                                }
                                if pred.raw_peak_c > threshold.value() + guard.raw {
                                    stats.surrogate_skips += 1;
                                    return Ok((None, pred.raw_peak_c, Some(guard.band)));
                                }
                                if draft {
                                    // The raw estimate is biased by up to
                                    // the raw guard band, so minima are
                                    // verified against that wider margin.
                                    stats.surrogate_raw_ranked += 1;
                                    return Ok((None, pred.raw_peak_c, Some(guard.raw)));
                                }
                            }
                            stats.surrogate_fallbacks += 1;
                            let e = ev.evaluate(
                                &layout,
                                benchmark,
                                candidate.op,
                                candidate.active_cores,
                            )?;
                            let peak = peak_of(&e);
                            Ok((e.feasible(threshold).then_some((layout, e)), peak, None))
                        };
                        // Seeding phase: descend the analytic proxy and
                        // start the greedy from its snapped optima,
                        // keeping a small random remainder for coverage.
                        // With seeding off the seed list is empty and the
                        // loop below is bit-for-bit the legacy search
                        // (same RNG stream, same probe order).
                        let seeds: Vec<LatticePoint> = if cfg.seeding.enabled() {
                            analytic_seed_points(
                                ev, benchmark, candidate, free_units, step, s1_max, s2_max,
                            )
                        } else {
                            Vec::new()
                        };
                        let random_starts = if seeds.is_empty() {
                            starts
                        } else {
                            starts.div_ceil(5)
                        };
                        for sidx in 0..seeds.len() + random_starts {
                            let _start_span = obs::span!("optimizer.greedy_start");
                            obs::counter!("optimizer.greedy_starts").inc();
                            let mut current =
                                seeds.get(sidx).copied().unwrap_or_else(|| LatticePoint {
                                    s1u: rng.gen_range(0..=s1_max),
                                    s2u: rng.gen_range(0..=s2_max),
                                });
                            let (found, mut current_peak, mut current_band) =
                                score(current, stats)?;
                            if found.is_some() {
                                return Ok(found);
                            }
                            'descend: loop {
                                let mut neighbors = [
                                    LatticePoint {
                                        s1u: current.s1u + 1,
                                        s2u: current.s2u,
                                    },
                                    LatticePoint {
                                        s1u: current.s1u - 1,
                                        s2u: current.s2u,
                                    },
                                    LatticePoint {
                                        s1u: current.s1u,
                                        s2u: current.s2u + 1,
                                    },
                                    LatticePoint {
                                        s1u: current.s1u,
                                        s2u: current.s2u - 1,
                                    },
                                ];
                                neighbors.shuffle(&mut rng);
                                for nb in neighbors {
                                    if nb.s1u < 0
                                        || nb.s1u > s1_max
                                        || nb.s2u < 0
                                        || nb.s2u > s2_max
                                    {
                                        continue;
                                    }
                                    let (found, nb_peak, nb_band) = score(nb, stats)?;
                                    if found.is_some() {
                                        return Ok(found);
                                    }
                                    if nb_peak < current_peak {
                                        obs::counter!("optimizer.moves_accepted").inc();
                                        current = nb;
                                        current_peak = nb_peak;
                                        current_band = nb_band;
                                        continue 'descend;
                                    }
                                }
                                // Local minimum. An unverified prediction
                                // within the guard band may actually be
                                // feasible: verify it exactly. Either way
                                // the exact solve trains the corrector, so
                                // later starts predict this neighborhood
                                // more sharply; on disagreement this start
                                // simply ends (resuming the descent here
                                // can oscillate between memoized points).
                                if current_band
                                    .is_some_and(|band| current_peak <= threshold.value() + band)
                                {
                                    let layout = layout_of(current);
                                    let e = ev.evaluate(
                                        &layout,
                                        benchmark,
                                        candidate.op,
                                        candidate.active_cores,
                                    )?;
                                    stats.surrogate_verifications += 1;
                                    if e.converged {
                                        let gap = (current_peak - e.peak.value()).abs();
                                        stats.surrogate_max_abs_error_c =
                                            stats.surrogate_max_abs_error_c.max(gap);
                                        stats.surrogate_abs_error_sum_c += gap;
                                    }
                                    if e.feasible(threshold) {
                                        return Ok(Some((layout, e)));
                                    }
                                }
                                break; // infeasible local minimum; next start
                            }
                        }
                        return Ok(None);
                    }
                    // Exact path: the starts are independent, so fan them
                    // out across threads. Each start gets its own RNG
                    // stream and the returned placement is the one found
                    // by the lowest-numbered successful start, making the
                    // result independent of thread scheduling.
                    let run_start = |idx: usize,
                                     winner: &AtomicUsize|
                     -> Result<
                        Option<(ChipletLayout, Arc<Evaluation>)>,
                        EvalError,
                    > {
                        let _start_span = obs::span!("optimizer.greedy_start");
                        obs::counter!("optimizer.greedy_starts").inc();
                        let mut rng = StdRng::seed_from_u64(
                            seed ^ salt ^ (idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        );
                        let mut current = LatticePoint {
                            s1u: rng.gen_range(0..=s1_max),
                            s2u: rng.gen_range(0..=s2_max),
                        };
                        let (layout, e) = try_point(current)?;
                        if e.feasible(threshold) {
                            return Ok(Some((layout, e)));
                        }
                        let mut current_peak = peak_of(&e);
                        'descend: loop {
                            let mut neighbors = [
                                LatticePoint {
                                    s1u: current.s1u + 1,
                                    s2u: current.s2u,
                                },
                                LatticePoint {
                                    s1u: current.s1u - 1,
                                    s2u: current.s2u,
                                },
                                LatticePoint {
                                    s1u: current.s1u,
                                    s2u: current.s2u + 1,
                                },
                                LatticePoint {
                                    s1u: current.s1u,
                                    s2u: current.s2u - 1,
                                },
                            ];
                            neighbors.shuffle(&mut rng);
                            for nb in neighbors {
                                if nb.s1u < 0 || nb.s1u > s1_max || nb.s2u < 0 || nb.s2u > s2_max {
                                    continue;
                                }
                                // A lower-numbered start already succeeded;
                                // this one can no longer affect the result.
                                if winner.load(Ordering::SeqCst) < idx {
                                    return Ok(None);
                                }
                                let (layout, e) = try_point(nb)?;
                                if e.feasible(threshold) {
                                    return Ok(Some((layout, e)));
                                }
                                if peak_of(&e) < current_peak {
                                    obs::counter!("optimizer.moves_accepted").inc();
                                    current = nb;
                                    current_peak = peak_of(&e);
                                    continue 'descend;
                                }
                            }
                            break; // local minimum
                        }
                        Ok(None)
                    };
                    let workers = obs::threads_override()
                        .unwrap_or_else(|| {
                            std::thread::available_parallelism()
                                .map(|n| n.get())
                                .unwrap_or(1)
                        })
                        .min(starts)
                        .min(8);
                    if workers <= 1 {
                        let no_winner = AtomicUsize::new(usize::MAX);
                        for idx in 0..starts {
                            if let Some(found) = run_start(idx, &no_winner)? {
                                return Ok(Some(found));
                            }
                        }
                        return Ok(None);
                    }
                    let next = AtomicUsize::new(0);
                    let winner = AtomicUsize::new(usize::MAX);
                    let results: Mutex<Vec<Option<Placed>>> = Mutex::new(vec![None; starts]);
                    let failure: Mutex<Option<EvalError>> = Mutex::new(None);
                    crossbeam::thread::scope(|s| {
                        for _ in 0..workers {
                            s.spawn(|_| loop {
                                let idx = next.fetch_add(1, Ordering::SeqCst);
                                if idx >= starts || failure.lock().expect("lock poisoned").is_some()
                                {
                                    break;
                                }
                                if winner.load(Ordering::SeqCst) < idx {
                                    continue;
                                }
                                match run_start(idx, &winner) {
                                    Ok(Some(found)) => {
                                        let mut cur = winner.load(Ordering::SeqCst);
                                        while idx < cur {
                                            match winner.compare_exchange(
                                                cur,
                                                idx,
                                                Ordering::SeqCst,
                                                Ordering::SeqCst,
                                            ) {
                                                Ok(_) => break,
                                                Err(now) => cur = now,
                                            }
                                        }
                                        results.lock().expect("lock poisoned")[idx] = Some(found);
                                    }
                                    Ok(None) => {}
                                    Err(e) => {
                                        let mut slot = failure.lock().expect("lock poisoned");
                                        if slot.is_none() {
                                            *slot = Some(e);
                                        }
                                    }
                                }
                            });
                        }
                    })
                    .expect("greedy worker panicked");
                    if let Some(e) = failure.lock().expect("lock poisoned").take() {
                        return Err(e);
                    }
                    let w = winner.load(Ordering::SeqCst);
                    if w == usize::MAX {
                        return Ok(None);
                    }
                    let found = results.lock().expect("lock poisoned")[w].take();
                    Ok(found)
                }
            }
        }
    }
}

/// Runs the full three-step optimization for a benchmark (step 3 walks the
/// sorted candidates until one admits a feasible placement).
///
/// # Errors
///
/// See [`OptimizeError`].
pub fn optimize(
    ev: &Evaluator,
    benchmark: Benchmark,
    cfg: &OptimizerConfig,
) -> Result<OptimizeResult, OptimizeError> {
    optimize_with_filter(ev, benchmark, cfg, |_, _| true)
}

/// Like [`optimize`], but restricted to candidates accepted by `filter`
/// (which also receives the baseline). This expresses the paper's
/// headline comparisons directly:
///
/// * iso-cost ("at the same cost as the baseline"): keep candidates with
///   `c.cost <= baseline.cost`;
/// * iso-performance ("without performance loss"): keep candidates with
///   `c.ips >= baseline.ips` and optimize with cost-only weights.
///
/// # Errors
///
/// See [`OptimizeError`].
pub fn optimize_with_filter<F>(
    ev: &Evaluator,
    benchmark: Benchmark,
    cfg: &OptimizerConfig,
    filter: F,
) -> Result<OptimizeResult, OptimizeError>
where
    F: Fn(&Candidate, &Baseline) -> bool,
{
    let _span = obs::span!("optimizer.optimize");
    let sims_before = ev.thermal_sims();
    // The baseline screen rides with the draft/seed mode: only screened
    // (surrogate-fidelity) seeded searches prune the baseline walk, so the
    // exact paper path — and the `TAC25D_SEED_MODE=off` escape hatch —
    // keep the legacy walk bit-for-bit.
    let (candidates, baseline) = enumerate_candidates_screened(
        ev,
        benchmark,
        cfg.weights,
        &cfg.chiplet_counts,
        cfg.draft(ev),
    )?;
    let candidates: Vec<Candidate> = candidates
        .into_iter()
        .filter(|c| filter(c, &baseline))
        .collect();
    let mut stats = SearchStats {
        candidates_total: candidates.len(),
        ..SearchStats::default()
    };
    let mut best: Option<Organization> = None;
    let mut i = 0;
    while i < candidates.len() {
        // Maximal run of equal-objective candidates.
        let mut j = i + 1;
        while j < candidates.len()
            && (candidates[j].objective - candidates[i].objective).abs() < 1e-12
        {
            j += 1;
        }
        let run = &candidates[i..j];
        let found = if run.len() > 1 && cfg.accelerate_ties {
            resolve_tie_run(ev, benchmark, run, cfg, &mut stats)?
        } else {
            let mut found = None;
            for cand in run {
                stats.candidates_tried += 1;
                if let Some((layout, eval)) =
                    find_placement_with(ev, benchmark, cand, cfg, &mut stats)?
                {
                    found = Some((*cand, layout, eval));
                    break;
                }
            }
            found
        };
        if let Some((cand, layout, eval)) = found {
            best = Some(Organization {
                candidate: cand,
                layout,
                peak: eval.peak,
                total_power: eval.total_power,
                normalized_perf: cand.ips.0 / baseline.ips.0,
                normalized_cost: cand.cost / baseline.cost,
            });
            break;
        }
        i = j;
    }
    stats.thermal_sims = ev.thermal_sims() - sims_before;
    Ok(OptimizeResult {
        best,
        baseline,
        stats,
    })
}

/// Resolves a run of equal-objective candidates: within each (count, f, p)
/// subgroup the interposer edges ascend and feasibility is monotone in the
/// edge, so the smallest feasible edge is found by binary search. Among the
/// subgroup winners, the run's tie-break order (cost, then IPS, then edge)
/// picks the result — the same candidate a sequential walk would return.
fn resolve_tie_run(
    ev: &Evaluator,
    benchmark: Benchmark,
    run: &[Candidate],
    cfg: &OptimizerConfig,
    stats: &mut SearchStats,
) -> Result<Option<(Candidate, ChipletLayout, Arc<Evaluation>)>, EvalError> {
    let _span = obs::span!("optimizer.tie_run");
    obs::counter!("optimizer.tie_runs_resolved").inc();
    type Key = (ChipletCount, u32, u16);
    let mut groups: HashMap<Key, Vec<usize>> = HashMap::new();
    for (idx, c) in run.iter().enumerate() {
        groups
            .entry((c.count, c.op.freq_mhz as u32, c.active_cores))
            .or_default()
            .push(idx);
    }
    let mut evaluated = 0usize;
    let mut winners: Vec<(usize, ChipletLayout, Arc<Evaluation>)> = Vec::new();
    // Explore subgroups in run order, not hash order: the winner is
    // order-independent (sorted below), but the side effects — which
    // candidates get exact solves, and in what order a surrogate corrector
    // trains on them — must be reproducible under a fixed seed.
    let mut ordered: Vec<(usize, &Vec<usize>)> = groups
        .values()
        .map(|indices| (indices[0], indices))
        .collect();
    ordered.sort_unstable_by_key(|(first, _)| *first);
    // Draft mode prunes across subgroups: once some subgroup produced a
    // feasible winner at run index `best_idx`, candidates at larger
    // indices lose the tie-break no matter what, so later subgroups only
    // search their prefix below `best_idx` (often empty — e.g. the
    // 16-chiplet subgroup after a cheap 4-chiplet winner). The selected
    // organization is provably unchanged; only the probe count drops.
    // Gated on draft mode so the legacy path stays bit-for-bit.
    let draft = cfg.draft(ev);
    // The tight 4-chiplet guard (see `find_placement_with`): Symmetric4
    // candidates sit on the kernel's reference layout, so the raw margin
    // collapses to the verification band.
    let guard4 = match (cfg.fidelity, ev.surrogate()) {
        (Fidelity::Surrogate { guard_band_c }, Some(_)) => Some(Guards {
            band: guard_band_c,
            raw: guard_band_c,
        }),
        _ => None,
    };
    let mut best_idx = usize::MAX;
    for (_, full) in ordered {
        let truncated: Vec<usize>;
        let indices: &[usize] = if draft && best_idx != usize::MAX {
            truncated = full.iter().copied().filter(|&i| i < best_idx).collect();
            &truncated
        } else {
            full
        };
        if indices.is_empty() {
            // The trailing prune accounting covers unevaluated candidates.
            continue;
        }
        debug_assert!(
            indices
                .windows(2)
                .all(|w| run[w[0]].edge.value() <= run[w[1]].edge.value() + 1e-9),
            "subgroup edges must ascend"
        );
        // Draft mode steers 4-chiplet binary searches on clearly-cool
        // predictions and exact-confirms only the winning edge; a refuted
        // confirmation (never observed in practice) falls through to the
        // exact search below.
        if draft && run[indices[0]].count == ChipletCount::Four {
            if let Some(g) = guard4 {
                let threshold = ev.spec().threshold;
                match resolve_four_subgroup_draft(
                    ev,
                    benchmark,
                    run,
                    indices,
                    threshold,
                    g,
                    &mut evaluated,
                    stats,
                )? {
                    DraftSubgroup::Winner(idx, layout, eval) => {
                        best_idx = best_idx.min(idx);
                        winners.push((idx, layout, eval));
                        continue;
                    }
                    DraftSubgroup::Infeasible => continue,
                    DraftSubgroup::Refuted => {}
                }
            }
        }
        // Check the largest edge first: if it is infeasible, the whole
        // subgroup is (monotonicity).
        let last = *indices.last().expect("groups are non-empty");
        evaluated += 1;
        let Some(at_last) = find_placement_with(ev, benchmark, &run[last], cfg, stats)? else {
            continue;
        };
        let (mut lo, mut hi) = (0usize, indices.len() - 1);
        let mut best_here = (last, at_last.0, at_last.1);
        while lo < hi {
            let mid = (lo + hi) / 2;
            evaluated += 1;
            match find_placement_with(ev, benchmark, &run[indices[mid]], cfg, stats)? {
                Some((layout, eval)) => {
                    best_here = (indices[mid], layout, eval);
                    hi = mid;
                }
                None => lo = mid + 1,
            }
        }
        best_idx = best_idx.min(best_here.0);
        winners.push(best_here);
    }
    stats.candidates_tried += evaluated;
    stats.candidates_pruned += run.len().saturating_sub(evaluated);
    // The run is already in tie-break order; the smallest index wins.
    winners.sort_by_key(|(idx, _, _)| *idx);
    Ok(winners
        .into_iter()
        .next()
        .map(|(idx, layout, eval)| (run[idx], layout, eval)))
}

/// The best feasible organization *at one fixed interposer edge* — the
/// primitive behind the Fig. 6 (max IPS vs size) and Fig. 7 (min objective
/// vs size) curves.
///
/// # Errors
///
/// See [`OptimizeError`].
pub fn best_at_edge(
    ev: &Evaluator,
    benchmark: Benchmark,
    weights: Weights,
    count: ChipletCount,
    edge: Mm,
    search: PlacementSearch,
    seed: u64,
) -> Result<Option<Organization>, OptimizeError> {
    let (candidates, baseline) = enumerate_candidates(ev, benchmark, weights, &[count])?;
    for cand in candidates
        .iter()
        .filter(|c| (c.edge.value() - edge.value()).abs() < 1e-9)
    {
        if let Some((layout, eval)) = find_placement(ev, benchmark, cand, search, seed)? {
            return Ok(Some(Organization {
                candidate: *cand,
                layout,
                peak: eval.peak,
                total_power: eval.total_power,
                normalized_perf: cand.ips.0 / baseline.ips.0,
                normalized_cost: cand.cost / baseline.cost,
            }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemSpec;

    fn evaluator() -> Evaluator {
        let mut spec = SystemSpec::fast();
        spec.thermal.grid = 16;
        spec.edge_step = Mm(2.0); // coarse sweeps keep tests fast
        Evaluator::new(spec)
    }

    #[test]
    fn candidates_sorted_by_objective() {
        let ev = evaluator();
        let (cands, _) = enumerate_candidates(
            &ev,
            Benchmark::Canneal,
            Weights::balanced(),
            &ChipletCount::both(),
        )
        .unwrap();
        assert!(!cands.is_empty());
        assert!(cands.windows(2).all(|w| w[0].objective <= w[1].objective));
        // 2 counts × 16 edges × 5 f × 8 p = 1280.
        assert_eq!(cands.len(), 2 * 16 * 5 * 8);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn optimizer_beats_baseline_for_high_power_benchmark() {
        // The headline claim: a thermally-aware 2.5D organization
        // outperforms the single chip for thermally-limited benchmarks.
        let ev = evaluator();
        let result = optimize(&ev, Benchmark::Cholesky, &OptimizerConfig::default()).unwrap();
        let best = result.best.expect("cholesky must have a solution");
        assert!(
            best.normalized_perf > 1.3,
            "cholesky gain {:.2} (paper: 1.8x at iso-cost)",
            best.normalized_perf
        );
        assert!(best.peak.value() <= 85.0 + 1e-6);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn perf_only_weights_pick_fastest_feasible() {
        let ev = evaluator();
        let result = optimize(&ev, Benchmark::Canneal, &OptimizerConfig::default()).unwrap();
        let best = result.best.expect("canneal must have a solution");
        // canneal is thermally easy: nominal frequency and its 192-core
        // saturation point are reachable; perf equals the baseline.
        assert_eq!(best.candidate.op.freq_mhz, 1000.0);
        assert_eq!(best.candidate.active_cores, 192);
        assert!((best.normalized_perf - 1.0).abs() < 1e-9);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn cost_only_weights_pick_minimum_interposer() {
        let ev = evaluator();
        let cfg = OptimizerConfig {
            weights: Weights::cost_only(),
            ..OptimizerConfig::default()
        };
        let result = optimize(&ev, Benchmark::Canneal, &cfg).unwrap();
        let best = result.best.expect("canneal must have a cost solution");
        assert_eq!(best.candidate.edge, Mm(20.0), "minimum interposer wins");
        assert!(
            best.normalized_cost < 0.70,
            "paper: ≈36% cost saving, got {:.3}",
            best.normalized_cost
        );
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn greedy_matches_exhaustive_on_candidate_choice() {
        let ev = evaluator();
        let g = optimize(&ev, Benchmark::Hpccg, &OptimizerConfig::default()).unwrap();
        let x = optimize(
            &ev,
            Benchmark::Hpccg,
            &OptimizerConfig {
                search: PlacementSearch::Exhaustive,
                ..OptimizerConfig::default()
            },
        )
        .unwrap();
        let (gb, xb) = (g.best.unwrap(), x.best.unwrap());
        assert_eq!(gb.candidate.op, xb.candidate.op);
        assert_eq!(gb.candidate.active_cores, xb.candidate.active_cores);
        assert!((gb.candidate.cost - xb.candidate.cost).abs() < 1e-9);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn tie_acceleration_preserves_the_answer_with_less_work() {
        let ev1 = evaluator();
        let with = optimize(&ev1, Benchmark::Swaptions, &OptimizerConfig::default()).unwrap();
        let ev2 = evaluator();
        let without = optimize(
            &ev2,
            Benchmark::Swaptions,
            &OptimizerConfig {
                accelerate_ties: false,
                ..OptimizerConfig::default()
            },
        )
        .unwrap();
        let (a, b) = (with.best.unwrap(), without.best.unwrap());
        assert_eq!(a.candidate.op, b.candidate.op);
        assert_eq!(a.candidate.active_cores, b.candidate.active_cores);
        assert!((a.candidate.cost - b.candidate.cost).abs() < 1e-9);
        assert!(with.stats.candidates_pruned > 0);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn tie_acceleration_saves_simulations_on_hot_benchmarks() {
        // shock's leading (f, p) runs are infeasible across most interposer
        // sizes; the sequential walk must disprove each edge while the
        // binary search disproves a whole subgroup with one max-edge probe.
        let ev1 = evaluator();
        let with = optimize(&ev1, Benchmark::Shock, &OptimizerConfig::default()).unwrap();
        let ev2 = evaluator();
        let without = optimize(
            &ev2,
            Benchmark::Shock,
            &OptimizerConfig {
                accelerate_ties: false,
                ..OptimizerConfig::default()
            },
        )
        .unwrap();
        let (a, b) = (with.best.unwrap(), without.best.unwrap());
        assert_eq!(a.candidate.op, b.candidate.op);
        assert_eq!(a.candidate.active_cores, b.candidate.active_cores);
        assert!(
            with.stats.thermal_sims < without.stats.thermal_sims,
            "accelerated {} vs sequential {}",
            with.stats.thermal_sims,
            without.stats.thermal_sims
        );
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn best_at_edge_monotone_in_edge_for_hot_benchmark() {
        let ev = evaluator();
        let small = best_at_edge(
            &ev,
            Benchmark::Shock,
            Weights::performance_only(),
            ChipletCount::Sixteen,
            Mm(22.0),
            PlacementSearch::MultiStartGreedy { starts: 10 },
            7,
        )
        .unwrap();
        let large = best_at_edge(
            &ev,
            Benchmark::Shock,
            Weights::performance_only(),
            ChipletCount::Sixteen,
            Mm(48.0),
            PlacementSearch::MultiStartGreedy { starts: 10 },
            7,
        )
        .unwrap();
        let (s, l) = (small.unwrap(), large.unwrap());
        assert!(
            l.candidate.ips.0 >= s.candidate.ips.0,
            "bigger interposer can't be slower: {} vs {}",
            l.candidate.ips.0,
            s.candidate.ips.0
        );
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn annealing_finds_placements_too() {
        let ev = evaluator();
        let spec = ev.spec();
        let op = spec.vf.nominal();
        let edge = Mm(36.0);
        let wc = spec.chip.edge().value() / 4.0;
        let cand = Candidate {
            count: ChipletCount::Sixteen,
            edge,
            op,
            active_cores: 256,
            ips: ev.ips(Benchmark::Hpccg, op, 256),
            cost: spec
                .cost
                .assembly_cost(16, wc * wc, edge.value() * edge.value())
                .total(),
            objective: 0.0,
        };
        let greedy = find_placement(
            &ev,
            Benchmark::Hpccg,
            &cand,
            PlacementSearch::MultiStartGreedy { starts: 10 },
            7,
        )
        .unwrap();
        let sa = find_placement(
            &ev,
            Benchmark::Hpccg,
            &cand,
            PlacementSearch::SimulatedAnnealing {
                iterations: 120,
                initial_temp: 8.0,
            },
            7,
        )
        .unwrap();
        assert_eq!(greedy.is_some(), sa.is_some(), "both searches agree here");
    }

    #[test]
    fn interposer_edges_cover_paper_range() {
        let ev = Evaluator::new(SystemSpec::paper());
        let edges = interposer_edges(&ev);
        assert_eq!(edges.first(), Some(&Mm(20.0)));
        assert_eq!(edges.last(), Some(&Mm(50.0)));
        assert_eq!(edges.len(), 61);
    }
}
