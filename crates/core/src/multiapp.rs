//! Multi-application chiplet organization (paper Sec. IV).
//!
//! A deployed system runs many applications, but a chiplet organization is
//! fixed at manufacturing time. The paper sketches three designer
//! policies, all implemented here:
//!
//! * **worst case** — the design with the largest interposer any
//!   application needs, ensuring best performance for all of them;
//! * **average** — minimize the unweighted mean of the per-application
//!   objectives;
//! * **weighted average** — Eq. (5) generalized to
//!   `α · Σᵢ (IPS_2D^i / IPS_2.5D^i) · uᵢ + β · C_2.5D / C_2D`, where `uᵢ`
//!   is how frequently application `i` runs.
//!
//! Feasibility is always *per application*: a placement is acceptable only
//! if every application meets the temperature threshold at its own best
//! feasible (f, p) — each application is assumed to run alone (the paper
//! uses single-application workloads throughout).

use crate::evaluator::{single_chip_baseline, Baseline, Evaluator};
use crate::objective::Weights;
use crate::optimizer::{
    best_at_edge, interposer_edges, optimize, ChipletCount, OptimizeError, OptimizerConfig,
    Organization,
};
use tac25d_power::benchmarks::Benchmark;

/// How per-application objectives combine into one design objective.
#[derive(Debug, Clone, PartialEq)]
pub enum MultiAppPolicy {
    /// Take the largest interposer any application's optimum needs.
    WorstCase,
    /// Minimize the unweighted average objective.
    Average,
    /// Minimize the usage-weighted average objective (`uᵢ` sums to 1).
    WeightedAverage(Vec<f64>),
}

/// The chosen multi-application design.
#[derive(Debug, Clone)]
pub struct MultiAppResult {
    /// Chosen chiplet count.
    pub count: ChipletCount,
    /// Chosen interposer edge (mm).
    pub edge_mm: f64,
    /// Combined objective value at the chosen design point.
    pub objective: f64,
    /// Per-application organizations at that design point (same order as
    /// the input benchmark list).
    pub per_app: Vec<Organization>,
    /// Per-application baselines.
    pub baselines: Vec<Baseline>,
}

/// Optimizes one shared chiplet organization for a set of applications.
///
/// # Errors
///
/// Returns [`OptimizeError::NoBaseline`] if any application lacks a
/// feasible single-chip baseline, or any evaluation error.
///
/// # Panics
///
/// Panics if `benchmarks` is empty, or if a weighted policy's weight
/// vector does not match the benchmark count or does not sum to ≈1.
pub fn optimize_multi_app(
    ev: &Evaluator,
    benchmarks: &[Benchmark],
    policy: &MultiAppPolicy,
    weights: Weights,
    cfg: &OptimizerConfig,
) -> Result<Option<MultiAppResult>, OptimizeError> {
    assert!(!benchmarks.is_empty(), "need at least one application");
    let u = match policy {
        MultiAppPolicy::WorstCase => None,
        MultiAppPolicy::Average => Some(vec![1.0 / benchmarks.len() as f64; benchmarks.len()]),
        MultiAppPolicy::WeightedAverage(u) => {
            assert_eq!(
                u.len(),
                benchmarks.len(),
                "one weight per application required"
            );
            let sum: f64 = u.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-6,
                "usage weights must sum to 1, got {sum}"
            );
            Some(u.clone())
        }
    };

    let mut baselines = Vec::with_capacity(benchmarks.len());
    for &b in benchmarks {
        baselines.push(single_chip_baseline(ev, b)?.ok_or(OptimizeError::NoBaseline(b))?);
    }

    if u.is_none() {
        return worst_case(ev, benchmarks, baselines, cfg);
    }
    let u = u.expect("weighted policies provide weights");

    // Weighted policies: sweep (count, edge) design points; at each, every
    // application independently picks its best feasible (f, p, placement)
    // — the hardware is shared, the schedule is not.
    let search = cfg.search;
    let mut best: Option<MultiAppResult> = None;
    for &count in &cfg.chiplet_counts {
        for edge in interposer_edges(ev) {
            let mut orgs = Vec::with_capacity(benchmarks.len());
            let mut perf_term = 0.0;
            let mut cost_ratio = 0.0;
            let mut feasible = true;
            for (i, &b) in benchmarks.iter().enumerate() {
                match best_at_edge(ev, b, weights, count, edge, search, cfg.seed)? {
                    Some(org) => {
                        perf_term += u[i] / org.normalized_perf;
                        cost_ratio = org.normalized_cost;
                        orgs.push(org);
                    }
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if !feasible {
                continue;
            }
            let objective = weights.alpha * perf_term + weights.beta * cost_ratio;
            if best.as_ref().is_none_or(|b| objective < b.objective) {
                best = Some(MultiAppResult {
                    count,
                    edge_mm: edge.value(),
                    objective,
                    per_app: orgs,
                    baselines: baselines.clone(),
                });
            }
        }
    }
    Ok(best)
}

fn worst_case(
    ev: &Evaluator,
    benchmarks: &[Benchmark],
    baselines: Vec<Baseline>,
    cfg: &OptimizerConfig,
) -> Result<Option<MultiAppResult>, OptimizeError> {
    // Optimize each application alone, then adopt the largest interposer
    // (ties broken toward 16 chiplets, which dominate thermally).
    let mut singles = Vec::with_capacity(benchmarks.len());
    for &b in benchmarks {
        match optimize(ev, b, cfg)?.best {
            Some(o) => singles.push(o),
            None => return Ok(None),
        }
    }
    let widest = singles
        .iter()
        .max_by(|a, b| {
            a.candidate
                .edge
                .value()
                .partial_cmp(&b.candidate.edge.value())
                .expect("edges are finite")
        })
        .expect("at least one application");
    let count = widest.candidate.count;
    let edge = widest.candidate.edge;
    let search = cfg.search;
    let mut per_app = Vec::with_capacity(benchmarks.len());
    for &b in benchmarks {
        match best_at_edge(ev, b, cfg.weights, count, edge, search, cfg.seed)? {
            Some(org) => per_app.push(org),
            None => return Ok(None), // widest design infeasible for someone
        }
    }
    let objective = per_app
        .iter()
        .map(|o| cfg.weights.alpha / o.normalized_perf + cfg.weights.beta * o.normalized_cost)
        .fold(f64::NEG_INFINITY, f64::max);
    Ok(Some(MultiAppResult {
        count,
        edge_mm: edge.value(),
        objective,
        per_app,
        baselines,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemSpec;
    use tac25d_floorplan::units::Mm;

    fn evaluator() -> Evaluator {
        let mut spec = SystemSpec::fast();
        spec.thermal.grid = 16;
        spec.edge_step = Mm(4.0);
        Evaluator::new(spec)
    }

    fn apps() -> Vec<Benchmark> {
        vec![Benchmark::Canneal, Benchmark::Hpccg]
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn worst_case_covers_every_app() {
        let ev = evaluator();
        let r = optimize_multi_app(
            &ev,
            &apps(),
            &MultiAppPolicy::WorstCase,
            Weights::performance_only(),
            &OptimizerConfig::default(),
        )
        .unwrap()
        .expect("feasible design");
        assert_eq!(r.per_app.len(), 2);
        // Every app meets the threshold on the shared design.
        for org in &r.per_app {
            assert!(org.peak.value() <= ev.spec().threshold.value() + 1e-6);
            assert!((org.candidate.edge.value() - r.edge_mm).abs() < 1e-9);
        }
        // The shared interposer is at least as large as each app alone needs.
        for &b in &apps() {
            let solo = optimize(&ev, b, &OptimizerConfig::default())
                .unwrap()
                .best
                .unwrap();
            assert!(r.edge_mm >= solo.candidate.edge.value() - 1e-9);
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn weighted_average_respects_weights() {
        let ev = evaluator();
        // All weight on hpccg should match the hpccg-only average design.
        let all_hpccg = optimize_multi_app(
            &ev,
            &apps(),
            &MultiAppPolicy::WeightedAverage(vec![0.0, 1.0]),
            Weights::performance_only(),
            &OptimizerConfig::default(),
        )
        .unwrap()
        .expect("feasible design");
        let hpccg_perf = all_hpccg.per_app[1].normalized_perf;
        // hpccg's share of the objective is its inverse normalized perf.
        assert!((all_hpccg.objective - 1.0 / hpccg_perf).abs() < 1e-9);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn average_policy_finds_a_compromise() {
        let ev = evaluator();
        let r = optimize_multi_app(
            &ev,
            &apps(),
            &MultiAppPolicy::Average,
            Weights::balanced(),
            &OptimizerConfig::default(),
        )
        .unwrap()
        .expect("feasible design");
        assert!(r.objective.is_finite());
        assert_eq!(r.baselines.len(), 2);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_weights_rejected() {
        let ev = evaluator();
        let _ = optimize_multi_app(
            &ev,
            &apps(),
            &MultiAppPolicy::WeightedAverage(vec![0.9, 0.9]),
            Weights::performance_only(),
            &OptimizerConfig::default(),
        );
    }
}
