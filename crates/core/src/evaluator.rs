//! The closed evaluation loop of Fig. 4(b): chiplet organization →
//! floorplan → power map (Mintemp allocation + NoC) → thermal solve with
//! temperature-dependent leakage → peak temperature.
//!
//! Evaluations are memoized (the optimizer revisits organizations) and the
//! number of *distinct* thermal simulations is tracked — the cost metric the
//! paper uses when comparing the multi-start greedy against exhaustive
//! search (400× fewer simulations).

use crate::allocation::mintemp_active_cores;
use crate::system::SystemSpec;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;
use tac25d_floorplan::organization::{ChipletLayout, LayoutError};
use tac25d_floorplan::raster::place_cores;
use tac25d_floorplan::units::{Celsius, Watts};
use tac25d_noc::link::TimingError;
use tac25d_obs as obs;
use tac25d_power::benchmarks::Benchmark;
use tac25d_power::dvfs::OperatingPoint;
use tac25d_power::perf::{system_ips, Ips};
use tac25d_surrogate::{Prediction, SurrogateConfig, SurrogateInput, ThermalSurrogate};
use tac25d_thermal::coupled::{solve_coupled, CoupledOptions};
use tac25d_thermal::model::{PackageModel, ThermalError};

/// Errors surfaced by system evaluation.
#[derive(Debug)]
pub enum EvalError {
    /// Invalid chiplet organization.
    Layout(LayoutError),
    /// Thermal solver failure (not including thermal runaway, which is
    /// reported as an infeasible [`Evaluation`]).
    Thermal(ThermalError),
    /// An interposer link cannot close single-cycle timing.
    Timing(TimingError),
    /// The per-request deadline ([`Evaluator::with_deadline`]) expired
    /// before the evaluation finished. Carries the outer fixed-point
    /// iterations completed before the abort (0 when the deadline was
    /// already spent before the solve started).
    Deadline {
        /// Coupled-loop outer iterations completed before the abort.
        outer_iterations: usize,
    },
}

impl EvalError {
    /// Whether this error is a deadline abort (the only retryable kind —
    /// the serve layer maps it to 504 instead of 500).
    pub fn is_deadline(&self) -> bool {
        matches!(self, EvalError::Deadline { .. })
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Layout(e) => write!(f, "layout error: {e}"),
            EvalError::Thermal(e) => write!(f, "thermal error: {e}"),
            EvalError::Timing(e) => write!(f, "link timing error: {e}"),
            EvalError::Deadline { outer_iterations } => write!(
                f,
                "evaluation deadline expired ({outer_iterations} outer iterations completed)"
            ),
        }
    }
}

impl Error for EvalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EvalError::Layout(e) => Some(e),
            EvalError::Thermal(e) => Some(e),
            EvalError::Timing(e) => Some(e),
            EvalError::Deadline { .. } => None,
        }
    }
}

impl From<LayoutError> for EvalError {
    fn from(e: LayoutError) -> Self {
        EvalError::Layout(e)
    }
}

impl From<TimingError> for EvalError {
    fn from(e: TimingError) -> Self {
        EvalError::Timing(e)
    }
}

/// The outcome of evaluating one (organization, benchmark, f, p) point.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The evaluated organization.
    pub layout: ChipletLayout,
    /// The benchmark.
    pub benchmark: Benchmark,
    /// The operating point.
    pub op: OperatingPoint,
    /// Active core count (Mintemp-allocated).
    pub active_cores: u16,
    /// Steady-state peak (junction) temperature with converged leakage.
    pub peak: Celsius,
    /// Total system power (cores + NoC) at convergence.
    pub total_power: Watts,
    /// NoC share of the total power.
    pub noc_power: Watts,
    /// Aggregate performance at this (f, p).
    pub ips: Ips,
    /// Whether the leakage loop converged (false ⇒ thermal runaway or
    /// oscillation; the organization is treated as infeasible).
    pub converged: bool,
    /// Relative energy-balance residual of the converged steady state
    /// (|heat out − power in| / power in); NaN when the loop diverged.
    /// A verification invariant: power injected must leave through the
    /// sink and secondary path.
    pub energy_balance_error: f64,
    /// Peak temperature over each chiplet footprint, in layout order
    /// (empty when the loop diverged). Drives the per-chiplet |ΔT|
    /// distributions of the differential-testing harness.
    pub chiplet_peaks: Vec<Celsius>,
    /// Outer iterations of the temperature–leakage fixed point.
    pub outer_iterations: usize,
}

impl Evaluation {
    /// Eq. (6): the organization is valid iff the loop converged and the
    /// peak stays at or below the threshold.
    pub fn feasible(&self, threshold: Celsius) -> bool {
        self.converged && self.peak.value() <= threshold.value() + 1e-9
    }
}

/// Integer cache key for a layout (spacings snapped to the 0.25 mm cache
/// lattice), *canonical* under the layout symmetry group: parameterizations
/// that describe the same physical package map to the same key.
/// `Symmetric4 { s3 }` is exactly the 2×2 uniform grid with gap `s3`, and a
/// `Symmetric16` whose spacings satisfy `s1 = s3` and `s2 = s3/2` is exactly
/// the 4×4 uniform grid with gap `s3` (same interposer edge, same chiplet
/// rectangles); both fold onto [`LayoutKey::Grid`], so each equivalence
/// class is solved once. Cross-parameterization cache reuses are counted
/// under `evaluator.canonical_hits`.
///
/// Public only for the cache-key property tests; not a stable API.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutKey {
    Single,
    /// An `r × r` uniform grid with lattice gap `gap` — the canonical form
    /// of `Uniform`, `Symmetric4` (r = 2) and grid-degenerate `Symmetric16`
    /// (r = 4) layouts.
    Grid {
        r: u16,
        gap: i64,
    },
    /// A symmetric 16-chiplet organization that is not a uniform grid.
    Sym16 {
        s1: i64,
        s2: i64,
        s3: i64,
    },
}

/// Snaps a millimetre value to the 0.25 mm cache lattice — half the
/// optimizer's 0.5 mm spacing step, so every distinct search candidate
/// stays distinct while the uniform-grid midpoint `s2 = s3/2` still lands
/// exactly on the lattice.
#[doc(hidden)]
pub fn quarter_mm(v: f64) -> i64 {
    (v * 4.0).round() as i64
}

/// The canonical cache key of a layout.
#[doc(hidden)]
pub fn layout_key(layout: &ChipletLayout) -> LayoutKey {
    match layout {
        ChipletLayout::SingleChip => LayoutKey::Single,
        ChipletLayout::Uniform { r, gap } => LayoutKey::Grid {
            r: *r,
            gap: quarter_mm(gap.value()),
        },
        ChipletLayout::Symmetric4 { s3 } => LayoutKey::Grid {
            r: 2,
            gap: quarter_mm(s3.value()),
        },
        ChipletLayout::Symmetric16 { spacing } => {
            let s1 = quarter_mm(spacing.s1.value());
            let s2 = quarter_mm(spacing.s2.value());
            let s3 = quarter_mm(spacing.s3.value());
            if s1 == s3 && 2 * s2 == s3 {
                LayoutKey::Grid { r: 4, gap: s3 }
            } else {
                LayoutKey::Sym16 { s1, s2, s3 }
            }
        }
    }
}

type EvalKey = (LayoutKey, Benchmark, u32, u16);

/// Number of independently-locked stripes per cache. More than the bench
/// runner's worker count, so concurrent evaluations of different keys
/// rarely contend on the same lock.
const CACHE_STRIPES: usize = 16;

/// A hash map sharded into independently-locked stripes. Under the
/// parallel figure drivers every worker thread hits the evaluator caches
/// on each candidate; striping replaces the former single global
/// `Mutex<HashMap>` (a serialization point) with per-stripe locks chosen
/// by key hash.
struct StripedCache<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
}

impl<K: Eq + Hash, V: Clone> StripedCache<K, V> {
    fn new() -> Self {
        StripedCache {
            shards: (0..CACHE_STRIPES)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    fn get(&self, key: &K) -> Option<V> {
        self.shard(key)
            .lock()
            .expect("lock poisoned")
            .get(key)
            .cloned()
    }

    fn insert(&self, key: K, value: V) {
        self.shard(&key)
            .lock()
            .expect("lock poisoned")
            .insert(key, value);
    }

    fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("lock poisoned").clear();
        }
    }
}

/// One in-flight exact evaluation of a cache key: the leader computes,
/// waiters block on the condvar until `finish` runs (in the leader's drop
/// guard, so a panicking leader still releases its waiters).
#[derive(Default)]
struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Flight {
    fn finish(&self) {
        *self.done.lock().expect("lock poisoned") = true;
        self.cv.notify_all();
    }

    /// Waits for the leader, bounded by the waiter's own deadline.
    /// Returns `false` on a deadline timeout with the flight still open.
    fn wait(&self, deadline: Option<Instant>) -> bool {
        let mut done = self.done.lock().expect("lock poisoned");
        loop {
            if *done {
                return true;
            }
            match deadline {
                None => done = self.cv.wait(done).expect("lock poisoned"),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return false;
                    }
                    let (guard, timeout) =
                        self.cv.wait_timeout(done, d - now).expect("lock poisoned");
                    done = guard;
                    if timeout.timed_out() && !*done {
                        return false;
                    }
                }
            }
        }
    }
}

/// Removes the flight from the in-flight table and wakes every waiter when
/// the leader finishes — including by panic, so a crashed leader cannot
/// strand waiters (one of them retries as the next leader).
struct FlightGuard<'a> {
    shared: &'a SharedState,
    key: EvalKey,
    flight: Arc<Flight>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.shared
            .inflight
            .lock()
            .expect("lock poisoned")
            .remove(&self.key);
        self.flight.finish();
    }
}

/// Per-watt die temperature rise of the single-chip package under a
/// uniform unit source over the chip footprint — the Green's-function
/// kernel behind the baseline-walk screen ([`single_chip_baseline_screened`]).
#[derive(Debug, Clone, Copy)]
struct SingleChipUnit {
    /// Peak die rise over ambient, °C per watt.
    peak_rise: f64,
    /// Chip-average die rise over ambient, °C per watt (drives the
    /// leakage fixed point of the screen, mirroring the surrogate's
    /// per-chiplet mean-temperature refinement).
    mean_rise: f64,
}

/// The cache state shared by every handle of one evaluator family: the
/// striped memo tables, the incremental-assembly bases, the surrogate and
/// the simulation counter. The serve daemon holds exactly one of these per
/// process; each request gets a cheap [`Evaluator`] handle with its own
/// deadline via [`Evaluator::with_deadline`].
struct SharedState {
    spec: SystemSpec,
    models: StripedCache<LayoutKey, Arc<PackageModel>>,
    evals: StripedCache<EvalKey, Arc<Evaluation>>,
    /// Lazily-solved single-chip unit response (`None` = not yet built,
    /// `Some(None)` = construction failed and the screen stays off).
    single_unit: Mutex<Option<Option<SingleChipUnit>>>,
    /// One representative assembled model per (single-chip?, footprint
    /// edge) class, used as the patch base for incremental network
    /// assembly of sibling layouts ([`PackageModel::new_like`]). Because
    /// the incremental build is bitwise identical to a full build, results
    /// never depend on which model seeded the class. The base also carries
    /// the class's shared multigrid scaffold cell: every sibling derived
    /// from it refills numeric values into the one symbolic hierarchy
    /// (and, once the base has solved under `TAC25D_SOLVER=mg`, patches
    /// only the dirty rows), so hierarchy construction per sweep drops
    /// from one per model to one per (stack, edge) class.
    bases: Mutex<HashMap<(bool, u64), Arc<PackageModel>>>,
    /// Exact evaluations currently being computed, for cross-request
    /// coalescing: concurrent misses on one key elect a single leader and
    /// the rest wait for its cached result instead of re-running the same
    /// assembly + factorization + coupled solve.
    inflight: Mutex<HashMap<EvalKey, Arc<Flight>>>,
    thermal_sims: AtomicUsize,
    surrogate: Option<Arc<ThermalSurrogate>>,
}

/// Memoizing system evaluator. Cheap to share behind a reference across
/// threads (all interior state is synchronized), and cheap to *clone as a
/// handle*: [`Evaluator::share`] / [`Evaluator::with_deadline`] return new
/// handles onto the same caches, so a long-running service can give every
/// request its own deadline while all requests warm one memo table.
pub struct Evaluator {
    shared: Arc<SharedState>,
    /// Explicit coupled-solve options; `None` defers to
    /// [`CoupledOptions::default`] at call time (which reads the
    /// `TAC25D_FIXEDPOINT` strategy override from the environment).
    coupled: Option<CoupledOptions>,
    /// This handle's evaluation deadline. Checked before serving a miss
    /// and threaded into the coupled loop, which aborts between outer
    /// iterations. Cache hits are always served — they cost microseconds.
    deadline: Option<Instant>,
}

impl fmt::Debug for Evaluator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Evaluator")
            .field("thermal_sims", &self.thermal_sims())
            .finish_non_exhaustive()
    }
}

impl Evaluator {
    /// Creates an evaluator for a system specification.
    pub fn new(spec: SystemSpec) -> Self {
        Evaluator {
            shared: Arc::new(SharedState {
                spec,
                models: StripedCache::new(),
                evals: StripedCache::new(),
                single_unit: Mutex::new(None),
                bases: Mutex::new(HashMap::new()),
                inflight: Mutex::new(HashMap::new()),
                thermal_sims: AtomicUsize::new(0),
                surrogate: None,
            }),
            coupled: None,
            deadline: None,
        }
    }

    /// Creates an evaluator whose coupled (temperature–leakage) solves run
    /// with explicit options instead of [`CoupledOptions::default`].
    /// Verification harnesses use this to pin the fixed-point strategy per
    /// evaluator — comparing, say, Picard against Anderson in one process —
    /// without racing on the process-global `TAC25D_FIXEDPOINT` override.
    pub fn with_coupled_options(spec: SystemSpec, options: CoupledOptions) -> Self {
        Evaluator {
            coupled: Some(options),
            ..Evaluator::new(spec)
        }
    }

    /// Creates an evaluator with an attached multi-fidelity thermal
    /// surrogate. Every converged exact solve trains the surrogate's
    /// residual corrector, and [`Evaluator::predict_peak`] becomes
    /// available for surrogate-screened searches
    /// (`Fidelity::Surrogate` in the optimizer).
    pub fn with_surrogate(spec: SystemSpec, cfg: SurrogateConfig) -> Self {
        let surrogate = Arc::new(ThermalSurrogate::new(
            spec.chip.clone(),
            spec.rules,
            spec.stack_25d.clone(),
            spec.thermal.clone(),
            cfg,
        ));
        Evaluator {
            shared: Arc::new(SharedState {
                spec,
                models: StripedCache::new(),
                evals: StripedCache::new(),
                single_unit: Mutex::new(None),
                bases: Mutex::new(HashMap::new()),
                inflight: Mutex::new(HashMap::new()),
                thermal_sims: AtomicUsize::new(0),
                surrogate: Some(surrogate),
            }),
            coupled: None,
            deadline: None,
        }
    }

    /// A new handle onto the same shared caches, surrogate and counters,
    /// with no deadline and the same coupled options. The serve daemon's
    /// per-request entry point (combined with [`Evaluator::with_deadline`]).
    pub fn share(&self) -> Evaluator {
        Evaluator {
            shared: Arc::clone(&self.shared),
            coupled: self.coupled,
            deadline: None,
        }
    }

    /// A new handle onto the same shared caches whose evaluations abort
    /// with [`EvalError::Deadline`] once `deadline` passes. When this
    /// handle already carries a deadline the earlier of the two wins.
    /// Deadlines bound *fresh* thermal work: cache hits are still served
    /// after expiry (they cost microseconds and keep partial-progress
    /// responses useful).
    pub fn with_deadline(&self, deadline: Instant) -> Evaluator {
        Evaluator {
            shared: Arc::clone(&self.shared),
            coupled: self.coupled,
            deadline: Some(self.deadline.map_or(deadline, |d| d.min(deadline))),
        }
    }

    /// This handle's deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The attached surrogate, if any.
    pub fn surrogate(&self) -> Option<&Arc<ThermalSurrogate>> {
        self.shared.surrogate.as_ref()
    }

    /// The underlying system specification.
    pub fn spec(&self) -> &SystemSpec {
        &self.shared.spec
    }

    /// Builds the surrogate's view of one evaluation point: active cores
    /// and NoC watts per chiplet. `None` when the point is outside the
    /// surrogate's domain (single chip, unplaceable cores, timing-broken
    /// links) and must go to the exact solver.
    pub(crate) fn surrogate_input(
        &self,
        layout: &ChipletLayout,
        benchmark: Benchmark,
        op: OperatingPoint,
        p: u16,
    ) -> Option<SurrogateInput> {
        if layout.is_single_chip() {
            return None;
        }
        let spec = &self.shared.spec;
        let placed = place_cores(&spec.chip, layout, &spec.rules).ok()?;
        let mut active_per_chiplet = vec![0u16; layout.chiplet_count()];
        for core in mintemp_active_cores(&spec.chip, p) {
            active_per_chiplet[placed[core.0 as usize].chiplet] += 1;
        }
        let profile = benchmark.profile();
        let utilization = profile.noc_activity * f64::from(p) / f64::from(spec.chip.core_count());
        let noc_total = spec
            .noc
            .power(&spec.chip, layout, &spec.rules, op, utilization)
            .ok()?
            .total();
        let rects = layout.chiplet_rects(&spec.chip, &spec.rules);
        let chip_area: f64 = rects.iter().map(|r| r.area().value()).sum();
        let noc_per_chiplet = rects
            .iter()
            .map(|r| noc_total * r.area().value() / chip_area)
            .collect();
        Some(SurrogateInput {
            layout: *layout,
            benchmark,
            op,
            active_cores: p,
            active_per_chiplet,
            noc_per_chiplet,
        })
    }

    /// Surrogate peak-temperature estimate of one evaluation point —
    /// *no* exact thermal work. `None` without an attached surrogate or
    /// outside its domain. The estimate is advisory: feasibility claims
    /// must always come from [`Evaluator::evaluate`].
    pub fn predict_peak(
        &self,
        layout: &ChipletLayout,
        benchmark: Benchmark,
        op: OperatingPoint,
        p: u16,
    ) -> Option<Prediction> {
        let surrogate = self.shared.surrogate.as_ref()?;
        let input = self.surrogate_input(layout, benchmark, op, p)?;
        let profile = benchmark.profile();
        let core_power = &self.shared.spec.core_power;
        surrogate.predict(&input, &|t| core_power.active_power(&profile, op, t))
    }

    /// The single-chip unit response, solved lazily once per evaluator
    /// family. Like the surrogate's kernel solves, this linear solve is
    /// *not* counted as an exact coupled solve — it amortizes over every
    /// screened point of every baseline walk.
    fn single_chip_unit(&self) -> Option<SingleChipUnit> {
        {
            let cached = self.shared.single_unit.lock().expect("lock poisoned");
            if let Some(u) = *cached {
                return u;
            }
        }
        let built = (|| {
            let spec = &self.shared.spec;
            let model = self.model_for(&ChipletLayout::SingleChip).ok()?;
            let rect = ChipletLayout::SingleChip.chiplet_rects(&spec.chip, &spec.rules)[0];
            let sol = model.unit_response(0).ok()?;
            obs::counter!("evaluator.baseline_kernel_solves").inc();
            let ambient = spec.thermal.ambient.value();
            Some(SingleChipUnit {
                peak_rise: sol.peak().value() - ambient,
                mean_rise: sol.rect_avg(&rect).value() - ambient,
            })
        })();
        *self.shared.single_unit.lock().expect("lock poisoned") = Some(built);
        built
    }

    /// Tier-1 estimate of the single-chip peak at one (benchmark, op, p):
    /// the uniform-power unit response scaled by total watts, with a short
    /// mean-temperature leakage fixed point. Advisory only — the estimate
    /// screens the baseline walk and can never claim feasibility. `None`
    /// when the unit response cannot be built.
    pub(crate) fn predict_single_chip_peak(
        &self,
        benchmark: Benchmark,
        op: OperatingPoint,
        p: u16,
    ) -> Option<f64> {
        let unit = self.single_chip_unit()?;
        let spec = &self.shared.spec;
        let profile = benchmark.profile();
        let utilization = profile.noc_activity * f64::from(p) / f64::from(spec.chip.core_count());
        let noc_total = spec
            .noc
            .power(
                &spec.chip,
                &ChipletLayout::SingleChip,
                &spec.rules,
                op,
                utilization,
            )
            .ok()?
            .total();
        let ambient = spec.thermal.ambient.value();
        let mut t_mean = 60.0f64;
        let mut peak = ambient;
        for _ in 0..3 {
            let w = f64::from(p) * spec.core_power.active_power(&profile, op, Celsius(t_mean))
                + noc_total;
            if !w.is_finite() {
                return None;
            }
            peak = ambient + unit.peak_rise * w;
            if !peak.is_finite() {
                return None;
            }
            t_mean = (ambient + unit.mean_rise * w).clamp(ambient, 400.0);
        }
        Some(peak)
    }

    /// Number of distinct thermal simulations performed so far (cache
    /// misses — the paper's search-cost metric).
    pub fn thermal_sims(&self) -> usize {
        self.shared.thermal_sims.load(Ordering::Relaxed)
    }

    /// Resets the thermal-simulation counter (the caches stay warm).
    pub fn reset_sim_counter(&self) {
        self.shared.thermal_sims.store(0, Ordering::Relaxed);
    }

    /// Clears all caches and the counter.
    pub fn clear(&self) {
        self.shared.models.clear();
        self.shared.evals.clear();
        self.shared.bases.lock().expect("lock poisoned").clear();
        self.reset_sim_counter();
    }

    /// Aggregate IPS at (benchmark, op, p) — pure performance-model lookup,
    /// no thermal work (the paper runs these Sniper simulations once up
    /// front).
    pub fn ips(&self, benchmark: Benchmark, op: OperatingPoint, p: u16) -> Ips {
        system_ips(&benchmark.profile(), op, p)
    }

    fn model_for(&self, layout: &ChipletLayout) -> Result<Arc<PackageModel>, EvalError> {
        let key = layout_key(layout);
        if let Some(m) = self.shared.models.get(&key) {
            // Successive candidate evaluations of the same organization
            // share the model — and with it the thermal crate's factored
            // IC(0) preconditioner and cached reference temperature field,
            // so repeat evaluations warm-start their solves. The reuse is
            // keyed to the model (not to whichever evaluation happened to
            // run last), keeping every result independent of thread
            // scheduling and safe to memoize.
            obs::counter!("evaluator.model_reuses").inc();
            if m.layout() != layout {
                obs::counter!("evaluator.canonical_hits").inc();
            }
            return Ok(m);
        }
        let spec = &self.shared.spec;
        let single = layout.is_single_chip();
        let stack = if single {
            &spec.stack_2d
        } else {
            &spec.stack_25d
        };
        // Same-footprint layouts differ only in the cells under moved
        // chiplets, so a sibling model of the same (stack, edge) class
        // seeds an incremental assembly instead of a from-scratch one.
        let base_key = (
            single,
            layout
                .footprint_edge(&spec.chip, &spec.rules)
                .value()
                .to_bits(),
        );
        let base = self
            .shared
            .bases
            .lock()
            .expect("lock poisoned")
            .get(&base_key)
            .cloned();
        let built = match &base {
            Some(b) => PackageModel::new_like(b, layout),
            None => PackageModel::new(&spec.chip, layout, &spec.rules, stack, spec.thermal.clone()),
        };
        let model = Arc::new(built.map_err(|e| match e {
            ThermalError::Layout(l) => EvalError::Layout(l),
            other => EvalError::Thermal(other),
        })?);
        if base.is_none() {
            self.shared
                .bases
                .lock()
                .expect("lock poisoned")
                .entry(base_key)
                .or_insert_with(|| Arc::clone(&model));
        }
        self.shared.models.insert(key, Arc::clone(&model));
        Ok(model)
    }

    /// Evaluates peak temperature and power of one organization at one
    /// (benchmark, operating point, active-core count) — the full closed
    /// loop of Fig. 4(b). Results are memoized.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] for invalid layouts, solver failures or
    /// interposer links that cannot close timing. Thermal *runaway* is not
    /// an error: it yields an infeasible [`Evaluation`] with
    /// `converged == false`.
    pub fn evaluate(
        &self,
        layout: &ChipletLayout,
        benchmark: Benchmark,
        op: OperatingPoint,
        p: u16,
    ) -> Result<Arc<Evaluation>, EvalError> {
        let key = (layout_key(layout), benchmark, op.freq_mhz as u32, p);
        loop {
            if let Some(e) = self.shared.evals.get(&key) {
                obs::counter!("evaluator.cache_hits").inc();
                if e.layout != *layout {
                    // The stored evaluation came from a symmetry-equivalent
                    // parameterization of the same physical package (e.g.
                    // `Symmetric4` vs the 2×2 `Uniform` grid).
                    obs::counter!("evaluator.canonical_hits").inc();
                }
                return Ok(e);
            }
            // Single-flight: concurrent requests for the same uncached
            // point elect one leader to run the exact solve; everyone
            // else blocks on its completion (bounded by their own
            // deadline) and re-reads the cache. This is what turns N
            // simultaneous identical serve requests into one thermal
            // simulation instead of N.
            let (flight, leader) = {
                let mut inflight = self.shared.inflight.lock().expect("lock poisoned");
                match inflight.get(&key) {
                    Some(f) => (Arc::clone(f), false),
                    None => {
                        let f = Arc::new(Flight::default());
                        inflight.insert(key, Arc::clone(&f));
                        (f, true)
                    }
                }
            };
            if leader {
                let _guard = FlightGuard {
                    shared: &self.shared,
                    key,
                    flight,
                };
                let result = Arc::new(self.evaluate_uncached(layout, benchmark, op, p)?);
                self.shared.evals.insert(key, Arc::clone(&result));
                return Ok(result);
            }
            obs::counter!("evaluator.singleflight_joins").inc();
            if !flight.wait(self.deadline) {
                return Err(EvalError::Deadline {
                    outer_iterations: 0,
                });
            }
            // Leader finished (or aborted): loop to re-check the cache;
            // an aborted leader leaves it empty and this handle becomes
            // the next leader.
        }
    }

    /// The cache-miss path of [`Evaluator::evaluate`]: one exact coupled
    /// solve. Checks this handle's deadline up front and threads it into
    /// the thermal solver so long fixed-point iterations abort between
    /// outer iterations. Aborted solves are never cached.
    fn evaluate_uncached(
        &self,
        layout: &ChipletLayout,
        benchmark: Benchmark,
        op: OperatingPoint,
        p: u16,
    ) -> Result<Evaluation, EvalError> {
        if self
            .deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
        {
            return Err(EvalError::Deadline {
                outer_iterations: 0,
            });
        }
        let spec = &self.shared.spec;
        let profile = benchmark.profile();
        let model = self.model_for(layout)?;
        let placed = place_cores(&spec.chip, layout, &spec.rules)?;
        let active = mintemp_active_cores(&spec.chip, p);
        let active_rects: Vec<_> = active.iter().map(|c| placed[c.0 as usize].rect).collect();

        // NoC power, spread uniformly over the chiplets (the paper notes
        // its thermal impact is negligible; we still inject it).
        let utilization = profile.noc_activity * f64::from(p) / f64::from(spec.chip.core_count());
        let noc = spec
            .noc
            .power(&spec.chip, layout, &spec.rules, op, utilization)?;
        let noc_total = noc.total();
        let chiplet_rects = layout.chiplet_rects(&spec.chip, &spec.rules);
        let chip_area: f64 = chiplet_rects.iter().map(|r| r.area().value()).sum();

        self.shared.thermal_sims.fetch_add(1, Ordering::Relaxed);
        obs::counter!("thermal.exact_solves").inc();
        // Alias tracked by the bench/CI drift gates: exact *coupled* solves
        // the evaluator spends (cache misses), the organizer's cost metric.
        obs::counter!("evaluator.exact_solves").inc();
        let core_power = &spec.core_power;
        let mut options = self.coupled.unwrap_or_default();
        options.deadline = match (options.deadline, self.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let coupled = solve_coupled(
            &model,
            |sol| {
                let mut sources = Vec::with_capacity(active_rects.len() + chiplet_rects.len());
                for rect in &active_rects {
                    let t = match sol {
                        Some(s) => s.rect_avg(rect),
                        None => Celsius(60.0),
                    };
                    sources.push((*rect, core_power.active_power(&profile, op, t)));
                }
                for rect in &chiplet_rects {
                    sources.push((*rect, noc_total * rect.area().value() / chip_area));
                }
                sources
            },
            &options,
        );

        let eval = match coupled {
            Ok(c) => Evaluation {
                layout: *layout,
                benchmark,
                op,
                active_cores: p,
                peak: c.solution.peak(),
                total_power: Watts(c.solution.total_power()),
                noc_power: Watts(noc_total),
                ips: self.ips(benchmark, op, p),
                converged: c.converged,
                energy_balance_error: c.solution.energy_balance_error(),
                chiplet_peaks: chiplet_rects
                    .iter()
                    .map(|r| c.solution.rect_max(r))
                    .collect(),
                outer_iterations: c.outer_iterations,
            },
            Err(ThermalError::Runaway { peak }) => Evaluation {
                layout: *layout,
                benchmark,
                op,
                active_cores: p,
                peak,
                total_power: Watts(f64::NAN),
                noc_power: Watts(noc_total),
                ips: self.ips(benchmark, op, p),
                converged: false,
                energy_balance_error: f64::NAN,
                chiplet_peaks: Vec::new(),
                outer_iterations: 0,
            },
            Err(ThermalError::DeadlineExpired { outer_iterations }) => {
                return Err(EvalError::Deadline { outer_iterations })
            }
            Err(other) => return Err(EvalError::Thermal(other)),
        };
        // Every converged exact solve doubles as surrogate training data.
        if let Some(surrogate) = &self.shared.surrogate {
            if eval.converged {
                if let Some(input) = self.surrogate_input(layout, benchmark, op, p) {
                    surrogate.observe(
                        &input,
                        &|t| core_power.active_power(&profile, op, t),
                        eval.peak,
                    );
                }
            }
        }
        Ok(eval)
    }
}

/// The best single-chip operating point under the threshold — the paper's
/// normalization baseline (`IPS_2D` in Eq. (5)).
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Chosen operating point.
    pub op: OperatingPoint,
    /// Chosen active core count.
    pub active_cores: u16,
    /// Achieved performance.
    pub ips: Ips,
    /// Peak temperature at that point.
    pub peak: Celsius,
    /// Single-chip manufacturing cost (`C_2D`).
    pub cost: f64,
}

/// Finds the maximum-IPS feasible single-chip operating point for a
/// benchmark, or `None` if even the slowest point violates the threshold.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn single_chip_baseline(
    ev: &Evaluator,
    benchmark: Benchmark,
) -> Result<Option<Baseline>, EvalError> {
    single_chip_baseline_screened(ev, benchmark, false)
}

/// Margin above the threshold under which a screened baseline candidate
/// still gets an exact solve. The uniform-power unit-response estimate is
/// biased both ways (it smears the mintemp active-core pattern and feeds
/// leakage the chip-mean temperature), but across the corpus its error
/// stays well inside this band, so the walk's chosen point — always
/// exact-solver-verified — never changes.
pub const BASELINE_GUARD_BAND_C: f64 = 15.0;

/// [`single_chip_baseline`] with an optional tier-1 screen over the walk:
/// candidates whose unit-response estimate exceeds
/// `threshold + BASELINE_GUARD_BAND_C` are skipped without an exact solve.
/// The returned baseline is always exact-solver-backed either way; the
/// screen only prunes clearly-infeasible prefix candidates.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn single_chip_baseline_screened(
    ev: &Evaluator,
    benchmark: Benchmark,
    screen: bool,
) -> Result<Option<Baseline>, EvalError> {
    let spec = ev.spec();
    let mut candidates: Vec<(OperatingPoint, u16, Ips)> = Vec::new();
    for &op in spec.vf.points() {
        for &p in &spec.core_counts {
            candidates.push((op, p, ev.ips(benchmark, op, p)));
        }
    }
    candidates.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("IPS is finite"));
    for (op, p, ips) in candidates {
        if screen {
            if let Some(pred) = ev.predict_single_chip_peak(benchmark, op, p) {
                if pred > spec.threshold.value() + BASELINE_GUARD_BAND_C {
                    obs::counter!("evaluator.baseline_screen_skips").inc();
                    continue;
                }
            }
        }
        let e = ev.evaluate(&ChipletLayout::SingleChip, benchmark, op, p)?;
        if e.feasible(spec.threshold) {
            return Ok(Some(Baseline {
                op,
                active_cores: p,
                ips,
                peak: e.peak,
                cost: spec.cost.single_chip_cost(spec.chip.area().value()),
            }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac25d_floorplan::units::Mm;

    fn evaluator() -> Evaluator {
        let mut spec = SystemSpec::fast();
        spec.thermal.grid = 16; // keep unit tests snappy
        Evaluator::new(spec)
    }

    #[test]
    fn evaluate_single_chip_high_power_violates_85c() {
        // Fig. 5: high-power benchmarks far exceed 85 °C on a single chip
        // at 1 GHz with all cores active.
        let ev = evaluator();
        let op = ev.spec().vf.nominal();
        let e = ev
            .evaluate(&ChipletLayout::SingleChip, Benchmark::Shock, op, 256)
            .unwrap();
        assert!(e.peak.value() > 100.0, "shock peak {}", e.peak);
        assert!(!e.feasible(Celsius(85.0)));
        assert!(e.total_power.value() > 250.0, "power {}", e.total_power);
    }

    #[test]
    fn wide_16_chiplet_system_reclaims_shock() {
        // Fig. 5: shock meets 85 °C with 16 chiplets at 10 mm spacing.
        let ev = evaluator();
        let op = ev.spec().vf.nominal();
        let layout = ChipletLayout::Uniform {
            r: 4,
            gap: Mm(10.0),
        };
        let e = ev.evaluate(&layout, Benchmark::Shock, op, 256).unwrap();
        assert!(
            e.feasible(Celsius(85.0)),
            "shock on 16 chiplets @10mm peaked at {}",
            e.peak
        );
    }

    #[test]
    fn low_power_benchmark_is_cooler() {
        let ev = evaluator();
        let op = ev.spec().vf.nominal();
        let hot = ev
            .evaluate(&ChipletLayout::SingleChip, Benchmark::Shock, op, 256)
            .unwrap();
        let cool = ev
            .evaluate(&ChipletLayout::SingleChip, Benchmark::Canneal, op, 256)
            .unwrap();
        assert!(cool.peak < hot.peak);
    }

    #[test]
    fn fewer_active_cores_run_cooler() {
        let ev = evaluator();
        let op = ev.spec().vf.nominal();
        let full = ev
            .evaluate(&ChipletLayout::SingleChip, Benchmark::Cholesky, op, 256)
            .unwrap();
        let half = ev
            .evaluate(&ChipletLayout::SingleChip, Benchmark::Cholesky, op, 128)
            .unwrap();
        assert!(half.peak < full.peak);
        assert!(half.total_power < full.total_power);
    }

    #[test]
    fn dvfs_reduces_temperature() {
        let ev = evaluator();
        let t = &ev.spec().vf;
        let fast = ev
            .evaluate(
                &ChipletLayout::SingleChip,
                Benchmark::Cholesky,
                t.nominal(),
                256,
            )
            .unwrap();
        let slow = ev
            .evaluate(
                &ChipletLayout::SingleChip,
                Benchmark::Cholesky,
                t.at_frequency(533.0).unwrap(),
                256,
            )
            .unwrap();
        assert!(slow.peak.value() < fast.peak.value() - 10.0);
    }

    #[test]
    fn cache_avoids_repeat_simulations() {
        let ev = evaluator();
        let op = ev.spec().vf.nominal();
        let layout = ChipletLayout::Symmetric4 { s3: Mm(4.0) };
        let _ = ev.evaluate(&layout, Benchmark::Hpccg, op, 256).unwrap();
        let sims = ev.thermal_sims();
        let _ = ev.evaluate(&layout, Benchmark::Hpccg, op, 256).unwrap();
        assert_eq!(ev.thermal_sims(), sims, "second call must hit the cache");
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn baseline_picks_feasible_maximum() {
        let ev = evaluator();
        let b = single_chip_baseline(&ev, Benchmark::Cholesky)
            .unwrap()
            .expect("cholesky has a feasible baseline");
        assert!(b.peak.value() <= 85.0 + 1e-9);
        // The single chip cannot run cholesky at the nominal point with all
        // cores (paper Fig. 8: its baseline is throttled to 533 MHz); the
        // baseline must leave headroom below the unconstrained maximum.
        let unconstrained = ev.ips(Benchmark::Cholesky, ev.spec().vf.nominal(), 256);
        assert!(
            b.ips.0 < 0.8 * unconstrained.0,
            "cholesky baseline {} should sit well below the 1 GHz/256-core maximum {}",
            b.ips,
            unconstrained
        );
        assert!(b.cost > 0.0);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn baseline_of_low_power_benchmark_runs_at_full_speed() {
        let ev = evaluator();
        let b = single_chip_baseline(&ev, Benchmark::Canneal)
            .unwrap()
            .expect("canneal has a feasible baseline");
        assert_eq!(b.op.freq_mhz, 1000.0, "canneal is thermally easy");
        // canneal saturates at 192 cores: more cores reduce IPS.
        assert_eq!(b.active_cores, 192);
    }

    #[test]
    fn shared_handles_warm_one_cache() {
        let ev = evaluator();
        let op = ev.spec().vf.nominal();
        let layout = ChipletLayout::Symmetric4 { s3: Mm(3.0) };
        let a = ev.share();
        let _ = a.evaluate(&layout, Benchmark::Hpccg, op, 128).unwrap();
        let sims = ev.thermal_sims();
        assert_eq!(sims, 1, "handle's solve must count on the shared state");
        let b = ev.share();
        let _ = b.evaluate(&layout, Benchmark::Hpccg, op, 128).unwrap();
        assert_eq!(ev.thermal_sims(), sims, "second handle must hit the cache");
    }

    #[test]
    fn expired_deadline_aborts_misses_but_serves_hits() {
        let ev = evaluator();
        let op = ev.spec().vf.nominal();
        let layout = ChipletLayout::Symmetric4 { s3: Mm(5.0) };
        let expired = ev.with_deadline(Instant::now());
        let err = expired
            .evaluate(&layout, Benchmark::Hpccg, op, 128)
            .unwrap_err();
        assert!(err.is_deadline(), "got {err}");
        assert_eq!(ev.thermal_sims(), 0, "no thermal work past the deadline");
        // Warm the cache without a deadline, then the expired handle must
        // still serve the hit (partial-progress responses stay useful).
        let _ = ev.evaluate(&layout, Benchmark::Hpccg, op, 128).unwrap();
        let hit = ev
            .with_deadline(Instant::now())
            .evaluate(&layout, Benchmark::Hpccg, op, 128);
        assert!(hit.is_ok(), "cache hits are served after expiry");
    }

    #[test]
    fn concurrent_identical_misses_coalesce_to_one_solve() {
        let ev = evaluator();
        let op = ev.spec().vf.nominal();
        let layout = ChipletLayout::Symmetric4 { s3: Mm(7.0) };
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = ev.share();
                s.spawn(move || {
                    h.evaluate(&layout, Benchmark::Hpccg, op, 64).unwrap();
                });
            }
        });
        assert_eq!(
            ev.thermal_sims(),
            1,
            "single-flight must elect one leader for one key"
        );
    }
}
