//! Calibration probe (ignored): single-chip feasibility frontier.
use tac25d_core::prelude::*;
use tac25d_floorplan::organization::ChipletLayout;

#[test]
#[ignore]
fn probe_baselines() {
    for htc in [1400.0, 1500.0, 1600.0] {
        let mut spec = SystemSpec::fast();
        spec.thermal.htc = htc;
        let ev = Evaluator::new(spec);
        let t533 = ev.spec().vf.at_frequency(533.0).unwrap();
        let t1000 = ev.spec().vf.nominal();
        for (b, op, p) in [
            (Benchmark::Cholesky, t533, 256u16),
            (Benchmark::Shock, t533, 256),
            (Benchmark::Blackscholes, t533, 256),
            (Benchmark::Hpccg, t1000, 160),
            (Benchmark::Swaptions, t1000, 224),
            (Benchmark::Canneal, t1000, 192),
        ] {
            let e = ev.evaluate(&ChipletLayout::SingleChip, b, op, p).unwrap();
            println!("htc {htc}: {b} @{op} p={p}: peak {:.1}", e.peak.value());
        }
    }
}
