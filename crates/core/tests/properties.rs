//! Property-based tests of the organizer's pure (non-thermal) components.

use proptest::prelude::*;
use tac25d_core::evaluator::{layout_key, quarter_mm};
use tac25d_core::prelude::*;
use tac25d_floorplan::chip::ChipSpec;
use tac25d_floorplan::organization::{ChipletLayout, Spacing};
use tac25d_floorplan::units::Mm;
use tac25d_power::dvfs::VfTable;
use tac25d_power::perf::Ips;

fn any_policy() -> impl Strategy<Value = AllocationPolicy> {
    prop::sample::select(vec![
        AllocationPolicy::Mintemp,
        AllocationPolicy::Clustered,
        AllocationPolicy::InnerFirst,
        AllocationPolicy::Checkerboard,
    ])
}

fn any_benchmark() -> impl Strategy<Value = Benchmark> {
    prop::sample::select(Benchmark::all().to_vec())
}

proptest! {
    /// Every allocation policy returns exactly p distinct, in-range cores,
    /// sorted ascending.
    #[test]
    fn allocations_are_wellformed(p in 1u16..=256, policy in any_policy()) {
        let chip = ChipSpec::scc_256();
        let cores = active_cores(&chip, p, policy);
        prop_assert_eq!(cores.len(), p as usize);
        prop_assert!(cores.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(cores.iter().all(|c| c.0 < 256));
    }

    /// Mintemp's selection is a prefix of its own priority order: growing
    /// p never evicts a previously chosen core.
    #[test]
    fn mintemp_prefix_property(p1 in 1u16..=255, dp in 1u16..=64) {
        let chip = ChipSpec::scc_256();
        let p2 = (p1 + dp).min(256);
        let small: std::collections::BTreeSet<_> =
            mintemp_active_cores(&chip, p1).into_iter().collect();
        let big: std::collections::BTreeSet<_> =
            mintemp_active_cores(&chip, p2).into_iter().collect();
        prop_assert!(small.is_subset(&big));
    }

    /// The Eq. (5) objective is monotone: more IPS or less cost never
    /// increases it.
    #[test]
    fn objective_monotonicity(
        alpha in 0.0..1.0f64,
        ips in 1.0..1e12f64,
        dips in 0.0..1e11f64,
        cost in 1.0..100.0f64,
        dcost in 0.0..50.0f64,
    ) {
        prop_assume!(alpha > 0.0);
        let w = Weights::new(alpha, 1.0 - alpha);
        let base_ips = Ips(5e11);
        let base_cost = 56.0;
        let v0 = objective_value(w, base_ips, Ips(ips), cost, base_cost);
        let faster = objective_value(w, base_ips, Ips(ips + dips), cost, base_cost);
        prop_assert!(faster <= v0 + 1e-12);
        if 1.0 - alpha > 0.0 && dcost > 0.0 {
            let cheaper = objective_value(w, base_ips, Ips(ips), (cost - dcost).max(0.01), base_cost);
            prop_assert!(cheaper <= v0 + 1e-12);
        }
    }

    /// Candidate enumeration is stable: sorted by objective, and every
    /// candidate's cost/IPS/objective are mutually consistent.
    #[test]
    fn candidates_internally_consistent(seed_alpha in 0.1..0.9f64, b in any_benchmark()) {
        // Pure except the single-chip baseline, which is cached per run —
        // keep the evaluator tiny.
        let mut spec = SystemSpec::fast();
        spec.thermal.grid = 12;
        spec.edge_step = tac25d_floorplan::units::Mm(10.0);
        let ev = Evaluator::new(spec);
        let w = Weights::new(seed_alpha, 1.0 - seed_alpha);
        let Ok((cands, baseline)) = enumerate_candidates(&ev, b, w, &ChipletCount::both()) else {
            // Benchmarks without a feasible baseline are acceptable here.
            return Ok(());
        };
        prop_assert!(cands.windows(2).all(|x| x[0].objective <= x[1].objective + 1e-12));
        for c in cands.iter().take(50) {
            let expect = objective_value(w, baseline.ips, c.ips, c.cost, baseline.cost);
            prop_assert!((c.objective - expect).abs() < 1e-9);
        }
    }

    /// IPS used by candidates equals the standalone performance model.
    #[test]
    fn evaluator_ips_matches_model(b in any_benchmark(), p_idx in 0usize..8) {
        let mut spec = SystemSpec::fast();
        spec.thermal.grid = 12;
        let p = spec.core_counts[p_idx];
        let ev = Evaluator::new(spec);
        let op = VfTable::paper().nominal();
        let a = ev.ips(b, op, p);
        let e = tac25d_power::perf::system_ips(&b.profile(), op, p);
        prop_assert_eq!(a.0, e.0);
    }

    /// The evaluator's integer cache key is injective on the 0.5 mm
    /// spacing lattice: two on-lattice Symmetric16 layouts share a key
    /// exactly when their spacing triples are identical.
    #[test]
    fn cache_key_injective_on_half_mm_lattice(
        a in (0i64..=100, 0i64..=100, 0i64..=100),
        b in (0i64..=100, 0i64..=100, 0i64..=100),
    ) {
        let layout = |(s1, s2, s3): (i64, i64, i64)| ChipletLayout::Symmetric16 {
            spacing: Spacing::new(s1 as f64 * 0.5, s2 as f64 * 0.5, s3 as f64 * 0.5),
        };
        prop_assert_eq!(
            layout_key(&layout(a)) == layout_key(&layout(b)),
            a == b,
            "keys must collide exactly on equal lattice points: {:?} vs {:?}", a, b
        );
    }

    /// Canonical folding: parameterizations of the same physical package
    /// share one key — `Symmetric4 { s3 }` *is* the 2×2 uniform grid with
    /// gap s3, and a uniform-spaced `Symmetric16` *is* the 4×4 uniform
    /// grid — while layouts of different physical packages never collide.
    #[test]
    fn cache_key_canonical_under_symmetry_group(s in 0i64..=100, g in 0i64..=100) {
        let sv = s as f64 * 0.5;
        let gv = g as f64 * 0.5;
        let sym4 = ChipletLayout::Symmetric4 { s3: Mm(sv) };
        let uni2 = ChipletLayout::Uniform { r: 2, gap: Mm(sv) };
        let sym16u = ChipletLayout::Symmetric16 { spacing: Spacing::uniform(Mm(gv)) };
        let uni4 = ChipletLayout::Uniform { r: 4, gap: Mm(gv) };
        // Symmetry-equivalent aliases fold onto one canonical key…
        prop_assert_eq!(layout_key(&sym4), layout_key(&uni2));
        prop_assert_eq!(layout_key(&sym16u), layout_key(&uni4));
        // …but 4- and 16-chiplet classes never meet, nor the single chip.
        prop_assert!(layout_key(&sym4) != layout_key(&uni4));
        prop_assert!(layout_key(&sym4) != layout_key(&sym16u));
        prop_assert!(layout_key(&uni2) != layout_key(&ChipletLayout::SingleChip));
        // A Symmetric16 off the uniform-grid manifold keeps its own key
        // ((s, s, s) is uniform only at s = 0, where s2 = s3/2 = 0).
        if s > 0 {
            let skew = ChipletLayout::Symmetric16 {
                spacing: Spacing::new(sv, sv, sv),
            };
            prop_assert!(layout_key(&skew) != layout_key(&uni4));
            prop_assert!(layout_key(&skew) != layout_key(&sym16u));
        }
        // Injective across non-equivalent members of one class.
        if s != g {
            prop_assert!(layout_key(&sym4) != layout_key(&ChipletLayout::Uniform { r: 2, gap: Mm(gv) }));
            prop_assert!(layout_key(&sym16u) != layout_key(&ChipletLayout::Symmetric16 { spacing: Spacing::uniform(Mm(sv)) }));
        }
    }

    /// Off-lattice spacings snap to the nearest lattice point, and any two
    /// values within the same snap cell share a key (cache consistency:
    /// a value never lands farther than 0.125 mm from its snapped point).
    #[test]
    fn off_lattice_spacings_snap_consistently(v in 0.0..50.0f64) {
        let snapped = quarter_mm(v);
        prop_assert!((v - snapped as f64 * 0.25).abs() <= 0.125 + 1e-12);
        // Snapping is idempotent: the snapped value is on the lattice.
        prop_assert_eq!(quarter_mm(snapped as f64 * 0.25), snapped);
        // And a layout built from the off-lattice value shares its cache
        // key with the layout built from the snapped value.
        let off = ChipletLayout::Symmetric4 { s3: Mm(v) };
        let on = ChipletLayout::Symmetric4 { s3: Mm(snapped as f64 * 0.25) };
        prop_assert_eq!(layout_key(&off), layout_key(&on));
    }
}
