//! Closed-form analytic placement stage: a differentiable peak-temperature
//! proxy over the *continuous* spacing parameters of the 16-chiplet
//! organization, with exact analytic gradients and a projected-gradient
//! descender.
//!
//! The exact coupled solver and the tier-1 kernel surrogate both operate
//! on the 0.5 mm spacing lattice; neither exposes a gradient, so the
//! multi-start greedy explores blindly. This module trades fidelity for
//! differentiability: each chiplet's power footprint is modelled as a
//! uniform square source under a Gaussian point-spread of width `σ`
//! (the package's lateral heat-spreading length), whose superposed
//! temperature rise has a closed form in products of error functions —
//! the classic Gaussian-integral kernel of analytical thermal placers.
//! Peak temperature is smoothed with a log-sum-exp over the chiplet-center
//! probes so the objective is C^∞ everywhere, and the paper's fixed-edge
//! manifold constraint `2·s1 + s3 = const` (Eq. 9) is eliminated by
//! substitution: the descent runs over `(s1, s2)` alone with `s3` implied,
//! and Eq. (10) reduces to the box `0 ≤ s1, s2 ≤ free/2` handled by
//! projection.
//!
//! The proxy is *only* a seeding heuristic: its minima are snapped to the
//! search lattice and handed to the screened greedy as start points. No
//! feasibility claim ever rests on it, so its absolute calibration is
//! deliberately loose — what matters is that its basins coincide with the
//! exact solver's cool placements, which `verify seed` checks end-to-end
//! (decision equality) and the proptests check locally (gradient
//! consistency).
//!
//! Everything here is deterministic: restarts come from a fixed fractional
//! grid of the box, not an RNG, so two runs with the same inputs produce
//! bit-identical seeds on every platform with IEEE-754 doubles.

/// Error function, evaluated via the cancellation-free confluent
/// hypergeometric series `erf(x) = 2x/√π · e^{−x²} · Σ (2x²)^n/(2n+1)!!`
/// (all terms positive), accurate to ~1 ulp over the range the kernel
/// uses. Saturates to ±1 beyond |x| ≥ 6 where 1 − |erf| < 1e-16.
#[must_use]
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let ax = x.abs();
    if ax >= 6.0 {
        return x.signum();
    }
    let z = ax * ax;
    let mut term = ax;
    let mut sum = ax;
    let mut n = 0u32;
    while n < 300 {
        n += 1;
        term *= 2.0 * z / (2.0 * f64::from(n) + 1.0);
        let next = sum + term;
        if next == sum {
            break;
        }
        sum = next;
    }
    let val = core::f64::consts::FRAC_2_SQRT_PI * (-z).exp() * sum;
    val.copysign(x)
}

/// Exact derivative of [`erf`]: `2/√π · e^{−x²}`.
#[must_use]
pub fn derf(x: f64) -> f64 {
    core::f64::consts::FRAC_2_SQRT_PI * (-x * x).exp()
}

/// Tunables of the analytic proxy and its descender. Defaults are loose
/// physical calibrations for the paper's package (silicon interposer
/// under a copper spreader): they only need to reproduce the *shape* of
/// the exact landscape, not its values.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticConfig {
    /// Lateral heat-spreading length of the package stack, mm.
    pub sigma_mm: f64,
    /// Peak self-rise per watt of a chiplet footprint, °C/W.
    pub rise_per_watt: f64,
    /// Uniform far-field rise per total watt, °C/W (a spacing-independent
    /// offset that keeps the proxy temperature-like; no gradient).
    pub background_per_watt: f64,
    /// Log-sum-exp smoothing temperature for the peak, °C. Smaller is
    /// sharper (closer to a hard max) but less smooth.
    pub smooth_max_c: f64,
    /// Maximum projected-gradient iterations per restart.
    pub max_iters: usize,
    /// Convergence threshold on the projected step length, mm.
    pub step_tol_mm: f64,
}

impl Default for AnalyticConfig {
    fn default() -> Self {
        AnalyticConfig {
            sigma_mm: 3.0,
            rise_per_watt: 0.3,
            background_per_watt: 0.02,
            smooth_max_c: 0.75,
            max_iters: 60,
            step_tol_mm: 1e-4,
        }
    }
}

/// The fixed-edge 16-chiplet spacing manifold: chiplet geometry plus the
/// per-chiplet power map, everything the proxy needs to place sources.
///
/// Coordinates follow `ChipletLayout::chiplet_rects`: row-major over the
/// 4×4 grid, chiplet 0 at the lower-left, outer-ring chiplets on the
/// `[s1, s3, s1]` grid and the four centre chiplets at `±s2` around the
/// interposer centre lines, with `s3 = free − 2·s1` implied.
#[derive(Debug, Clone)]
pub struct Manifold16 {
    /// Chiplet edge length, mm.
    pub wc: f64,
    /// Interposer guard band, mm.
    pub guard: f64,
    /// The manifold constant `2·s1 + s3`, mm (edge − 4·wc − 2·guard).
    pub free: f64,
    /// Dissipated power per chiplet, watts, in `chiplet_rects` order.
    pub watts: [f64; 16],
}

/// One continuous optimum found by [`Manifold16::descend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticOptimum {
    /// Outer-ring spacing, mm.
    pub s1_mm: f64,
    /// Centre-chiplet offset, mm.
    pub s2_mm: f64,
    /// Smoothed peak-rise proxy at the optimum, °C.
    pub peak_proxy_c: f64,
}

/// Result of a full multi-restart descent.
#[derive(Debug, Clone)]
pub struct DescentOutcome {
    /// Local optima, ascending by proxy value (coolest first), one per
    /// restart (duplicates are not removed — snapping dedupes).
    pub optima: Vec<AnalyticOptimum>,
    /// Objective+gradient evaluations spent across all restarts.
    pub grad_evals: usize,
}

/// Deterministic restart pattern, as fractions of the `[0, free/2]` box:
/// the box centre, its four quadrant midpoints, and the near-origin
/// corner (the greedy's historic bias towards small spacings).
const RESTART_FRACTIONS: [(f64, f64); 6] = [
    (0.5, 0.5),
    (0.25, 0.25),
    (0.75, 0.75),
    (0.25, 0.75),
    (0.75, 0.25),
    (0.05, 0.05),
];

impl Manifold16 {
    /// Upper bound of both box coordinates: `s1 ≤ free/2` keeps `s3 ≥ 0`
    /// and `s2 ≤ free/2` is exactly Eq. (10) on the fixed-edge manifold.
    #[must_use]
    pub fn half_free(&self) -> f64 {
        (self.free / 2.0).max(0.0)
    }

    /// Projects a point onto the feasible box — the manifold constraint
    /// itself is enforced by construction (`s3` is never a free
    /// variable), so projection is a clamp.
    #[must_use]
    pub fn project(&self, s1: f64, s2: f64) -> (f64, f64) {
        let hi = self.half_free();
        (s1.clamp(0.0, hi), s2.clamp(0.0, hi))
    }

    /// Chiplet-centre coordinates along one axis for grid position
    /// `idx ∈ 0..4`, plus the derivatives ∂/∂s1 and ∂/∂s2. `inner` marks
    /// the centre-block cells (grid positions 1 and 2 of an inner
    /// row/column).
    fn axis_center(&self, idx: usize, inner: bool, s1: f64, s2: f64) -> (f64, f64, f64) {
        let half = self.wc / 2.0;
        let lg = self.guard;
        let wc = self.wc;
        if inner {
            // Centre of the interposer: edge/2 = lg + 2·wc + free/2.
            let c = lg + 2.0 * wc + self.free / 2.0;
            match idx {
                1 => (c - s2 - half, 0.0, -1.0),
                2 => (c + s2 + half, 0.0, 1.0),
                _ => unreachable!("inner cells sit at grid positions 1 and 2"),
            }
        } else {
            match idx {
                0 => (lg + half, 0.0, 0.0),
                1 => (lg + wc + s1 + half, 1.0, 0.0),
                // s3 = free − 2·s1 makes this lg + 2wc + free − s1 + half.
                2 => (lg + 2.0 * wc + self.free - s1 + half, -1.0, 0.0),
                3 => (lg + 3.0 * wc + self.free + half, 0.0, 0.0),
                _ => unreachable!("grid positions are 0..4"),
            }
        }
    }

    /// All 16 chiplet centres and their position Jacobians at `(s1, s2)`:
    /// `(x, dx/ds1, dx/ds2, y, dy/ds1, dy/ds2)` in `chiplet_rects` order.
    fn centers(&self, s1: f64, s2: f64) -> [(f64, f64, f64, f64, f64, f64); 16] {
        let mut out = [(0.0, 0.0, 0.0, 0.0, 0.0, 0.0); 16];
        for row in 0..4 {
            for col in 0..4 {
                let inner = (1..=2).contains(&row) && (1..=2).contains(&col);
                let (x, dx1, dx2) = self.axis_center(col, inner, s1, s2);
                let (y, dy1, dy2) = self.axis_center(row, inner, s1, s2);
                out[row * 4 + col] = (x, dx1, dx2, y, dy1, dy2);
            }
        }
        out
    }

    /// The smoothed peak-rise proxy and its exact gradient at `(s1, s2)`.
    ///
    /// Rise at probe `p` from source `j` is the Gaussian-integral kernel
    /// `w_j·A·F(px−cx_j)·F(py−cy_j)` with
    /// `F(d) = (erf((d+h)/σ√2) − erf((d−h)/σ√2))/2` (`h` = half the
    /// chiplet edge), probes at the 16 chiplet centres, and the peak is
    /// `τ·ln Σ_p exp(T_p/τ)`. Both probes and sources move with the
    /// spacing parameters, so the gradient carries both terms.
    #[must_use]
    pub fn objective_grad(&self, cfg: &AnalyticConfig, s1: f64, s2: f64) -> (f64, f64, f64) {
        let c = self.centers(s1, s2);
        let h = self.wc / 2.0;
        let s = cfg.sigma_mm * core::f64::consts::SQRT_2;
        let amp = cfg.rise_per_watt;
        // F and F' of the one-axis footprint integral.
        let f_axis = |d: f64| (erf((d + h) / s) - erf((d - h) / s)) / 2.0;
        let df_axis = |d: f64| (derf((d + h) / s) - derf((d - h) / s)) / (2.0 * s);
        let total: f64 = self.watts.iter().sum();
        let base = cfg.background_per_watt * total;
        // Per-probe rise and its gradient.
        let mut t = [0.0f64; 16];
        let mut g1 = [0.0f64; 16];
        let mut g2 = [0.0f64; 16];
        for (p, probe) in c.iter().enumerate() {
            let (px, px1, px2, py, py1, py2) = *probe;
            let mut acc = base;
            let (mut a1, mut a2) = (0.0, 0.0);
            for (j, src) in c.iter().enumerate() {
                let (cx, cx1, cx2, cy, cy1, cy2) = *src;
                let (dx, dy) = (px - cx, py - cy);
                let (fx, fy) = (f_axis(dx), f_axis(dy));
                let w = self.watts[j] * amp;
                acc += w * fx * fy;
                let dfx = df_axis(dx);
                let dfy = df_axis(dy);
                a1 += w * (dfx * (px1 - cx1) * fy + fx * dfy * (py1 - cy1));
                a2 += w * (dfx * (px2 - cx2) * fy + fx * dfy * (py2 - cy2));
            }
            t[p] = acc;
            g1[p] = a1;
            g2[p] = a2;
        }
        // Log-sum-exp smooth max (shift by the hard max for stability).
        let tau = cfg.smooth_max_c;
        let m = t.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let mut z = 0.0;
        let mut zg1 = 0.0;
        let mut zg2 = 0.0;
        for p in 0..16 {
            let e = ((t[p] - m) / tau).exp();
            z += e;
            zg1 += e * g1[p];
            zg2 += e * g2[p];
        }
        (m + tau * (z / 16.0).ln(), zg1 / z, zg2 / z)
    }

    /// Multi-restart projected-gradient descent over the box. Fully
    /// deterministic: fixed restart pattern, fixed backtracking schedule.
    #[must_use]
    pub fn descend(&self, cfg: &AnalyticConfig) -> DescentOutcome {
        let hi = self.half_free();
        let mut optima = Vec::with_capacity(RESTART_FRACTIONS.len());
        let mut grad_evals = 0usize;
        for &(f1, f2) in &RESTART_FRACTIONS {
            let (mut x1, mut x2) = (f1 * hi, f2 * hi);
            let (mut val, mut d1, mut d2) = self.objective_grad(cfg, x1, x2);
            grad_evals += 1;
            // Initial step sized to the box so the first probe is a
            // meaningful fraction of the search range.
            let mut step = (hi / 4.0).max(cfg.step_tol_mm);
            for _ in 0..cfg.max_iters {
                let gnorm = d1.hypot(d2);
                if gnorm * step < 1e-12 {
                    break;
                }
                // Backtracking: shrink until the projected step improves.
                let mut accepted = false;
                for _ in 0..25 {
                    let (n1, n2) = self.project(x1 - step * d1, x2 - step * d2);
                    let moved = (n1 - x1).hypot(n2 - x2);
                    if moved < cfg.step_tol_mm {
                        break;
                    }
                    let (nval, nd1, nd2) = self.objective_grad(cfg, n1, n2);
                    grad_evals += 1;
                    if nval < val - 1e-10 {
                        x1 = n1;
                        x2 = n2;
                        val = nval;
                        d1 = nd1;
                        d2 = nd2;
                        step = (step * 1.5).min(hi.max(cfg.step_tol_mm));
                        accepted = true;
                        break;
                    }
                    step *= 0.5;
                }
                if !accepted {
                    break;
                }
            }
            optima.push(AnalyticOptimum {
                s1_mm: x1,
                s2_mm: x2,
                peak_proxy_c: val,
            });
        }
        optima.sort_by(|a, b| {
            a.peak_proxy_c
                .partial_cmp(&b.peak_proxy_c)
                .expect("proxy values are finite")
                .then(a.s1_mm.partial_cmp(&b.s1_mm).expect("finite"))
                .then(a.s2_mm.partial_cmp(&b.s2_mm).expect("finite"))
        });
        DescentOutcome { optima, grad_evals }
    }
}

/// Snaps continuous optima to the spacing lattice, deduplicating while
/// preserving order (coolest proxy first), clamped to the same bounds the
/// greedy searches. Returns at most `k` distinct `(s1_units, s2_units)`
/// lattice coordinates.
#[must_use]
pub fn snap_to_lattice(
    optima: &[AnalyticOptimum],
    step_mm: f64,
    s1_max_units: i64,
    s2_max_units: i64,
    k: usize,
) -> Vec<(i64, i64)> {
    let mut out: Vec<(i64, i64)> = Vec::with_capacity(k);
    for o in optima {
        let pt = (
            ((o.s1_mm / step_mm).round() as i64).clamp(0, s1_max_units),
            ((o.s2_mm / step_mm).round() as i64).clamp(0, s2_max_units),
        );
        if !out.contains(&pt) {
            out.push(pt);
            if out.len() == k {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifold(free: f64, watts: [f64; 16]) -> Manifold16 {
        Manifold16 {
            wc: 4.5,
            guard: 1.0,
            free,
            watts,
        }
    }

    fn uniform_watts(w: f64) -> [f64; 16] {
        [w; 16]
    }

    #[test]
    fn erf_matches_known_values() {
        // Abramowitz & Stegun table values.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_877_8),
            (1.0, 0.842_700_792_9),
            (2.0, 0.995_322_265_0),
            (3.0, 0.999_977_909_5),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 1e-9, "erf({x})");
            assert!((erf(-x) + want).abs() < 1e-9, "erf(-{x})");
        }
        assert_eq!(erf(7.0), 1.0);
        assert_eq!(erf(-7.0), -1.0);
    }

    #[test]
    fn gradient_matches_central_differences() {
        let m = manifold(
            12.0,
            [
                10.0, 12.0, 9.0, 11.0, 13.0, 18.0, 17.0, 12.0, 11.0, 16.0, 19.0, 10.0, 9.0, 12.0,
                11.0, 10.0,
            ],
        );
        let cfg = AnalyticConfig::default();
        let h = 1e-5;
        for &(s1, s2) in &[(1.0, 2.0), (3.0, 3.0), (5.5, 0.5), (0.2, 5.8)] {
            let (_, g1, g2) = m.objective_grad(&cfg, s1, s2);
            let fd1 = (m.objective_grad(&cfg, s1 + h, s2).0 - m.objective_grad(&cfg, s1 - h, s2).0)
                / (2.0 * h);
            let fd2 = (m.objective_grad(&cfg, s1, s2 + h).0 - m.objective_grad(&cfg, s1, s2 - h).0)
                / (2.0 * h);
            let scale = g1.abs().max(fd1.abs()).max(1e-8);
            assert!(
                (g1 - fd1).abs() / scale < 1e-5,
                "ds1 at ({s1},{s2}): {g1} vs {fd1}"
            );
            let scale = g2.abs().max(fd2.abs()).max(1e-8);
            assert!(
                (g2 - fd2).abs() / scale < 1e-5,
                "ds2 at ({s1},{s2}): {g2} vs {fd2}"
            );
        }
    }

    #[test]
    fn uniform_power_optimum_spreads_the_centre() {
        // With equal power everywhere the coolest layout separates the
        // centre chiplets from each other and from the ring: the optimum
        // should not collapse to s2 = 0.
        let m = manifold(12.0, uniform_watts(14.0));
        let out = m.descend(&AnalyticConfig::default());
        let best = out.optima.first().expect("descent returns optima");
        assert!(best.s2_mm > 0.5, "uniform optimum at s2 = {}", best.s2_mm);
        assert!(out.grad_evals > 0);
    }

    #[test]
    fn descent_is_deterministic() {
        let m = manifold(9.5, uniform_watts(12.0));
        let cfg = AnalyticConfig::default();
        let a = m.descend(&cfg);
        let b = m.descend(&cfg);
        assert_eq!(a.grad_evals, b.grad_evals);
        assert_eq!(a.optima, b.optima);
    }

    #[test]
    fn iterates_stay_in_the_box_and_on_the_manifold() {
        let m = manifold(7.0, uniform_watts(15.0));
        let out = m.descend(&AnalyticConfig::default());
        for o in &out.optima {
            assert!(o.s1_mm >= 0.0 && o.s1_mm <= m.half_free() + 1e-12);
            assert!(o.s2_mm >= 0.0 && o.s2_mm <= m.half_free() + 1e-12);
            // Reconstructing s3 from the manifold constant keeps Eq. (10).
            let s3 = m.free - 2.0 * o.s1_mm;
            assert!(2.0 * o.s1_mm + s3 - 2.0 * o.s2_mm >= -1e-9);
        }
    }

    #[test]
    fn snap_dedupes_and_clamps() {
        let optima = [
            AnalyticOptimum {
                s1_mm: 1.24,
                s2_mm: 2.26,
                peak_proxy_c: 10.0,
            },
            AnalyticOptimum {
                s1_mm: 1.26,
                s2_mm: 2.24,
                peak_proxy_c: 10.1,
            },
            AnalyticOptimum {
                s1_mm: 99.0,
                s2_mm: -3.0,
                peak_proxy_c: 10.2,
            },
        ];
        let pts = snap_to_lattice(&optima, 0.5, 6, 6, 4);
        assert_eq!(pts, vec![(2, 5), (3, 4), (6, 0)]);
    }

    #[test]
    fn zero_free_manifold_degenerates_gracefully() {
        let m = manifold(0.0, uniform_watts(10.0));
        let out = m.descend(&AnalyticConfig::default());
        assert!(out.optima.iter().all(|o| o.s1_mm == 0.0 && o.s2_mm == 0.0));
    }
}
