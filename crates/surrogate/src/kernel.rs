//! Unit-power thermal response kernels, precomputed once per
//! (interposer edge, chiplet count) and reused for every spacing the
//! optimizer probes at that edge.
//!
//! The trick that keeps the precomputation tiny: the reference uniform
//! r×r layout at the candidate's interposer edge has the full dihedral
//! symmetry of the square, so only one representative chiplet per
//! symmetry class needs an exact solve — 1 class for 2×2 grids, 3
//! (corner/edge/inner) for 4×4. Any other chiplet's response is the
//! representative field pushed through the reflection/transpose that
//! maps the chiplet into the canonical lower-left octant, then
//! translated by the (small) offset between the chiplet's mapped center
//! and the representative's.

use tac25d_floorplan::chip::ChipSpec;
use tac25d_floorplan::layers::StackSpec;
use tac25d_floorplan::organization::{ChipletLayout, PackageRules};
use tac25d_floorplan::raster::Grid;
use tac25d_floorplan::units::Mm;
use tac25d_thermal::model::{PackageModel, ThermalConfig, ThermalError};

/// A reflection/transpose of the square footprint mapping one chiplet
/// position into the canonical lower-left octant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct OctantMap {
    mirror_x: bool,
    mirror_y: bool,
    transpose: bool,
}

impl OctantMap {
    /// Applies the map to a point of the `[0, footprint]²` square
    /// (mirrors about the center lines, then the diagonal transpose).
    pub(crate) fn apply(self, footprint: f64, x: f64, y: f64) -> (f64, f64) {
        let x = if self.mirror_x { footprint - x } else { x };
        let y = if self.mirror_y { footprint - y } else { y };
        if self.transpose {
            (y, x)
        } else {
            (x, y)
        }
    }
}

/// Symmetry class of chiplet `(row, col)` on an r×r grid and the octant
/// map that carries it onto the class representative.
pub(crate) fn class_of(row: usize, col: usize, r: usize) -> (usize, OctantMap) {
    debug_assert!(
        r == 2 || r == 4,
        "symmetry classes defined for r ∈ {{2, 4}}"
    );
    let mirror_y = 2 * row >= r;
    let mirror_x = 2 * col >= r;
    let row_c = if mirror_y { r - 1 - row } else { row };
    let col_c = if mirror_x { r - 1 - col } else { col };
    if r == 2 {
        return (
            0,
            OctantMap {
                mirror_x,
                mirror_y,
                transpose: false,
            },
        );
    }
    // r == 4: canonical (row, col) ∈ {0,1}²; (1,0) transposes onto (0,1).
    let transpose = (row_c, col_c) == (1, 0);
    let class = match (row_c, col_c) {
        (0, 0) => 0,
        (0, 1) | (1, 0) => 1,
        (1, 1) => 2,
        _ => unreachable!("canonicalized indices are in {{0,1}}"),
    };
    (
        class,
        OctantMap {
            mirror_x,
            mirror_y,
            transpose,
        },
    )
}

/// The grid indices of each class representative on the reference r×r
/// layout (row-major), chosen inside the canonical lower-left octant.
fn representatives(r: usize) -> Vec<usize> {
    match r {
        2 => vec![0],       // corner (0,0)
        4 => vec![0, 1, 5], // corner (0,0), edge (0,1), inner (1,1)
        _ => unreachable!("kernels are built for r ∈ {{2, 4}}"),
    }
}

/// One class representative's unit response.
#[derive(Debug, Clone)]
pub(crate) struct ClassKernel {
    /// Die-tier temperature rise over ambient per injected watt.
    pub rise: Grid,
    /// Center of the representative chiplet, footprint coordinates.
    pub rep_center: (f64, f64),
}

/// All unit responses for one (interposer edge, chiplet count) pair.
#[derive(Debug, Clone)]
pub struct KernelSet {
    pub(crate) r: usize,
    pub(crate) footprint: f64,
    pub(crate) ambient: f64,
    pub(crate) classes: Vec<ClassKernel>,
    solves: usize,
}

impl KernelSet {
    /// Builds the kernel set for interposer edge `edge` and an r×r
    /// chiplet grid, or `None` when the chiplets cannot fit that edge.
    ///
    /// # Errors
    ///
    /// Propagates thermal-model construction and solver failures.
    pub fn build(
        chip: &ChipSpec,
        rules: &PackageRules,
        stack: &StackSpec,
        thermal: &ThermalConfig,
        edge: Mm,
        r: u16,
    ) -> Result<Option<KernelSet>, ThermalError> {
        assert!(
            r == 2 || r == 4,
            "kernels are built for r ∈ {{2, 4}}, got {r}"
        );
        let wc = chip.edge().value() / f64::from(r);
        let free = edge.value() - f64::from(r) * wc - 2.0 * rules.guard.value();
        if free < -1e-9 {
            return Ok(None);
        }
        let gap = free.max(0.0) / f64::from(r - 1);
        let layout = ChipletLayout::Uniform { r, gap: Mm(gap) };
        let model = PackageModel::new(chip, &layout, rules, stack, thermal.clone())?;
        let rects = layout.chiplet_rects(chip, rules);
        let ambient = thermal.ambient.value();
        let mut classes = Vec::new();
        let mut solves = 0usize;
        for rep in representatives(usize::from(r)) {
            let sol = model.unit_response(rep)?;
            solves += 1;
            let mut rise = sol.die_grid();
            for v in 0..rise.len() {
                let (ix, iy) = (v % rise.nx(), v / rise.nx());
                *rise.get_mut(ix, iy) -= ambient;
            }
            let c = rects[rep].center();
            classes.push(ClassKernel {
                rise,
                rep_center: (c.x.value(), c.y.value()),
            });
        }
        Ok(Some(KernelSet {
            r: usize::from(r),
            footprint: model.footprint_edge().value(),
            ambient,
            classes,
            solves,
        }))
    }

    /// Exact solves spent building this set.
    pub fn solves(&self) -> usize {
        self.solves
    }

    /// Ambient temperature the rise fields are relative to.
    pub fn ambient(&self) -> f64 {
        self.ambient
    }
}

/// Bilinear sample of a cell-centered grid over `[0, footprint]²`,
/// clamped to the boundary cells outside the domain.
pub(crate) fn bilinear(grid: &Grid, footprint: f64, x: f64, y: f64) -> f64 {
    let (nx, ny) = (grid.nx(), grid.ny());
    let d = footprint / nx as f64;
    let u = (x / d - 0.5).clamp(0.0, (nx - 1) as f64);
    let v = (y / d - 0.5).clamp(0.0, (ny - 1) as f64);
    let (i0, j0) = (u.floor() as usize, v.floor() as usize);
    let (i1, j1) = ((i0 + 1).min(nx - 1), (j0 + 1).min(ny - 1));
    let (fu, fv) = (u - i0 as f64, v - j0 as f64);
    let t00 = grid.get(i0, j0);
    let t10 = grid.get(i1, j0);
    let t01 = grid.get(i0, j1);
    let t11 = grid.get(i1, j1);
    t00 * (1.0 - fu) * (1.0 - fv) + t10 * fu * (1.0 - fv) + t01 * (1.0 - fu) * fv + t11 * fu * fv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_by_four_has_three_classes() {
        let mut counts = [0usize; 3];
        for row in 0..4 {
            for col in 0..4 {
                let (class, _) = class_of(row, col, 4);
                counts[class] += 1;
            }
        }
        assert_eq!(counts, [4, 8, 4], "corner/edge/inner multiplicities");
    }

    #[test]
    fn octant_map_carries_chiplet_onto_representative() {
        // Chiplet (3, 2) of a 4×4 grid maps into the canonical octant at
        // (0, 1): its mapped grid position must be the edge representative.
        let (class, map) = class_of(3, 2, 4);
        assert_eq!(class, 1);
        // A point at relative grid position (col, row) = (2, 3) of a
        // footprint-10 square maps to (1, 0) scaled likewise.
        let (x, y) = map.apply(10.0, 2.0 * 10.0 / 4.0 + 1.25, 3.0 * 10.0 / 4.0 + 1.25);
        assert!((x - (1.0 * 2.5 + 1.25)).abs() < 1e-12, "x = {x}");
        assert!((y - (0.0 * 2.5 + 1.25)).abs() < 1e-12, "y = {y}");
    }

    #[test]
    fn two_by_two_is_a_single_class() {
        for row in 0..2 {
            for col in 0..2 {
                let (class, _) = class_of(row, col, 2);
                assert_eq!(class, 0);
            }
        }
    }

    #[test]
    fn bilinear_interpolates_between_cell_centers() {
        let mut g = Grid::filled(2, 2, 0.0);
        *g.get_mut(0, 0) = 1.0;
        *g.get_mut(1, 0) = 3.0;
        *g.get_mut(0, 1) = 5.0;
        *g.get_mut(1, 1) = 7.0;
        // Center of the 2×2 domain is equidistant from all four cells.
        assert!((bilinear(&g, 2.0, 1.0, 1.0) - 4.0).abs() < 1e-12);
        // At a cell center the sample is exact.
        assert!((bilinear(&g, 2.0, 0.5, 0.5) - 1.0).abs() < 1e-12);
        // Clamped outside the domain.
        assert!((bilinear(&g, 2.0, -5.0, -5.0) - 1.0).abs() < 1e-12);
        assert!((bilinear(&g, 2.0, 9.0, 9.0) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_set_builds_for_feasible_edges_only() {
        let chip = ChipSpec::scc_256();
        let rules = PackageRules::default();
        let thermal = ThermalConfig {
            grid: 12,
            ..ThermalConfig::default()
        };
        let set = KernelSet::build(
            &chip,
            &rules,
            &StackSpec::system_25d(),
            &thermal,
            Mm(30.0),
            4,
        )
        .unwrap()
        .expect("30 mm fits a 4×4 grid of 4.5 mm chiplets");
        assert_eq!(set.classes.len(), 3);
        assert_eq!(set.solves(), 3);
        assert!((set.footprint - 30.0).abs() < 1e-9);
        // The corner kernel is hottest at its own chiplet.
        let corner = &set.classes[0];
        let at_rep = bilinear(
            &corner.rise,
            set.footprint,
            corner.rep_center.0,
            corner.rep_center.1,
        );
        let far = bilinear(&set.classes[0].rise, set.footprint, 28.0, 28.0);
        assert!(at_rep > far, "rise at source {at_rep} vs far corner {far}");
        assert!(at_rep > 0.0);
        // 10 mm cannot fit 4×4 chiplets of 4.5 mm plus guards.
        let none = KernelSet::build(
            &chip,
            &rules,
            &StackSpec::system_25d(),
            &thermal,
            Mm(10.0),
            4,
        )
        .unwrap();
        assert!(none.is_none());
    }
}
