//! Online residual corrector: a Gaussian-weighted k-nearest-neighbor
//! regressor over the feature embedding, trained incrementally from
//! every exact solve the evaluator performs.
//!
//! The superposition kernel is systematically biased (translation of
//! boundary-affected fields, uniform in-chiplet power, truncated
//! leakage refinement); those biases vary smoothly with the features,
//! which is exactly what a local regressor corrects.

use crate::features::{distance, Features};

/// A fitted correction and its supporting evidence.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Correction {
    /// Weighted-mean residual (exact − raw prediction) of the neighbors.
    pub offset: f64,
    /// Distance to the nearest training sample.
    pub nearest: f64,
    /// Training samples available.
    pub samples: usize,
}

/// Per-benchmark residual store (a bounded ring buffer so the kNN scan
/// stays O(`max_samples`)).
#[derive(Debug, Default)]
pub(crate) struct Corrector {
    samples: Vec<(Features, f64)>,
    next: usize,
}

impl Corrector {
    /// Records one residual observation.
    pub fn observe(&mut self, x: Features, residual: f64, max_samples: usize) {
        if !residual.is_finite() {
            return;
        }
        if self.samples.len() < max_samples {
            self.samples.push((x, residual));
        } else {
            self.samples[self.next] = (x, residual);
            self.next = (self.next + 1) % max_samples;
        }
    }

    /// Gaussian-weighted mean residual of the `k` nearest samples, or
    /// `None` before any observation.
    pub fn correction(&self, x: &Features, k: usize, bandwidth: f64) -> Option<Correction> {
        if self.samples.is_empty() {
            return None;
        }
        let mut near: Vec<(f64, f64)> = self
            .samples
            .iter()
            .map(|(f, r)| (distance(x, f), *r))
            .collect();
        near.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distances are finite"));
        near.truncate(k.max(1));
        let nearest = near[0].0;
        let mut wsum = 0.0;
        let mut acc = 0.0;
        for &(d, r) in &near {
            let w = (-(d / bandwidth) * (d / bandwidth)).exp() + 1e-12;
            wsum += w;
            acc += w * r;
        }
        Some(Correction {
            offset: acc / wsum,
            nearest,
            samples: self.samples.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(v: f64) -> Features {
        [v, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]
    }

    #[test]
    fn empty_corrector_offers_no_correction() {
        let c = Corrector::default();
        assert!(c.correction(&at(0.0), 8, 0.15).is_none());
    }

    #[test]
    fn nearby_samples_dominate_the_offset() {
        let mut c = Corrector::default();
        c.observe(at(0.0), 2.0, 64);
        c.observe(at(1.0), -10.0, 64);
        let corr = c.correction(&at(0.01), 8, 0.15).unwrap();
        assert!((corr.offset - 2.0).abs() < 0.1, "offset {}", corr.offset);
        assert!(corr.nearest < 0.02);
        assert_eq!(corr.samples, 2);
    }

    #[test]
    fn ring_buffer_caps_the_store() {
        let mut c = Corrector::default();
        for i in 0..10 {
            c.observe(at(i as f64), i as f64, 4);
        }
        let corr = c.correction(&at(9.0), 1, 0.15).unwrap();
        assert_eq!(corr.samples, 4);
        // The latest samples survive; the query at 9.0 finds residual 9.
        assert!((corr.offset - 9.0).abs() < 1e-9);
    }

    #[test]
    fn non_finite_residuals_are_dropped() {
        let mut c = Corrector::default();
        c.observe(at(0.0), f64::NAN, 8);
        assert!(c.correction(&at(0.0), 8, 0.15).is_none());
    }
}
