//! The feature embedding of an evaluation point used by the residual
//! corrector: (f, V, p, n, edge, s1, s2, s3), each scaled to roughly
//! unit range so Euclidean distances weigh the dimensions evenly.

use tac25d_floorplan::organization::ChipletLayout;
use tac25d_power::dvfs::OperatingPoint;

/// Dimensionality of the feature embedding.
pub const FEATURE_DIM: usize = 8;

/// A scaled feature vector.
pub type Features = [f64; FEATURE_DIM];

/// Embeds one (organization, operating point, active cores) evaluation
/// point. `edge_mm` is the interposer edge of the layout.
pub fn feature_vector(
    layout: &ChipletLayout,
    op: OperatingPoint,
    active_cores: u16,
    edge_mm: f64,
) -> Features {
    // Spacings in mm; the uniform grid is its own gap everywhere and the
    // 4-chiplet layout has only the center cross s3.
    let (s1, s2, s3) = match layout {
        ChipletLayout::SingleChip => (0.0, 0.0, 0.0),
        ChipletLayout::Uniform { gap, .. } => (gap.value(), gap.value(), gap.value()),
        ChipletLayout::Symmetric4 { s3 } => (0.0, 0.0, s3.value()),
        ChipletLayout::Symmetric16 { spacing } => {
            (spacing.s1.value(), spacing.s2.value(), spacing.s3.value())
        }
    };
    [
        op.freq_mhz / 1000.0,
        op.voltage,
        f64::from(active_cores) / 256.0,
        layout.chiplet_count() as f64 / 16.0,
        edge_mm / 50.0,
        s1 / 15.0,
        s2 / 15.0,
        s3 / 30.0,
    ]
}

/// Euclidean distance between two feature vectors.
pub fn distance(a: &Features, b: &Features) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac25d_floorplan::organization::Spacing;
    use tac25d_floorplan::units::Mm;

    fn op() -> OperatingPoint {
        OperatingPoint::new(1000.0, 1.0)
    }

    #[test]
    fn identical_points_are_at_zero_distance() {
        let layout = ChipletLayout::Symmetric16 {
            spacing: Spacing::new(2.0, 1.5, 4.0),
        };
        let a = feature_vector(&layout, op(), 256, 30.0);
        assert_eq!(distance(&a, &a), 0.0);
    }

    #[test]
    fn spacing_changes_move_the_embedding() {
        let a = feature_vector(
            &ChipletLayout::Symmetric16 {
                spacing: Spacing::new(2.0, 1.5, 4.0),
            },
            op(),
            256,
            30.0,
        );
        let b = feature_vector(
            &ChipletLayout::Symmetric16 {
                spacing: Spacing::new(3.0, 1.5, 2.0),
            },
            op(),
            256,
            30.0,
        );
        let d = distance(&a, &b);
        assert!(d > 0.0 && d < 1.0, "nearby spacings stay close: {d}");
    }

    #[test]
    fn frequency_steps_dominate_small_spacing_steps() {
        let layout = ChipletLayout::Symmetric4 { s3: Mm(4.0) };
        let base = feature_vector(&layout, op(), 256, 30.0);
        let slow = feature_vector(&layout, OperatingPoint::new(533.0, 0.8), 256, 30.0);
        let nudged = feature_vector(&ChipletLayout::Symmetric4 { s3: Mm(4.5) }, op(), 256, 30.0);
        assert!(distance(&base, &slow) > distance(&base, &nudged));
    }
}
