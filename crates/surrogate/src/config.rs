//! Tuning knobs of the two-tier surrogate.

use serde::{Deserialize, Serialize};

/// Configuration of the multi-fidelity thermal surrogate.
///
/// The defaults were chosen on the fig5/fig8 validation sweeps (see the
/// `surrogate_validation` bench binary): they keep the verified-candidate
/// prediction error within the paper's uncertainty while skipping the
/// large majority of exact solves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateConfig {
    /// Exact verification margin around the temperature threshold: a
    /// candidate predicted at or below `threshold + guard_band_c` is
    /// verified with the exact solver; hotter predictions are trusted to
    /// be infeasible and skipped. Larger bands are safer and slower.
    pub guard_band_c: f64,
    /// Screening margin for the *uncorrected* kernel: even before the
    /// residual corrector is trusted, a raw superposition prediction more
    /// than this far above the threshold is skipped. The raw kernel's
    /// bias is bounded (a degree or two on the validation sweeps), so a
    /// generous margin makes warm-up skips safe.
    pub raw_guard_band_c: f64,
    /// Maximum feature-space distance to the nearest training sample for
    /// the residual corrector to be trusted. Beyond it (or before
    /// [`Self::min_samples`] observations) every prediction falls back to
    /// the exact solver.
    pub trust_radius: f64,
    /// Observations required per benchmark before the corrector is
    /// trusted at all (the warm-up exact solves double as training data).
    pub min_samples: usize,
    /// Iterations of the cheap per-chiplet temperature–leakage fixed
    /// point run on top of the superposed linear response.
    pub refine_iters: usize,
    /// Probe points per axis on each chiplet when searching the
    /// superposed field for its peak (`probes_per_axis²` samples each).
    pub probes_per_axis: usize,
    /// Neighbors consulted by the k-nearest-neighbor residual corrector.
    pub knn_k: usize,
    /// Gaussian bandwidth of the corrector's distance weights.
    pub kernel_bandwidth: f64,
    /// Residual samples retained per benchmark (oldest overwritten
    /// first; keeps the linear-scan kNN bounded).
    pub max_samples: usize,
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        SurrogateConfig {
            guard_band_c: 5.0,
            raw_guard_band_c: 12.0,
            trust_radius: 0.35,
            min_samples: 8,
            refine_iters: 3,
            probes_per_axis: 5,
            knn_k: 8,
            kernel_bandwidth: 0.15,
            max_samples: 4096,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SurrogateConfig::default();
        assert!(c.guard_band_c > 0.0);
        assert!(c.raw_guard_band_c >= c.guard_band_c);
        assert!(c.trust_radius > 0.0);
        assert!(c.min_samples > 0 && c.min_samples <= c.max_samples);
        assert!(c.refine_iters >= 1);
        assert!(c.probes_per_axis >= 2);
        assert!(c.knn_k >= 1);
        assert!(c.kernel_bandwidth > 0.0);
    }
}
