//! Superposition of unit-power kernels over a candidate organization's
//! rasterized power footprint.
//!
//! The linear RC network makes the die temperature rise a weighted sum of
//! per-chiplet unit responses. Each source chiplet of the candidate is
//! mapped to its symmetry class, the stored representative field is
//! sampled through the chiplet's octant map plus the small translation
//! between its mapped center and the representative's, and the rises add.

use crate::kernel::{bilinear, class_of, KernelSet};
use tac25d_floorplan::geometry::Rect;

/// Superposed temperature-rise estimates of one candidate layout.
#[derive(Debug, Clone)]
pub(crate) struct SuperposedField {
    /// Peak rise over all probe points (°C above ambient).
    pub peak_rise: f64,
    /// Mean rise over each chiplet's probe points, chiplet-major order.
    pub chiplet_mean_rise: Vec<f64>,
}

/// Rise at query point `(x, y)` caused by 1 W on the chiplet at grid
/// position `(row, col)` centered at `center`.
fn unit_rise_at(
    kernels: &KernelSet,
    row: usize,
    col: usize,
    center: (f64, f64),
    x: f64,
    y: f64,
) -> f64 {
    let (class, map) = class_of(row, col, kernels.r);
    let k = &kernels.classes[class];
    let (qx, qy) = map.apply(kernels.footprint, x, y);
    let (cx, cy) = map.apply(kernels.footprint, center.0, center.1);
    bilinear(
        &k.rise,
        kernels.footprint,
        qx + k.rep_center.0 - cx,
        qy + k.rep_center.1 - cy,
    )
}

/// Superposes the kernel set over the candidate's chiplet rectangles
/// (row-major over the r×r grid) with the given per-chiplet total watts.
pub(crate) fn superpose(
    kernels: &KernelSet,
    rects: &[Rect],
    watts: &[f64],
    probes_per_axis: usize,
) -> SuperposedField {
    let r = kernels.r;
    assert_eq!(rects.len(), r * r, "expected one rect per grid cell");
    assert_eq!(watts.len(), rects.len(), "one power figure per chiplet");
    assert!(probes_per_axis >= 1);
    let centers: Vec<(f64, f64)> = rects
        .iter()
        .map(|rc| {
            let c = rc.center();
            (c.x.value(), c.y.value())
        })
        .collect();
    let mut peak_rise = f64::NEG_INFINITY;
    let mut chiplet_mean_rise = Vec::with_capacity(rects.len());
    for target in rects {
        let (x0, y0) = (target.x0().value(), target.y0().value());
        let (w, h) = (target.x1().value() - x0, target.y1().value() - y0);
        let mut sum = 0.0;
        for py in 0..probes_per_axis {
            let y = y0 + (py as f64 + 0.5) / probes_per_axis as f64 * h;
            for px in 0..probes_per_axis {
                let x = x0 + (px as f64 + 0.5) / probes_per_axis as f64 * w;
                let mut rise = 0.0;
                for (j, &center) in centers.iter().enumerate() {
                    if watts[j] == 0.0 {
                        continue;
                    }
                    let (row, col) = (j / r, j % r);
                    rise += watts[j] * unit_rise_at(kernels, row, col, center, x, y);
                }
                sum += rise;
                peak_rise = peak_rise.max(rise);
            }
        }
        chiplet_mean_rise.push(sum / (probes_per_axis * probes_per_axis) as f64);
    }
    SuperposedField {
        peak_rise,
        chiplet_mean_rise,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac25d_floorplan::chip::ChipSpec;
    use tac25d_floorplan::layers::StackSpec;
    use tac25d_floorplan::organization::{ChipletLayout, PackageRules};
    use tac25d_floorplan::units::Mm;
    use tac25d_thermal::model::{PackageModel, ThermalConfig};

    fn kernels(edge: f64, r: u16) -> KernelSet {
        KernelSet::build(
            &ChipSpec::scc_256(),
            &PackageRules::default(),
            &StackSpec::system_25d(),
            &ThermalConfig {
                grid: 16,
                ..ThermalConfig::default()
            },
            Mm(edge),
            r,
        )
        .unwrap()
        .expect("edge fits")
    }

    #[test]
    fn superposed_peak_matches_exact_solve_on_the_reference_layout() {
        // On the uniform reference layout itself the translations are all
        // zero and the symmetry maps are exact, so superposition must
        // reproduce the direct solve to interpolation accuracy.
        let chip = ChipSpec::scc_256();
        let rules = PackageRules::default();
        let edge = 30.0;
        let set = kernels(edge, 4);
        let wc = chip.edge().value() / 4.0;
        let gap = (edge - 4.0 * wc - 2.0 * rules.guard.value()) / 3.0;
        let layout = ChipletLayout::Uniform { r: 4, gap: Mm(gap) };
        let rects = layout.chiplet_rects(&chip, &rules);
        let watts = vec![6.0; 16];
        let field = superpose(&set, &rects, &watts, 5);
        let model = PackageModel::new(
            &chip,
            &layout,
            &rules,
            &StackSpec::system_25d(),
            ThermalConfig {
                grid: 16,
                ..ThermalConfig::default()
            },
        )
        .unwrap();
        let sources: Vec<_> = rects.iter().map(|r| (*r, 6.0)).collect();
        let exact = model.solve(&sources).unwrap();
        let exact_rise = exact.peak().value() - set.ambient();
        assert!(
            (field.peak_rise - exact_rise).abs() < 0.05 * exact_rise + 0.5,
            "superposed {} vs exact {}",
            field.peak_rise,
            exact_rise
        );
    }

    #[test]
    fn asymmetric_power_heats_the_powered_corner_most() {
        let chip = ChipSpec::scc_256();
        let rules = PackageRules::default();
        let set = kernels(30.0, 2);
        let layout = ChipletLayout::Symmetric4 {
            s3: Mm(30.0 - chip.edge().value() - 2.0 * rules.guard.value()),
        };
        let rects = layout.chiplet_rects(&chip, &rules);
        // Power only the upper-right chiplet (index 3).
        let watts = vec![0.0, 0.0, 0.0, 40.0];
        let field = superpose(&set, &rects, &watts, 5);
        let hot = field.chiplet_mean_rise[3];
        let cold = field.chiplet_mean_rise[0];
        assert!(hot > 2.0 * cold, "hot {hot} vs cold {cold}");
        assert!(field.peak_rise >= hot);
    }

    #[test]
    fn rise_scales_linearly_with_power() {
        let chip = ChipSpec::scc_256();
        let rules = PackageRules::default();
        let set = kernels(26.0, 2);
        let layout = ChipletLayout::Symmetric4 {
            s3: Mm(26.0 - chip.edge().value() - 2.0 * rules.guard.value()),
        };
        let rects = layout.chiplet_rects(&chip, &rules);
        let f1 = superpose(&set, &rects, &[10.0; 4], 4);
        let f2 = superpose(&set, &rects, &[20.0; 4], 4);
        assert!((f2.peak_rise / f1.peak_rise - 2.0).abs() < 1e-9);
    }
}
