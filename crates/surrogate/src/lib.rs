//! Two-tier multi-fidelity thermal predictor for the chiplet-organization
//! optimizer.
//!
//! **Tier 1 — Green's-function superposition.** The package RC network is
//! linear, so the die temperature rise of any power map is a weighted sum
//! of per-chiplet unit responses. Those unit responses are precomputed
//! once per (interposer edge, chiplet count) on a maximally-symmetric
//! reference layout — one exact solve per symmetry class (1 for 2×2, 3
//! for 4×4) — and any candidate spacing at that edge is then estimated in
//! O(chiplets²) bilinear samples, plus a cheap per-chiplet
//! temperature–leakage fixed point for the nonlinear part.
//!
//! **Tier 2 — online residual corrector.** The superposition is biased
//! (translated boundary fields, uniform in-chiplet power). A per-benchmark
//! k-nearest-neighbor regressor over the (f, V, p, n, edge, s1, s2, s3)
//! embedding learns that bias from every exact solve the evaluator
//! performs, and reports a confidence radius so callers can fall back to
//! the exact solver off the training manifold.
//!
//! The surrogate never *asserts* feasibility: the optimizer verifies every
//! candidate predicted near or below the threshold with the exact solver,
//! so all reported organizations remain exact-solver-backed. See
//! `tac25d_core::optimizer::Fidelity` for the screening rule.

pub mod analytic;
pub mod config;
pub mod corrector;
pub mod features;
pub mod kernel;
mod superpose;

pub use config::SurrogateConfig;
pub use kernel::KernelSet;

use corrector::Corrector;
use features::feature_vector;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use superpose::superpose;
use tac25d_floorplan::chip::ChipSpec;
use tac25d_floorplan::layers::StackSpec;
use tac25d_floorplan::organization::{ChipletLayout, PackageRules};
use tac25d_floorplan::units::{Celsius, Mm};
use tac25d_obs as obs;
use tac25d_power::benchmarks::Benchmark;
use tac25d_power::dvfs::OperatingPoint;
use tac25d_thermal::model::ThermalConfig;

/// One evaluation point handed to the surrogate. Chiplet-indexed slices
/// are row-major over the layout's r×r grid, matching
/// [`ChipletLayout::chiplet_rects`].
#[derive(Debug, Clone)]
pub struct SurrogateInput {
    /// The candidate organization.
    pub layout: ChipletLayout,
    /// Benchmark (selects the residual corrector).
    pub benchmark: Benchmark,
    /// Operating point.
    pub op: OperatingPoint,
    /// Total active cores.
    pub active_cores: u16,
    /// Active cores hosted by each chiplet.
    pub active_per_chiplet: Vec<u16>,
    /// NoC watts dissipated in each chiplet.
    pub noc_per_chiplet: Vec<f64>,
}

/// A surrogate peak-temperature estimate.
#[derive(Debug, Clone, Copy)]
pub struct Prediction {
    /// Tier-1 estimate (superposition + leakage refinement), °C.
    pub raw_peak_c: f64,
    /// Tier-2 estimate: raw plus the learned residual, °C.
    pub corrected_peak_c: f64,
    /// Feature-space distance to the nearest training sample
    /// (∞ before the first observation).
    pub confidence: f64,
    /// Whether the corrector has enough nearby evidence for the
    /// prediction to stand in for an exact solve outside the guard band.
    pub trusted: bool,
}

/// Kernel sets keyed by (half-mm interposer edge, chiplet count); `None`
/// marks a (edge, n) pair whose kernel construction failed.
type KernelCache = Mutex<HashMap<(i64, u16), Option<Arc<KernelSet>>>>;

/// The shared, thread-safe surrogate. Cheap to use behind an [`Arc`]:
/// kernel sets and correctors live behind interior mutexes.
pub struct ThermalSurrogate {
    cfg: SurrogateConfig,
    chip: ChipSpec,
    rules: PackageRules,
    stack: StackSpec,
    thermal: ThermalConfig,
    kernels: KernelCache,
    correctors: Mutex<HashMap<Benchmark, Corrector>>,
    kernel_solves: AtomicUsize,
    predictions: AtomicUsize,
    observations: AtomicUsize,
}

impl std::fmt::Debug for ThermalSurrogate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThermalSurrogate")
            .field("predictions", &self.predictions())
            .field("observations", &self.observations())
            .field("kernel_solves", &self.kernel_solves())
            .finish_non_exhaustive()
    }
}

impl ThermalSurrogate {
    /// Creates a surrogate for one package family (chip, rules, 2.5D
    /// stack, thermal configuration — everything that shapes the kernels).
    pub fn new(
        chip: ChipSpec,
        rules: PackageRules,
        stack: StackSpec,
        thermal: ThermalConfig,
        cfg: SurrogateConfig,
    ) -> Self {
        ThermalSurrogate {
            cfg,
            chip,
            rules,
            stack,
            thermal,
            kernels: Mutex::new(HashMap::new()),
            correctors: Mutex::new(HashMap::new()),
            kernel_solves: AtomicUsize::new(0),
            predictions: AtomicUsize::new(0),
            observations: AtomicUsize::new(0),
        }
    }

    /// The surrogate configuration.
    pub fn config(&self) -> &SurrogateConfig {
        &self.cfg
    }

    /// Exact solves spent precomputing kernels (reported separately from
    /// the evaluator's per-candidate simulation count — kernels amortize
    /// over every spacing probed at their edge).
    pub fn kernel_solves(&self) -> usize {
        self.kernel_solves.load(Ordering::Relaxed)
    }

    /// Predictions served.
    pub fn predictions(&self) -> usize {
        self.predictions.load(Ordering::Relaxed)
    }

    /// Residual observations absorbed.
    pub fn observations(&self) -> usize {
        self.observations.load(Ordering::Relaxed)
    }

    fn kernels_for(&self, edge: Mm, r: u16) -> Option<Arc<KernelSet>> {
        let key = ((edge.value() * 2.0).round() as i64, r);
        if let Some(cached) = self.kernels.lock().expect("lock poisoned").get(&key) {
            return cached.clone();
        }
        // Built outside the lock: concurrent duplicate builds only waste
        // work, and kernel solves are three orders cheaper than holding
        // every other predictor on the mutex.
        let _span = obs::span!("surrogate.kernel_build");
        let built = KernelSet::build(&self.chip, &self.rules, &self.stack, &self.thermal, edge, r)
            .ok()
            .flatten()
            .map(Arc::new);
        if let Some(set) = &built {
            self.kernel_solves
                .fetch_add(set.solves(), Ordering::Relaxed);
            obs::counter!("surrogate.kernel_solves").add(set.solves() as u64);
        }
        self.kernels
            .lock()
            .expect("lock poisoned")
            .entry(key)
            .or_insert_with(|| built.clone());
        built
    }

    /// Tier-1 peak estimate: superposition with `refine_iters` rounds of
    /// the per-chiplet temperature–leakage fixed point (temperatures start
    /// at the evaluator's 60 °C convention and are clamped below the
    /// runaway limit so diverging leakage shows up as a huge — but finite
    /// and correctly *infeasible* — prediction).
    fn raw_peak(
        &self,
        kernels: &KernelSet,
        input: &SurrogateInput,
        power_of_core: &dyn Fn(Celsius) -> f64,
    ) -> Option<f64> {
        let rects = input.layout.chiplet_rects(&self.chip, &self.rules);
        let n = rects.len();
        if input.active_per_chiplet.len() != n || input.noc_per_chiplet.len() != n {
            return None;
        }
        let ambient = kernels.ambient();
        let mut temps = vec![60.0f64; n];
        let mut peak = ambient;
        for _ in 0..self.cfg.refine_iters.max(1) {
            let watts: Vec<f64> = (0..n)
                .map(|j| {
                    f64::from(input.active_per_chiplet[j]) * power_of_core(Celsius(temps[j]))
                        + input.noc_per_chiplet[j]
                })
                .collect();
            if watts.iter().any(|w| !w.is_finite()) {
                return None;
            }
            let field = superpose(kernels, &rects, &watts, self.cfg.probes_per_axis);
            peak = ambient + field.peak_rise;
            if !peak.is_finite() {
                return None;
            }
            for (t, rise) in temps.iter_mut().zip(&field.chiplet_mean_rise) {
                *t = (ambient + rise).clamp(ambient, 400.0);
            }
        }
        Some(peak)
    }

    /// Predicts the peak temperature of one evaluation point, or `None`
    /// when the surrogate does not cover it (single chip, unbuildable
    /// kernel, mismatched inputs) and the caller must use the exact
    /// solver. `power_of_core` is the per-active-core power at a given
    /// chiplet temperature (dynamic + leakage).
    pub fn predict(
        &self,
        input: &SurrogateInput,
        power_of_core: &dyn Fn(Celsius) -> f64,
    ) -> Option<Prediction> {
        let r = input.layout.r();
        if input.layout.is_single_chip() || (r != 2 && r != 4) {
            return None;
        }
        let edge = input.layout.footprint_edge(&self.chip, &self.rules);
        let kernels = self.kernels_for(edge, r)?;
        let raw = self.raw_peak(&kernels, input, power_of_core)?;
        self.predictions.fetch_add(1, Ordering::Relaxed);
        obs::counter!("surrogate.predictions").inc();
        let x = feature_vector(&input.layout, input.op, input.active_cores, edge.value());
        let correction = self
            .correctors
            .lock()
            .expect("lock poisoned")
            .get(&input.benchmark)
            .and_then(|c| c.correction(&x, self.cfg.knn_k, self.cfg.kernel_bandwidth));
        if correction.is_some() {
            obs::counter!("surrogate.knn_corrector_hits").inc();
        }
        Some(match correction {
            Some(c) => Prediction {
                raw_peak_c: raw,
                corrected_peak_c: raw + c.offset,
                confidence: c.nearest,
                trusted: c.samples >= self.cfg.min_samples && c.nearest <= self.cfg.trust_radius,
            },
            None => Prediction {
                raw_peak_c: raw,
                corrected_peak_c: raw,
                confidence: f64::INFINITY,
                trusted: false,
            },
        })
    }

    /// Trains the corrector with the exact peak of one evaluation point.
    /// Call after every converged exact solve; points the surrogate does
    /// not cover are ignored.
    pub fn observe(
        &self,
        input: &SurrogateInput,
        power_of_core: &dyn Fn(Celsius) -> f64,
        exact_peak: Celsius,
    ) {
        let r = input.layout.r();
        if input.layout.is_single_chip() || (r != 2 && r != 4) {
            return;
        }
        let edge = input.layout.footprint_edge(&self.chip, &self.rules);
        let Some(kernels) = self.kernels_for(edge, r) else {
            return;
        };
        let Some(raw) = self.raw_peak(&kernels, input, power_of_core) else {
            return;
        };
        let x = feature_vector(&input.layout, input.op, input.active_cores, edge.value());
        self.correctors
            .lock()
            .expect("lock poisoned")
            .entry(input.benchmark)
            .or_default()
            .observe(x, exact_peak.value() - raw, self.cfg.max_samples);
        self.observations.fetch_add(1, Ordering::Relaxed);
        obs::counter!("surrogate.observations").inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac25d_thermal::model::PackageModel;

    fn surrogate() -> ThermalSurrogate {
        ThermalSurrogate::new(
            ChipSpec::scc_256(),
            PackageRules::default(),
            StackSpec::system_25d(),
            ThermalConfig {
                grid: 16,
                ..ThermalConfig::default()
            },
            SurrogateConfig {
                min_samples: 3,
                ..SurrogateConfig::default()
            },
        )
    }

    fn input(s3: f64) -> SurrogateInput {
        SurrogateInput {
            layout: ChipletLayout::Symmetric4 { s3: Mm(s3) },
            benchmark: Benchmark::Cholesky,
            op: OperatingPoint::new(1000.0, 1.0),
            active_cores: 256,
            active_per_chiplet: vec![64; 4],
            noc_per_chiplet: vec![1.0; 4],
        }
    }

    #[test]
    fn prediction_tracks_the_exact_solve() {
        // Constant per-core power makes the exact answer a single linear
        // solve the tier-1 kernel should approximate closely (the 2×2
        // reference layout *is* the candidate layout here).
        let s = surrogate();
        let inp = input(6.0);
        let per_core = 0.35;
        let pred = s
            .predict(&inp, &|_t| per_core)
            .expect("4-chiplet layouts are covered");
        let model = PackageModel::new(
            &ChipSpec::scc_256(),
            &inp.layout,
            &PackageRules::default(),
            &StackSpec::system_25d(),
            ThermalConfig {
                grid: 16,
                ..ThermalConfig::default()
            },
        )
        .unwrap();
        let rects = inp
            .layout
            .chiplet_rects(&ChipSpec::scc_256(), &PackageRules::default());
        let sources: Vec<_> = rects.iter().map(|r| (*r, 64.0 * per_core + 1.0)).collect();
        let exact = model.solve(&sources).unwrap().peak().value();
        assert!(
            (pred.raw_peak_c - exact).abs() < 2.0,
            "raw {} vs exact {exact}",
            pred.raw_peak_c
        );
        assert!(!pred.trusted, "no observations yet");
        assert_eq!(s.predictions(), 1);
    }

    #[test]
    fn observations_build_trust_and_shrink_the_residual() {
        let s = surrogate();
        let power = |_t: Celsius| 0.35;
        // Pretend the exact solver runs 1.5 °C hotter than tier 1.
        for s3 in [4.0, 5.0, 6.0] {
            let inp = input(s3);
            let raw = s.predict(&inp, &power).unwrap().raw_peak_c;
            s.observe(&inp, &power, Celsius(raw + 1.5));
        }
        let pred = s.predict(&input(5.5), &power).unwrap();
        assert!(pred.trusted, "3 nearby samples with min_samples = 3");
        assert!(
            (pred.corrected_peak_c - pred.raw_peak_c - 1.5).abs() < 0.2,
            "learned offset {}",
            pred.corrected_peak_c - pred.raw_peak_c
        );
        assert_eq!(s.observations(), 3);
    }

    #[test]
    fn far_queries_are_untrusted() {
        let s = surrogate();
        let power = |_t: Celsius| 0.35;
        for s3 in [4.0, 4.5, 5.0] {
            let inp = input(s3);
            let raw = s.predict(&inp, &power).unwrap().raw_peak_c;
            s.observe(&inp, &power, Celsius(raw + 1.0));
        }
        // Same benchmark, very different operating point and core count.
        let mut far = input(4.5);
        far.op = OperatingPoint::new(533.0, 0.8);
        far.active_cores = 64;
        far.active_per_chiplet = vec![16; 4];
        let pred = s.predict(&far, &power).unwrap();
        assert!(
            !pred.trusted,
            "confidence {} should exceed the radius",
            pred.confidence
        );
    }

    #[test]
    fn single_chip_is_not_covered() {
        let s = surrogate();
        let mut inp = input(4.0);
        inp.layout = ChipletLayout::SingleChip;
        inp.active_per_chiplet = vec![256];
        inp.noc_per_chiplet = vec![0.0];
        assert!(s.predict(&inp, &|_t| 0.3).is_none());
    }

    #[test]
    fn kernel_sets_are_cached_per_edge() {
        let s = surrogate();
        let power = |_t: Celsius| 0.3;
        let _ = s.predict(&input(6.0), &power);
        let solves = s.kernel_solves();
        assert_eq!(solves, 1, "2x2 grid has one symmetry class");
        // Same edge: cache hit. (s3 fixes the edge for 4-chiplet layouts.)
        let _ = s.predict(&input(6.0), &power);
        assert_eq!(s.kernel_solves(), solves);
        // New edge: one more class solve.
        let _ = s.predict(&input(8.0), &power);
        assert_eq!(s.kernel_solves(), solves + 1);
    }
}
