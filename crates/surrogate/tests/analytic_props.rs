//! Property-based tests of the analytic placement proxy: the exact
//! gradients must agree with central finite differences on random
//! layouts and power maps, projection must keep iterates on the
//! fixed-edge manifold, and snapping must be a deterministic, deduped,
//! clamped map onto the search lattice.

use proptest::prelude::*;
use tac25d_surrogate::analytic::{snap_to_lattice, AnalyticConfig, AnalyticOptimum, Manifold16};

/// Paper-package chiplet geometry; `free` and the power map are the
/// randomized inputs.
fn manifold(free: f64, watts: &[f64]) -> Manifold16 {
    let mut w = [0.0f64; 16];
    w.copy_from_slice(watts);
    Manifold16 {
        wc: 4.5,
        guard: 1.0,
        free,
        watts: w,
    }
}

/// Relative gradient check with an absolute floor: below ~1e-3 °C/mm the
/// central difference itself is dominated by f64 cancellation (the
/// objective is O(100) °C, so the quotient noise is ~1e-8-1e-9 °C/mm),
/// and the comparison degrades to exactly that absolute tolerance.
fn rel_err(analytic: f64, fd: f64) -> f64 {
    (analytic - fd).abs() / analytic.abs().max(fd.abs()).max(1e-3)
}

proptest! {
    /// Both gradient components match central finite differences to
    /// 1e-5 relative error at random interior points of random
    /// manifolds.
    #[test]
    fn gradient_matches_central_differences(
        free in 1.0..18.0f64,
        watts in prop::collection::vec(5.0..25.0f64, 16..17),
        f1 in 0.05..0.95f64,
        f2 in 0.05..0.95f64,
    ) {
        let m = manifold(free, &watts);
        let cfg = AnalyticConfig::default();
        let hi = m.half_free();
        let (s1, s2) = (f1 * hi, f2 * hi);
        let h = 1e-5;
        let (_, g1, g2) = m.objective_grad(&cfg, s1, s2);
        let fd1 = (m.objective_grad(&cfg, s1 + h, s2).0
            - m.objective_grad(&cfg, s1 - h, s2).0)
            / (2.0 * h);
        let fd2 = (m.objective_grad(&cfg, s1, s2 + h).0
            - m.objective_grad(&cfg, s1, s2 - h).0)
            / (2.0 * h);
        prop_assert!(
            rel_err(g1, fd1) <= 1e-5,
            "ds1 at ({s1}, {s2}): analytic {g1} vs fd {fd1}"
        );
        prop_assert!(
            rel_err(g2, fd2) <= 1e-5,
            "ds2 at ({s1}, {s2}): analytic {g2} vs fd {fd2}"
        );
    }

    /// Projection clamps any point into the feasible box, and every
    /// descent optimum stays on the fixed-edge manifold: `s1, s2` inside
    /// `[0, free/2]`, the implied `s3 = free − 2·s1` non-negative, and
    /// Eq. (10) (`2·s2 ≤ 2·s1 + s3`) satisfied by construction.
    #[test]
    fn projection_keeps_the_manifold(
        free in 0.0..18.0f64,
        watts in prop::collection::vec(5.0..25.0f64, 16..17),
        x1 in -10.0..30.0f64,
        x2 in -10.0..30.0f64,
    ) {
        let m = manifold(free, &watts);
        let hi = m.half_free();
        let (p1, p2) = m.project(x1, x2);
        prop_assert!((0.0..=hi).contains(&p1), "s1 {p1} outside [0, {hi}]");
        prop_assert!((0.0..=hi).contains(&p2), "s2 {p2} outside [0, {hi}]");
        let out = m.descend(&AnalyticConfig::default());
        for o in &out.optima {
            prop_assert!(o.s1_mm >= 0.0 && o.s1_mm <= hi + 1e-12);
            prop_assert!(o.s2_mm >= 0.0 && o.s2_mm <= hi + 1e-12);
            let s3 = m.free - 2.0 * o.s1_mm;
            prop_assert!(s3 >= -1e-12, "implied s3 {s3} negative");
            prop_assert!(
                (2.0 * o.s1_mm + s3 - m.free).abs() <= 1e-12,
                "manifold constant drifted"
            );
            prop_assert!(2.0 * o.s1_mm + s3 - 2.0 * o.s2_mm >= -1e-9, "Eq. (10) violated");
        }
    }

    /// The descent is bit-deterministic: re-running on the same manifold
    /// reproduces the optima and the gradient-evaluation count exactly.
    #[test]
    fn descent_is_deterministic_on_random_manifolds(
        free in 0.5..15.0f64,
        watts in prop::collection::vec(5.0..25.0f64, 16..17),
    ) {
        let m = manifold(free, &watts);
        let cfg = AnalyticConfig::default();
        let a = m.descend(&cfg);
        let b = m.descend(&cfg);
        prop_assert_eq!(a.grad_evals, b.grad_evals);
        prop_assert_eq!(a.optima, b.optima);
    }

    /// Snapping is deterministic, returns at most `k` points, dedupes,
    /// and clamps every coordinate into the lattice bounds.
    #[test]
    fn snap_is_deterministic_deduped_and_clamped(
        coords in prop::collection::vec((-5.0..25.0f64, -5.0..25.0f64), 1..12),
        s1_max in 1i64..20,
        s2_max in 1i64..20,
        k in 1usize..6,
    ) {
        let optima: Vec<AnalyticOptimum> = coords
            .iter()
            .enumerate()
            .map(|(i, &(s1, s2))| AnalyticOptimum {
                s1_mm: s1,
                s2_mm: s2,
                peak_proxy_c: i as f64,
            })
            .collect();
        let a = snap_to_lattice(&optima, 0.5, s1_max, s2_max, k);
        let b = snap_to_lattice(&optima, 0.5, s1_max, s2_max, k);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.len() <= k);
        for (i, pt) in a.iter().enumerate() {
            prop_assert!((0..=s1_max).contains(&pt.0));
            prop_assert!((0..=s2_max).contains(&pt.1));
            prop_assert!(!a[..i].contains(pt), "duplicate lattice point {pt:?}");
        }
    }
}
