//! Property-based tests of the sparse CSR assembly path: symmetry and
//! positive-definiteness are *structural* guarantees of the conductance
//! assembler (`add_conductance` / `add_ground`), so they must survive any
//! random network — and the PCG solver must meet its advertised residual
//! tolerance on any SPD system it accepts.

use proptest::prelude::*;
use tac25d_thermal::sparse::{
    dense_cholesky_solve, pcg, pcg_with, CsrMatrix, Preconditioner, SolveScratch, TripletMatrix,
};

/// Deterministic xorshift-style generator for filling matrices: proptest
/// supplies the seed, the closure supplies unlimited uniform values.
fn splitmix(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / f64::from(u32::MAX)
    }
}

/// A random connected conductance network with at least one ground path —
/// exactly the class of matrices the thermal assembler produces.
fn random_network(n: usize, rng: &mut impl FnMut() -> f64) -> CsrMatrix {
    let mut t = TripletMatrix::new(n);
    for i in 0..n - 1 {
        t.add_conductance(i, i + 1, 0.05 + rng());
    }
    for _ in 0..2 * n {
        let a = (rng() * n as f64) as usize % n;
        let b = (rng() * n as f64) as usize % n;
        if a != b {
            t.add_conductance(a, b, 2.0 * rng());
        }
    }
    t.add_ground((rng() * n as f64) as usize % n, 0.5 + rng());
    t.to_csr()
}

/// `x·(A·y)` — asymmetry shows up as a mismatch of the two bilinear forms.
fn bilinear(a: &CsrMatrix, x: &[f64], y: &[f64]) -> f64 {
    let mut ay = vec![0.0; y.len()];
    a.mul_vec(y, &mut ay);
    x.iter().zip(&ay).map(|(xi, v)| xi * v).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conductance assembly produces a symmetric operator: the bilinear
    /// form x·Ay equals y·Ax for random probe vectors.
    #[test]
    fn assembly_preserves_symmetry(n in 3usize..50, seed in 0u64..10_000) {
        let mut rng = splitmix(seed);
        let a = random_network(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|_| rng() - 0.5).collect();
        let y: Vec<f64> = (0..n).map(|_| rng() - 0.5).collect();
        let xy = bilinear(&a, &x, &y);
        let yx = bilinear(&a, &y, &x);
        prop_assert!(
            (xy - yx).abs() <= 1e-12 * xy.abs().max(yx.abs()).max(1.0),
            "x·Ay = {xy} but y·Ax = {yx}"
        );
    }

    /// A grounded conductance network is SPD: the dense Cholesky
    /// factorization (which fails on any non-positive pivot) must succeed.
    #[test]
    fn grounded_networks_are_spd(n in 2usize..40, seed in 0u64..10_000) {
        let mut rng = splitmix(seed);
        let a = random_network(n, &mut rng);
        let b: Vec<f64> = (0..n).map(|_| rng() * 5.0).collect();
        prop_assert!(dense_cholesky_solve(&a, &b).is_ok(), "Cholesky pivot failed");
    }

    /// The backward-Euler diagonal shift keeps both properties: the
    /// shifted matrix stays symmetric and SPD.
    #[test]
    fn diagonal_shift_preserves_symmetry_and_spd(
        n in 2usize..30,
        seed in 0u64..10_000,
        shift in 0.01..10.0f64,
    ) {
        let mut rng = splitmix(seed);
        let a = random_network(n, &mut rng);
        let shifted = a.with_added_diagonal(&vec![shift; n]);
        let x: Vec<f64> = (0..n).map(|_| rng() - 0.5).collect();
        let y: Vec<f64> = (0..n).map(|_| rng() - 0.5).collect();
        let xy = bilinear(&shifted, &x, &y);
        let yx = bilinear(&shifted, &y, &x);
        prop_assert!((xy - yx).abs() <= 1e-12 * xy.abs().max(1.0));
        prop_assert!(dense_cholesky_solve(&shifted, &x).is_ok());
    }

    /// PCG meets its advertised relative-residual tolerance on random
    /// diagonally dominant SPD systems (a wider class than networks:
    /// signed off-diagonals), verified against the residual definition.
    #[test]
    fn pcg_residual_within_tolerance_on_random_spd(
        n in 2usize..35,
        seed in 0u64..10_000,
    ) {
        let mut rng = splitmix(seed);
        let mut t = TripletMatrix::new(n);
        let mut off_sums = vec![0.0f64; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if rng() < 0.4 {
                    let v = rng() - 0.5;
                    t.add(i, j, v);
                    t.add(j, i, v);
                    off_sums[i] += v.abs();
                    off_sums[j] += v.abs();
                }
            }
        }
        for (i, off) in off_sums.iter().enumerate() {
            t.add(i, i, off + 0.1 + rng());
        }
        let a = t.to_csr();
        let b: Vec<f64> = (0..n).map(|_| rng() * 10.0 - 5.0).collect();
        let tol = 1e-10;
        let sol = pcg(&a, &b, None, tol, 50_000).unwrap();
        let mut ax = vec![0.0; n];
        a.mul_vec(&sol.x, &mut ax);
        let res: f64 = ax.iter().zip(&b).map(|(l, r)| (l - r) * (l - r)).sum::<f64>().sqrt();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(res <= tol * bn.max(1e-30), "residual {res} vs ‖b‖ {bn}");
        prop_assert!(sol.residual <= tol, "reported residual {}", sol.residual);
    }

    /// The solver fast path's equivalence contract: IC(0)-PCG, Jacobi-PCG
    /// and the dense Cholesky reference agree to 1e-8 on random SPD
    /// conductance networks. Networks are M-matrices, so the incomplete
    /// factorization must also succeed without a diagonal shift.
    #[test]
    fn ic0_jacobi_and_dense_agree(n in 3usize..40, seed in 0u64..10_000) {
        let mut rng = splitmix(seed);
        let a = random_network(n, &mut rng);
        let b: Vec<f64> = (0..n).map(|_| rng() * 4.0 - 1.0).collect();
        let dense = dense_cholesky_solve(&a, &b).unwrap();
        let jac = pcg(&a, &b, None, 1e-12, 100_000).unwrap();
        let m = Preconditioner::ic0_or_jacobi(&a).unwrap();
        prop_assert!(m.is_ic0(), "IC(0) must not break down on an M-matrix");
        let mut scratch = SolveScratch::new();
        let ic = pcg_with(&a, &m, &b, None, 1e-12, 100_000, &mut scratch).unwrap();
        for (i, d) in dense.iter().enumerate() {
            prop_assert!(
                (jac.x[i] - d).abs() < 1e-8,
                "jacobi node {i}: {} vs {d}", jac.x[i]
            );
            prop_assert!(
                (ic.x[i] - d).abs() < 1e-8,
                "ic0 node {i}: {} vs {d}", ic.x[i]
            );
        }
    }

    /// Warm-started IC(0)-PCG converges to the same answer as a cold
    /// solve — starting from a perturbed solution of a nearby system must
    /// not bias the result beyond the residual tolerance.
    #[test]
    fn warm_started_pcg_matches_cold(n in 3usize..40, seed in 0u64..10_000) {
        let mut rng = splitmix(seed);
        let a = random_network(n, &mut rng);
        let b: Vec<f64> = (0..n).map(|_| rng() * 4.0 - 1.0).collect();
        let m = Preconditioner::ic0_or_jacobi(&a).unwrap();
        let mut scratch = SolveScratch::new();
        let cold = pcg_with(&a, &m, &b, None, 1e-12, 100_000, &mut scratch).unwrap();
        let x0: Vec<f64> = cold.x.iter().map(|v| v * (1.0 + 0.1 * rng())).collect();
        let warm = pcg_with(&a, &m, &b, Some(&x0), 1e-12, 100_000, &mut scratch).unwrap();
        for i in 0..n {
            prop_assert!(
                (warm.x[i] - cold.x[i]).abs() < 1e-8,
                "node {i}: warm {} vs cold {}", warm.x[i], cold.x[i]
            );
        }
    }

    /// The diagonal-shift breakdown fallback: general SPD systems built
    /// from signed off-diagonals can defeat plain IC(0); whatever
    /// `ic0_or_jacobi` returns (shifted IC(0) or the Jacobi fallback)
    /// must still solve the system to the dense reference.
    #[test]
    fn shifted_or_fallback_preconditioner_still_solves(
        n in 2usize..30,
        seed in 0u64..10_000,
    ) {
        let mut rng = splitmix(seed);
        let mut t = TripletMatrix::new(n);
        let mut off_sums = vec![0.0f64; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if rng() < 0.5 {
                    let v = rng() - 0.5;
                    t.add(i, j, v);
                    t.add(j, i, v);
                    off_sums[i] += v.abs();
                    off_sums[j] += v.abs();
                }
            }
        }
        // Barely dominant: small margins provoke incomplete-factorization
        // pivot breakdowns while the full matrix stays SPD.
        for (i, off) in off_sums.iter().enumerate() {
            t.add(i, i, off + 0.01 + 0.01 * rng());
        }
        let a = t.to_csr();
        let b: Vec<f64> = (0..n).map(|_| rng() * 2.0 - 1.0).collect();
        let dense = dense_cholesky_solve(&a, &b).unwrap();
        let m = Preconditioner::ic0_or_jacobi(&a).unwrap();
        let mut scratch = SolveScratch::new();
        let sol = pcg_with(&a, &m, &b, None, 1e-12, 100_000, &mut scratch).unwrap();
        for (i, d) in dense.iter().enumerate() {
            prop_assert!(
                (sol.x[i] - d).abs() < 1e-8,
                "node {i}: {} vs {d} (ic0: {})", sol.x[i], m.is_ic0()
            );
        }
    }
}
