//! Property-based tests of the geometric multigrid tier: the transfer
//! operators, Galerkin coarse operators and the V-cycle must satisfy
//! their algebraic contracts on *any* raster-shaped SPD network —
//! mirroring the `ic0_jacobi_and_dense_agree` style of `sparse_props`.

use proptest::prelude::*;
use std::sync::Arc;
use tac25d_thermal::mg::{MgHierarchy, MgOptions, MgRaster, MgScaffold};
use tac25d_thermal::sparse::{dense_cholesky_solve, CsrMatrix, TripletMatrix};

/// Deterministic xorshift-style generator: proptest supplies the seed,
/// the closure supplies unlimited uniform values in `[0, 1)`.
fn splitmix(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / f64::from(u32::MAX)
    }
}

/// A random raster-shaped conductance network — the class the thermal
/// assembler produces: positive lateral/vertical grid couplings, ground
/// links on the top layer, and lumped extras tied to boundary cells.
fn raster_network(raster: MgRaster, rng: &mut impl FnMut() -> f64) -> CsrMatrix {
    let (n, layers) = (raster.n, raster.layers);
    let node = |li: usize, ix: usize, iy: usize| li * n * n + iy * n + ix;
    let mut t = TripletMatrix::new(raster.nodes());
    for li in 0..layers {
        for iy in 0..n {
            for ix in 0..n {
                if ix + 1 < n {
                    t.add_conductance(node(li, ix, iy), node(li, ix + 1, iy), 0.2 + rng());
                }
                if iy + 1 < n {
                    t.add_conductance(node(li, ix, iy), node(li, ix, iy + 1), 0.2 + rng());
                }
                if li + 1 < layers {
                    t.add_conductance(node(li, ix, iy), node(li + 1, ix, iy), 0.05 + 0.3 * rng());
                }
            }
        }
    }
    for iy in 0..n {
        for ix in 0..n {
            t.add_ground(node(0, ix, iy), 0.02 + 0.1 * rng());
        }
    }
    let grid = layers * n * n;
    for e in 0..raster.extras {
        // Each lumped node couples to a boundary cell and to ground, like
        // the spreader/sink periphery nodes of the real assembly.
        let ix = (rng() * n as f64) as usize % n;
        t.add_conductance(grid + e, node(0, ix, 0), 0.1 + 0.5 * rng());
        t.add_ground(grid + e, 0.05 + 0.2 * rng());
    }
    t.to_csr()
}

/// `x·(A·y)` — asymmetry shows up as a mismatch of the two bilinear forms.
fn bilinear(a: &CsrMatrix, x: &[f64], y: &[f64]) -> f64 {
    let mut ay = vec![0.0; y.len()];
    a.mul_vec(y, &mut ay);
    x.iter().zip(&ay).map(|(xi, v)| xi * v).sum()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn random_raster(rng: &mut impl FnMut() -> f64) -> MgRaster {
    MgRaster {
        n: 6 + (rng() * 11.0) as usize, // 6..=16
        layers: 1 + (rng() * 3.0) as usize,
        extras: (rng() * 5.0) as usize,
    }
}

/// Two same-pattern raster networks — `a` with base values, `b` with
/// every link touching a random in-plane window of cells re-drawn (a
/// spacing move in miniature: the pattern is shared, only the values
/// under moved material differ) — plus the dirty-row mask incremental
/// assembly would surface: both ends of every changed link are marked.
fn perturbed_pair(
    raster: MgRaster,
    rng: &mut impl FnMut() -> f64,
) -> (CsrMatrix, CsrMatrix, Vec<bool>) {
    let (n, layers) = (raster.n, raster.layers);
    let node = |li: usize, ix: usize, iy: usize| li * n * n + iy * n + ix;
    let x0 = (rng() * n as f64) as usize % n;
    let y0 = (rng() * n as f64) as usize % n;
    let w = 1 + (rng() * 3.0) as usize;
    let in_window =
        |ix: usize, iy: usize| ix >= x0 && ix < (x0 + w).min(n) && iy >= y0 && iy < (y0 + w).min(n);
    let mut ta = TripletMatrix::new(raster.nodes());
    let mut tb = TripletMatrix::new(raster.nodes());
    let mut dirty = vec![false; raster.nodes()];
    let link = |ta: &mut TripletMatrix,
                tb: &mut TripletMatrix,
                dirty: &mut Vec<bool>,
                rng: &mut dyn FnMut() -> f64,
                i: usize,
                j: usize,
                base: f64,
                touched: bool| {
        let va = base + rng();
        let vb = if touched {
            dirty[i] = true;
            dirty[j] = true;
            base + rng()
        } else {
            va
        };
        ta.add_conductance(i, j, va);
        tb.add_conductance(i, j, vb);
    };
    for li in 0..layers {
        for iy in 0..n {
            for ix in 0..n {
                let touched = in_window(ix, iy);
                let i = node(li, ix, iy);
                if ix + 1 < n {
                    let t = touched || in_window(ix + 1, iy);
                    link(
                        &mut ta,
                        &mut tb,
                        &mut dirty,
                        rng,
                        i,
                        node(li, ix + 1, iy),
                        0.2,
                        t,
                    );
                }
                if iy + 1 < n {
                    let t = touched || in_window(ix, iy + 1);
                    link(
                        &mut ta,
                        &mut tb,
                        &mut dirty,
                        rng,
                        i,
                        node(li, ix, iy + 1),
                        0.2,
                        t,
                    );
                }
                if li + 1 < layers {
                    link(
                        &mut ta,
                        &mut tb,
                        &mut dirty,
                        rng,
                        i,
                        node(li + 1, ix, iy),
                        0.05,
                        touched,
                    );
                }
            }
        }
    }
    for iy in 0..n {
        for ix in 0..n {
            let g = 0.02 + rng();
            let i = node(0, ix, iy);
            let gb = if in_window(ix, iy) {
                dirty[i] = true;
                0.02 + rng()
            } else {
                g
            };
            ta.add_ground(i, g);
            tb.add_ground(i, gb);
        }
    }
    let grid = layers * n * n;
    for e in 0..raster.extras {
        // Lumped periphery nodes stay clean: spacing moves never change
        // the spreader/sink attachment in the real assembly either.
        let ix = (rng() * n as f64) as usize % n;
        let c = 0.1 + 0.5 * rng();
        let g = 0.05 + 0.2 * rng();
        ta.add_conductance(grid + e, node(0, ix, 0), c);
        tb.add_conductance(grid + e, node(0, ix, 0), c);
        ta.add_ground(grid + e, g);
        tb.add_ground(grid + e, g);
    }
    (ta.to_csr(), tb.to_csr(), dirty)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Transfer-operator adjointness: restriction is exactly the
    /// transpose of prolongation, so `⟨R·v, w⟩ = ⟨v, P·w⟩` (the constant
    /// `c` of full weighting is 1 in this construction) at every level.
    #[test]
    fn restriction_is_the_prolongation_transpose(seed in 0u64..10_000) {
        let mut rng = splitmix(seed);
        let raster = random_raster(&mut rng);
        let a = raster_network(raster, &mut rng);
        let h = MgHierarchy::build(&a, raster, MgOptions::default())
            .expect("raster hierarchy must build");
        prop_assert!(h.levels() >= 2, "need at least one coarsening");
        for l in 0..h.levels() - 1 {
            let nf = h.level_matrix(l).n();
            let nc = h.level_matrix(l + 1).n();
            let v: Vec<f64> = (0..nf).map(|_| rng() - 0.5).collect();
            let w: Vec<f64> = (0..nc).map(|_| rng() - 0.5).collect();
            let rv_w = dot(&h.restrict(l, &v), &w);
            let v_pw = dot(&v, &h.prolong(l, &w));
            prop_assert!(
                (rv_w - v_pw).abs() <= 1e-12 * rv_w.abs().max(v_pw.abs()).max(1.0),
                "level {l}: <Rv,w> = {rv_w} but <v,Pw> = {v_pw}"
            );
        }
    }

    /// Galerkin coarse operators inherit symmetry and SPD-ness from the
    /// fine operator: the bilinear form is symmetric (to rounding; term
    /// association differs for transposed entries) and the dense Cholesky
    /// factorization — which fails on any non-positive pivot — succeeds
    /// on every level.
    #[test]
    fn galerkin_operators_stay_symmetric_and_spd(seed in 0u64..10_000) {
        let mut rng = splitmix(seed);
        let raster = random_raster(&mut rng);
        let a = raster_network(raster, &mut rng);
        let h = MgHierarchy::build(&a, raster, MgOptions::default())
            .expect("raster hierarchy must build");
        for l in 1..h.levels() {
            let ac = h.level_matrix(l);
            let nc = ac.n();
            let x: Vec<f64> = (0..nc).map(|_| rng() - 0.5).collect();
            let y: Vec<f64> = (0..nc).map(|_| rng() - 0.5).collect();
            let xy = bilinear(ac, &x, &y);
            let yx = bilinear(ac, &y, &x);
            prop_assert!(
                (xy - yx).abs() <= 1e-11 * xy.abs().max(yx.abs()).max(1.0),
                "level {l}: x·Ay = {xy} but y·Ax = {yx}"
            );
            prop_assert!(
                dense_cholesky_solve(ac, &x).is_ok(),
                "level {l}: Cholesky pivot failed — coarse operator not SPD"
            );
        }
    }

    /// One V-cycle contracts the error: applied as a preconditioner to
    /// the residual of a random iterate, the corrected iterate is strictly
    /// closer (in the 2-norm) to the dense-reference solution.
    #[test]
    fn vcycle_contracts_the_error(seed in 0u64..10_000) {
        let mut rng = splitmix(seed);
        let raster = random_raster(&mut rng);
        let a = raster_network(raster, &mut rng);
        let h = MgHierarchy::build(&a, raster, MgOptions::default())
            .expect("raster hierarchy must build");
        let nodes = raster.nodes();
        let b: Vec<f64> = (0..nodes).map(|_| rng() * 4.0 - 1.0).collect();
        let exact = dense_cholesky_solve(&a, &b).unwrap();
        // Random iterate scaled to the solution's magnitude.
        let scale = exact.iter().map(|v| v.abs()).fold(0.0, f64::max).max(1.0);
        let x0: Vec<f64> = (0..nodes).map(|_| scale * (rng() - 0.5)).collect();
        let mut r = vec![0.0; nodes];
        a.mul_vec(&x0, &mut r);
        for (ri, bi) in r.iter_mut().zip(&b) {
            *ri = bi - *ri;
        }
        let mut z = vec![0.0; nodes];
        h.precondition(&r, &mut z);
        let err0: f64 = x0.iter().zip(&exact).map(|(x, e)| (x - e) * (x - e)).sum::<f64>().sqrt();
        let err1: f64 = x0.iter().zip(&z).zip(&exact)
            .map(|((x, dz), e)| (x + dz - e) * (x + dz - e))
            .sum::<f64>()
            .sqrt();
        prop_assert!(
            err1 < 0.5 * err0,
            "V-cycle did not contract: ‖e‖ {err0} -> {err1}"
        );
    }

    /// The standalone defect-correction solve agrees with the dense
    /// Cholesky reference on random raster problems, within a modest
    /// V-cycle budget — the grid-independence property in miniature.
    #[test]
    fn mg_solve_matches_dense_reference(seed in 0u64..10_000) {
        let mut rng = splitmix(seed);
        let raster = random_raster(&mut rng);
        let a = raster_network(raster, &mut rng);
        let h = MgHierarchy::build(&a, raster, MgOptions::default())
            .expect("raster hierarchy must build");
        let b: Vec<f64> = (0..raster.nodes()).map(|_| rng() * 4.0 - 1.0).collect();
        let dense = dense_cholesky_solve(&a, &b).unwrap();
        let sol = h.solve(&b, None, 1e-11).unwrap();
        prop_assert!(sol.iterations < 60, "took {} V-cycles", sol.iterations);
        for (i, d) in dense.iter().enumerate() {
            prop_assert!(
                (sol.x[i] - d).abs() < 1e-7 * d.abs().max(1.0),
                "node {i}: {} vs {d}", sol.x[i]
            );
        }
    }

    /// A hierarchy refilled on a scaffold built from a *sibling* matrix
    /// (same pattern, perturbed values — a random spacing move) is
    /// bitwise identical to a from-scratch build of the perturbed
    /// matrix: every coarse operator value matches to the bit and a
    /// V-cycle solve takes the identical iteration count and produces
    /// the identical iterate.
    #[test]
    fn refill_on_shared_scaffold_matches_rebuild_bitwise(seed in 0u64..10_000) {
        let mut rng = splitmix(seed);
        let raster = random_raster(&mut rng);
        let (a, b, _) = perturbed_pair(raster, &mut rng);
        let scaffold = Arc::new(
            MgScaffold::build(&a, raster, MgOptions::default())
                .expect("raster scaffold must build"),
        );
        let refilled = MgHierarchy::from_scaffold(scaffold.clone(), &b)
            .expect("same-pattern refill must succeed");
        let rebuilt = MgHierarchy::build(&b, raster, MgOptions::default())
            .expect("raster hierarchy must build");
        prop_assert_eq!(refilled.levels(), rebuilt.levels());
        for l in 0..rebuilt.levels() {
            let rv = refilled.level_matrix(l).values();
            let bv = rebuilt.level_matrix(l).values();
            prop_assert_eq!(rv.len(), bv.len(), "level {} nnz", l);
            for (k, (x, y)) in rv.iter().zip(bv).enumerate() {
                prop_assert!(
                    x.to_bits() == y.to_bits(),
                    "level {} entry {}: {x:e} vs {y:e}", l, k
                );
            }
        }
        let rhs: Vec<f64> = (0..raster.nodes()).map(|_| rng() * 4.0 - 1.0).collect();
        let s1 = refilled.solve(&rhs, None, 1e-10).unwrap();
        let s2 = rebuilt.solve(&rhs, None, 1e-10).unwrap();
        prop_assert_eq!(s1.iterations, s2.iterations);
        for (i, (x, y)) in s1.x.iter().zip(&s2.x).enumerate() {
            prop_assert!(x.to_bits() == y.to_bits(), "node {}: {x:e} vs {y:e}", i);
        }
    }

    /// Dirty-row refill (patching only the rows a spacing move touched,
    /// base values elsewhere) is bitwise identical to a full refill of
    /// the same perturbed matrix on the same scaffold.
    #[test]
    fn dirty_refill_matches_full_refill_bitwise(seed in 0u64..10_000) {
        let mut rng = splitmix(seed);
        let raster = random_raster(&mut rng);
        let (a, b, dirty) = perturbed_pair(raster, &mut rng);
        let scaffold = Arc::new(
            MgScaffold::build(&a, raster, MgOptions::default())
                .expect("raster scaffold must build"),
        );
        let base = MgHierarchy::from_scaffold(scaffold.clone(), &a)
            .expect("base refill must succeed");
        let incremental = MgHierarchy::refill_dirty(scaffold.clone(), &b, &base, &dirty)
            .expect("dirty refill must succeed");
        let full = MgHierarchy::from_scaffold(scaffold, &b)
            .expect("full refill must succeed");
        for l in 0..full.levels() {
            let iv = incremental.level_matrix(l).values();
            let fv = full.level_matrix(l).values();
            for (k, (x, y)) in iv.iter().zip(fv).enumerate() {
                prop_assert!(
                    x.to_bits() == y.to_bits(),
                    "level {} entry {}: {x:e} vs {y:e}", l, k
                );
            }
        }
    }
}
