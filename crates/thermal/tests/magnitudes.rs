//! Diagnostic magnitudes (run with --ignored --nocapture to inspect).
use tac25d_floorplan::prelude::*;
use tac25d_thermal::model::{PackageModel, ThermalConfig};

#[test]
#[ignore]
fn print_magnitudes() {
    let chip = ChipSpec::scc_256();
    let rules = PackageRules::default();
    // Single chip at several total powers.
    let m2d = PackageModel::new(
        &chip,
        &ChipletLayout::SingleChip,
        &rules,
        &StackSpec::baseline_2d(),
        ThermalConfig::default(),
    )
    .unwrap();
    let die = Rect::from_corner(0.0, 0.0, 18.0, 18.0);
    for p in [162.0, 324.0, 486.0, 648.0] {
        let s = m2d.solve(&[(die, p)]).unwrap();
        println!(
            "2D chip {p:.0}W ({:.2} W/mm2): peak {:.1}",
            p / 324.0,
            s.peak().value()
        );
    }
    // 16-chiplet uniform spacing sweep at 324 W.
    for gap in [0.5, 2.0, 4.0, 6.0, 8.0, 10.0] {
        let layout = ChipletLayout::Uniform { r: 4, gap: Mm(gap) };
        let m = PackageModel::new(
            &chip,
            &layout,
            &rules,
            &StackSpec::system_25d(),
            ThermalConfig::default(),
        )
        .unwrap();
        let rects = layout.chiplet_rects(&chip, &rules);
        let srcs: Vec<_> = rects.iter().map(|r| (*r, 324.0 / 16.0)).collect();
        let s = m.solve(&srcs).unwrap();
        println!(
            "16-chiplet gap {gap}mm (interposer {:.0}mm): peak {:.1}",
            layout.footprint_edge(&chip, &rules).value(),
            s.peak().value()
        );
    }
    // 4-chiplet
    for gap in [2.0, 8.0] {
        let layout = ChipletLayout::Uniform { r: 2, gap: Mm(gap) };
        let m = PackageModel::new(
            &chip,
            &layout,
            &rules,
            &StackSpec::system_25d(),
            ThermalConfig::default(),
        )
        .unwrap();
        let rects = layout.chiplet_rects(&chip, &rules);
        let srcs: Vec<_> = rects.iter().map(|r| (*r, 324.0 / 4.0)).collect();
        let s = m.solve(&srcs).unwrap();
        println!("4-chiplet gap {gap}mm: peak {:.1}", s.peak().value());
    }
}
