//! Property-based tests of the sparse solver and the thermal model.

use proptest::prelude::*;
use tac25d_floorplan::prelude::*;
use tac25d_thermal::coupled::{solve_coupled, CoupledOptions, CoupledStrategy};
use tac25d_thermal::model::{PackageModel, ThermalConfig};
use tac25d_thermal::sparse::{pcg, TripletMatrix};

fn tiny_config() -> ThermalConfig {
    ThermalConfig {
        grid: 12,
        ..ThermalConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// PCG solves random grounded resistor networks to the requested
    /// tolerance (verified against the residual definition itself).
    #[test]
    fn pcg_meets_tolerance_on_random_networks(
        n in 3usize..40,
        seed in 0u64..1000,
    ) {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut rng = move || {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((state >> 33) as f64) / f64::from(u32::MAX)
        };
        let mut t = TripletMatrix::new(n);
        // Random spanning chain keeps the network connected.
        for i in 0..n - 1 {
            t.add_conductance(i, i + 1, 0.1 + rng());
        }
        // Extra random edges.
        for _ in 0..n {
            let a = (rng() * n as f64) as usize % n;
            let b = (rng() * n as f64) as usize % n;
            if a != b {
                t.add_conductance(a, b, rng());
            }
        }
        t.add_ground(0, 1.0 + rng());
        let a = t.to_csr();
        let b_vec: Vec<f64> = (0..n).map(|_| rng() * 10.0).collect();
        let sol = pcg(&a, &b_vec, None, 1e-10, 20_000).unwrap();
        // Verify the residual independently.
        let mut ax = vec![0.0; n];
        a.mul_vec(&sol.x, &mut ax);
        let res: f64 = ax.iter().zip(&b_vec).map(|(l, r)| (l - r) * (l - r)).sum::<f64>().sqrt();
        let bn: f64 = b_vec.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(res <= 1e-9 * bn.max(1.0), "residual {res}");
    }

    /// Superposition: the temperature *rise* of the sum of two power maps
    /// equals the sum of the rises (the network is linear).
    #[test]
    fn thermal_superposition(
        w1 in 1.0..200.0f64,
        w2 in 1.0..200.0f64,
        x in 0.0..12.0f64,
        y in 0.0..12.0f64,
    ) {
        let chip = ChipSpec::scc_256();
        let rules = PackageRules::default();
        let model = PackageModel::new(
            &chip,
            &ChipletLayout::SingleChip,
            &rules,
            &StackSpec::baseline_2d(),
            tiny_config(),
        )
        .unwrap();
        let amb = 45.0;
        let r1 = Rect::from_corner(0.0, 0.0, 18.0, 18.0);
        let r2 = Rect::from_corner(x, y, 4.0, 4.0);
        let probe = Rect::from_corner(8.0, 8.0, 2.0, 2.0);
        let t1 = model.solve(&[(r1, w1)]).unwrap().rect_avg(&probe).value() - amb;
        let t2 = model.solve(&[(r2, w2)]).unwrap().rect_avg(&probe).value() - amb;
        let t12 = model
            .solve(&[(r1, w1), (r2, w2)])
            .unwrap()
            .rect_avg(&probe)
            .value()
            - amb;
        prop_assert!(
            (t12 - (t1 + t2)).abs() < 1e-4 * (t1 + t2).abs().max(1.0),
            "superposition violated: {t12} vs {t1} + {t2}"
        );
    }

    /// Energy balance closes for arbitrary source sets.
    #[test]
    fn energy_balance_random_sources(
        xs in prop::collection::vec((0.0..14.0f64, 0.0..14.0f64, 0.5..4.0f64, 1.0..50.0f64), 1..5),
    ) {
        let chip = ChipSpec::scc_256();
        let rules = PackageRules::default();
        let model = PackageModel::new(
            &chip,
            &ChipletLayout::SingleChip,
            &rules,
            &StackSpec::baseline_2d(),
            tiny_config(),
        )
        .unwrap();
        let sources: Vec<(Rect, f64)> = xs
            .iter()
            .map(|&(x, y, s, w)| (Rect::from_corner(x, y, s, s), w))
            .collect();
        let sol = model.solve(&sources).unwrap();
        prop_assert!(sol.energy_balance_error() < 1e-6, "{}", sol.energy_balance_error());
    }

    /// The adaptive (Anderson + Eisenstat–Walker) coupled loop lands
    /// within the coupled tolerance of the fixed-tolerance Picard loop
    /// over random contractive leakage feedbacks: each converged iterate
    /// sits within `tol` of the true fixed point, so the two paths can
    /// differ by at most a small multiple of `tol`.
    #[test]
    fn adaptive_matches_fixed_within_coupled_tolerance(
        base_w in 80.0..220.0f64,
        feedback in 0.004..0.014f64,
    ) {
        let chip = ChipSpec::scc_256();
        let rules = PackageRules::default();
        let model = PackageModel::new(
            &chip,
            &ChipletLayout::SingleChip,
            &rules,
            &StackSpec::baseline_2d(),
            tiny_config(),
        )
        .unwrap();
        let die = Rect::from_corner(0.0, 0.0, 18.0, 18.0);
        let tol = 0.01;
        let run = |strategy: CoupledStrategy| {
            solve_coupled(
                &model,
                |sol| {
                    let t = sol.map_or(45.0, |s| s.rect_avg(&die).value());
                    vec![(die, base_w * (1.0 + feedback * (t - 45.0)))]
                },
                &CoupledOptions {
                    tol: Celsius(tol),
                    strategy,
                    ..CoupledOptions::default()
                },
            )
            .unwrap()
        };
        let picard = run(CoupledStrategy::Picard);
        let anderson = run(CoupledStrategy::Anderson);
        prop_assert!(picard.converged && anderson.converged);
        let max_dt = picard
            .solution
            .raw_temps()
            .iter()
            .zip(anderson.solution.raw_temps())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        prop_assert!(
            max_dt <= 2.0 * tol,
            "paths diverge beyond the coupled tolerance: max |dT| = {max_dt:.3e}"
        );
    }

    /// On a non-contractive (erratically jumping, bounded) power map, the
    /// Anderson safeguard must fall back to plain Picard steps rather
    /// than destabilize: the loop exhausts its iterations without error
    /// and the field stays bounded by the response to the maximum power.
    #[test]
    fn anderson_safeguard_survives_noncontractive_map(seed in 0u64..1000) {
        let chip = ChipSpec::scc_256();
        let rules = PackageRules::default();
        let model = PackageModel::new(
            &chip,
            &ChipletLayout::SingleChip,
            &rules,
            &StackSpec::baseline_2d(),
            tiny_config(),
        )
        .unwrap();
        let die = Rect::from_corner(0.0, 0.0, 18.0, 18.0);
        let w_max = 260.0;
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let r = solve_coupled(
            &model,
            move |_| {
                state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                let u = ((state >> 33) as f64) / f64::from(u32::MAX);
                // Jumps across [60, 260] W: no contraction to latch onto.
                vec![(die, 60.0 + (w_max - 60.0) * u)]
            },
            &CoupledOptions {
                max_iter: 8,
                strategy: CoupledStrategy::Anderson,
                ..CoupledOptions::default()
            },
        )
        .unwrap();
        prop_assert!(r.solution.peak().value().is_finite());
        // Bounded by the steady response to the maximum power plus slack
        // for the clamped secant extrapolation.
        let cap = model.solve(&[(die, w_max)]).unwrap().peak().value();
        prop_assert!(
            r.solution.peak().value() <= cap + 25.0,
            "safeguarded loop overshot: {} vs cap {}",
            r.solution.peak().value(),
            cap
        );
    }

    /// Peak temperature is monotone in total power for fixed shape.
    #[test]
    fn peak_monotone_in_power(w in 10.0..400.0f64, dw in 1.0..100.0f64) {
        let chip = ChipSpec::scc_256();
        let rules = PackageRules::default();
        let model = PackageModel::new(
            &chip,
            &ChipletLayout::SingleChip,
            &rules,
            &StackSpec::baseline_2d(),
            tiny_config(),
        )
        .unwrap();
        let die = Rect::from_corner(0.0, 0.0, 18.0, 18.0);
        let p1 = model.solve(&[(die, w)]).unwrap().peak();
        let p2 = model.solve(&[(die, w + dw)]).unwrap().peak();
        prop_assert!(p2 > p1);
    }
}
