//! Minimal sparse linear algebra for the thermal network: a triplet
//! assembler, a CSR matrix, and a preconditioned conjugate-gradient solver
//! with two preconditioners — Jacobi (the legacy [`pcg`] path) and IC(0)
//! incomplete Cholesky (the [`pcg_with`] fast path, factored once per
//! assembled matrix and reused across every solve).
//!
//! Thermal conductance networks are symmetric positive definite as long as
//! at least one node has a (positive) boundary conductance to ambient, so
//! PCG is the method of choice — no pivoting, no fill-in, O(nnz) per
//! iteration. They are also M-matrices, for which IC(0) provably exists;
//! for general SPD input [`Ic0::factor`] retries with Manteuffel diagonal
//! shifts and [`Preconditioner::ic0_or_jacobi`] falls back to Jacobi when
//! every shift breaks down.

use std::error::Error;
use std::fmt;

use tac25d_obs as obs;

/// Coordinate-format assembler for a symmetric matrix.
///
/// Duplicate entries are summed when converting to CSR, which makes
/// finite-volume assembly trivial: every conductance `g` between nodes `i`
/// and `j` contributes `+g` to both diagonals and `−g` to both off-diagonals
/// via [`TripletMatrix::add_conductance`].
#[derive(Debug, Clone)]
pub struct TripletMatrix {
    n: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl TripletMatrix {
    /// Creates an empty n×n assembler.
    pub fn new(n: usize) -> Self {
        TripletMatrix {
            n,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds `v` to entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range or `v` is not finite.
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.n && j < self.n, "({i},{j}) out of {0}x{0}", self.n);
        assert!(v.is_finite(), "non-finite matrix entry {v} at ({i},{j})");
        self.rows.push(i as u32);
        self.cols.push(j as u32);
        self.vals.push(v);
    }

    /// Adds a two-terminal conductance `g` between nodes `i` and `j`
    /// (diagonal `+g`, off-diagonal `−g`, symmetric).
    ///
    /// # Panics
    ///
    /// Panics if `g` is negative, non-finite, or `i == j`.
    pub fn add_conductance(&mut self, i: usize, j: usize, g: f64) {
        assert!(i != j, "conductance needs two distinct nodes, got {i}");
        assert!(g >= 0.0, "negative conductance {g} between {i} and {j}");
        if g == 0.0 {
            return;
        }
        self.add(i, i, g);
        self.add(j, j, g);
        self.add(i, j, -g);
        self.add(j, i, -g);
    }

    /// Adds a grounded (boundary) conductance `g` at node `i` — e.g. a
    /// convective path to ambient. Only the diagonal is touched; the
    /// ambient temperature enters through the right-hand side.
    ///
    /// # Panics
    ///
    /// Panics if `g` is negative or non-finite.
    pub fn add_ground(&mut self, i: usize, g: f64) {
        assert!(g >= 0.0, "negative ground conductance {g} at node {i}");
        if g > 0.0 {
            self.add(i, i, g);
        }
    }

    /// Converts to CSR, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        let n = self.n;
        // Count entries per row after dedup: do a two-pass bucket sort.
        let mut perm: Vec<u32> = (0..self.vals.len() as u32).collect();
        perm.sort_unstable_by_key(|&k| {
            let k = k as usize;
            (self.rows[k], self.cols[k])
        });
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col = Vec::new();
        let mut val = Vec::new();
        row_ptr.push(0u32);
        let mut cur_row = 0u32;
        let mut last: Option<(u32, u32)> = None;
        for &k in &perm {
            let k = k as usize;
            let (r, c, v) = (self.rows[k], self.cols[k], self.vals[k]);
            while cur_row < r {
                row_ptr.push(col.len() as u32);
                cur_row += 1;
            }
            if last == Some((r, c)) {
                *val.last_mut().expect("entry exists") += v;
            } else {
                col.push(c);
                val.push(v);
                last = Some((r, c));
            }
        }
        while (row_ptr.len() as u32) <= cur_row {
            row_ptr.push(col.len() as u32);
        }
        while row_ptr.len() < n + 1 {
            row_ptr.push(col.len() as u32);
        }
        CsrMatrix {
            n,
            row_ptr,
            col,
            val,
        }
    }
}

/// Compressed-sparse-row matrix.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<u32>,
    col: Vec<u32>,
    val: Vec<f64>,
}

impl CsrMatrix {
    /// Assembles a CSR matrix from precomputed parts — the scaffolded
    /// assembly path in [`crate::network`] derives the sparsity pattern
    /// once per package shape and refills only the values.
    pub(crate) fn from_parts(
        n: usize,
        row_ptr: Vec<u32>,
        col: Vec<u32>,
        val: Vec<f64>,
    ) -> CsrMatrix {
        debug_assert_eq!(row_ptr.len(), n + 1, "row pointer length mismatch");
        debug_assert_eq!(col.len(), val.len(), "col/val length mismatch");
        debug_assert_eq!(row_ptr[n] as usize, col.len(), "row pointer tail mismatch");
        CsrMatrix {
            n,
            row_ptr,
            col,
            val,
        }
    }

    /// The stored entry values in pattern order (row-major, ascending
    /// columns) — the layout [`CsrMatrix::from_parts`] expects back.
    /// Public so equivalence tests can compare operators bitwise.
    pub fn values(&self) -> &[f64] {
        &self.val
    }

    /// Mutable view of the stored values, pattern order; the sparsity
    /// pattern itself is immutable. Used by in-crate tests that patch
    /// individual entries.
    #[cfg(test)]
    pub(crate) fn values_mut(&mut self) -> &mut [f64] {
        &mut self.val
    }

    /// The raw CSR triple `(row_ptr, col, val)` — read-only structure
    /// access for in-crate kernels (the multigrid smoother and transfer
    /// operators walk rows directly).
    pub(crate) fn parts(&self) -> (&[u32], &[u32], &[f64]) {
        (&self.row_ptr, &self.col, &self.val)
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// Computes `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match the matrix dimension.
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "x length mismatch");
        assert_eq!(y.len(), self.n, "y length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[i] as usize;
            let hi = self.row_ptr[i + 1] as usize;
            let mut acc = 0.0;
            for (v, c) in self.val[lo..hi].iter().zip(&self.col[lo..hi]) {
                acc += v * x[*c as usize];
            }
            *yi = acc;
        }
    }

    /// Returns a copy of the matrix with `d[i]` added to each diagonal
    /// entry — the backward-Euler iteration matrix `G + C/Δt` of the
    /// transient solver.
    ///
    /// # Panics
    ///
    /// Panics if `d` has the wrong length or a diagonal entry is missing
    /// from the sparsity pattern (conductance networks always store their
    /// diagonal).
    pub fn with_added_diagonal(&self, d: &[f64]) -> CsrMatrix {
        assert_eq!(d.len(), self.n, "diagonal length mismatch");
        let mut out = self.clone();
        for (i, di) in d.iter().enumerate() {
            let lo = out.row_ptr[i] as usize;
            let hi = out.row_ptr[i + 1] as usize;
            let k = (lo..hi)
                .find(|&k| out.col[k] as usize == i)
                .unwrap_or_else(|| panic!("row {i} has no stored diagonal"));
            out.val[k] += di;
        }
        out
    }

    /// Extracts the diagonal.
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.n];
        for (i, di) in d.iter_mut().enumerate() {
            let lo = self.row_ptr[i] as usize;
            let hi = self.row_ptr[i + 1] as usize;
            for k in lo..hi {
                if self.col[k] as usize == i {
                    *di += self.val[k];
                }
            }
        }
        d
    }
}

/// Why a PCG solve failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// Residual failed to reach the tolerance within the iteration budget.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Final relative residual.
        residual: f64,
    },
    /// The matrix is not positive definite along the explored subspace
    /// (p·Ap ≤ 0), or a zero/negative diagonal breaks the preconditioner.
    NotPositiveDefinite,
    /// NaN/∞ encountered (badly scaled or inconsistent system).
    NumericalBreakdown,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NoConvergence { iterations, residual } => write!(
                f,
                "conjugate gradient did not converge in {iterations} iterations (residual {residual:.3e})"
            ),
            SolveError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            SolveError::NumericalBreakdown => write!(f, "numerical breakdown (NaN/inf)"),
        }
    }
}

impl Error for SolveError {}

/// Result of a successful PCG solve.
#[derive(Debug, Clone)]
pub struct PcgSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Final relative residual ‖b − Ax‖ / ‖b‖.
    pub residual: f64,
}

/// Manteuffel diagonal-shift schedule for [`Ic0::factor`]: each retry
/// factors `A + α·diag(A)` with the next larger `α`. Thermal conductance
/// networks are M-matrices and always factor at `α = 0`; the nonzero
/// entries exist for general SPD matrices (e.g. Kershaw's example) whose
/// incomplete factorization hits a non-positive pivot.
const IC0_SHIFTS: &[f64] = &[0.0, 1e-3, 1e-2, 0.1, 0.5];

/// Incomplete Cholesky factorization with zero fill-in, IC(0):
/// `L·Lᵀ ≈ A` where `L` is restricted to the lower-triangular sparsity
/// pattern of `A`. Applying `z = (L·Lᵀ)⁻¹·r` costs two sparse triangular
/// sweeps (O(nnz)) and cuts PCG iteration counts several-fold versus the
/// Jacobi preconditioner on grid Laplacians like the thermal network.
///
/// The strict lower triangle is stored row-wise (CSR, ascending columns)
/// for the forward sweep and its transpose (the strict upper triangle)
/// row-wise for the backward sweep, so both substitutions stream
/// cache-friendly over contiguous rows.
#[derive(Debug, Clone)]
pub struct Ic0 {
    n: usize,
    l_row_ptr: Vec<u32>,
    l_col: Vec<u32>,
    l_val: Vec<f64>,
    u_row_ptr: Vec<u32>,
    u_col: Vec<u32>,
    u_val: Vec<f64>,
    inv_diag: Vec<f64>,
    shift: f64,
}

impl Ic0 {
    /// Factors `A` (or, on breakdown, `A + α·diag(A)` for the smallest
    /// working `α` from the retry schedule). Returns `None` when every
    /// shift hits a non-positive pivot or a diagonal entry is missing or
    /// non-positive — the caller should then fall back to Jacobi.
    pub fn factor(a: &CsrMatrix) -> Option<Ic0> {
        let diag = a.diagonal();
        if diag.iter().any(|&d| d <= 0.0 || !d.is_finite()) {
            return None;
        }
        IC0_SHIFTS
            .iter()
            .find_map(|&shift| factor_with_shift(a, shift))
    }

    /// Refactors after an incremental matrix patch that left every row
    /// before `first_dirty` unchanged: rows `< first_dirty` of the factor
    /// are copied from `base` (an up-looking IC(0) row depends only on
    /// rows `≤ i` of `A`), the rest recomputed — bitwise identical to a
    /// full factorization of the patched matrix. Only valid for a clean
    /// (shift-0) base factor; returns `None` when the patched matrix no
    /// longer factors at shift 0, in which case the caller should fall
    /// back to [`Ic0::factor`] and its retry schedule.
    pub(crate) fn refactor_prefix(a: &CsrMatrix, base: &Ic0, first_dirty: usize) -> Option<Ic0> {
        if base.n != a.n() || base.shift != 0.0 {
            return None;
        }
        factor_rows(a, 0.0, Some((base, first_dirty.min(a.n()))))
    }

    /// The diagonal shift `α` the factorization succeeded with (0 for a
    /// clean factorization, positive after a breakdown retry).
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Stored entries of `L` (strict lower triangle plus diagonal).
    pub fn nnz(&self) -> usize {
        self.l_val.len() + self.n
    }

    /// Applies the preconditioner: solves `L·Lᵀ·z = r` by a forward then a
    /// backward triangular sweep, both in place in `z`.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match the factor dimension.
    pub fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.n, "r length mismatch");
        assert_eq!(z.len(), self.n, "z length mismatch");
        // Forward: L·y = r, ascending rows (z[j] for j < i already final).
        for i in 0..self.n {
            let mut acc = r[i];
            let lo = self.l_row_ptr[i] as usize;
            let hi = self.l_row_ptr[i + 1] as usize;
            for (v, c) in self.l_val[lo..hi].iter().zip(&self.l_col[lo..hi]) {
                acc -= v * z[*c as usize];
            }
            z[i] = acc * self.inv_diag[i];
        }
        // Backward: Lᵀ·x = y, descending rows (z[j] for j > i already final;
        // row i of the strict upper triangle holds L[j][i] keyed by j).
        for i in (0..self.n).rev() {
            let mut acc = z[i];
            let lo = self.u_row_ptr[i] as usize;
            let hi = self.u_row_ptr[i + 1] as usize;
            for (v, c) in self.u_val[lo..hi].iter().zip(&self.u_col[lo..hi]) {
                acc -= v * z[*c as usize];
            }
            z[i] = acc * self.inv_diag[i];
        }
    }
}

/// Up-looking IC(0) of `A + shift·diag(A)`; `None` on a non-positive pivot.
fn factor_with_shift(a: &CsrMatrix, shift: f64) -> Option<Ic0> {
    factor_rows(a, shift, None)
}

/// The up-looking factorization loop behind [`factor_with_shift`] and
/// [`Ic0::refactor_prefix`]. With `prefix = (base, d0)`, rows `< d0` of
/// `L` are copied from `base` instead of recomputed; because row `i` of an
/// up-looking factor is a function of rows `≤ i` of `A` alone, the result
/// is bitwise identical to factoring the whole matrix from scratch.
fn factor_rows(a: &CsrMatrix, shift: f64, prefix: Option<(&Ic0, usize)>) -> Option<Ic0> {
    let n = a.n();
    let mut inv_diag = vec![0.0f64; n];
    let (mut l_row_ptr, mut l_col, mut l_val, start) = match prefix {
        Some((base, d0)) => {
            let end = base.l_row_ptr[d0] as usize;
            inv_diag[..d0].copy_from_slice(&base.inv_diag[..d0]);
            (
                base.l_row_ptr[..=d0].to_vec(),
                base.l_col[..end].to_vec(),
                base.l_val[..end].to_vec(),
                d0,
            )
        }
        None => {
            let mut l_row_ptr = Vec::with_capacity(n + 1);
            l_row_ptr.push(0u32);
            (l_row_ptr, Vec::new(), Vec::new(), 0)
        }
    };
    for i in start..n {
        let row_start = l_val.len();
        let lo = a.row_ptr[i] as usize;
        let hi = a.row_ptr[i + 1] as usize;
        let mut a_ii = None;
        for k in lo..hi {
            let j = a.col[k] as usize;
            if j > i {
                break; // CSR columns are ascending; rest is upper triangle
            }
            if j == i {
                a_ii = Some(a.val[k]);
                break;
            }
            // L[i][j] = (A[i][j] − Σ_k L[i][k]·L[j][k]) / L[j][j], the sum
            // running over the (sorted) column intersection of rows i and j.
            let mut s = a.val[k];
            let (mut p, mut q) = (row_start, l_row_ptr[j] as usize);
            let (p_end, q_end) = (l_val.len(), l_row_ptr[j + 1] as usize);
            while p < p_end && q < q_end {
                match l_col[p].cmp(&l_col[q]) {
                    std::cmp::Ordering::Equal => {
                        s -= l_val[p] * l_val[q];
                        p += 1;
                        q += 1;
                    }
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                }
            }
            l_col.push(j as u32);
            l_val.push(s * inv_diag[j]);
        }
        // Conductance assembly always stores the diagonal; a pattern
        // without one cannot be factored.
        let a_ii = a_ii?;
        let sumsq: f64 = l_val[row_start..].iter().map(|v| v * v).sum();
        let arg = a_ii * (1.0 + shift) - sumsq;
        if arg <= 0.0 || !arg.is_finite() {
            return None;
        }
        let d = arg.sqrt();
        inv_diag[i] = 1.0 / d;
        l_row_ptr.push(l_val.len() as u32);
    }
    // Transpose the strict lower triangle for the backward sweep. The
    // row-major scan leaves each transposed row's columns ascending.
    let mut u_row_ptr = vec![0u32; n + 1];
    for &c in &l_col {
        u_row_ptr[c as usize + 1] += 1;
    }
    for i in 0..n {
        u_row_ptr[i + 1] += u_row_ptr[i];
    }
    let mut next: Vec<u32> = u_row_ptr[..n].to_vec();
    let mut u_col = vec![0u32; l_col.len()];
    let mut u_val = vec![0.0f64; l_val.len()];
    for i in 0..n {
        for k in l_row_ptr[i] as usize..l_row_ptr[i + 1] as usize {
            let j = l_col[k] as usize;
            let slot = next[j] as usize;
            next[j] += 1;
            u_col[slot] = i as u32;
            u_val[slot] = l_val[k];
        }
    }
    Some(Ic0 {
        n,
        l_row_ptr,
        l_col,
        l_val,
        u_row_ptr,
        u_col,
        u_val,
        inv_diag,
        shift,
    })
}

/// A preconditioner for [`pcg_with`] — built once per assembled matrix and
/// reused across every solve of that matrix (factor-once/solve-many).
#[derive(Debug, Clone)]
pub enum Preconditioner {
    /// Diagonal scaling, `z = r / diag(A)`.
    Jacobi {
        /// Reciprocal diagonal of `A`.
        inv_diag: Vec<f64>,
    },
    /// Incomplete Cholesky, `z = (L·Lᵀ)⁻¹·r`.
    Ic0(Ic0),
    /// One geometric-multigrid V-cycle on the error equation
    /// (`z = V(0; r)`, see [`crate::mg::MgHierarchy::precondition`]).
    /// The hierarchy is factor-once state shared behind an `Arc`, like the
    /// IC(0) factor.
    Multigrid(std::sync::Arc<crate::mg::MgHierarchy>),
}

impl Preconditioner {
    /// Jacobi preconditioner.
    ///
    /// # Errors
    ///
    /// [`SolveError::NotPositiveDefinite`] when a diagonal entry is zero,
    /// negative, or non-finite.
    pub fn jacobi(a: &CsrMatrix) -> Result<Self, SolveError> {
        let diag = a.diagonal();
        if diag.iter().any(|&d| d <= 0.0 || !d.is_finite()) {
            return Err(SolveError::NotPositiveDefinite);
        }
        Ok(Preconditioner::Jacobi {
            inv_diag: diag.iter().map(|d| 1.0 / d).collect(),
        })
    }

    /// IC(0) when the factorization succeeds (counting it under
    /// `thermal.ic0_factorizations`), Jacobi otherwise — the breakdown
    /// fallback the solver fast path relies on.
    ///
    /// # Errors
    ///
    /// [`SolveError::NotPositiveDefinite`] when even Jacobi is impossible
    /// (non-positive diagonal).
    pub fn ic0_or_jacobi(a: &CsrMatrix) -> Result<Self, SolveError> {
        match Ic0::factor(a) {
            Some(f) => {
                obs::counter!("thermal.ic0_factorizations").inc();
                Ok(Preconditioner::Ic0(f))
            }
            None => Self::jacobi(a),
        }
    }

    /// True for the IC(0) variant.
    pub fn is_ic0(&self) -> bool {
        matches!(self, Preconditioner::Ic0(_))
    }

    /// True for the multigrid variant.
    pub fn is_multigrid(&self) -> bool {
        matches!(self, Preconditioner::Multigrid(_))
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        match self {
            Preconditioner::Jacobi { inv_diag } => {
                for i in 0..r.len() {
                    z[i] = r[i] * inv_diag[i];
                }
            }
            Preconditioner::Ic0(f) => f.apply(r, z),
            Preconditioner::Multigrid(h) => h.precondition(r, z),
        }
    }
}

/// Reusable PCG work vectors. Threading one scratch through a sequence of
/// same-sized solves (a leakage fixed point, a candidate evaluation)
/// eliminates the per-solve allocation of the four iteration vectors.
#[derive(Debug, Clone, Default)]
pub struct SolveScratch {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
}

impl SolveScratch {
    /// An empty scratch; buffers are sized lazily by the first solve.
    pub fn new() -> Self {
        SolveScratch::default()
    }

    fn resize(&mut self, n: usize) {
        // Contents need not be cleared: every solve fully overwrites all
        // four vectors before reading them.
        self.r.resize(n, 0.0);
        self.z.resize(n, 0.0);
        self.p.resize(n, 0.0);
        self.ap.resize(n, 0.0);
    }
}

/// Solves `A·x = b` for a symmetric positive-definite `A` using conjugate
/// gradients with a Jacobi (diagonal) preconditioner.
///
/// `x0` is an optional warm start (pass `None` to start from zero) — the
/// leakage fixed-point loop re-solves nearly identical systems and converges
/// several times faster with warm starts.
///
/// This is the legacy path kept for differential verification; the solver
/// fast path is [`pcg_with`], which takes a prebuilt [`Preconditioner`]
/// and a reusable [`SolveScratch`].
///
/// # Errors
///
/// Returns [`SolveError`] if convergence fails, the matrix is detected to be
/// non-SPD, or numerical breakdown occurs.
pub fn pcg(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    rel_tol: f64,
    max_iter: usize,
) -> Result<PcgSolution, SolveError> {
    let _span = obs::span!("thermal.pcg_solve");
    obs::counter!("thermal.pcg_solves").inc();
    let result = pcg_inner(a, b, x0, rel_tol, max_iter);
    record_pcg_metrics(&result);
    result
}

/// Solves `A·x = b` with a caller-supplied preconditioner and scratch
/// buffers — the factor-once/solve-many fast path. Semantics otherwise
/// match [`pcg`] (same convergence test, same error contract, same obs
/// metrics).
///
/// # Errors
///
/// Returns [`SolveError`] if convergence fails, the matrix is detected to be
/// non-SPD, or numerical breakdown occurs.
pub fn pcg_with(
    a: &CsrMatrix,
    m: &Preconditioner,
    b: &[f64],
    x0: Option<&[f64]>,
    rel_tol: f64,
    max_iter: usize,
    scratch: &mut SolveScratch,
) -> Result<PcgSolution, SolveError> {
    let _span = obs::span!("thermal.pcg_solve");
    obs::counter!("thermal.pcg_solves").inc();
    let result = pcg_with_inner(a, m, b, x0, rel_tol, max_iter, scratch);
    record_pcg_metrics(&result);
    result
}

/// Outcome of a capped PCG phase: either the solve finished (converged or
/// failed) within the cap, or it hit the iteration cap with a usable
/// partial iterate to continue from under a stronger preconditioner.
enum CapOutcome {
    Done(Result<PcgSolution, SolveError>),
    Capped {
        x: Vec<f64>,
        iterations: usize,
        /// Relative residual of the initial iterate (before iteration 1).
        res0: f64,
        /// Relative residual at the cap.
        res: f64,
    },
}

/// Escalating solve: runs PCG under the cheap `m0` preconditioner for up
/// to `cap` iterations; a solve still going at the cap is assessed from
/// its own trajectory — the capped phase's average contraction rate
/// `ρ = (res/res0)^(1/cap)` projects the remaining `m0` iterations — and
/// only a solve with more work left than it has already spent
/// (`projected > cap`) calls `escalate()` to obtain a stronger
/// preconditioner (building it lazily) and restarts from the partial
/// iterate under it. A solve that is nearly done at the cap restarts
/// under `m0` instead, so crossing the cap by a handful of iterations
/// never pays for a hierarchy it would not use.
///
/// Either continuation is a preconditioner-switch restart — a
/// warm-started PCG solve — so the combined result is a pure function of
/// `(a, b, x0)` and fully deterministic; `thermal.mg_escalations` counts
/// the solves that actually escalated. Reported `iterations` is the
/// total across both phases. If `escalate()` returns `None` (e.g.
/// hierarchy construction is unsupported for this matrix), the solve
/// restarts under `m0` and runs to `max_iter`.
///
/// # Errors
///
/// Returns [`SolveError`] if convergence fails, the matrix is detected to
/// be non-SPD, or numerical breakdown occurs.
#[allow(clippy::too_many_arguments)]
pub fn pcg_escalate<'a>(
    a: &CsrMatrix,
    m0: &'a Preconditioner,
    cap: usize,
    escalate: impl FnOnce() -> Option<&'a Preconditioner>,
    b: &[f64],
    x0: Option<&[f64]>,
    rel_tol: f64,
    max_iter: usize,
    scratch: &mut SolveScratch,
) -> Result<PcgSolution, SolveError> {
    let _span = obs::span!("thermal.pcg_solve");
    obs::counter!("thermal.pcg_solves").inc();
    let result = match pcg_capped_inner(a, m0, b, x0, rel_tol, max_iter, Some(cap), scratch) {
        CapOutcome::Done(r) => r,
        CapOutcome::Capped {
            x,
            iterations,
            res0,
            res,
        } => {
            let rho = (res / res0).powf(1.0 / iterations.max(1) as f64);
            let projected = if rho < 1.0 && res > 0.0 {
                (rel_tol / res).ln() / rho.ln()
            } else {
                f64::INFINITY
            };
            let m1 = if projected > iterations as f64 {
                obs::counter!("thermal.mg_escalations").inc();
                escalate().unwrap_or(m0)
            } else {
                m0
            };
            match pcg_capped_inner(
                a,
                m1,
                b,
                Some(&x),
                rel_tol,
                max_iter - iterations,
                None,
                scratch,
            ) {
                CapOutcome::Done(Ok(mut sol)) => {
                    sol.iterations += iterations;
                    Ok(sol)
                }
                CapOutcome::Done(Err(SolveError::NoConvergence {
                    iterations: cont_iters,
                    residual,
                })) => Err(SolveError::NoConvergence {
                    iterations: iterations + cont_iters,
                    residual,
                }),
                CapOutcome::Done(Err(e)) => Err(e),
                CapOutcome::Capped { .. } => unreachable!("continuation phase has no cap"),
            }
        }
    };
    record_pcg_metrics(&result);
    result
}

fn record_pcg_metrics(result: &Result<PcgSolution, SolveError>) {
    match result {
        Ok(sol) => {
            obs::counter!("thermal.pcg_iterations").add(sol.iterations as u64);
            obs::histogram!("thermal.pcg_iterations_per_solve").record(sol.iterations as u64);
            obs::gauge!("thermal.pcg_final_residual").set(sol.residual);
        }
        Err(SolveError::NoConvergence { iterations, .. }) => {
            obs::counter!("thermal.pcg_iterations").add(*iterations as u64);
            obs::counter!("thermal.pcg_failures").inc();
        }
        Err(_) => obs::counter!("thermal.pcg_failures").inc(),
    }
}

fn pcg_with_inner(
    a: &CsrMatrix,
    m: &Preconditioner,
    b: &[f64],
    x0: Option<&[f64]>,
    rel_tol: f64,
    max_iter: usize,
    scratch: &mut SolveScratch,
) -> Result<PcgSolution, SolveError> {
    match pcg_capped_inner(a, m, b, x0, rel_tol, max_iter, None, scratch) {
        CapOutcome::Done(r) => r,
        CapOutcome::Capped { .. } => unreachable!("uncapped solve cannot hit a cap"),
    }
}

#[allow(clippy::needless_range_loop, clippy::too_many_arguments)]
fn pcg_capped_inner(
    a: &CsrMatrix,
    m: &Preconditioner,
    b: &[f64],
    x0: Option<&[f64]>,
    rel_tol: f64,
    max_iter: usize,
    cap: Option<usize>,
    scratch: &mut SolveScratch,
) -> CapOutcome {
    let n = a.n();
    assert_eq!(b.len(), n, "rhs length mismatch");
    let b_norm = norm(b);
    if b_norm == 0.0 {
        return CapOutcome::Done(Ok(PcgSolution {
            x: vec![0.0; n],
            iterations: 0,
            residual: 0.0,
        }));
    }
    let mut x = match x0 {
        Some(x0) => {
            assert_eq!(x0.len(), n, "warm-start length mismatch");
            x0.to_vec()
        }
        None => vec![0.0; n],
    };
    scratch.resize(n);
    let SolveScratch { r, z, p, ap } = scratch;
    a.mul_vec(&x, r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    // Convergence is tested right after each residual update (and for the
    // initial residual, right here) so a converging iteration skips its
    // preconditioner apply and direction update; the residual norm is
    // accumulated inside the update loop in index order, making it
    // bitwise identical to a separate `norm(r)` pass.
    let res0 = norm(r) / b_norm;
    if !res0.is_finite() {
        return CapOutcome::Done(Err(SolveError::NumericalBreakdown));
    }
    if res0 <= rel_tol {
        return CapOutcome::Done(Ok(PcgSolution {
            x,
            iterations: 0,
            residual: res0,
        }));
    }
    if cap == Some(0) && max_iter > 0 {
        return CapOutcome::Capped {
            x,
            iterations: 0,
            res0,
            res: res0,
        };
    }
    m.apply(r, z);
    p.copy_from_slice(z);
    let mut rz = dot(r, z);

    for it in 1..=max_iter {
        a.mul_vec(p, ap);
        let pap = dot(p, ap);
        if pap <= 0.0 || !pap.is_finite() {
            return CapOutcome::Done(Err(SolveError::NotPositiveDefinite));
        }
        let alpha = rz / pap;
        let mut rn2 = 0.0;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
            rn2 += r[i] * r[i];
        }
        let res = rn2.sqrt() / b_norm;
        if !res.is_finite() {
            return CapOutcome::Done(Err(SolveError::NumericalBreakdown));
        }
        if res <= rel_tol {
            return CapOutcome::Done(Ok(PcgSolution {
                x,
                iterations: it,
                residual: res,
            }));
        }
        if it == max_iter {
            break;
        }
        if cap == Some(it) {
            return CapOutcome::Capped {
                x,
                iterations: it,
                res0,
                res,
            };
        }
        m.apply(r, z);
        let rz_new = dot(r, z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let res = norm(r) / b_norm;
    CapOutcome::Done(Err(SolveError::NoConvergence {
        iterations: max_iter,
        residual: res,
    }))
}

fn pcg_inner(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    rel_tol: f64,
    max_iter: usize,
) -> Result<PcgSolution, SolveError> {
    let n = a.n();
    assert_eq!(b.len(), n, "rhs length mismatch");
    let diag = a.diagonal();
    if diag.iter().any(|&d| d <= 0.0 || !d.is_finite()) {
        return Err(SolveError::NotPositiveDefinite);
    }
    let inv_diag: Vec<f64> = diag.iter().map(|d| 1.0 / d).collect();

    let b_norm = norm(b);
    if b_norm == 0.0 {
        return Ok(PcgSolution {
            x: vec![0.0; n],
            iterations: 0,
            residual: 0.0,
        });
    }

    let mut x = match x0 {
        Some(x0) => {
            assert_eq!(x0.len(), n, "warm-start length mismatch");
            x0.to_vec()
        }
        None => vec![0.0; n],
    };
    let mut r = vec![0.0; n];
    a.mul_vec(&x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    for it in 0..max_iter {
        let res = norm(&r) / b_norm;
        if !res.is_finite() {
            return Err(SolveError::NumericalBreakdown);
        }
        if res <= rel_tol {
            return Ok(PcgSolution {
                x,
                iterations: it,
                residual: res,
            });
        }
        a.mul_vec(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            return Err(SolveError::NotPositiveDefinite);
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        for i in 0..n {
            z[i] = r[i] * inv_diag[i];
        }
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let res = norm(&r) / b_norm;
    Err(SolveError::NoConvergence {
        iterations: max_iter,
        residual: res,
    })
}

/// Solves `A·x = b` by dense Cholesky factorization — an O(n³) reference
/// implementation used to validate PCG in tests and tiny models. Not for
/// production grids.
///
/// # Errors
///
/// Returns [`SolveError::NotPositiveDefinite`] if the factorization
/// encounters a non-positive pivot.
///
/// # Panics
///
/// Panics if `b`'s length does not match the matrix dimension.
pub fn dense_cholesky_solve(a: &CsrMatrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    let n = a.n();
    assert_eq!(b.len(), n, "rhs length mismatch");
    // Densify.
    let mut m = vec![0.0f64; n * n];
    for i in 0..n {
        let lo = a.row_ptr[i] as usize;
        let hi = a.row_ptr[i + 1] as usize;
        for k in lo..hi {
            m[i * n + a.col[k] as usize] += a.val[k];
        }
    }
    // In-place lower Cholesky: m = L·Lᵀ.
    for j in 0..n {
        let mut d = m[j * n + j];
        for k in 0..j {
            d -= m[j * n + k] * m[j * n + k];
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(SolveError::NotPositiveDefinite);
        }
        let d = d.sqrt();
        m[j * n + j] = d;
        for i in (j + 1)..n {
            let mut v = m[i * n + j];
            for k in 0..j {
                v -= m[i * n + k] * m[j * n + k];
            }
            m[i * n + j] = v / d;
        }
    }
    // Forward substitution L·y = b.
    let mut y = b.to_vec();
    for i in 0..n {
        for k in 0..i {
            y[i] -= m[i * n + k] * y[k];
        }
        y[i] /= m[i * n + i];
    }
    // Back substitution Lᵀ·x = y.
    let mut x = y;
    for i in (0..n).rev() {
        for k in (i + 1)..n {
            x[i] -= m[k * n + i] * x[k];
        }
        x[i] /= m[i * n + i];
    }
    Ok(x)
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr_from_dense(d: &[&[f64]]) -> CsrMatrix {
        let n = d.len();
        let mut t = TripletMatrix::new(n);
        for (i, row) in d.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    t.add(i, j, v);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn csr_conversion_sums_duplicates() {
        let mut t = TripletMatrix::new(2);
        t.add(0, 0, 1.0);
        t.add(0, 0, 2.0);
        t.add(1, 0, 5.0);
        let a = t.to_csr();
        assert_eq!(a.nnz(), 2);
        let mut y = vec![0.0; 2];
        a.mul_vec(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    fn csr_handles_empty_rows() {
        let mut t = TripletMatrix::new(4);
        t.add(0, 0, 1.0);
        t.add(3, 3, 2.0);
        let a = t.to_csr();
        let mut y = vec![0.0; 4];
        a.mul_vec(&[1.0, 1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn diagonal_extraction() {
        let a = csr_from_dense(&[&[4.0, -1.0], &[-1.0, 3.0]]);
        assert_eq!(a.diagonal(), vec![4.0, 3.0]);
    }

    #[test]
    fn pcg_solves_small_spd_system() {
        // A = [[4,1],[1,3]], b = [1,2] -> x = [1/11, 7/11]
        let a = csr_from_dense(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let sol = pcg(&a, &[1.0, 2.0], None, 1e-12, 100).unwrap();
        assert!((sol.x[0] - 1.0 / 11.0).abs() < 1e-10);
        assert!((sol.x[1] - 7.0 / 11.0).abs() < 1e-10);
    }

    #[test]
    fn pcg_solves_grounded_resistor_ladder() {
        // Chain of 5 nodes, conductance 2 between neighbours, node 0
        // grounded with g=1, inject 1 W at node 4. All current flows to
        // ground: T0 = 1/1, and each link adds 1/2.
        let n = 5;
        let mut t = TripletMatrix::new(n);
        for i in 0..n - 1 {
            t.add_conductance(i, i + 1, 2.0);
        }
        t.add_ground(0, 1.0);
        let a = t.to_csr();
        let mut b = vec![0.0; n];
        b[4] = 1.0;
        let sol = pcg(&a, &b, None, 1e-12, 1000).unwrap();
        for (i, &ti) in sol.x.iter().enumerate() {
            let expect = 1.0 + 0.5 * i as f64;
            assert!((ti - expect).abs() < 1e-9, "node {i}: {ti} vs {expect}");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pcg_matches_dense_solution_on_random_spd() {
        // Deterministic pseudo-random diagonally dominant SPD matrix.
        let n = 30;
        let mut seed = 0x12345678u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64)
        };
        let mut dense = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = rng() - 0.5;
                dense[i][j] = v;
                dense[j][i] = v;
            }
        }
        for i in 0..n {
            let off: f64 = (0..n).filter(|&j| j != i).map(|j| dense[i][j].abs()).sum();
            dense[i][i] = off + 1.0 + rng();
        }
        let rows: Vec<&[f64]> = dense.iter().map(|r| r.as_slice()).collect();
        let a = csr_from_dense(&rows);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) * 0.1 - 1.0).collect();
        let mut b = vec![0.0; n];
        a.mul_vec(&x_true, &mut b);
        let sol = pcg(&a, &b, None, 1e-12, 10_000).unwrap();
        for i in 0..n {
            assert!((sol.x[i] - x_true[i]).abs() < 1e-8, "i={i}");
        }
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let n = 50;
        let mut t = TripletMatrix::new(n);
        for i in 0..n - 1 {
            t.add_conductance(i, i + 1, 1.0);
        }
        t.add_ground(0, 1.0);
        let a = t.to_csr();
        let b = vec![0.01; n];
        let cold = pcg(&a, &b, None, 1e-10, 10_000).unwrap();
        let warm = pcg(&a, &b, Some(&cold.x), 1e-10, 10_000).unwrap();
        assert!(warm.iterations <= 1, "warm start took {}", warm.iterations);
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = csr_from_dense(&[&[2.0]]);
        let sol = pcg(&a, &[0.0], None, 1e-12, 10).unwrap();
        assert_eq!(sol.x, vec![0.0]);
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn indefinite_matrix_detected() {
        let a = csr_from_dense(&[&[1.0, 2.0], &[2.0, 1.0]]);
        // Diagonal positive but matrix indefinite: p·Ap goes non-positive.
        let err = pcg(&a, &[1.0, -1.0], None, 1e-12, 100).unwrap_err();
        assert_eq!(err, SolveError::NotPositiveDefinite);
    }

    #[test]
    fn zero_diagonal_rejected() {
        let a = csr_from_dense(&[&[0.0, 1.0], &[1.0, 1.0]]);
        assert_eq!(
            pcg(&a, &[1.0, 1.0], None, 1e-12, 100).unwrap_err(),
            SolveError::NotPositiveDefinite
        );
    }

    #[test]
    fn no_convergence_reports_residual() {
        let n = 200;
        let mut t = TripletMatrix::new(n);
        for i in 0..n - 1 {
            t.add_conductance(i, i + 1, 1.0);
        }
        t.add_ground(0, 1e-6);
        let a = t.to_csr();
        let b = vec![1.0; n];
        match pcg(&a, &b, None, 1e-14, 2) {
            Err(SolveError::NoConvergence {
                iterations: 2,
                residual,
            }) => {
                assert!(residual > 0.0)
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "negative conductance")]
    fn negative_conductance_rejected() {
        let mut t = TripletMatrix::new(2);
        t.add_conductance(0, 1, -1.0);
    }

    #[test]
    fn dense_cholesky_matches_pcg() {
        let n = 25;
        let mut t = TripletMatrix::new(n);
        for i in 0..n - 1 {
            t.add_conductance(i, i + 1, 1.0 + i as f64 * 0.1);
        }
        for i in 0..n - 5 {
            t.add_conductance(i, i + 5, 0.3);
        }
        t.add_ground(0, 2.0);
        t.add_ground(n - 1, 0.5);
        let a = t.to_csr();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 2.0).collect();
        let x_pcg = pcg(&a, &b, None, 1e-13, 10_000).unwrap().x;
        let x_dense = dense_cholesky_solve(&a, &b).unwrap();
        for i in 0..n {
            assert!(
                (x_pcg[i] - x_dense[i]).abs() < 1e-8,
                "node {i}: {} vs {}",
                x_pcg[i],
                x_dense[i]
            );
        }
    }

    #[test]
    fn ic0_is_exact_cholesky_on_a_full_pattern() {
        // With a dense sparsity pattern IC(0) has no dropped fill, so one
        // preconditioner application solves the system exactly.
        let a = csr_from_dense(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 1.0], &[0.5, 1.0, 5.0]]);
        let f = Ic0::factor(&a).unwrap();
        assert_eq!(f.shift(), 0.0);
        assert_eq!(f.nnz(), 6);
        let b = [1.0, -2.0, 3.0];
        let mut z = vec![0.0; 3];
        f.apply(&b, &mut z);
        let exact = dense_cholesky_solve(&a, &b).unwrap();
        for i in 0..3 {
            assert!(
                (z[i] - exact[i]).abs() < 1e-12,
                "i={i}: {} vs {}",
                z[i],
                exact[i]
            );
        }
    }

    #[test]
    fn ic0_pcg_converges_in_one_iteration_on_full_pattern() {
        let a = csr_from_dense(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let m = Preconditioner::ic0_or_jacobi(&a).unwrap();
        assert!(m.is_ic0());
        let mut scratch = SolveScratch::new();
        let sol = pcg_with(&a, &m, &[1.0, 2.0], None, 1e-12, 100, &mut scratch).unwrap();
        assert!(sol.iterations <= 2, "took {}", sol.iterations);
        assert!((sol.x[0] - 1.0 / 11.0).abs() < 1e-10);
        assert!((sol.x[1] - 7.0 / 11.0).abs() < 1e-10);
    }

    #[test]
    fn ic0_pcg_beats_jacobi_on_grid_laplacian() {
        // A 2D grid Laplacian with a weak ground — the structure of the
        // thermal network. IC(0) must cut the iteration count versus
        // Jacobi at the same tolerance and produce the same solution.
        let n = 16;
        let mut t = TripletMatrix::new(n * n);
        for iy in 0..n {
            for ix in 0..n {
                let i = iy * n + ix;
                if ix + 1 < n {
                    t.add_conductance(i, i + 1, 1.0);
                }
                if iy + 1 < n {
                    t.add_conductance(i, i + n, 1.0);
                }
                t.add_ground(i, 0.01);
            }
        }
        let a = t.to_csr();
        let b: Vec<f64> = (0..n * n).map(|i| ((i % 7) as f64) * 0.3 + 0.1).collect();
        let jac = pcg(&a, &b, None, 1e-10, 100_000).unwrap();
        let m = Preconditioner::ic0_or_jacobi(&a).unwrap();
        assert!(m.is_ic0());
        let mut scratch = SolveScratch::new();
        let ic = pcg_with(&a, &m, &b, None, 1e-10, 100_000, &mut scratch).unwrap();
        assert!(
            ic.iterations * 2 <= jac.iterations,
            "ic0 {} vs jacobi {}",
            ic.iterations,
            jac.iterations
        );
        for i in 0..n * n {
            assert!((ic.x[i] - jac.x[i]).abs() < 1e-7, "i={i}");
        }
    }

    /// The 2D grid Laplacian with a weak ground used by the escalation
    /// tests: slow under Jacobi, fast under IC(0).
    fn escalation_system() -> (CsrMatrix, Vec<f64>) {
        let n = 16;
        let mut t = TripletMatrix::new(n * n);
        for iy in 0..n {
            for ix in 0..n {
                let i = iy * n + ix;
                if ix + 1 < n {
                    t.add_conductance(i, i + 1, 1.0);
                }
                if iy + 1 < n {
                    t.add_conductance(i, i + n, 1.0);
                }
                t.add_ground(i, 0.01);
            }
        }
        let a = t.to_csr();
        let b: Vec<f64> = (0..n * n).map(|i| ((i % 7) as f64) * 0.3 + 0.1).collect();
        (a, b)
    }

    #[test]
    fn escalate_is_untouched_under_the_cap() {
        // A solve that converges within the cap must be bitwise the plain
        // pcg_with solve and never invoke the escalation closure.
        let (a, b) = escalation_system();
        let m = Preconditioner::ic0_or_jacobi(&a).unwrap();
        let reference = pcg_with(&a, &m, &b, None, 1e-10, 1000, &mut SolveScratch::new()).unwrap();
        let sol = pcg_escalate(
            &a,
            &m,
            reference.iterations + 5,
            || panic!("must not escalate a solve that finishes under the cap"),
            &b,
            None,
            1e-10,
            1000,
            &mut SolveScratch::new(),
        )
        .unwrap();
        assert_eq!(sol.iterations, reference.iterations);
        assert!(sol
            .x
            .iter()
            .zip(&reference.x)
            .all(|(p, q)| p.to_bits() == q.to_bits()));
    }

    #[test]
    fn escalate_skips_nearly_done_solves() {
        // Hitting the cap one iteration short of convergence projects ~1
        // remaining iteration — far under the cap — so the solve restarts
        // under the original preconditioner instead of escalating.
        let (a, b) = escalation_system();
        let m = Preconditioner::jacobi(&a).unwrap();
        let full = pcg_with(&a, &m, &b, None, 1e-10, 100_000, &mut SolveScratch::new()).unwrap();
        assert!(full.iterations > 10);
        let sol = pcg_escalate(
            &a,
            &m,
            full.iterations - 1,
            || panic!("a nearly-converged solve must not escalate"),
            &b,
            None,
            1e-10,
            100_000,
            &mut SolveScratch::new(),
        )
        .unwrap();
        assert!(sol.residual <= 1e-10);
        assert!(sol.iterations >= full.iterations - 1);
    }

    #[test]
    fn escalate_fires_on_a_long_tail() {
        // A Jacobi solve capped early with most of its work ahead projects
        // a long tail and must call the closure; the IC(0) continuation
        // then finishes in far fewer total iterations.
        let (a, b) = escalation_system();
        let m0 = Preconditioner::jacobi(&a).unwrap();
        let strong = Preconditioner::ic0_or_jacobi(&a).unwrap();
        assert!(strong.is_ic0());
        let full = pcg_with(&a, &m0, &b, None, 1e-10, 100_000, &mut SolveScratch::new()).unwrap();
        let called = std::cell::Cell::new(false);
        let sol = pcg_escalate(
            &a,
            &m0,
            8,
            || {
                called.set(true);
                Some(&strong)
            },
            &b,
            None,
            1e-10,
            100_000,
            &mut SolveScratch::new(),
        )
        .unwrap();
        assert!(called.get(), "capped long-tail solve must escalate");
        assert!(
            sol.iterations < full.iterations,
            "escalated {} vs jacobi {}",
            sol.iterations,
            full.iterations
        );
        for (i, (p, q)) in sol.x.iter().zip(&full.x).enumerate() {
            assert!((p - q).abs() < 1e-7, "i={i}");
        }
    }

    #[test]
    fn kershaw_matrix_needs_a_diagonal_shift() {
        // Kershaw's classic SPD matrix on which plain IC(0) breaks down
        // (the (3,0)/(0,3) corner entries make a pivot go negative); the
        // Manteuffel retry must kick in with a positive shift, and the
        // resulting preconditioner must still solve the system.
        let a = csr_from_dense(&[
            &[3.0, -2.0, 0.0, 2.0],
            &[-2.0, 3.0, -2.0, 0.0],
            &[0.0, -2.0, 3.0, -2.0],
            &[2.0, 0.0, -2.0, 3.0],
        ]);
        let f = Ic0::factor(&a).expect("shifted IC(0) must succeed");
        assert!(f.shift() > 0.0, "expected a breakdown retry, got shift 0");
        let b = [1.0, 0.0, -1.0, 2.0];
        let m = Preconditioner::Ic0(f);
        let mut scratch = SolveScratch::new();
        let sol = pcg_with(&a, &m, &b, None, 1e-12, 1000, &mut scratch).unwrap();
        let exact = dense_cholesky_solve(&a, &b).unwrap();
        for (i, e) in exact.iter().enumerate() {
            assert!((sol.x[i] - e).abs() < 1e-9, "i={i}");
        }
    }

    #[test]
    fn prefix_refactor_matches_full_factorization() {
        // Patch the late rows of a resistor chain and refactor from the
        // first changed row: the result must match a from-scratch
        // factorization bitwise, because up-looking IC(0) row i depends
        // only on rows <= i of A.
        let n = 12;
        let build = |g89: f64| {
            let mut t = TripletMatrix::new(n);
            for i in 0..n - 1 {
                let g = if i == 8 { g89 } else { 1.0 + i as f64 * 0.1 };
                t.add_conductance(i, i + 1, g);
            }
            t.add_ground(0, 0.7);
            t.to_csr()
        };
        let base_m = build(1.8);
        let base = Ic0::factor(&base_m).unwrap();
        // Changing the 8–9 conductance dirties rows 8 and 9 only.
        let patched = build(3.25);
        let full = Ic0::factor(&patched).unwrap();
        let inc = Ic0::refactor_prefix(&patched, &base, 8).unwrap();
        assert_eq!(inc.shift(), 0.0);
        let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 1.5).collect();
        let (mut z_full, mut z_inc) = (vec![0.0; n], vec![0.0; n]);
        full.apply(&r, &mut z_full);
        inc.apply(&r, &mut z_inc);
        assert_eq!(z_full, z_inc, "prefix refactor must be bitwise identical");
    }

    #[test]
    fn indefinite_matrix_falls_back_to_jacobi() {
        // Positive diagonal but indefinite: every shift in the schedule
        // fails, so ic0_or_jacobi must return the Jacobi fallback (whose
        // PCG then reports NotPositiveDefinite, matching the legacy path).
        let a = csr_from_dense(&[&[1.0, 2.0], &[2.0, 1.0]]);
        let m = Preconditioner::ic0_or_jacobi(&a).unwrap();
        assert!(!m.is_ic0());
        let mut scratch = SolveScratch::new();
        let err = pcg_with(&a, &m, &[1.0, -1.0], None, 1e-12, 100, &mut scratch).unwrap_err();
        assert_eq!(err, SolveError::NotPositiveDefinite);
    }

    #[test]
    fn zero_diagonal_rejected_by_preconditioners() {
        let a = csr_from_dense(&[&[0.0, 1.0], &[1.0, 1.0]]);
        assert!(Ic0::factor(&a).is_none());
        assert_eq!(
            Preconditioner::ic0_or_jacobi(&a).unwrap_err(),
            SolveError::NotPositiveDefinite
        );
    }

    #[test]
    fn scratch_reuse_across_different_sizes() {
        let a2 = csr_from_dense(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let a3 = csr_from_dense(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let m2 = Preconditioner::ic0_or_jacobi(&a2).unwrap();
        let m3 = Preconditioner::ic0_or_jacobi(&a3).unwrap();
        let mut scratch = SolveScratch::new();
        let s2 = pcg_with(&a2, &m2, &[1.0, 2.0], None, 1e-12, 100, &mut scratch).unwrap();
        let s3 = pcg_with(&a3, &m3, &[1.0, 2.0, 3.0], None, 1e-12, 100, &mut scratch).unwrap();
        let s2b = pcg_with(&a2, &m2, &[1.0, 2.0], None, 1e-12, 100, &mut scratch).unwrap();
        assert!((s2.x[0] - s2b.x[0]).abs() < 1e-14);
        let exact3 = dense_cholesky_solve(&a3, &[1.0, 2.0, 3.0]).unwrap();
        for (i, e) in exact3.iter().enumerate() {
            assert!((s3.x[i] - e).abs() < 1e-9);
        }
    }

    #[test]
    fn pcg_with_warm_start_short_circuits() {
        let a = csr_from_dense(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let m = Preconditioner::ic0_or_jacobi(&a).unwrap();
        let mut scratch = SolveScratch::new();
        let cold = pcg_with(&a, &m, &[1.0, 2.0], None, 1e-12, 100, &mut scratch).unwrap();
        let warm = pcg_with(&a, &m, &[1.0, 2.0], Some(&cold.x), 1e-12, 100, &mut scratch).unwrap();
        assert_eq!(warm.iterations, 0);
    }

    #[test]
    fn dense_cholesky_detects_indefinite() {
        let a = csr_from_dense(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert_eq!(
            dense_cholesky_solve(&a, &[1.0, 1.0]).unwrap_err(),
            SolveError::NotPositiveDefinite
        );
    }

    #[test]
    fn with_added_diagonal_shifts_solution() {
        let mut t = TripletMatrix::new(3);
        t.add_conductance(0, 1, 1.0);
        t.add_conductance(1, 2, 1.0);
        t.add_ground(0, 1.0);
        let a = t.to_csr();
        let shifted = a.with_added_diagonal(&[1.0, 1.0, 1.0]);
        // Diagonal grows exactly by the shift.
        let d0 = a.diagonal();
        let d1 = shifted.diagonal();
        for i in 0..3 {
            assert!((d1[i] - d0[i] - 1.0).abs() < 1e-12);
        }
        // And the shifted system is better conditioned (fewer iterations).
        let b = [1.0, 2.0, 3.0];
        let it_shifted = pcg(&shifted, &b, None, 1e-12, 100).unwrap().iterations;
        assert!(it_shifted <= 4);
    }
}
