//! Thermal conductivities of the package materials.
//!
//! Bulk values are standard handbook numbers (W/(m·K)); the composite layers
//! of Table I (microbumps, TSV'd interposer, C4 bumps) are modelled as
//! effective media: vertical conduction through a bump/via field is a
//! parallel combination of the metal and underfill paths, so the effective
//! conductivity is the area-fraction-weighted arithmetic mean. We apply the
//! same value laterally (an isotropic approximation; lateral conduction
//! through these thin layers is negligible next to the silicon above and
//! below them).

use serde::{Deserialize, Serialize};
use tac25d_floorplan::layers::Material;
use tac25d_floorplan::units::Mm;

/// A regular field of cylindrical metal interconnects (microbumps, TSVs or
/// C4 bumps) described by diameter and pitch, as in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BumpField {
    /// Bump/via diameter.
    pub diameter: Mm,
    /// Centre-to-centre pitch of the square bump array.
    pub pitch: Mm,
}

impl BumpField {
    /// Microbumps: Ø25 µm at 50 µm pitch (Table I).
    pub fn microbump() -> Self {
        BumpField {
            diameter: Mm::from_um(25.0),
            pitch: Mm::from_um(50.0),
        }
    }

    /// TSVs: Ø10 µm at 50 µm pitch (Table I).
    pub fn tsv() -> Self {
        BumpField {
            diameter: Mm::from_um(10.0),
            pitch: Mm::from_um(50.0),
        }
    }

    /// C4 bumps: Ø250 µm at 600 µm pitch (Table I).
    pub fn c4() -> Self {
        BumpField {
            diameter: Mm::from_um(250.0),
            pitch: Mm::from_um(600.0),
        }
    }

    /// Fraction of the layer cross-section occupied by metal:
    /// π·(d/2)² / pitch².
    ///
    /// # Panics
    ///
    /// Panics if the pitch is not strictly positive or the diameter exceeds
    /// the pitch (bumps would merge).
    pub fn metal_fraction(&self) -> f64 {
        let d = self.diameter.value();
        let p = self.pitch.value();
        assert!(p > 0.0, "bump pitch must be positive, got {p}");
        assert!(
            d <= p,
            "bump diameter {d} exceeds pitch {p}; adjacent bumps would merge"
        );
        core::f64::consts::PI * (d / 2.0) * (d / 2.0) / (p * p)
    }

    /// Effective conductivity of the field: metal and filler conduct in
    /// parallel through the layer thickness.
    pub fn effective_conductivity(&self, k_metal: f64, k_fill: f64) -> f64 {
        let f = self.metal_fraction();
        f * k_metal + (1.0 - f) * k_fill
    }
}

/// Bulk and composite thermal conductivities used by the solver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaterialLibrary {
    /// Bulk silicon, W/(m·K). Default 120 (silicon near 80–90 °C).
    pub silicon: f64,
    /// Copper (spreader / sink base / bump metal), W/(m·K). Default 390.
    pub copper: f64,
    /// Epoxy resin underfill, W/(m·K). Default 0.9.
    pub epoxy: f64,
    /// FR-4 organic substrate, W/(m·K). Default 0.3.
    pub fr4: f64,
    /// Thermal interface material, W/(m·K). Default 4.0 (HotSpot's default
    /// TIM conductivity).
    pub tim: f64,
    /// Low-conductivity filler/air gaps, W/(m·K). Default 0.05.
    pub filler: f64,
    /// Microbump field geometry.
    pub microbumps: BumpField,
    /// TSV field geometry.
    pub tsvs: BumpField,
    /// C4 bump field geometry.
    pub c4: BumpField,
    /// Volumetric heat capacity of silicon, J/(m³·K). Default 1.63e6.
    pub silicon_cv: f64,
    /// Volumetric heat capacity of copper, J/(m³·K). Default 3.45e6.
    pub copper_cv: f64,
    /// Volumetric heat capacity of epoxy underfill, J/(m³·K). Default 1.7e6.
    pub epoxy_cv: f64,
    /// Volumetric heat capacity of FR-4, J/(m³·K). Default 1.9e6.
    pub fr4_cv: f64,
    /// Volumetric heat capacity of the TIM, J/(m³·K). Default 4.0e6
    /// (HotSpot's default specific heat).
    pub tim_cv: f64,
    /// Volumetric heat capacity of filler/air, J/(m³·K). Default 1.2e3.
    pub filler_cv: f64,
}

impl Default for MaterialLibrary {
    fn default() -> Self {
        MaterialLibrary {
            silicon: 120.0,
            copper: 390.0,
            epoxy: 0.9,
            fr4: 0.3,
            tim: 4.0,
            filler: 0.05,
            microbumps: BumpField::microbump(),
            tsvs: BumpField::tsv(),
            c4: BumpField::c4(),
            silicon_cv: 1.63e6,
            copper_cv: 3.45e6,
            epoxy_cv: 1.7e6,
            fr4_cv: 1.9e6,
            tim_cv: 4.0e6,
            filler_cv: 1.2e3,
        }
    }
}

impl MaterialLibrary {
    /// Volumetric heat capacity of a material identity, in J/(m³·K)
    /// (composites blend by metal area fraction, like conductivity).
    pub fn volumetric_heat_capacity(&self, m: Material) -> f64 {
        let blend = |field: &BumpField, metal: f64, fill: f64| {
            let f = field.metal_fraction();
            f * metal + (1.0 - f) * fill
        };
        match m {
            Material::Silicon => self.silicon_cv,
            Material::Epoxy => self.epoxy_cv,
            Material::Copper => self.copper_cv,
            Material::Fr4 => self.fr4_cv,
            Material::InterfaceMaterial => self.tim_cv,
            Material::Filler => self.filler_cv,
            Material::MicrobumpComposite => blend(&self.microbumps, self.copper_cv, self.epoxy_cv),
            Material::TsvSilicon => blend(&self.tsvs, self.copper_cv, self.silicon_cv),
            Material::C4Composite => blend(&self.c4, self.copper_cv, self.epoxy_cv),
        }
    }

    /// Thermal conductivity of a material identity, in W/(m·K).
    pub fn conductivity(&self, m: Material) -> f64 {
        match m {
            Material::Silicon => self.silicon,
            Material::Epoxy => self.epoxy,
            Material::Copper => self.copper,
            Material::Fr4 => self.fr4,
            Material::InterfaceMaterial => self.tim,
            Material::Filler => self.filler,
            Material::MicrobumpComposite => self
                .microbumps
                .effective_conductivity(self.copper, self.epoxy),
            Material::TsvSilicon => self.tsvs.effective_conductivity(self.copper, self.silicon),
            Material::C4Composite => self.c4.effective_conductivity(self.copper, self.epoxy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metal_fractions_from_table1() {
        assert!((BumpField::microbump().metal_fraction() - 0.19635).abs() < 1e-4);
        assert!((BumpField::tsv().metal_fraction() - 0.031416).abs() < 1e-5);
        assert!((BumpField::c4().metal_fraction() - 0.13635).abs() < 1e-4);
    }

    #[test]
    fn composite_conductivities_between_constituents() {
        let lib = MaterialLibrary::default();
        for m in [
            Material::MicrobumpComposite,
            Material::TsvSilicon,
            Material::C4Composite,
        ] {
            let k = lib.conductivity(m);
            assert!(
                k > lib.epoxy.min(lib.silicon) && k < lib.copper,
                "{m:?}: {k}"
            );
        }
        // Microbump composite ≈ 0.196·390 + 0.804·0.9 ≈ 77.3.
        let k_ub = lib.conductivity(Material::MicrobumpComposite);
        assert!((k_ub - 77.3).abs() < 0.5, "{k_ub}");
        // TSV'd silicon is slightly better than bulk silicon.
        assert!(lib.conductivity(Material::TsvSilicon) > lib.silicon);
    }

    #[test]
    fn bulk_lookups() {
        let lib = MaterialLibrary::default();
        assert_eq!(lib.conductivity(Material::Silicon), 120.0);
        assert_eq!(lib.conductivity(Material::Copper), 390.0);
        assert_eq!(lib.conductivity(Material::Fr4), 0.3);
        assert_eq!(lib.conductivity(Material::InterfaceMaterial), 4.0);
    }

    #[test]
    #[should_panic(expected = "exceeds pitch")]
    fn merged_bumps_rejected() {
        let f = BumpField {
            diameter: Mm::from_um(700.0),
            pitch: Mm::from_um(600.0),
        };
        let _ = f.metal_fraction();
    }

    #[test]
    fn effective_conductivity_interpolates() {
        let f = BumpField {
            diameter: Mm::from_um(50.0),
            pitch: Mm::from_um(50.0),
        };
        // Full-pitch bumps: fraction = π/4.
        let k = f.effective_conductivity(400.0, 0.0);
        assert!((k - 400.0 * core::f64::consts::FRAC_PI_4).abs() < 1e-9);
    }
}
