#![warn(missing_docs)]

//! # tac25d-thermal
//!
//! A from-scratch compact thermal model (HotSpot-class) for 2.5D chiplet
//! packages and single-chip baselines — the thermal substrate of the
//! `tac25d` reproduction of *"Leveraging Thermally-Aware Chiplet
//! Organization in 2.5D Systems to Reclaim Dark Silicon"* (DATE 2018).
//!
//! The paper runs HotSpot 6.0 in grid mode over the Table I layer stack; no
//! Rust thermal-simulation ecosystem exists, so this crate implements the
//! same physics directly (see DESIGN.md §1 S1 for the substitution
//! rationale):
//!
//! * [`materials`] — bulk and effective-medium conductivities (microbump /
//!   TSV / C4 composites computed from Table I bump geometry);
//! * [`sparse`] — CSR matrices and a Jacobi-preconditioned conjugate
//!   gradient solver;
//! * [`network`] (internal) — finite-volume assembly of the package
//!   conductance network with HotSpot-style lumped spreader/sink periphery
//!   nodes and convective boundaries;
//! * [`mg`] — the geometric multigrid solver tier: a raster-aware V-cycle
//!   (full-weighting/bilinear transfers, red-black Gauss–Seidel f32
//!   smoothing, Galerkin coarse operators) usable standalone or as a PCG
//!   preconditioner (`TAC25D_SOLVER=mg`);
//! * [`model`] — the public [`model::PackageModel`] / ThermalSolution API;
//! * [`coupled`] — the temperature–leakage fixed-point loop;
//! * [`transient`] — backward-Euler transient simulation over the same
//!   RC network (computational-sprinting analyses);
//! * [`slab`] — verification hooks: slab-stack assembly with cell-level
//!   source injection and grid refinement, for the manufactured-solution
//!   harness in `crates/verify`.
//!
//! # Examples
//!
//! ```
//! use tac25d_floorplan::prelude::*;
//! use tac25d_thermal::model::{PackageModel, ThermalConfig};
//!
//! let chip = ChipSpec::scc_256();
//! let rules = PackageRules::default();
//! let layout = ChipletLayout::Uniform { r: 4, gap: Mm(4.0) };
//! let model = PackageModel::new(
//!     &chip, &layout, &rules, &StackSpec::system_25d(), ThermalConfig::fast())?;
//! let sources: Vec<_> = layout
//!     .chiplet_rects(&chip, &rules)
//!     .into_iter()
//!     .map(|r| (r, 20.0))
//!     .collect();
//! let solution = model.solve(&sources)?;
//! println!("peak = {}", solution.peak());
//! # Ok::<(), tac25d_thermal::model::ThermalError>(())
//! ```

pub mod coupled;
pub mod materials;
pub mod mg;
pub mod model;
pub(crate) mod network;
pub mod slab;
pub mod sparse;
pub mod transient;

pub use coupled::{solve_coupled, CoupledOptions, CoupledSolution};
pub use materials::{BumpField, MaterialLibrary};
pub use model::{PackageModel, ThermalConfig, ThermalError, ThermalSolution};
pub use transient::{TransientSample, TransientTrace};
