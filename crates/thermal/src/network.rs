//! Assembly of the steady-state thermal conductance network.
//!
//! The package is discretized HotSpot-style:
//!
//! * every stack layer (heat sink, spreader, TIM, die, microbump,
//!   interposer, C4, substrate) is a regular `n × n` grid of cells over the
//!   package footprint (the interposer for 2.5D systems, the chip for the
//!   baseline);
//! * the spreader region *beyond* the footprint is lumped into four
//!   trapezoidal periphery nodes (W/E/S/N), and the heat-sink overhang into
//!   four inner (over the spreader) plus four outer periphery nodes;
//! * every heat-sink node (grid cells and periphery) convects to ambient
//!   with conductance `h·A`; the substrate bottom optionally convects
//!   through a weak secondary path (board).
//!
//! Cell-to-cell conductances use the standard finite-volume forms: lateral
//! `G = t·w / (d₁/(2k₁) + d₂/(2k₂))`, vertical
//! `G = A / (t₁/(2k₁) + t₂/(2k₂))`. The network is a symmetric
//! positive-definite Laplacian plus positive boundary terms, solved with
//! PCG ([`crate::sparse`]).
//!
//! Assembly is split into a symbolic [`Scaffold`] (CSR sparsity pattern
//! plus the ordered conductance-link list with precomputed value slots)
//! and a numeric value fill. The scaffold depends only on the package
//! *geometry* — grid size, edges, layer roles/thicknesses, boundary
//! coefficients and the homogeneous periphery conductivities — not on the
//! per-cell conductivity fields, so two layouts on the same footprint
//! share it. [`assemble_incremental`] exploits this: when only a few
//! cells' conductivities changed (a chiplet moved along one axis), it
//! refills just the affected CSR rows and refactors the IC(0) prefix,
//! producing a matrix and preconditioner *bitwise identical* to a
//! from-scratch [`assemble`] of the same geometry. Results therefore never
//! depend on which base model a rebuild was patched from — a requirement
//! for determinism under parallel evaluation order.

use crate::sparse::{CsrMatrix, Ic0, Preconditioner};
use std::sync::Arc;
use tac25d_floorplan::layers::LayerRole;
use tac25d_obs as obs;

/// One gridded layer ready for assembly: thickness plus per-cell
/// conductivity (row-major, same ordering as [`tac25d_floorplan::raster::Grid`]).
#[derive(Debug, Clone)]
pub(crate) struct GriddedLayer {
    pub role: LayerRole,
    pub thickness_m: f64,
    /// Per-cell conductivity in W/(m·K); length n².
    pub k: Vec<f64>,
    /// Per-cell volumetric heat capacity in J/(m³·K); length n². Only used
    /// by the transient solver.
    pub cv: Vec<f64>,
    /// Whether this layer dissipates power (die tiers).
    pub is_heat_source: bool,
}

/// Geometric and boundary inputs of the assembly.
#[derive(Debug, Clone)]
pub(crate) struct NetworkGeometry {
    /// Grid cells per side.
    pub n: usize,
    /// Package footprint edge in metres.
    pub footprint_m: f64,
    /// Spreader edge in metres (≥ footprint).
    pub spreader_m: f64,
    /// Heat-sink edge in metres (≥ spreader).
    pub sink_m: f64,
    /// Layers, top (sink) to bottom (substrate).
    pub layers: Vec<GriddedLayer>,
    /// Heat-transfer coefficient of the sink surface, W/(m²·K).
    pub htc: f64,
    /// Secondary-path heat-transfer coefficient at the substrate bottom,
    /// W/(m²·K) (0 disables the secondary path).
    pub htc_secondary: f64,
}

/// The assembled network: matrix plus bookkeeping needed to build the RHS
/// and post-process solutions.
#[derive(Debug, Clone)]
pub(crate) struct Network {
    pub matrix: CsrMatrix,
    /// Preconditioner factored once at assembly and reused by every solve
    /// of this matrix (the factor-once/solve-many fast path). IC(0) on the
    /// conductance networks assembly produces; the enum carries the Jacobi
    /// fallback for completeness.
    pub precond: Preconditioner,
    /// `(node, conductance-to-ambient)` for every boundary node.
    pub conv: Vec<(usize, f64)>,
    /// Total node count.
    pub nodes: usize,
    /// First node id of the topmost die (heat-source) layer.
    pub die_base: usize,
    /// First node ids of every heat-source layer, top-down (3D stacks
    /// have several tiers).
    pub heat_bases: Vec<usize>,
    /// Per-node thermal capacitance, J/K (for transient simulation).
    pub cap: Vec<f64>,
    /// Symbolic assembly scaffold, shared (`Arc`) with incremental
    /// rebuilds patched from this network.
    pub scaffold: Arc<Scaffold>,
}

const SIDES: usize = 4; // W, E, S, N

impl NetworkGeometry {
    /// Index of a grid node.
    #[inline]
    fn node(&self, layer: usize, ix: usize, iy: usize) -> usize {
        layer * self.n * self.n + iy * self.n + ix
    }

    fn layer_index(&self, role: LayerRole) -> Option<usize> {
        self.layers.iter().position(|l| l.role == role)
    }
}

/// How a link's conductance is derived at value-fill time.
#[derive(Debug, Clone, Copy)]
enum LinkKind {
    /// Lateral link between grid cells `cell` and `cell+1` of layer `li`.
    LatX,
    /// Lateral link between grid cells `cell` and `cell+n` of layer `li`.
    LatY,
    /// Vertical link between cell `cell` of layers `li` and `li+1`.
    Vert,
    /// Geometry-only conductance baked at scaffold build (periphery and
    /// boundary couplings through homogeneous copper).
    Fixed(f64),
}

/// One two-node conductance with its four CSR value slots —
/// `(i,i)`, `(j,j)`, `(i,j)`, `(j,i)` — precomputed by the scaffold so
/// the value fill is a branch-free scatter in emission order.
#[derive(Debug, Clone)]
struct Link {
    kind: LinkKind,
    li: u32,
    cell: u32,
    ends: [u32; 2],
    slots: [u32; 4],
}

/// A conductance to ambient: touches only its node's diagonal slot.
#[derive(Debug, Clone)]
struct Ground {
    node: u32,
    g: f64,
    slot: u32,
}

/// A four-node lumped periphery band (capacitance bookkeeping).
#[derive(Debug, Clone)]
struct PeripheryBand {
    base: usize,
    layer: usize,
    area_side: f64,
}

/// The symbolic half of assembly: CSR sparsity pattern, the ordered link
/// list with precomputed value slots, boundary conductances and node
/// bookkeeping.
///
/// Both full and incremental builds write matrix values through the same
/// scaffold in the same emission order, so a patched rebuild is bitwise
/// identical to a from-scratch build of the same geometry.
#[derive(Debug, Clone)]
pub(crate) struct Scaffold {
    n: usize,
    nodes: usize,
    row_ptr: Vec<u32>,
    col: Vec<u32>,
    links: Vec<Link>,
    grounds: Vec<Ground>,
    conv: Vec<(usize, f64)>,
    die_base: usize,
    heat_bases: Vec<usize>,
    periphery: Vec<PeripheryBand>,
    /// Layers whose `k[0]` is baked into `Fixed` link conductances
    /// (homogeneous spreader/sink); an incremental rebuild may only reuse
    /// the scaffold while those values are unchanged.
    fixed_k_layers: Vec<usize>,
}

/// Pattern/link collector used by [`Scaffold::build`]; the order links
/// and grounds are pushed here is the order the value fill replays.
#[derive(Default)]
struct Emit {
    pattern: Vec<(u32, u32)>,
    links: Vec<Link>,
    grounds: Vec<(u32, f64)>,
    conv: Vec<(usize, f64)>,
}

impl Emit {
    fn link(&mut self, kind: LinkKind, li: usize, cell: usize, i: usize, j: usize) {
        let (i, j) = (i as u32, j as u32);
        self.pattern.extend([(i, i), (j, j), (i, j), (j, i)]);
        self.links.push(Link {
            kind,
            li: li as u32,
            cell: cell as u32,
            ends: [i, j],
            slots: [0; 4],
        });
    }

    fn fixed(&mut self, i: usize, j: usize, g: f64) {
        self.link(LinkKind::Fixed(g), 0, 0, i, j);
    }

    fn convection(&mut self, node: usize, g: f64) {
        self.pattern.push((node as u32, node as u32));
        self.grounds.push((node as u32, g));
        self.conv.push((node, g));
    }
}

impl Scaffold {
    /// Builds the symbolic scaffold for a geometry, validating it exactly
    /// as [`assemble`] documents.
    fn build(geom: &NetworkGeometry) -> Scaffold {
        let n = geom.n;
        assert!(n >= 2, "grid must be at least 2x2, got {n}");
        assert!(!geom.layers.is_empty(), "stack must contain layers");
        assert!(geom.footprint_m > 0.0, "footprint must be positive");
        assert!(
            geom.spreader_m >= geom.footprint_m - 1e-12,
            "spreader ({}) smaller than footprint ({})",
            geom.spreader_m,
            geom.footprint_m
        );
        assert!(
            geom.sink_m >= geom.spreader_m - 1e-12,
            "sink ({}) smaller than spreader ({})",
            geom.sink_m,
            geom.spreader_m
        );
        let n2 = n * n;
        for l in &geom.layers {
            assert_eq!(
                l.k.len(),
                n2,
                "layer {:?} conductivity grid mismatch",
                l.role
            );
            assert!(
                l.thickness_m > 0.0,
                "layer {:?} thickness must be positive",
                l.role
            );
            assert!(
                l.k.iter().all(|&k| k > 0.0 && k.is_finite()),
                "layer {:?} has non-positive conductivity",
                l.role
            );
        }

        let dx = geom.footprint_m / n as f64;
        let cell_area = dx * dx;
        let nl = geom.layers.len();

        let sink_layer = geom.layer_index(LayerRole::HeatSink);
        let spreader_layer = geom.layer_index(LayerRole::Spreader);
        let heat_layers: Vec<usize> = geom
            .layers
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.is_heat_source.then_some(i))
            .collect();
        let die_layer = *heat_layers
            .first()
            .expect("stack must contain a heat-source layer");
        let substrate_layer = geom.layer_index(LayerRole::Substrate);

        let eps = 1e-12;
        let has_sp_periph = spreader_layer.is_some() && geom.spreader_m > geom.footprint_m + eps;
        let has_sink_outer = sink_layer.is_some() && geom.sink_m > geom.spreader_m + eps;

        // Extra (lumped) node layout after the grid nodes.
        let mut next = nl * n2;
        let sp_periph_base = has_sp_periph.then(|| {
            let b = next;
            next += SIDES;
            b
        });
        // The sink inner periphery mirrors the spreader periphery footprint.
        let sink_inner_base = (has_sp_periph && sink_layer.is_some()).then(|| {
            let b = next;
            next += SIDES;
            b
        });
        let sink_outer_base = has_sink_outer.then(|| {
            let b = next;
            next += SIDES;
            b
        });
        let nodes = next;

        let mut e = Emit::default();
        let mut periphery: Vec<PeripheryBand> = Vec::new();
        let mut fixed_k_layers: Vec<usize> = Vec::new();

        // --- Intra-layer lateral conduction + inter-layer vertical
        //     conduction. Conductance values are field-dependent, so only
        //     the link topology is recorded here.
        for li in 0..nl {
            for iy in 0..n {
                for ix in 0..n {
                    let c = iy * n + ix;
                    let a = geom.node(li, ix, iy);
                    if ix + 1 < n {
                        e.link(LinkKind::LatX, li, c, a, geom.node(li, ix + 1, iy));
                    }
                    if iy + 1 < n {
                        e.link(LinkKind::LatY, li, c, a, geom.node(li, ix, iy + 1));
                    }
                    if li + 1 < nl {
                        e.link(LinkKind::Vert, li, c, a, geom.node(li + 1, ix, iy));
                    }
                }
            }
        }

        // --- Convection from the sink grid cells.
        if let Some(sl) = sink_layer {
            for iy in 0..n {
                for ix in 0..n {
                    e.convection(geom.node(sl, ix, iy), geom.htc * cell_area);
                }
            }
        }

        // --- Secondary path from the substrate bottom.
        if geom.htc_secondary > 0.0 {
            if let Some(sub) = substrate_layer {
                for iy in 0..n {
                    for ix in 0..n {
                        e.convection(geom.node(sub, ix, iy), geom.htc_secondary * cell_area);
                    }
                }
            }
        }

        // --- Spreader periphery nodes.
        if let Some(spb) = sp_periph_base {
            let sl = spreader_layer.expect("periphery requires a spreader layer");
            let t_sp = geom.layers[sl].thickness_m;
            let k_sp = geom.layers[sl].k[0]; // spreader is homogeneous copper
            fixed_k_layers.push(sl);
            let overhang = (geom.spreader_m - geom.footprint_m) / 2.0;
            let d = overhang / 2.0 + dx / 2.0;
            emit_periphery_boundary(&mut e, geom, sl, spb, t_sp, k_sp, d);

            // Vertical coupling to the sink inner periphery above.
            if let (Some(sib), Some(skl)) = (sink_inner_base, sink_layer) {
                let t_sk = geom.layers[skl].thickness_m;
                let k_sk = geom.layers[skl].k[0];
                fixed_k_layers.push(skl);
                let area_side = (geom.spreader_m * geom.spreader_m
                    - geom.footprint_m * geom.footprint_m)
                    / SIDES as f64;
                let g = area_side / (t_sp / (2.0 * k_sp) + t_sk / (2.0 * k_sk));
                for s in 0..SIDES {
                    e.fixed(spb + s, sib + s, g);
                }
            }
        }

        // --- Sink inner periphery: lateral to sink grid boundary +
        //     convection.
        if let Some(sib) = sink_inner_base {
            let skl = sink_layer.expect("sink periphery requires a sink layer");
            let t_sk = geom.layers[skl].thickness_m;
            let k_sk = geom.layers[skl].k[0];
            fixed_k_layers.push(skl);
            let overhang = (geom.spreader_m - geom.footprint_m) / 2.0;
            let d = overhang / 2.0 + dx / 2.0;
            emit_periphery_boundary(&mut e, geom, skl, sib, t_sk, k_sk, d);
            let area_side = (geom.spreader_m * geom.spreader_m
                - geom.footprint_m * geom.footprint_m)
                / SIDES as f64;
            for s in 0..SIDES {
                e.convection(sib + s, geom.htc * area_side);
            }

            // Lateral to the outer periphery.
            if let Some(sob) = sink_outer_base {
                let d2 = overhang / 2.0 + (geom.sink_m - geom.spreader_m) / 4.0;
                // Interface length per side ≈ spreader edge.
                let g = k_sk * t_sk * geom.spreader_m / d2;
                for s in 0..SIDES {
                    e.fixed(sib + s, sob + s, g);
                }
            }
        }

        // --- Sink outer periphery: convection (and, if there is no inner
        //     periphery because spreader == footprint, couple directly to
        //     the sink grid boundary).
        if let Some(sob) = sink_outer_base {
            let skl = sink_layer.expect("sink periphery requires a sink layer");
            let t_sk = geom.layers[skl].thickness_m;
            let k_sk = geom.layers[skl].k[0];
            fixed_k_layers.push(skl);
            let area_side =
                (geom.sink_m * geom.sink_m - geom.spreader_m * geom.spreader_m) / SIDES as f64;
            for s in 0..SIDES {
                e.convection(sob + s, geom.htc * area_side);
            }
            if sink_inner_base.is_none() {
                let d = (geom.sink_m - geom.spreader_m) / 4.0 + dx / 2.0;
                emit_periphery_boundary(&mut e, geom, skl, sob, t_sk, k_sk, d);
            }
        }

        // Lumped-node capacitance bands (copper periphery volumes).
        if let (Some(spb), Some(sl)) = (sp_periph_base, spreader_layer) {
            let area_side = (geom.spreader_m * geom.spreader_m
                - geom.footprint_m * geom.footprint_m)
                / SIDES as f64;
            periphery.push(PeripheryBand {
                base: spb,
                layer: sl,
                area_side,
            });
        }
        if let (Some(sib), Some(skl)) = (sink_inner_base, sink_layer) {
            let area_side = (geom.spreader_m * geom.spreader_m
                - geom.footprint_m * geom.footprint_m)
                / SIDES as f64;
            periphery.push(PeripheryBand {
                base: sib,
                layer: skl,
                area_side,
            });
        }
        if let (Some(sob), Some(skl)) = (sink_outer_base, sink_layer) {
            let area_side =
                (geom.sink_m * geom.sink_m - geom.spreader_m * geom.spreader_m) / SIDES as f64;
            periphery.push(PeripheryBand {
                base: sob,
                layer: skl,
                area_side,
            });
        }
        fixed_k_layers.sort_unstable();
        fixed_k_layers.dedup();

        // --- Symbolic CSR pattern: sorted, deduplicated (row, col) pairs.
        let mut pattern = e.pattern;
        pattern.sort_unstable();
        pattern.dedup();
        let mut row_ptr = vec![0u32; nodes + 1];
        for &(r, _) in &pattern {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..nodes {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col: Vec<u32> = pattern.iter().map(|&(_, c)| c).collect();

        let slot = |i: u32, j: u32| -> u32 {
            let lo = row_ptr[i as usize] as usize;
            let hi = row_ptr[i as usize + 1] as usize;
            let off = col[lo..hi]
                .binary_search(&j)
                .expect("pattern entry must exist");
            (lo + off) as u32
        };
        let mut links = e.links;
        for link in &mut links {
            let [i, j] = link.ends;
            link.slots = [slot(i, i), slot(j, j), slot(i, j), slot(j, i)];
        }
        let grounds: Vec<Ground> = e
            .grounds
            .iter()
            .map(|&(node, g)| Ground {
                node,
                g,
                slot: slot(node, node),
            })
            .collect();

        Scaffold {
            n,
            nodes,
            row_ptr,
            col,
            links,
            grounds,
            conv: e.conv,
            die_base: die_layer * n2,
            heat_bases: heat_layers.iter().map(|&l| l * n2).collect(),
            periphery,
            fixed_k_layers,
        }
    }

    /// Writes the CSR values for `geom` through the scaffold. With
    /// `dirty == None` every value is written; with a dirty-row mask only
    /// the masked rows are zeroed and refilled. Because both paths add
    /// each row's contributions in the identical (emission) order, a
    /// dirty-row refill is bitwise identical to a full fill.
    fn fill_values(&self, geom: &NetworkGeometry, dirty: Option<&[bool]>, val: &mut [f64]) {
        let n = self.n;
        let dx = geom.footprint_m / n as f64;
        let dy = dx;
        let cell_area = dx * dy;
        let eval = |link: &Link| -> f64 {
            let li = link.li as usize;
            let c = link.cell as usize;
            match link.kind {
                LinkKind::LatX => {
                    let layer = &geom.layers[li];
                    let ka = layer.k[c];
                    let kb = layer.k[c + 1];
                    layer.thickness_m * dy / (dx / (2.0 * ka) + dx / (2.0 * kb))
                }
                LinkKind::LatY => {
                    let layer = &geom.layers[li];
                    let ka = layer.k[c];
                    let kb = layer.k[c + n];
                    layer.thickness_m * dx / (dy / (2.0 * ka) + dy / (2.0 * kb))
                }
                LinkKind::Vert => {
                    let layer = &geom.layers[li];
                    let below = &geom.layers[li + 1];
                    let ka = layer.k[c];
                    let kb = below.k[c];
                    cell_area / (layer.thickness_m / (2.0 * ka) + below.thickness_m / (2.0 * kb))
                }
                LinkKind::Fixed(g) => g,
            }
        };
        match dirty {
            None => {
                val.fill(0.0);
                for link in &self.links {
                    let g = eval(link);
                    let [s_ii, s_jj, s_ij, s_ji] = link.slots;
                    val[s_ii as usize] += g;
                    val[s_jj as usize] += g;
                    val[s_ij as usize] -= g;
                    val[s_ji as usize] -= g;
                }
                for gr in &self.grounds {
                    val[gr.slot as usize] += gr.g;
                }
            }
            Some(dirty) => {
                for (i, d) in dirty.iter().enumerate() {
                    if *d {
                        let lo = self.row_ptr[i] as usize;
                        let hi = self.row_ptr[i + 1] as usize;
                        val[lo..hi].fill(0.0);
                    }
                }
                for link in &self.links {
                    let di = dirty[link.ends[0] as usize];
                    let dj = dirty[link.ends[1] as usize];
                    if !di && !dj {
                        continue;
                    }
                    let g = eval(link);
                    let [s_ii, s_jj, s_ij, s_ji] = link.slots;
                    if di {
                        val[s_ii as usize] += g;
                        val[s_ij as usize] -= g;
                    }
                    if dj {
                        val[s_jj as usize] += g;
                        val[s_ji as usize] -= g;
                    }
                }
                for gr in &self.grounds {
                    if dirty[gr.node as usize] {
                        val[gr.slot as usize] += gr.g;
                    }
                }
            }
        }
    }

    /// Per-node thermal capacitances for `geom`: recomputed in full on
    /// every build (an O(layers·n²) multiply-add, negligible next to the
    /// matrix fill).
    fn compute_caps(&self, geom: &NetworkGeometry) -> Vec<f64> {
        let n2 = self.n * self.n;
        let dx = geom.footprint_m / self.n as f64;
        let cell_area = dx * dx;
        let mut cap = vec![0.0f64; self.nodes];
        for (li, layer) in geom.layers.iter().enumerate() {
            for c in 0..n2 {
                cap[li * n2 + c] = layer.cv[c] * cell_area * layer.thickness_m;
            }
        }
        for band in &self.periphery {
            let layer = &geom.layers[band.layer];
            for s in 0..SIDES {
                cap[band.base + s] = layer.cv[0] * band.area_side * layer.thickness_m;
            }
        }
        cap
    }
}

/// Records the four periphery nodes' couplings to a layer's grid boundary
/// cells: lateral conductances `k·t·w/d` per boundary cell, baked as
/// `Fixed` links (homogeneous copper).
fn emit_periphery_boundary(
    e: &mut Emit,
    geom: &NetworkGeometry,
    layer: usize,
    periph_base: usize,
    t: f64,
    k: f64,
    d: f64,
) {
    let n = geom.n;
    let dx = geom.footprint_m / n as f64;
    let g = k * t * dx / d;
    for iy in 0..n {
        e.fixed(geom.node(layer, 0, iy), periph_base, g); // W
        e.fixed(geom.node(layer, n - 1, iy), periph_base + 1, g); // E
    }
    for ix in 0..n {
        e.fixed(geom.node(layer, ix, 0), periph_base + 2, g); // S
        e.fixed(geom.node(layer, ix, n - 1), periph_base + 3, g); // N
    }
}

fn finish(
    scaffold: Arc<Scaffold>,
    matrix: CsrMatrix,
    precond: Preconditioner,
    geom: &NetworkGeometry,
) -> Network {
    Network {
        cap: scaffold.compute_caps(geom),
        conv: scaffold.conv.clone(),
        nodes: scaffold.nodes,
        die_base: scaffold.die_base,
        heat_bases: scaffold.heat_bases.clone(),
        matrix,
        precond,
        scaffold,
    }
}

/// Assembles the conductance matrix and boundary list.
///
/// # Panics
///
/// Panics if the geometry is inconsistent (no layers, conductivity vector
/// length mismatch, spreader smaller than footprint, sink smaller than
/// spreader, or a non-positive conductivity/dimension).
pub(crate) fn assemble(geom: &NetworkGeometry) -> Network {
    let scaffold = Arc::new(Scaffold::build(geom));
    let mut val = vec![0.0f64; scaffold.col.len()];
    scaffold.fill_values(geom, None, &mut val);
    let matrix = CsrMatrix::from_parts(
        scaffold.nodes,
        scaffold.row_ptr.clone(),
        scaffold.col.clone(),
        val,
    );
    // Assembly guarantees a positive diagonal (every cell has at least one
    // conductance), so a preconditioner always exists.
    let precond =
        Preconditioner::ic0_or_jacobi(&matrix).expect("conductance network has positive diagonal");
    finish(scaffold, matrix, precond, geom)
}

/// Rebuilds the network for `new_geom` by patching `base` (built for
/// `base_geom`) instead of assembling from scratch: only the CSR rows
/// whose conductances can differ are refilled, and the IC(0) factor's
/// clean prefix is copied. Returns `None` when the two geometries are not
/// scaffold-compatible (different grid, edges, layer structure, boundary
/// coefficients, or changed periphery conductivities) — the caller then
/// falls back to [`assemble`].
///
/// Alongside the network, returns the dirty-row mask it was patched with
/// (both ends of every changed link are marked) so downstream factor-once
/// state — the multigrid hierarchy refill in particular — can ride the
/// same provenance instead of rederiving it.
///
/// The reused-row count is recorded under `thermal.assembly_rows_reused`.
pub(crate) fn assemble_incremental(
    new_geom: &NetworkGeometry,
    base_geom: &NetworkGeometry,
    base: &Network,
) -> Option<(Network, Vec<bool>)> {
    let scaffold = Arc::clone(&base.scaffold);
    let dirty = dirty_rows(&scaffold, base_geom, new_geom)?;
    let reused = dirty.iter().filter(|&&d| !d).count();
    obs::counter!("thermal.assembly_rows_reused").add(reused as u64);

    let mut val = base.matrix.values().to_vec();
    scaffold.fill_values(new_geom, Some(&dirty), &mut val);
    let matrix = CsrMatrix::from_parts(
        scaffold.nodes,
        scaffold.row_ptr.clone(),
        scaffold.col.clone(),
        val,
    );
    let first_dirty = dirty.iter().position(|&d| d).unwrap_or(scaffold.nodes);
    let precond = match &base.precond {
        Preconditioner::Ic0(f) => match Ic0::refactor_prefix(&matrix, f, first_dirty) {
            Some(nf) => {
                obs::counter!("thermal.ic0_factorizations").inc();
                Preconditioner::Ic0(nf)
            }
            None => Preconditioner::ic0_or_jacobi(&matrix)
                .expect("conductance network has positive diagonal"),
        },
        // Networks are always built with `ic0_or_jacobi`; a multigrid
        // preconditioner lives in `SolverState`, never here, so a full
        // refactor is the correct fallback for any other variant.
        _ => Preconditioner::ic0_or_jacobi(&matrix)
            .expect("conductance network has positive diagonal"),
    };
    Some((finish(scaffold, matrix, precond, new_geom), dirty))
}

/// Computes the dirty-row mask of an incremental rebuild, or `None` when
/// `new` cannot reuse `base`'s scaffold. A grid row is dirty when any
/// link it reads changed: a changed cell conductivity feeds the lateral
/// links to its x/y neighbours and the vertical links above and below, so
/// the cell's own row plus those six neighbour rows are marked.
fn dirty_rows(
    scaffold: &Scaffold,
    base: &NetworkGeometry,
    new: &NetworkGeometry,
) -> Option<Vec<bool>> {
    let n = scaffold.n;
    if new.n != n
        || base.n != n
        || new.layers.len() != base.layers.len()
        || new.footprint_m.to_bits() != base.footprint_m.to_bits()
        || new.spreader_m.to_bits() != base.spreader_m.to_bits()
        || new.sink_m.to_bits() != base.sink_m.to_bits()
        || new.htc.to_bits() != base.htc.to_bits()
        || new.htc_secondary.to_bits() != base.htc_secondary.to_bits()
    {
        return None;
    }
    for (a, b) in base.layers.iter().zip(&new.layers) {
        if a.role != b.role
            || a.thickness_m.to_bits() != b.thickness_m.to_bits()
            || a.is_heat_source != b.is_heat_source
            || a.k.len() != b.k.len()
        {
            return None;
        }
    }
    // Periphery conductances bake `k[0]` of these layers into the
    // scaffold's fixed links; reuse requires them unchanged.
    for &li in &scaffold.fixed_k_layers {
        if base.layers[li].k[0].to_bits() != new.layers[li].k[0].to_bits() {
            return None;
        }
    }

    let n2 = n * n;
    let nl = new.layers.len();
    let mut dirty = vec![false; scaffold.nodes];
    for (li, (a, b)) in base.layers.iter().zip(&new.layers).enumerate() {
        for c in 0..n2 {
            if a.k[c].to_bits() == b.k[c].to_bits() {
                continue;
            }
            let (ix, iy) = (c % n, c / n);
            dirty[li * n2 + c] = true;
            if ix > 0 {
                dirty[li * n2 + c - 1] = true;
            }
            if ix + 1 < n {
                dirty[li * n2 + c + 1] = true;
            }
            if iy > 0 {
                dirty[li * n2 + c - n] = true;
            }
            if iy + 1 < n {
                dirty[li * n2 + c + n] = true;
            }
            if li > 0 {
                dirty[(li - 1) * n2 + c] = true;
            }
            if li + 1 < nl {
                dirty[(li + 1) * n2 + c] = true;
            }
        }
    }
    Some(dirty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::pcg;

    /// A two-layer toy stack with no periphery: each column is an
    /// independent 1D path, so the die temperature has a closed form.
    fn toy_geom(n: usize, htc: f64) -> NetworkGeometry {
        let n2 = n * n;
        NetworkGeometry {
            n,
            footprint_m: 0.02,
            spreader_m: 0.02,
            sink_m: 0.02,
            layers: vec![
                GriddedLayer {
                    role: LayerRole::HeatSink,
                    thickness_m: 0.005,
                    k: vec![400.0; n2],
                    is_heat_source: false,
                    cv: vec![1.6e6; n2],
                },
                GriddedLayer {
                    role: LayerRole::Die,
                    thickness_m: 0.0005,
                    k: vec![120.0; n2],
                    is_heat_source: true,
                    cv: vec![1.6e6; n2],
                },
            ],
            htc,
            htc_secondary: 0.0,
        }
    }

    #[test]
    fn uniform_power_matches_1d_analytic() {
        let n = 8;
        let htc = 1000.0;
        let geom = toy_geom(n, htc);
        let net = assemble(&geom);
        let dx = geom.footprint_m / n as f64;
        let cell_area = dx * dx;
        let p_cell = 0.1; // W per die cell
        let mut b = vec![0.0; net.nodes];
        for c in 0..n * n {
            b[net.die_base + c] += p_cell;
        }
        // Ambient at 0 for simplicity (linear system).
        let sol = pcg(&net.matrix, &b, None, 1e-12, 50_000).unwrap();
        // 1D: T_die = p/(h·A) + p·(t_sink/2 + t_die/2)/(k·A) per half-layers.
        let r_conv = 1.0 / (htc * cell_area);
        let r_cond = 0.005 / (2.0 * 400.0 * cell_area) + 0.0005 / (2.0 * 120.0 * cell_area);
        let expect = p_cell * (r_conv + r_cond);
        for c in 0..n * n {
            let t = sol.x[net.die_base + c];
            assert!(
                (t - expect).abs() / expect < 1e-9,
                "cell {c}: {t} vs {expect}"
            );
        }
    }

    #[test]
    fn energy_balance_closes() {
        let n = 8;
        let geom = toy_geom(n, 800.0);
        let net = assemble(&geom);
        let mut b = vec![0.0; net.nodes];
        b[net.die_base + 3] = 2.5; // single hot cell
        let sol = pcg(&net.matrix, &b, None, 1e-13, 50_000).unwrap();
        let out: f64 = net.conv.iter().map(|&(i, g)| g * sol.x[i]).sum();
        assert!((out - 2.5).abs() < 1e-9, "heat out {out} vs in 2.5");
    }

    #[test]
    fn periphery_nodes_created_when_spreader_overhangs() {
        let n = 4;
        let mut geom = toy_geom(n, 500.0);
        geom.layers.insert(
            1,
            GriddedLayer {
                role: LayerRole::Spreader,
                thickness_m: 0.001,
                k: vec![390.0; n * n],
                is_heat_source: false,
                cv: vec![1.6e6; n * n],
            },
        );
        geom.spreader_m = 0.04;
        geom.sink_m = 0.08;
        let net = assemble(&geom);
        // 3 layers * 16 + 4 spreader periph + 4 inner + 4 outer.
        assert_eq!(net.nodes, 3 * 16 + 12);
        // Periphery convection raises total boundary conductance above the
        // gridded-center-only value.
        let total_g: f64 = net.conv.iter().map(|&(_, g)| g).sum();
        assert!(total_g > 500.0 * 0.02 * 0.02);
        // Whole sink area convects: h * sink_edge².
        assert!((total_g - 500.0 * 0.08 * 0.08).abs() < 1e-9);
    }

    #[test]
    fn bigger_sink_lowers_peak_temperature() {
        let n = 8;
        let solve_peak = |sink_m: f64, spreader_m: f64| {
            let mut geom = toy_geom(n, 500.0);
            geom.layers.insert(
                1,
                GriddedLayer {
                    role: LayerRole::Spreader,
                    thickness_m: 0.001,
                    k: vec![390.0; n * n],
                    is_heat_source: false,
                    cv: vec![1.6e6; n * n],
                },
            );
            geom.spreader_m = spreader_m;
            geom.sink_m = sink_m;
            let net = assemble(&geom);
            let mut b = vec![0.0; net.nodes];
            for c in 0..n * n {
                b[net.die_base + c] = 0.5;
            }
            let sol = pcg(&net.matrix, &b, None, 1e-11, 100_000).unwrap();
            (net.die_base..net.die_base + n * n)
                .map(|i| sol.x[i])
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let small = solve_peak(0.02, 0.02);
        let large = solve_peak(0.08, 0.04);
        assert!(
            large < small,
            "larger sink should cool better: {large} vs {small}"
        );
    }

    #[test]
    fn secondary_path_reduces_temperature() {
        let n = 6;
        let build = |htc2: f64| {
            let mut geom = toy_geom(n, 400.0);
            geom.layers.push(GriddedLayer {
                role: LayerRole::Substrate,
                thickness_m: 0.0002,
                k: vec![0.3; n * n],
                is_heat_source: false,
                cv: vec![1.6e6; n * n],
            });
            geom.htc_secondary = htc2;
            geom
        };
        let peak = |geom: &NetworkGeometry| {
            let net = assemble(geom);
            let mut b = vec![0.0; net.nodes];
            for c in 0..n * n {
                b[net.die_base + c] = 0.4;
            }
            let sol = pcg(&net.matrix, &b, None, 1e-11, 100_000).unwrap();
            (net.die_base..net.die_base + n * n)
                .map(|i| sol.x[i])
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let without = peak(&build(0.0));
        let with = peak(&build(100.0));
        assert!(with < without, "{with} vs {without}");
    }

    #[test]
    #[should_panic(expected = "conductivity grid mismatch")]
    fn wrong_k_length_rejected() {
        let mut geom = toy_geom(4, 100.0);
        geom.layers[0].k.pop();
        let _ = assemble(&geom);
    }

    #[test]
    #[should_panic(expected = "smaller than footprint")]
    fn spreader_smaller_than_footprint_rejected() {
        let mut geom = toy_geom(4, 100.0);
        geom.spreader_m = 0.01;
        let _ = assemble(&geom);
    }

    /// A geometry with overhanging spreader and sink so the incremental
    /// path also exercises periphery (Fixed) links and grounds.
    fn periph_geom(n: usize) -> NetworkGeometry {
        let mut geom = toy_geom(n, 700.0);
        geom.layers.insert(
            1,
            GriddedLayer {
                role: LayerRole::Spreader,
                thickness_m: 0.001,
                k: vec![390.0; n * n],
                is_heat_source: false,
                cv: vec![3.4e6; n * n],
            },
        );
        geom.spreader_m = 0.03;
        geom.sink_m = 0.05;
        geom
    }

    #[test]
    fn incremental_rebuild_matches_full_bitwise() {
        let n = 6;
        let mut base_geom = periph_geom(n);
        // Heterogeneous die conductivities so lateral links are asymmetric.
        for (c, k) in base_geom.layers[2].k.iter_mut().enumerate() {
            *k = 100.0 + c as f64;
        }
        let base = assemble(&base_geom);
        let mut new_geom = base_geom.clone();
        // Perturb a small patch of die cells (a "moved chiplet").
        for c in [7usize, 8, 13, 14] {
            new_geom.layers[2].k[c] = 45.0;
        }
        let (patched, dirty) = assemble_incremental(&new_geom, &base_geom, &base)
            .expect("same-scaffold rebuild must take the incremental path");
        let full = assemble(&new_geom);

        // The surfaced mask covers the perturbed cells and their stencil
        // neighbours but leaves untouched rows clean.
        assert!(dirty.iter().any(|&d| d), "perturbation must dirty rows");
        assert!(dirty.iter().any(|&d| !d), "small patch must reuse rows");

        assert_eq!(
            patched.matrix.values(),
            full.matrix.values(),
            "patched CSR values must be bitwise identical to a full build"
        );
        assert_eq!(patched.cap, full.cap);
        assert_eq!(patched.conv, full.conv);
        assert!(patched.precond.is_ic0() && full.precond.is_ic0());
        let (Preconditioner::Ic0(pf), Preconditioner::Ic0(ff)) = (&patched.precond, &full.precond)
        else {
            unreachable!()
        };
        let r: Vec<f64> = (0..full.nodes).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut zp = vec![0.0; full.nodes];
        let mut zf = vec![0.0; full.nodes];
        pf.apply(&r, &mut zp);
        ff.apply(&r, &mut zf);
        assert_eq!(zp, zf, "refactored IC(0) must apply bitwise identically");
    }

    #[test]
    fn incremental_rebuild_is_independent_of_base_values() {
        // Patching from two *different* bases must produce the same bytes:
        // the result depends only on the target geometry.
        let n = 5;
        let geom_a = periph_geom(n);
        let mut geom_b = geom_a.clone();
        geom_b.layers[2].k[4] = 77.0;
        let mut target = geom_a.clone();
        target.layers[2].k[12] = 55.0;
        target.layers[2].k[17] = 210.0;

        let (from_a, _) = assemble_incremental(&target, &geom_a, &assemble(&geom_a)).unwrap();
        let (from_b, _) = assemble_incremental(&target, &geom_b, &assemble(&geom_b)).unwrap();
        assert_eq!(from_a.matrix.values(), from_b.matrix.values());
    }

    #[test]
    fn incompatible_geometries_reject_incremental_path() {
        let n = 5;
        let base_geom = periph_geom(n);
        let base = assemble(&base_geom);

        let mut other = base_geom.clone();
        other.footprint_m *= 1.5;
        other.spreader_m *= 1.5;
        other.sink_m *= 1.5;
        assert!(
            assemble_incremental(&other, &base_geom, &base).is_none(),
            "different edges must fall back to full assembly"
        );

        // Changing the spreader conductivity invalidates the baked
        // periphery links.
        let mut other = base_geom.clone();
        for k in &mut other.layers[1].k {
            *k = 250.0;
        }
        assert!(assemble_incremental(&other, &base_geom, &base).is_none());
    }
}
