//! Assembly of the steady-state thermal conductance network.
//!
//! The package is discretized HotSpot-style:
//!
//! * every stack layer (heat sink, spreader, TIM, die, microbump,
//!   interposer, C4, substrate) is a regular `n × n` grid of cells over the
//!   package footprint (the interposer for 2.5D systems, the chip for the
//!   baseline);
//! * the spreader region *beyond* the footprint is lumped into four
//!   trapezoidal periphery nodes (W/E/S/N), and the heat-sink overhang into
//!   four inner (over the spreader) plus four outer periphery nodes;
//! * every heat-sink node (grid cells and periphery) convects to ambient
//!   with conductance `h·A`; the substrate bottom optionally convects
//!   through a weak secondary path (board).
//!
//! Cell-to-cell conductances use the standard finite-volume forms: lateral
//! `G = t·w / (d₁/(2k₁) + d₂/(2k₂))`, vertical
//! `G = A / (t₁/(2k₁) + t₂/(2k₂))`. The network is a symmetric
//! positive-definite Laplacian plus positive boundary terms, solved with
//! PCG ([`crate::sparse`]).

use crate::sparse::{CsrMatrix, Preconditioner, TripletMatrix};
use tac25d_floorplan::layers::LayerRole;

/// One gridded layer ready for assembly: thickness plus per-cell
/// conductivity (row-major, same ordering as [`tac25d_floorplan::raster::Grid`]).
#[derive(Debug, Clone)]
pub(crate) struct GriddedLayer {
    pub role: LayerRole,
    pub thickness_m: f64,
    /// Per-cell conductivity in W/(m·K); length n².
    pub k: Vec<f64>,
    /// Per-cell volumetric heat capacity in J/(m³·K); length n². Only used
    /// by the transient solver.
    pub cv: Vec<f64>,
    /// Whether this layer dissipates power (die tiers).
    pub is_heat_source: bool,
}

/// Geometric and boundary inputs of the assembly.
#[derive(Debug, Clone)]
pub(crate) struct NetworkGeometry {
    /// Grid cells per side.
    pub n: usize,
    /// Package footprint edge in metres.
    pub footprint_m: f64,
    /// Spreader edge in metres (≥ footprint).
    pub spreader_m: f64,
    /// Heat-sink edge in metres (≥ spreader).
    pub sink_m: f64,
    /// Layers, top (sink) to bottom (substrate).
    pub layers: Vec<GriddedLayer>,
    /// Heat-transfer coefficient of the sink surface, W/(m²·K).
    pub htc: f64,
    /// Secondary-path heat-transfer coefficient at the substrate bottom,
    /// W/(m²·K) (0 disables the secondary path).
    pub htc_secondary: f64,
}

/// The assembled network: matrix plus bookkeeping needed to build the RHS
/// and post-process solutions.
#[derive(Debug, Clone)]
pub(crate) struct Network {
    pub matrix: CsrMatrix,
    /// Preconditioner factored once at assembly and reused by every solve
    /// of this matrix (the factor-once/solve-many fast path). IC(0) on the
    /// conductance networks assembly produces; the enum carries the Jacobi
    /// fallback for completeness.
    pub precond: Preconditioner,
    /// `(node, conductance-to-ambient)` for every boundary node.
    pub conv: Vec<(usize, f64)>,
    /// Total node count.
    pub nodes: usize,
    /// First node id of the topmost die (heat-source) layer.
    pub die_base: usize,
    /// First node ids of every heat-source layer, top-down (3D stacks
    /// have several tiers).
    pub heat_bases: Vec<usize>,
    /// Per-node thermal capacitance, J/K (for transient simulation).
    pub cap: Vec<f64>,
}

const SIDES: usize = 4; // W, E, S, N

impl NetworkGeometry {
    /// Index of a grid node.
    #[inline]
    fn node(&self, layer: usize, ix: usize, iy: usize) -> usize {
        layer * self.n * self.n + iy * self.n + ix
    }

    fn layer_index(&self, role: LayerRole) -> Option<usize> {
        self.layers.iter().position(|l| l.role == role)
    }
}

/// Assembles the conductance matrix and boundary list.
///
/// # Panics
///
/// Panics if the geometry is inconsistent (no layers, conductivity vector
/// length mismatch, spreader smaller than footprint, sink smaller than
/// spreader, or a non-positive conductivity/dimension).
pub(crate) fn assemble(geom: &NetworkGeometry) -> Network {
    let n = geom.n;
    assert!(n >= 2, "grid must be at least 2x2, got {n}");
    assert!(!geom.layers.is_empty(), "stack must contain layers");
    assert!(geom.footprint_m > 0.0, "footprint must be positive");
    assert!(
        geom.spreader_m >= geom.footprint_m - 1e-12,
        "spreader ({}) smaller than footprint ({})",
        geom.spreader_m,
        geom.footprint_m
    );
    assert!(
        geom.sink_m >= geom.spreader_m - 1e-12,
        "sink ({}) smaller than spreader ({})",
        geom.sink_m,
        geom.spreader_m
    );
    let n2 = n * n;
    for l in &geom.layers {
        assert_eq!(
            l.k.len(),
            n2,
            "layer {:?} conductivity grid mismatch",
            l.role
        );
        assert!(
            l.thickness_m > 0.0,
            "layer {:?} thickness must be positive",
            l.role
        );
        assert!(
            l.k.iter().all(|&k| k > 0.0 && k.is_finite()),
            "layer {:?} has non-positive conductivity",
            l.role
        );
    }

    let dx = geom.footprint_m / n as f64;
    let dy = dx;
    let cell_area = dx * dy;
    let nl = geom.layers.len();

    let sink_layer = geom.layer_index(LayerRole::HeatSink);
    let spreader_layer = geom.layer_index(LayerRole::Spreader);
    let heat_layers: Vec<usize> = geom
        .layers
        .iter()
        .enumerate()
        .filter_map(|(i, l)| l.is_heat_source.then_some(i))
        .collect();
    let die_layer = *heat_layers
        .first()
        .expect("stack must contain a heat-source layer");
    let substrate_layer = geom.layer_index(LayerRole::Substrate);

    let eps = 1e-12;
    let has_sp_periph = spreader_layer.is_some() && geom.spreader_m > geom.footprint_m + eps;
    let has_sink_outer = sink_layer.is_some() && geom.sink_m > geom.spreader_m + eps;

    // Extra (lumped) node layout after the grid nodes.
    let mut next = nl * n2;
    let sp_periph_base = has_sp_periph.then(|| {
        let b = next;
        next += SIDES;
        b
    });
    // The sink inner periphery mirrors the spreader periphery footprint.
    let sink_inner_base = (has_sp_periph && sink_layer.is_some()).then(|| {
        let b = next;
        next += SIDES;
        b
    });
    let sink_outer_base = has_sink_outer.then(|| {
        let b = next;
        next += SIDES;
        b
    });
    let nodes = next;

    let mut m = TripletMatrix::new(nodes);
    let mut conv: Vec<(usize, f64)> = Vec::new();
    let mut cap = vec![0.0f64; nodes];

    // Per-node thermal capacitance: grid cells first, periphery after the
    // lumped nodes are laid out below.
    for (li, layer) in geom.layers.iter().enumerate() {
        for c in 0..n2 {
            cap[li * n2 + c] = layer.cv[c] * cell_area * layer.thickness_m;
        }
    }

    // --- Intra-layer lateral conduction + inter-layer vertical conduction.
    for (li, layer) in geom.layers.iter().enumerate() {
        let t = layer.thickness_m;
        for iy in 0..n {
            for ix in 0..n {
                let a = geom.node(li, ix, iy);
                let ka = layer.k[iy * n + ix];
                if ix + 1 < n {
                    let kb = layer.k[iy * n + ix + 1];
                    let g = t * dy / (dx / (2.0 * ka) + dx / (2.0 * kb));
                    m.add_conductance(a, geom.node(li, ix + 1, iy), g);
                }
                if iy + 1 < n {
                    let kb = layer.k[(iy + 1) * n + ix];
                    let g = t * dx / (dy / (2.0 * ka) + dy / (2.0 * kb));
                    m.add_conductance(a, geom.node(li, ix, iy + 1), g);
                }
                if li + 1 < nl {
                    let below = &geom.layers[li + 1];
                    let kb = below.k[iy * n + ix];
                    let g = cell_area / (t / (2.0 * ka) + below.thickness_m / (2.0 * kb));
                    m.add_conductance(a, geom.node(li + 1, ix, iy), g);
                }
            }
        }
    }

    // --- Convection from the sink grid cells.
    if let Some(sl) = sink_layer {
        for iy in 0..n {
            for ix in 0..n {
                let g = geom.htc * cell_area;
                let node = geom.node(sl, ix, iy);
                m.add_ground(node, g);
                conv.push((node, g));
            }
        }
    }

    // --- Secondary path from the substrate bottom.
    if geom.htc_secondary > 0.0 {
        if let Some(sub) = substrate_layer {
            for iy in 0..n {
                for ix in 0..n {
                    let g = geom.htc_secondary * cell_area;
                    let node = geom.node(sub, ix, iy);
                    m.add_ground(node, g);
                    conv.push((node, g));
                }
            }
        }
    }

    // --- Spreader periphery nodes.
    if let Some(spb) = sp_periph_base {
        let sl = spreader_layer.expect("periphery requires a spreader layer");
        let t_sp = geom.layers[sl].thickness_m;
        let k_sp = geom.layers[sl].k[0]; // spreader is homogeneous copper
        let overhang = (geom.spreader_m - geom.footprint_m) / 2.0;
        let d = overhang / 2.0 + dx / 2.0;
        connect_periphery_to_boundary(&mut m, geom, sl, spb, t_sp, k_sp, d);

        // Vertical coupling to the sink inner periphery above.
        if let (Some(sib), Some(skl)) = (sink_inner_base, sink_layer) {
            let t_sk = geom.layers[skl].thickness_m;
            let k_sk = geom.layers[skl].k[0];
            let area_side = (geom.spreader_m * geom.spreader_m
                - geom.footprint_m * geom.footprint_m)
                / SIDES as f64;
            let g = area_side / (t_sp / (2.0 * k_sp) + t_sk / (2.0 * k_sk));
            for s in 0..SIDES {
                m.add_conductance(spb + s, sib + s, g);
            }
        }
    }

    // --- Sink inner periphery: lateral to sink grid boundary + convection.
    if let Some(sib) = sink_inner_base {
        let skl = sink_layer.expect("sink periphery requires a sink layer");
        let t_sk = geom.layers[skl].thickness_m;
        let k_sk = geom.layers[skl].k[0];
        let overhang = (geom.spreader_m - geom.footprint_m) / 2.0;
        let d = overhang / 2.0 + dx / 2.0;
        connect_periphery_to_boundary(&mut m, geom, skl, sib, t_sk, k_sk, d);
        let area_side = (geom.spreader_m * geom.spreader_m - geom.footprint_m * geom.footprint_m)
            / SIDES as f64;
        for s in 0..SIDES {
            let g = geom.htc * area_side;
            m.add_ground(sib + s, g);
            conv.push((sib + s, g));
        }

        // Lateral to the outer periphery.
        if let Some(sob) = sink_outer_base {
            let d2 = overhang / 2.0 + (geom.sink_m - geom.spreader_m) / 4.0;
            // Interface length per side ≈ spreader edge.
            let g = k_sk * t_sk * geom.spreader_m / d2;
            for s in 0..SIDES {
                m.add_conductance(sib + s, sob + s, g);
            }
        }
    }

    // --- Sink outer periphery: convection (and, if there is no inner
    //     periphery because spreader == footprint, couple directly to the
    //     sink grid boundary).
    if let Some(sob) = sink_outer_base {
        let skl = sink_layer.expect("sink periphery requires a sink layer");
        let t_sk = geom.layers[skl].thickness_m;
        let k_sk = geom.layers[skl].k[0];
        let area_side =
            (geom.sink_m * geom.sink_m - geom.spreader_m * geom.spreader_m) / SIDES as f64;
        for s in 0..SIDES {
            let g = geom.htc * area_side;
            m.add_ground(sob + s, g);
            conv.push((sob + s, g));
        }
        if sink_inner_base.is_none() {
            let d = (geom.sink_m - geom.spreader_m) / 4.0 + dx / 2.0;
            connect_periphery_to_boundary(&mut m, geom, skl, sob, t_sk, k_sk, d);
        }
    }

    // Lumped-node capacitances (copper periphery volumes).
    if let (Some(spb), Some(sl)) = (sp_periph_base, spreader_layer) {
        let t_sp = geom.layers[sl].thickness_m;
        let cv = geom.layers[sl].cv[0];
        let area_side = (geom.spreader_m * geom.spreader_m - geom.footprint_m * geom.footprint_m)
            / SIDES as f64;
        for s in 0..SIDES {
            cap[spb + s] = cv * area_side * t_sp;
        }
    }
    if let (Some(sib), Some(skl)) = (sink_inner_base, sink_layer) {
        let t_sk = geom.layers[skl].thickness_m;
        let cv = geom.layers[skl].cv[0];
        let area_side = (geom.spreader_m * geom.spreader_m - geom.footprint_m * geom.footprint_m)
            / SIDES as f64;
        for s in 0..SIDES {
            cap[sib + s] = cv * area_side * t_sk;
        }
    }
    if let (Some(sob), Some(skl)) = (sink_outer_base, sink_layer) {
        let t_sk = geom.layers[skl].thickness_m;
        let cv = geom.layers[skl].cv[0];
        let area_side =
            (geom.sink_m * geom.sink_m - geom.spreader_m * geom.spreader_m) / SIDES as f64;
        for s in 0..SIDES {
            cap[sob + s] = cv * area_side * t_sk;
        }
    }

    let matrix = m.to_csr();
    // Assembly guarantees a positive diagonal (every cell has at least one
    // conductance), so a preconditioner always exists.
    let precond =
        Preconditioner::ic0_or_jacobi(&matrix).expect("conductance network has positive diagonal");
    Network {
        matrix,
        precond,
        conv,
        nodes,
        die_base: die_layer * n2,
        heat_bases: heat_layers.iter().map(|&l| l * n2).collect(),
        cap,
    }
}

/// Connects the four periphery nodes of a layer to that layer's grid
/// boundary cells with lateral conductances `k·t·w/d` per cell.
fn connect_periphery_to_boundary(
    m: &mut TripletMatrix,
    geom: &NetworkGeometry,
    layer: usize,
    periph_base: usize,
    t: f64,
    k: f64,
    d: f64,
) {
    let n = geom.n;
    let dx = geom.footprint_m / n as f64;
    let g = k * t * dx / d;
    for iy in 0..n {
        m.add_conductance(geom.node(layer, 0, iy), periph_base, g); // W
        m.add_conductance(geom.node(layer, n - 1, iy), periph_base + 1, g); // E
    }
    for ix in 0..n {
        m.add_conductance(geom.node(layer, ix, 0), periph_base + 2, g); // S
        m.add_conductance(geom.node(layer, ix, n - 1), periph_base + 3, g); // N
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::pcg;

    /// A two-layer toy stack with no periphery: each column is an
    /// independent 1D path, so the die temperature has a closed form.
    fn toy_geom(n: usize, htc: f64) -> NetworkGeometry {
        let n2 = n * n;
        NetworkGeometry {
            n,
            footprint_m: 0.02,
            spreader_m: 0.02,
            sink_m: 0.02,
            layers: vec![
                GriddedLayer {
                    role: LayerRole::HeatSink,
                    thickness_m: 0.005,
                    k: vec![400.0; n2],
                    is_heat_source: false,
                    cv: vec![1.6e6; n2],
                },
                GriddedLayer {
                    role: LayerRole::Die,
                    thickness_m: 0.0005,
                    k: vec![120.0; n2],
                    is_heat_source: true,
                    cv: vec![1.6e6; n2],
                },
            ],
            htc,
            htc_secondary: 0.0,
        }
    }

    #[test]
    fn uniform_power_matches_1d_analytic() {
        let n = 8;
        let htc = 1000.0;
        let geom = toy_geom(n, htc);
        let net = assemble(&geom);
        let dx = geom.footprint_m / n as f64;
        let cell_area = dx * dx;
        let p_cell = 0.1; // W per die cell
        let mut b = vec![0.0; net.nodes];
        for c in 0..n * n {
            b[net.die_base + c] += p_cell;
        }
        // Ambient at 0 for simplicity (linear system).
        let sol = pcg(&net.matrix, &b, None, 1e-12, 50_000).unwrap();
        // 1D: T_die = p/(h·A) + p·(t_sink/2 + t_die/2)/(k·A) per half-layers.
        let r_conv = 1.0 / (htc * cell_area);
        let r_cond = 0.005 / (2.0 * 400.0 * cell_area) + 0.0005 / (2.0 * 120.0 * cell_area);
        let expect = p_cell * (r_conv + r_cond);
        for c in 0..n * n {
            let t = sol.x[net.die_base + c];
            assert!(
                (t - expect).abs() / expect < 1e-9,
                "cell {c}: {t} vs {expect}"
            );
        }
    }

    #[test]
    fn energy_balance_closes() {
        let n = 8;
        let geom = toy_geom(n, 800.0);
        let net = assemble(&geom);
        let mut b = vec![0.0; net.nodes];
        b[net.die_base + 3] = 2.5; // single hot cell
        let sol = pcg(&net.matrix, &b, None, 1e-13, 50_000).unwrap();
        let out: f64 = net.conv.iter().map(|&(i, g)| g * sol.x[i]).sum();
        assert!((out - 2.5).abs() < 1e-9, "heat out {out} vs in 2.5");
    }

    #[test]
    fn periphery_nodes_created_when_spreader_overhangs() {
        let n = 4;
        let mut geom = toy_geom(n, 500.0);
        geom.layers.insert(
            1,
            GriddedLayer {
                role: LayerRole::Spreader,
                thickness_m: 0.001,
                k: vec![390.0; n * n],
                is_heat_source: false,
                cv: vec![1.6e6; n * n],
            },
        );
        geom.spreader_m = 0.04;
        geom.sink_m = 0.08;
        let net = assemble(&geom);
        // 3 layers * 16 + 4 spreader periph + 4 inner + 4 outer.
        assert_eq!(net.nodes, 3 * 16 + 12);
        // Periphery convection raises total boundary conductance above the
        // gridded-center-only value.
        let total_g: f64 = net.conv.iter().map(|&(_, g)| g).sum();
        assert!(total_g > 500.0 * 0.02 * 0.02);
        // Whole sink area convects: h * sink_edge².
        assert!((total_g - 500.0 * 0.08 * 0.08).abs() < 1e-9);
    }

    #[test]
    fn bigger_sink_lowers_peak_temperature() {
        let n = 8;
        let solve_peak = |sink_m: f64, spreader_m: f64| {
            let mut geom = toy_geom(n, 500.0);
            geom.layers.insert(
                1,
                GriddedLayer {
                    role: LayerRole::Spreader,
                    thickness_m: 0.001,
                    k: vec![390.0; n * n],
                    is_heat_source: false,
                    cv: vec![1.6e6; n * n],
                },
            );
            geom.spreader_m = spreader_m;
            geom.sink_m = sink_m;
            let net = assemble(&geom);
            let mut b = vec![0.0; net.nodes];
            for c in 0..n * n {
                b[net.die_base + c] = 0.5;
            }
            let sol = pcg(&net.matrix, &b, None, 1e-11, 100_000).unwrap();
            (net.die_base..net.die_base + n * n)
                .map(|i| sol.x[i])
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let small = solve_peak(0.02, 0.02);
        let large = solve_peak(0.08, 0.04);
        assert!(
            large < small,
            "larger sink should cool better: {large} vs {small}"
        );
    }

    #[test]
    fn secondary_path_reduces_temperature() {
        let n = 6;
        let build = |htc2: f64| {
            let mut geom = toy_geom(n, 400.0);
            geom.layers.push(GriddedLayer {
                role: LayerRole::Substrate,
                thickness_m: 0.0002,
                k: vec![0.3; n * n],
                is_heat_source: false,
                cv: vec![1.6e6; n * n],
            });
            geom.htc_secondary = htc2;
            geom
        };
        let peak = |geom: &NetworkGeometry| {
            let net = assemble(geom);
            let mut b = vec![0.0; net.nodes];
            for c in 0..n * n {
                b[net.die_base + c] = 0.4;
            }
            let sol = pcg(&net.matrix, &b, None, 1e-11, 100_000).unwrap();
            (net.die_base..net.die_base + n * n)
                .map(|i| sol.x[i])
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let without = peak(&build(0.0));
        let with = peak(&build(100.0));
        assert!(with < without, "{with} vs {without}");
    }

    #[test]
    #[should_panic(expected = "conductivity grid mismatch")]
    fn wrong_k_length_rejected() {
        let mut geom = toy_geom(4, 100.0);
        geom.layers[0].k.pop();
        let _ = assemble(&geom);
    }

    #[test]
    #[should_panic(expected = "smaller than footprint")]
    fn spreader_smaller_than_footprint_rejected() {
        let mut geom = toy_geom(4, 100.0);
        geom.spreader_m = 0.01;
        let _ = assemble(&geom);
    }
}
