//! Verification hooks: slab-stack assembly with cell-level source
//! injection and grid refinement.
//!
//! [`crate::model::PackageModel`] is the production API: it rasterizes a
//! chiplet organization onto the grid and injects power through rectangle
//! sources, which is exactly what makes it hard to verify — the inputs are
//! themselves discretized. This module exposes the underlying finite-volume
//! assembly ([`crate::network`]) for *slab* stacks: every layer is laterally
//! homogeneous, power is injected per cell, and the grid resolution is a
//! free parameter. That is the contract a method-of-manufactured-solutions
//! (MMS) harness needs:
//!
//! * **source injection** — arbitrary (signed) per-cell power fields on any
//!   heat-source layer, bypassing rectangle rasterization entirely;
//! * **grid refinement** — the same physical stack assembled at any `n`,
//!   so observed convergence orders can be measured against analytic
//!   references;
//! * **flux accounting** — boundary heat flow split by path (sink vs
//!   secondary), for energy-balance invariants.
//!
//! Temperatures are reported as *rises over ambient* (the network is
//! linear, so the ambient offset is irrelevant to verification).
//!
//! # Examples
//!
//! ```
//! use tac25d_floorplan::layers::LayerRole;
//! use tac25d_thermal::slab::{SlabLayer, SlabModel, SlabStack};
//!
//! let stack = SlabStack {
//!     n: 8,
//!     edge_m: 0.02,
//!     htc: 1000.0,
//!     htc_secondary: 0.0,
//!     layers: vec![
//!         SlabLayer::new(LayerRole::HeatSink, 0.005, 400.0),
//!         SlabLayer::source(LayerRole::Die, 0.0005, 120.0),
//!     ],
//! };
//! let model = SlabModel::assemble(&stack);
//! let sol = model.solve_uniform(50.0, 1e-12, 50_000).unwrap();
//! assert!(sol.energy_balance_error() < 1e-9);
//! ```

use crate::mg::{MgHierarchy, MgOptions, MgRaster};
use crate::network::{assemble, GriddedLayer, Network, NetworkGeometry};
use crate::sparse::{pcg, SolveError};
use tac25d_floorplan::layers::LayerRole;

/// One laterally homogeneous layer of a verification slab stack.
#[derive(Debug, Clone)]
pub struct SlabLayer {
    /// Layer role (drives boundary handling: [`LayerRole::HeatSink`]
    /// convects with `htc`, [`LayerRole::Substrate`] with
    /// `htc_secondary`).
    pub role: LayerRole,
    /// Thickness in metres.
    pub thickness_m: f64,
    /// Thermal conductivity in W/(m·K), uniform over the layer.
    pub k: f64,
    /// Volumetric heat capacity in J/(m³·K) (transient solves only).
    pub cv: f64,
    /// Whether per-cell power can be injected into this layer.
    pub is_heat_source: bool,
}

impl SlabLayer {
    /// A passive layer with a default silicon-like heat capacity.
    pub fn new(role: LayerRole, thickness_m: f64, k: f64) -> Self {
        SlabLayer {
            role,
            thickness_m,
            k,
            cv: 1.6e6,
            is_heat_source: false,
        }
    }

    /// A heat-source layer (power can be injected into its cells).
    pub fn source(role: LayerRole, thickness_m: f64, k: f64) -> Self {
        SlabLayer {
            is_heat_source: true,
            ..SlabLayer::new(role, thickness_m, k)
        }
    }
}

/// A slab stack: square footprint, no spreader/sink overhang (every column
/// sees the same 1D environment), layers listed top (sink side) to bottom.
#[derive(Debug, Clone)]
pub struct SlabStack {
    /// Grid cells per side — the refinement parameter.
    pub n: usize,
    /// Footprint edge in metres.
    pub edge_m: f64,
    /// Sink-surface heat-transfer coefficient, W/(m²·K).
    pub htc: f64,
    /// Secondary-path (substrate bottom) coefficient, W/(m²·K).
    pub htc_secondary: f64,
    /// Layers, top to bottom. At least one must be a heat source.
    pub layers: Vec<SlabLayer>,
}

impl SlabStack {
    /// The same physical stack at a different grid resolution — the
    /// grid-refinement hook of the MMS harness.
    pub fn refined(&self, n: usize) -> SlabStack {
        SlabStack { n, ..self.clone() }
    }

    /// Cell pitch in metres at this resolution.
    pub fn dx(&self) -> f64 {
        self.edge_m / self.n as f64
    }

    fn geometry(&self) -> NetworkGeometry {
        let n2 = self.n * self.n;
        NetworkGeometry {
            n: self.n,
            footprint_m: self.edge_m,
            spreader_m: self.edge_m,
            sink_m: self.edge_m,
            layers: self
                .layers
                .iter()
                .map(|l| GriddedLayer {
                    role: l.role,
                    thickness_m: l.thickness_m,
                    k: vec![l.k; n2],
                    cv: vec![l.cv; n2],
                    is_heat_source: l.is_heat_source,
                })
                .collect(),
            htc: self.htc,
            htc_secondary: self.htc_secondary,
        }
    }
}

/// An assembled slab network ready to solve injected source fields.
#[derive(Debug, Clone)]
pub struct SlabModel {
    net: Network,
    roles: Vec<LayerRole>,
    n: usize,
    dx: f64,
}

impl SlabModel {
    /// Assembles the conductance network of a slab stack.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent stacks (no layers, no heat source,
    /// non-positive dimensions/conductivities) — same contract as the
    /// internal assembly.
    pub fn assemble(stack: &SlabStack) -> Self {
        let net = assemble(&stack.geometry());
        SlabModel {
            net,
            roles: stack.layers.iter().map(|l| l.role).collect(),
            n: stack.n,
            dx: stack.dx(),
        }
    }

    /// Grid cells per side.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Cell area in m².
    pub fn cell_area_m2(&self) -> f64 {
        self.dx * self.dx
    }

    /// Total node count of the assembled network.
    pub fn nodes(&self) -> usize {
        self.net.nodes
    }

    /// Number of heat-source layers accepting injected fields.
    pub fn source_layer_count(&self) -> usize {
        self.net.heat_bases.len()
    }

    /// Solves the steady state for per-cell power fields injected into the
    /// heat-source layers (top-down; trailing layers may be omitted). Each
    /// field is row-major with length `n²`, in watts per cell; signed
    /// values are allowed — manufactured solutions routinely need sinks as
    /// well as sources.
    ///
    /// # Errors
    ///
    /// Returns the PCG failure if the iterative solver does not reach
    /// `rel_tol` within `max_iter`.
    ///
    /// # Panics
    ///
    /// Panics if more fields than heat-source layers are supplied or a
    /// field has the wrong length.
    pub fn solve_fields(
        &self,
        fields: &[&[f64]],
        rel_tol: f64,
        max_iter: usize,
    ) -> Result<SlabSolution, SolveError> {
        let (b, power_in) = self.rhs(fields);
        let sol = pcg(&self.net.matrix, &b, None, rel_tol, max_iter)?;
        Ok(self.finish(sol.x, power_in, sol.iterations))
    }

    /// Solves the same injected-field problem with the standalone geometric
    /// multigrid V-cycle ([`crate::mg`]) instead of PCG. `iterations` in
    /// the returned solution counts *V-cycles* — the quantity the MMS
    /// refinement ladder asserts is h-independent.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotPositiveDefinite`] if the hierarchy cannot
    /// be built for this raster, or the V-cycle failure if `rel_tol` is
    /// not reached within the cycle budget.
    ///
    /// # Panics
    ///
    /// Same field-shape contract as [`Self::solve_fields`].
    pub fn solve_fields_mg(
        &self,
        fields: &[&[f64]],
        rel_tol: f64,
    ) -> Result<SlabSolution, SolveError> {
        let raster = MgRaster {
            n: self.n,
            layers: self.roles.len(),
            extras: self.net.nodes - self.roles.len() * self.n * self.n,
        };
        let h = MgHierarchy::build(&self.net.matrix, raster, MgOptions::default())
            .ok_or(SolveError::NotPositiveDefinite)?;
        let (b, power_in) = self.rhs(fields);
        let sol = h.solve(&b, None, rel_tol)?;
        Ok(self.finish(sol.x, power_in, sol.iterations))
    }

    /// Assembles the right-hand side (watts per node) from per-cell source
    /// fields and returns it with the net injected power.
    fn rhs(&self, fields: &[&[f64]]) -> (Vec<f64>, f64) {
        assert!(
            fields.len() <= self.net.heat_bases.len(),
            "{} source fields supplied but the stack has {} heat-source layers",
            fields.len(),
            self.net.heat_bases.len()
        );
        let n2 = self.n * self.n;
        let mut b = vec![0.0; self.net.nodes];
        let mut power_in = 0.0;
        for (field, &base) in fields.iter().zip(&self.net.heat_bases) {
            assert_eq!(field.len(), n2, "source field length must be n²");
            for (c, &w) in field.iter().enumerate() {
                assert!(w.is_finite(), "source power must be finite");
                b[base + c] += w;
                power_in += w;
            }
        }
        (b, power_in)
    }

    /// Wraps a solved temperature field in a [`SlabSolution`], splitting
    /// the boundary flux by path: substrate-bottom convection is the
    /// secondary (board) path, everything else leaves through the sink
    /// surface.
    fn finish(&self, temps: Vec<f64>, power_in: f64, iterations: usize) -> SlabSolution {
        let n2 = self.n * self.n;
        let (mut heat_sink, mut heat_secondary) = (0.0, 0.0);
        for &(i, g) in &self.net.conv {
            let flux = g * temps[i];
            let role = self.roles.get(i / n2).copied();
            if role == Some(LayerRole::Substrate) {
                heat_secondary += flux;
            } else {
                heat_sink += flux;
            }
        }
        SlabSolution {
            temps,
            heat_bases: self.net.heat_bases.clone(),
            n: self.n,
            power_in_w: power_in,
            heat_out_sink_w: heat_sink,
            heat_out_secondary_w: heat_secondary,
            iterations,
        }
    }

    /// Convenience: uniform total power spread over the topmost source
    /// layer (the 1D resistance-chain configuration).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::solve_fields`].
    pub fn solve_uniform(
        &self,
        total_w: f64,
        rel_tol: f64,
        max_iter: usize,
    ) -> Result<SlabSolution, SolveError> {
        let n2 = self.n * self.n;
        let field = vec![total_w / n2 as f64; n2];
        self.solve_fields(&[&field], rel_tol, max_iter)
    }
}

/// A solved slab temperature field (rises over ambient, kelvin).
#[derive(Debug, Clone)]
pub struct SlabSolution {
    temps: Vec<f64>,
    heat_bases: Vec<usize>,
    n: usize,
    power_in_w: f64,
    heat_out_sink_w: f64,
    heat_out_secondary_w: f64,
    iterations: usize,
}

impl SlabSolution {
    /// Temperature rise of cell `(ix, iy)` on source layer `tier`
    /// (0 = topmost source layer).
    ///
    /// # Panics
    ///
    /// Panics if the tier or cell index is out of range.
    pub fn source_cell(&self, tier: usize, ix: usize, iy: usize) -> f64 {
        assert!(ix < self.n && iy < self.n, "cell out of range");
        self.temps[self.heat_bases[tier] + iy * self.n + ix]
    }

    /// The full temperature-rise field of source layer `tier`, row-major.
    ///
    /// # Panics
    ///
    /// Panics if the tier is out of range.
    pub fn source_field(&self, tier: usize) -> &[f64] {
        let base = self.heat_bases[tier];
        &self.temps[base..base + self.n * self.n]
    }

    /// All node temperature rises.
    pub fn raw_temps(&self) -> &[f64] {
        &self.temps
    }

    /// Net injected power (W).
    pub fn power_in_w(&self) -> f64 {
        self.power_in_w
    }

    /// Heat leaving through every convective boundary (sink + secondary
    /// path), W.
    pub fn heat_out_w(&self) -> f64 {
        self.heat_out_sink_w + self.heat_out_secondary_w
    }

    /// Heat leaving through the sink surface, W.
    pub fn heat_out_sink_w(&self) -> f64 {
        self.heat_out_sink_w
    }

    /// Heat leaving through the secondary (board) path at the substrate
    /// bottom, W.
    pub fn heat_out_secondary_w(&self) -> f64 {
        self.heat_out_secondary_w
    }

    /// Relative energy-balance residual |out − in| / |in|.
    pub fn energy_balance_error(&self) -> f64 {
        if self.power_in_w.abs() > 0.0 {
            (self.heat_out_w() - self.power_in_w).abs() / self.power_in_w.abs()
        } else {
            self.heat_out_w().abs()
        }
    }

    /// PCG iterations used.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_layer(n: usize) -> SlabStack {
        SlabStack {
            n,
            edge_m: 0.02,
            htc: 1000.0,
            htc_secondary: 0.0,
            layers: vec![
                SlabLayer::new(LayerRole::HeatSink, 0.005, 400.0),
                SlabLayer::source(LayerRole::Die, 0.0005, 120.0),
            ],
        }
    }

    #[test]
    fn uniform_solve_matches_1d_chain() {
        let stack = two_layer(8);
        let model = SlabModel::assemble(&stack);
        let sol = model.solve_uniform(6.4, 1e-12, 50_000).unwrap();
        let a = model.cell_area_m2();
        let p_cell = 6.4 / 64.0;
        let r = 1.0 / (1000.0 * a) + 0.005 / (2.0 * 400.0 * a) + 0.0005 / (2.0 * 120.0 * a);
        let expect = p_cell * r;
        for iy in 0..8 {
            for ix in 0..8 {
                let t = sol.source_cell(0, ix, iy);
                assert!((t - expect).abs() / expect < 1e-9, "{t} vs {expect}");
            }
        }
        assert!(sol.energy_balance_error() < 1e-9);
    }

    #[test]
    fn refinement_preserves_uniform_solution() {
        // The 1D chain is resolution-independent: refining the grid must
        // not move the uniform-power temperature.
        let coarse = SlabModel::assemble(&two_layer(8))
            .solve_uniform(10.0, 1e-12, 50_000)
            .unwrap()
            .source_cell(0, 0, 0);
        let fine = SlabModel::assemble(&two_layer(8).refined(24))
            .solve_uniform(10.0, 1e-12, 50_000)
            .unwrap()
            .source_cell(0, 0, 0);
        assert!((coarse - fine).abs() < 1e-8, "{coarse} vs {fine}");
    }

    #[test]
    fn signed_fields_are_accepted() {
        let model = SlabModel::assemble(&two_layer(4));
        let mut field = vec![0.0; 16];
        field[0] = 1.0;
        field[15] = -1.0;
        let sol = model.solve_fields(&[&field], 1e-12, 50_000).unwrap();
        assert!(sol.source_cell(0, 0, 0) > 0.0);
        assert!(sol.source_cell(0, 3, 3) < 0.0);
        assert!(sol.power_in_w().abs() < 1e-12);
    }

    #[test]
    fn multigrid_path_matches_pcg() {
        let model = SlabModel::assemble(&two_layer(16));
        let mut field = vec![0.0; 256];
        for (c, w) in field.iter_mut().enumerate() {
            *w = 0.05 * (1.0 + ((c % 11) as f64 - 5.0) / 7.0);
        }
        let pcg = model.solve_fields(&[&field], 1e-12, 50_000).unwrap();
        let mg = model.solve_fields_mg(&[&field], 1e-12).unwrap();
        let max_dt = pcg
            .raw_temps()
            .iter()
            .zip(mg.raw_temps())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_dt < 1e-8, "max |dT| = {max_dt}");
        assert!(mg.iterations() > 0 && mg.iterations() < 60);
        assert!(mg.energy_balance_error() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "source field length")]
    fn wrong_field_length_rejected() {
        let model = SlabModel::assemble(&two_layer(4));
        let field = vec![0.0; 15];
        let _ = model.solve_fields(&[&field], 1e-10, 1000);
    }
}
