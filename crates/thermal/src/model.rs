//! The public thermal-simulation API: build a [`PackageModel`] for a chiplet
//! organization, then solve steady-state temperature fields for arbitrary
//! power maps.

use crate::materials::MaterialLibrary;
use crate::mg::{MgHierarchy, MgOptions, MgRaster, MgScaffold};
use crate::network::{assemble, assemble_incremental, GriddedLayer, Network, NetworkGeometry};
use crate::sparse::{
    pcg, pcg_escalate, pcg_with, PcgSolution, Preconditioner, SolveError, SolveScratch,
};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use tac25d_floorplan::chip::ChipSpec;
use tac25d_floorplan::geometry::Rect;
use tac25d_floorplan::layers::StackSpec;
use tac25d_floorplan::organization::{ChipletLayout, LayoutError, PackageRules};
use tac25d_floorplan::raster::{coverage_grid, power_grid, Grid};
use tac25d_floorplan::units::{Celsius, Mm};
use tac25d_obs as obs;

/// Which PCG preconditioning path a model's solves use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// The fast path: IC(0) preconditioner factored once per model build,
    /// reusable scratch buffers, and deterministic reference-field warm
    /// starts. The default.
    Ic0,
    /// The legacy Jacobi path — byte-for-byte the pre-fast-path solver,
    /// kept for differential verification and as an escape hatch
    /// (`TAC25D_SOLVER=jacobi`).
    Jacobi,
    /// The escalating multigrid tier (`TAC25D_SOLVER=mg`): every solve
    /// starts as IC(0)-PCG and, only if it has not converged within
    /// [`MG_ESCALATION_ITERS`] iterations, lazily builds/refills the
    /// geometric hierarchy ([`crate::mg::MgHierarchy`], shape-keyed
    /// scaffold shared across models) and continues from the partial
    /// iterate under V-cycle preconditioning. Warm-started solves that
    /// finish under the cap — the overwhelming majority in an
    /// optimization sweep — never pay for the hierarchy; hard cold
    /// solves get the V-cycle's grid-independent convergence. Falls back
    /// to IC(0) throughout when a hierarchy cannot be built for the
    /// raster.
    Multigrid,
    /// Grid-dependent selection (`TAC25D_SOLVER=auto`): the escalating
    /// multigrid tier when the per-layer raster is at least
    /// [`AUTO_MG_MIN_GRID`] cells per side (where escalated cold solves
    /// measurably beat pure IC(0) — see DESIGN.md §10 for the measured
    /// crossover), IC(0) otherwise.
    Auto,
}

/// Smallest per-layer raster edge at which [`SolverKind::Auto`] picks the
/// multigrid tier over IC(0). Below this the cold-solve iteration counts
/// are too small for escalation to ever fire profitably — the hierarchy
/// would be built and then idle — while from 32 cells per side upward a
/// cold escalated solve already beats pure IC(0) wall-for-wall (the
/// measurement is recorded in DESIGN.md §10).
pub const AUTO_MG_MIN_GRID: usize = 32;

/// IC(0) iteration budget before a multigrid-tier solve reaches its
/// escalation checkpoint. Sized from the fig8 `--fast` per-solve
/// iteration histogram: warm-started production solves finish in ≤ 25
/// iterations, while cold solves on mg-worthy grids run 40–113 IC(0)
/// iterations. A solve still going at the checkpoint escalates to
/// V-cycle preconditioning only when its own contraction rate projects
/// more remaining iterations than it has already spent (see
/// [`crate::sparse::pcg_escalate`]) — so a solve that barely crosses the
/// cap finishes under IC(0) without paying for a hierarchy, and the
/// 200–500 µs V-cycles are reserved for solves with a long tail ahead
/// of them.
pub const MG_ESCALATION_ITERS: usize = 24;

impl SolverKind {
    /// The solver selected by the `TAC25D_SOLVER` environment variable:
    /// `jacobi` (case-insensitive) forces the legacy path, `mg` /
    /// `multigrid` the multigrid tier, `auto` the grid-dependent
    /// selection, anything else — including unset — selects the IC(0)
    /// fast path.
    pub fn from_env() -> Self {
        match std::env::var("TAC25D_SOLVER") {
            Ok(v) if v.eq_ignore_ascii_case("jacobi") => SolverKind::Jacobi,
            Ok(v) if v.eq_ignore_ascii_case("mg") || v.eq_ignore_ascii_case("multigrid") => {
                SolverKind::Multigrid
            }
            Ok(v) if v.eq_ignore_ascii_case("auto") => SolverKind::Auto,
            _ => SolverKind::Ic0,
        }
    }

    /// Stable lowercase name (`ic0` / `jacobi` / `mg` / `auto`) for
    /// reports and benches.
    pub fn name(&self) -> &'static str {
        match self {
            SolverKind::Ic0 => "ic0",
            SolverKind::Jacobi => "jacobi",
            SolverKind::Multigrid => "mg",
            SolverKind::Auto => "auto",
        }
    }

    /// Resolves [`SolverKind::Auto`] against a per-layer raster edge; the
    /// concrete kinds return themselves. This is the single place the
    /// crossover decision lives — benches and reports that need to label
    /// what `auto` actually ran call this too.
    pub fn resolve(self, grid: usize) -> SolverKind {
        match self {
            SolverKind::Auto => {
                if grid >= AUTO_MG_MIN_GRID {
                    SolverKind::Multigrid
                } else {
                    SolverKind::Ic0
                }
            }
            other => other,
        }
    }
}

/// Solver and boundary-condition configuration.
///
/// The heat-transfer coefficient is *the* global calibration knob of the
/// reproduction: the paper adjusts the HotSpot convective resistance so the
/// heat-transfer coefficient stays constant as the sink grows with the
/// interposer (Sec. IV); we hold `htc` fixed and let the conductance scale
/// with sink area, which is the same statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalConfig {
    /// Grid cells per side (paper: 64).
    pub grid: usize,
    /// Ambient temperature (paper: 45 °C).
    pub ambient: Celsius,
    /// Effective heat-transfer coefficient of the finned sink, W/(m²·K).
    pub htc: f64,
    /// Secondary-path (board) heat-transfer coefficient, W/(m²·K).
    pub htc_secondary: f64,
    /// Spreader edge / footprint edge ratio (paper: 2).
    pub spreader_ratio: f64,
    /// Sink edge / spreader edge ratio (paper: 2).
    pub sink_ratio: f64,
    /// Material properties.
    pub materials: MaterialLibrary,
    /// PCG relative residual tolerance.
    pub rel_tol: f64,
    /// PCG iteration budget.
    pub max_iter: usize,
    /// Exponent of the temperature dependence of silicon conductivity,
    /// `k(T) = k₀ · (T/T₀)^(−n)` with T in kelvin and T₀ = 300 K
    /// (n ≈ 1.3 for bulk silicon). `0.0` (the default) keeps the solve
    /// linear; [`PackageModel::solve_nonlinear`] activates it.
    pub silicon_k_exponent: f64,
    /// Which preconditioning path solves use (defaults to
    /// [`SolverKind::from_env`]).
    pub solver: SolverKind,
}

impl Default for ThermalConfig {
    fn default() -> Self {
        ThermalConfig {
            grid: 64,
            ambient: Celsius(45.0),
            // Calibrated so the single-chip 256-core system lands in the
            // paper's Fig. 3(b)/Fig. 5 temperature bands and its DVFS
            // feasibility frontier matches the Fig. 8 baselines (see
            // EXPERIMENTS.md for the calibration record).
            htc: 1700.0,
            htc_secondary: 15.0,
            spreader_ratio: 2.0,
            sink_ratio: 2.0,
            materials: MaterialLibrary::default(),
            rel_tol: 1e-9,
            max_iter: 100_000,
            silicon_k_exponent: 0.0,
            solver: SolverKind::from_env(),
        }
    }
}

impl ThermalConfig {
    /// A coarser, ~4× faster configuration (32×32 grid) for inner optimizer
    /// loops; peak-temperature error vs the 64×64 grid is small because each
    /// core tile still spans multiple cells at interposer scales.
    pub fn fast() -> Self {
        ThermalConfig {
            grid: 32,
            rel_tol: 1e-8,
            ..ThermalConfig::default()
        }
    }

    /// The concrete solver this configuration's solves dispatch to —
    /// [`SolverKind::Auto`] resolved against the configured grid.
    pub fn resolved_solver(&self) -> SolverKind {
        self.solver.resolve(self.grid)
    }
}

/// Errors from model construction or solving.
#[derive(Debug)]
pub enum ThermalError {
    /// The chiplet organization is invalid.
    Layout(LayoutError),
    /// The linear solver failed.
    Solve(SolveError),
    /// A power source is invalid (negative/NaN watts or outside the
    /// footprint).
    InvalidPower {
        /// Human-readable reason.
        reason: String,
    },
    /// The leakage fixed-point loop exceeded the runaway temperature —
    /// physically, thermal runaway; the organization is infeasible.
    Runaway {
        /// Peak temperature at the moment of divergence.
        peak: Celsius,
    },
    /// The caller-supplied deadline (`CoupledOptions::deadline`) expired
    /// before the coupled loop converged. Not a solver failure: the serve
    /// daemon maps this to a 504 with partial progress attached.
    DeadlineExpired {
        /// Outer iterations completed before the abort.
        outer_iterations: usize,
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::Layout(e) => write!(f, "invalid layout: {e}"),
            ThermalError::Solve(e) => write!(f, "thermal solve failed: {e}"),
            ThermalError::InvalidPower { reason } => write!(f, "invalid power map: {reason}"),
            ThermalError::Runaway { peak } => {
                write!(f, "thermal runaway (peak reached {peak})")
            }
            ThermalError::DeadlineExpired { outer_iterations } => {
                write!(
                    f,
                    "coupled-solve deadline expired after {outer_iterations} outer iterations"
                )
            }
        }
    }
}

impl Error for ThermalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ThermalError::Layout(e) => Some(e),
            ThermalError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LayoutError> for ThermalError {
    fn from(e: LayoutError) -> Self {
        ThermalError::Layout(e)
    }
}

impl From<SolveError> for ThermalError {
    fn from(e: SolveError) -> Self {
        ThermalError::Solve(e)
    }
}

/// Relative tolerance for the per-model *tight* reference-field solve,
/// which seeds guess-less solves running at tight tolerances. It never
/// needs to beat the shape mismatch (~1e-2..1e-3) between the uniform
/// reference load and a real power map; 1e-6 leaves a wide safety margin
/// while roughly halving the cold-solve cost paid once per model.
const REFERENCE_REL_TOL: f64 = 1e-6;

/// Relative tolerance for the *loose* reference field, which seeds
/// guess-less solves that themselves run loosely (the adaptive coupled
/// loop's opening solves). Solving the seed much past the seeded solve's
/// own tolerance is wasted work — but a loose seed must never leak into
/// tight solves: measured on full-tolerance solves, a 1e-3 reference
/// gives back every iteration it saved. Hence two independently-computed
/// fields, each still a pure function of the model, selected by the
/// requesting solve's tolerance against [`REFERENCE_SPLIT_TOL`].
const REFERENCE_REL_TOL_LOOSE: f64 = 1e-3;

/// Guess-less solves at `rel_tol >=` this use the loose reference seed;
/// tighter solves use the tight one. Sits an order below the loosest
/// forcing term the coupled loop issues, and two above the tight
/// reference's own residual.
const REFERENCE_SPLIT_TOL: f64 = 1e-4;

/// A steady-state temperature field.
#[derive(Debug, Clone)]
pub struct ThermalSolution {
    temps: Vec<f64>,
    die_base: usize,
    die_bases: Vec<usize>,
    n: usize,
    footprint: Mm,
    total_power: f64,
    balance_error: f64,
    iterations: usize,
}

impl ThermalSolution {
    /// Peak temperature over all die (junction) tiers.
    pub fn peak(&self) -> Celsius {
        (0..self.die_bases.len())
            .map(|t| self.tier_peak(t))
            .fold(Celsius(f64::NEG_INFINITY), Celsius::max)
    }

    /// Number of heat-source tiers (1 for 2D/2.5D stacks, 2 for the 3D
    /// stack).
    pub fn tier_count(&self) -> usize {
        self.die_bases.len()
    }

    /// Peak temperature of one tier (0 = topmost, nearest the sink).
    ///
    /// # Panics
    ///
    /// Panics if `tier` is out of range.
    pub fn tier_peak(&self, tier: usize) -> Celsius {
        let base = self.die_bases[tier];
        Celsius(
            self.temps[base..base + self.n * self.n]
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max),
        )
    }

    /// Temperature of die cell `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    pub fn die_cell(&self, ix: usize, iy: usize) -> Celsius {
        assert!(
            ix < self.n && iy < self.n,
            "cell ({ix},{iy}) out of {0}x{0}",
            self.n
        );
        Celsius(self.temps[self.die_base + iy * self.n + ix])
    }

    /// The die temperature grid (row-major, °C values).
    pub fn die_grid(&self) -> Grid {
        let mut g = Grid::filled(self.n, self.n, 0.0);
        for iy in 0..self.n {
            for ix in 0..self.n {
                *g.get_mut(ix, iy) = self.temps[self.die_base + iy * self.n + ix];
            }
        }
        g
    }

    /// Maximum die temperature over the cells a rectangle overlaps.
    pub fn rect_max(&self, rect: &Rect) -> Celsius {
        Celsius(self.rect_fold(rect, f64::NEG_INFINITY, |acc, t, _| acc.max(t)))
    }

    /// Area-weighted average die temperature over a rectangle.
    pub fn rect_avg(&self, rect: &Rect) -> Celsius {
        let mut wsum = 0.0;
        let sum = self.rect_fold(rect, 0.0, |acc, t, w| {
            wsum += w;
            acc + t * w
        });
        assert!(wsum > 0.0, "rectangle {rect:?} overlaps no die cells");
        Celsius(sum / wsum)
    }

    fn rect_fold<F: FnMut(f64, f64, f64) -> f64>(&self, rect: &Rect, init: f64, mut f: F) -> f64 {
        let d = self.footprint.value() / self.n as f64;
        let ix0 = ((rect.x0().value() / d).floor().max(0.0)) as usize;
        let iy0 = ((rect.y0().value() / d).floor().max(0.0)) as usize;
        let ix1 = ((rect.x1().value() / d).ceil() as usize).min(self.n);
        let iy1 = ((rect.y1().value() / d).ceil() as usize).min(self.n);
        let mut acc = init;
        for iy in iy0..iy1 {
            for ix in ix0..ix1 {
                let cell = Rect::from_corner(ix as f64 * d, iy as f64 * d, d, d);
                let w = rect.intersection_area(&cell).value();
                if w > 0.0 {
                    acc = f(acc, self.temps[self.die_base + iy * self.n + ix], w);
                }
            }
        }
        acc
    }

    /// Total injected power (W).
    pub fn total_power(&self) -> f64 {
        self.total_power
    }

    /// Relative energy-balance error |heat out − heat in| / heat in
    /// (diagnostic; ≈ solver tolerance).
    pub fn energy_balance_error(&self) -> f64 {
        self.balance_error
    }

    /// PCG iterations used.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Raw node temperatures — used as a warm start by
    /// [`PackageModel::solve_with_guess`].
    pub fn raw_temps(&self) -> &[f64] {
        &self.temps
    }
}

/// A thermal model of one package (chip + organization + stack), reusable
/// across many power maps.
///
/// # Examples
///
/// ```
/// use tac25d_floorplan::prelude::*;
/// use tac25d_thermal::model::{PackageModel, ThermalConfig};
///
/// let chip = ChipSpec::scc_256();
/// let rules = PackageRules::default();
/// let layout = ChipletLayout::Symmetric4 { s3: Mm(4.0) };
/// let model = PackageModel::new(
///     &chip,
///     &layout,
///     &rules,
///     &StackSpec::system_25d(),
///     ThermalConfig::fast(),
/// )?;
/// // 100 W spread over the lower-left chiplet.
/// let rects = layout.chiplet_rects(&chip, &rules);
/// let solution = model.solve(&[(rects[0], 100.0)])?;
/// assert!(solution.peak().value() > 45.0);
/// # Ok::<(), tac25d_thermal::model::ThermalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PackageModel {
    net: Network,
    config: ThermalConfig,
    footprint: Mm,
    die_rects: Vec<Rect>,
    // Construction inputs, retained so the nonlinear solve can reassemble
    // the network with temperature-rescaled conductivities.
    chip: ChipSpec,
    layout: ChipletLayout,
    rules: PackageRules,
    stack: StackSpec,
    // The assembled geometry, retained so [`PackageModel::new_like`] can
    // diff it against a sibling layout's and patch the network
    // incrementally instead of assembling from scratch.
    geom: NetworkGeometry,
    solver_state: SolverState,
}

/// The canonical temperature-rise field a model's cold solves warm-start
/// from: the solution for 1 W spread uniformly over every chiplet.
/// Linearity makes `ambient + rise · (P_total / watts)` a good initial
/// guess for any power map with a similar spatial distribution.
#[derive(Debug, Clone)]
struct ReferenceField {
    /// Per-node temperature rise above ambient for the reference load.
    rise: Vec<f64>,
    /// Total wattage of the reference load.
    watts: f64,
}

/// Lazily-initialized per-model warm-start state. Deliberately keyed to
/// the model (not the call sequence): successive candidate evaluations
/// share it through the evaluator's memoized models, yet every solve's
/// initial guess stays a pure function of the model and its power map, so
/// results are independent of thread scheduling.
#[derive(Debug)]
struct SolverState {
    /// Tight reference (REFERENCE_REL_TOL): seeds tight guess-less solves.
    reference: OnceLock<Option<ReferenceField>>,
    /// Loose reference (REFERENCE_REL_TOL_LOOSE): seeds loose guess-less
    /// solves (the coupled loop's opening solves). Computed independently
    /// of the tight field so each stays a pure function of the model —
    /// never refined in place, which would make solve results depend on
    /// the order tight and loose solves were first requested in.
    reference_loose: OnceLock<Option<ReferenceField>>,
    /// Iterations of the first cold reference solve — the baseline for
    /// the `thermal.pcg_iterations_saved` metric.
    cold_iterations: AtomicU64,
    /// The multigrid hierarchy wrapped as a PCG preconditioner, built
    /// lazily on the first [`SolverKind::Multigrid`] solve and reused by
    /// every later one (the factor-once/solve-many contract, mirroring the
    /// IC(0) factor baked into the network at assembly). `None` inside the
    /// `OnceLock` records a failed hierarchy build, so the fallback is
    /// decided once per model, deterministically.
    mg_precond: OnceLock<Option<Preconditioner>>,
    /// The symbolic multigrid scaffold cell, *shared* (same `Arc`) by
    /// every model derived through [`PackageModel::new_like`]'s
    /// incremental path — the multigrid analogue of the network
    /// `Scaffold`. Whichever same-shape model first needs multigrid pays
    /// the symbolic build once; all others refill values into it. `None`
    /// inside the inner `OnceLock` records a shape that cannot build a
    /// hierarchy.
    mg_scaffold: Arc<OnceLock<Option<Arc<MgScaffold>>>>,
    /// The base model's already-built hierarchy plus the dirty-row mask
    /// from incremental assembly, captured at [`PackageModel::new_like`]
    /// time. Lets this model's first multigrid solve refill only the
    /// rows the spacing move touched ([`MgHierarchy::refill_dirty`])
    /// instead of recomputing every Galerkin value.
    mg_base: Option<(Arc<MgHierarchy>, Vec<bool>)>,
}

impl SolverState {
    fn new() -> Self {
        SolverState {
            reference: OnceLock::new(),
            reference_loose: OnceLock::new(),
            cold_iterations: AtomicU64::new(0),
            mg_precond: OnceLock::new(),
            mg_scaffold: Arc::new(OnceLock::new()),
            mg_base: None,
        }
    }

    /// State for a model derived from `base` through incremental
    /// assembly: shares `base`'s scaffold cell (the two networks are the
    /// same shape by construction) and, when `base` has already built its
    /// hierarchy, records it with the dirty mask for incremental refill.
    fn derived(base: &SolverState, dirty: Vec<bool>) -> Self {
        let mg_base = match base.mg_precond.get() {
            Some(Some(Preconditioner::Multigrid(h))) => Some((h.clone(), dirty)),
            _ => None,
        };
        SolverState {
            reference: OnceLock::new(),
            reference_loose: OnceLock::new(),
            cold_iterations: AtomicU64::new(0),
            mg_precond: OnceLock::new(),
            mg_scaffold: base.mg_scaffold.clone(),
            mg_base,
        }
    }
}

impl Clone for SolverState {
    fn clone(&self) -> Self {
        SolverState {
            reference: self.reference.clone(),
            reference_loose: self.reference_loose.clone(),
            cold_iterations: AtomicU64::new(self.cold_iterations.load(Ordering::Relaxed)),
            mg_precond: self.mg_precond.clone(),
            mg_scaffold: self.mg_scaffold.clone(),
            mg_base: self.mg_base.clone(),
        }
    }
}

impl PackageModel {
    /// Builds the model: validates the layout, rasterizes materials and
    /// assembles the conductance network.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::Layout`] if the organization violates the
    /// paper's constraints (Eqs. (7), (10), overlap, …).
    pub fn new(
        chip: &ChipSpec,
        layout: &ChipletLayout,
        rules: &PackageRules,
        stack: &StackSpec,
        config: ThermalConfig,
    ) -> Result<Self, ThermalError> {
        let _span = obs::span!("thermal.matrix_assembly");
        obs::counter!("thermal.model_builds").inc();
        layout.validate(chip, rules)?;
        assert!(
            config.grid >= 8,
            "grid must be at least 8, got {}",
            config.grid
        );
        assert!(
            config.htc > 0.0,
            "heat-transfer coefficient must be positive"
        );
        assert!(
            config.spreader_ratio >= 1.0 && config.sink_ratio >= 1.0,
            "spreader/sink ratios must be >= 1"
        );
        let (footprint, rects, geom) = Self::prepare_geometry(chip, layout, rules, stack, &config);
        let net = assemble(&geom);
        Ok(PackageModel {
            net,
            config,
            footprint,
            die_rects: rects,
            chip: chip.clone(),
            layout: *layout,
            rules: *rules,
            stack: stack.clone(),
            geom,
            solver_state: SolverState::new(),
        })
    }

    /// Builds the model for `layout` by patching `base`'s assembled
    /// network where possible instead of assembling from scratch. When
    /// the two layouts share a package geometry (same footprint edge,
    /// grid, stack and boundary config) — e.g. same-edge `Symmetric16`
    /// moves, where only the cells under moved chiplets change material —
    /// only the affected matrix rows are refilled and the IC(0) factor's
    /// clean prefix is reused. The incremental path is bitwise identical
    /// to a from-scratch build of the same geometry (see
    /// [`assemble_incremental`]), so the result never depends on which
    /// base it was patched from; incompatible geometries silently fall
    /// back to a full assembly.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::Layout`] if the organization violates the
    /// paper's constraints, exactly as [`Self::new`] would.
    pub fn new_like(base: &PackageModel, layout: &ChipletLayout) -> Result<Self, ThermalError> {
        let _span = obs::span!("thermal.matrix_assembly");
        obs::counter!("thermal.model_builds").inc();
        layout.validate(&base.chip, &base.rules)?;
        let (footprint, rects, geom) =
            Self::prepare_geometry(&base.chip, layout, &base.rules, &base.stack, &base.config);
        let (net, solver_state) = match assemble_incremental(&geom, &base.geom, &base.net) {
            Some((net, dirty)) => {
                // Same shape as the base: share its multigrid scaffold
                // cell and remember its hierarchy (if built) plus the
                // dirty rows, so a multigrid solve on this model refills
                // instead of rebuilding.
                let state = SolverState::derived(&base.solver_state, dirty);
                (net, state)
            }
            None => (assemble(&geom), SolverState::new()),
        };
        Ok(PackageModel {
            net,
            config: base.config.clone(),
            footprint,
            die_rects: rects,
            chip: base.chip.clone(),
            layout: *layout,
            rules: base.rules,
            stack: base.stack.clone(),
            geom,
            solver_state,
        })
    }

    /// Rasterizes materials and lays out the network geometry for a
    /// validated layout (shared by [`Self::new`] and [`Self::new_like`]).
    fn prepare_geometry(
        chip: &ChipSpec,
        layout: &ChipletLayout,
        rules: &PackageRules,
        stack: &StackSpec,
        config: &ThermalConfig,
    ) -> (Mm, Vec<Rect>, NetworkGeometry) {
        let n = config.grid;
        let footprint = layout.footprint_edge(chip, rules);
        let rects = layout.chiplet_rects(chip, rules);
        let cover = coverage_grid(footprint, n, n, &rects);
        let lib = &config.materials;
        let layers: Vec<GriddedLayer> = stack
            .layers()
            .iter()
            .map(|l| {
                let k_bg = lib.conductivity(l.background);
                let k_uc = lib.conductivity(l.under_chiplet);
                let k = cover
                    .as_slice()
                    .iter()
                    .map(|&f| f * k_uc + (1.0 - f) * k_bg)
                    .collect();
                let cv_bg = lib.volumetric_heat_capacity(l.background);
                let cv_uc = lib.volumetric_heat_capacity(l.under_chiplet);
                let cv = cover
                    .as_slice()
                    .iter()
                    .map(|&f| f * cv_uc + (1.0 - f) * cv_bg)
                    .collect();
                GriddedLayer {
                    role: l.role,
                    thickness_m: l.thickness.to_meters(),
                    k,
                    cv,
                    is_heat_source: l.is_heat_source,
                }
            })
            .collect();
        let geom = NetworkGeometry {
            n,
            footprint_m: footprint.to_meters(),
            spreader_m: footprint.to_meters() * config.spreader_ratio,
            sink_m: footprint.to_meters() * config.spreader_ratio * config.sink_ratio,
            layers,
            htc: config.htc,
            htc_secondary: config.htc_secondary,
        };
        (footprint, rects, geom)
    }

    /// Steady-state solve with temperature-dependent silicon conductivity
    /// (`k(T) = k₀·(T_K/300)^(−n)` with n = `config.silicon_k_exponent`).
    ///
    /// Outer fixed point: solve, estimate the area-average die temperature,
    /// rescale the silicon conductivity, reassemble, repeat until the peak
    /// moves less than `tol`. Returns the converged solution and the outer
    /// iteration count. With the exponent at 0 this reduces to one linear
    /// solve.
    ///
    /// # Errors
    ///
    /// Propagates construction/solver errors from the inner solves.
    ///
    /// # Panics
    ///
    /// Panics if `tol` is not positive or `max_outer` is zero.
    pub fn solve_nonlinear(
        &self,
        sources: &[(Rect, f64)],
        tol: Celsius,
        max_outer: usize,
    ) -> Result<(ThermalSolution, usize), ThermalError> {
        assert!(tol.value() > 0.0, "tolerance must be positive");
        assert!(max_outer > 0, "need at least one outer iteration");
        let n_exp = self.config.silicon_k_exponent;
        let mut current = self.solve(sources)?;
        if n_exp == 0.0 {
            return Ok((current, 1));
        }
        let k0 = self.config.materials.silicon;
        let die = Rect::from_corner(0.0, 0.0, self.footprint.value(), self.footprint.value());
        for outer in 2..=max_outer {
            let t_avg_k = current.rect_avg(&die).value() + 273.15;
            let scale = (t_avg_k / 300.0).powf(-n_exp);
            let mut config = self.config.clone();
            config.materials.silicon = k0 * scale;
            let model =
                PackageModel::new(&self.chip, &self.layout, &self.rules, &self.stack, config)?;
            let next = model.solve_with_guess(sources, Some(&current))?;
            let delta = (next.peak().value() - current.peak().value()).abs();
            current = next;
            if delta <= tol.value() {
                return Ok((current, outer));
            }
        }
        Ok((current, max_outer))
    }

    /// The package footprint edge (interposer or baseline chip).
    pub fn footprint_edge(&self) -> Mm {
        self.footprint
    }

    /// The chiplet rectangles of the modelled layout.
    pub fn chiplet_rects(&self) -> &[Rect] {
        &self.die_rects
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &ThermalConfig {
        &self.config
    }

    /// The chiplet layout the model was built for.
    pub fn layout(&self) -> &ChipletLayout {
        &self.layout
    }

    /// Solves the steady state for rectangular power sources (watts).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidPower`] for negative/non-finite watts
    /// or sources outside the footprint, and [`ThermalError::Solve`] if PCG
    /// fails.
    pub fn solve(&self, sources: &[(Rect, f64)]) -> Result<ThermalSolution, ThermalError> {
        self.solve_with_guess(sources, None)
    }

    /// Like [`Self::solve`], warm-starting PCG from a previous solution of
    /// the same model (several times faster inside leakage loops).
    pub fn solve_with_guess(
        &self,
        sources: &[(Rect, f64)],
        guess: Option<&ThermalSolution>,
    ) -> Result<ThermalSolution, ThermalError> {
        self.solve_with_scratch(sources, guess, &mut SolveScratch::new())
    }

    /// Like [`Self::solve_with_guess`], additionally reusing the caller's
    /// [`SolveScratch`] across solves — the leakage fixed-point loop
    /// threads one scratch through all of its inner solves so the PCG work
    /// vectors are allocated once per coupled solve.
    pub fn solve_with_scratch(
        &self,
        sources: &[(Rect, f64)],
        guess: Option<&ThermalSolution>,
        scratch: &mut SolveScratch,
    ) -> Result<ThermalSolution, ThermalError> {
        self.solve_with_scratch_tol(sources, guess, scratch, self.config.rel_tol)
    }

    /// Like [`Self::solve_with_scratch`] with an explicit PCG relative
    /// tolerance for this one solve. The adaptive coupled loop uses this
    /// to run early leakage iterations loosely (Eisenstat–Walker forcing
    /// terms) and only its convergence candidates at the configured full
    /// tolerance. `rel_tol` is clamped to at least `config.rel_tol`: a
    /// per-solve override can only *loosen* a solve, so the configured
    /// tolerance stays the accuracy contract of every converged result.
    pub fn solve_with_scratch_tol(
        &self,
        sources: &[(Rect, f64)],
        guess: Option<&ThermalSolution>,
        scratch: &mut SolveScratch,
        rel_tol: f64,
    ) -> Result<ThermalSolution, ThermalError> {
        let (b, total_power) = self.rhs_for(sources)?;
        let rel_tol = rel_tol.max(self.config.rel_tol);
        let sol = self.run_pcg(
            &b,
            guess.map(|g| g.raw_temps()),
            total_power,
            scratch,
            true,
            rel_tol,
        )?;
        Ok(self.make_solution(sol.x, total_power, sol.iterations))
    }

    /// Dispatches one linear solve to the configured solver path.
    ///
    /// On the IC(0) path a guess-less solve is warm-started from the
    /// model's [`ReferenceField`] scaled to the requested total power
    /// (`allow_reference` gates this off for multi-tier loads, whose
    /// spatial distribution the single-tier reference does not match).
    fn run_pcg(
        &self,
        b: &[f64],
        guess: Option<&[f64]>,
        total_watts: f64,
        scratch: &mut SolveScratch,
        allow_reference: bool,
        rel_tol: f64,
    ) -> Result<PcgSolution, SolveError> {
        let solver = self.config.resolved_solver();
        match solver {
            SolverKind::Jacobi => pcg(&self.net.matrix, b, guess, rel_tol, self.config.max_iter),
            SolverKind::Ic0 | SolverKind::Multigrid | SolverKind::Auto => {
                let reference_guess: Option<Vec<f64>> = if guess.is_none() && allow_reference {
                    self.reference_field(rel_tol).map(|f| {
                        let scale = total_watts / f.watts;
                        let ambient = self.config.ambient.value();
                        f.rise.iter().map(|r| ambient + r * scale).collect()
                    })
                } else {
                    None
                };
                let x0 = guess.or(reference_guess.as_deref());
                let warm = x0.is_some();
                if warm {
                    obs::counter!("thermal.warm_start_hits").inc();
                }
                // The multigrid tier is an escalating hybrid: it runs the
                // same IC(0)-PCG as the fast path up to the escalation
                // cap, and only a solve that is still going — a hard cold
                // solve — builds/refills the hierarchy and continues from
                // its partial iterate under V-cycle preconditioning. Warm
                // starts, scratch reuse and the iteration bookkeeping are
                // shared with the IC(0) fast path.
                let sol = match solver {
                    SolverKind::Multigrid => pcg_escalate(
                        &self.net.matrix,
                        &self.net.precond,
                        MG_ESCALATION_ITERS,
                        || self.mg_precond(),
                        b,
                        x0,
                        rel_tol,
                        self.config.max_iter,
                        scratch,
                    )?,
                    _ => pcg_with(
                        &self.net.matrix,
                        &self.net.precond,
                        b,
                        x0,
                        rel_tol,
                        self.config.max_iter,
                        scratch,
                    )?,
                };
                let cold = self.solver_state.cold_iterations.load(Ordering::Relaxed);
                if warm {
                    if cold > sol.iterations as u64 {
                        obs::counter!("thermal.pcg_iterations_saved")
                            .add(cold - sol.iterations as u64);
                    }
                } else if cold == 0 {
                    self.solver_state
                        .cold_iterations
                        .store(sol.iterations as u64, Ordering::Relaxed);
                }
                Ok(sol)
            }
        }
    }

    /// The lazily-built multigrid preconditioner of this model — a pure
    /// function of the assembled network (hierarchy construction is
    /// deterministic), computed once and shared by every solve of the
    /// model. `None` when the raster cannot build a hierarchy; the caller
    /// then falls back to the network's IC(0) factor.
    ///
    /// The symbolic scaffold comes from the shared cell in
    /// [`SolverState`]: models derived through the incremental assembly
    /// path reuse whichever same-shape model built it first
    /// (`thermal.mg_scaffold_hits` counts the reuses), and when the base
    /// model's hierarchy is available the numeric refill patches only the
    /// dirty rows. Both paths are bitwise identical to a from-scratch
    /// [`MgHierarchy::build`] of this model's matrix.
    fn mg_precond(&self) -> Option<&Preconditioner> {
        self.solver_state
            .mg_precond
            .get_or_init(|| {
                let n = self.geom.n;
                let layers = self.geom.layers.len();
                let raster = MgRaster {
                    n,
                    layers,
                    extras: self.net.nodes - layers * n * n,
                };
                let prebuilt = self.solver_state.mg_scaffold.get().is_some();
                let scaffold = self
                    .solver_state
                    .mg_scaffold
                    .get_or_init(|| {
                        MgScaffold::build(&self.net.matrix, raster, MgOptions::default())
                            .map(Arc::new)
                    })
                    .clone()?;
                if prebuilt {
                    obs::counter!("thermal.mg_scaffold_hits").inc();
                }
                let hierarchy = match &self.solver_state.mg_base {
                    Some((base, dirty)) => {
                        MgHierarchy::refill_dirty(scaffold.clone(), &self.net.matrix, base, dirty)
                            .or_else(|| MgHierarchy::from_scaffold(scaffold, &self.net.matrix))
                    }
                    None => MgHierarchy::from_scaffold(scaffold, &self.net.matrix),
                }?;
                Some(Preconditioner::Multigrid(Arc::new(hierarchy)))
            })
            .as_ref()
    }

    /// The multigrid hierarchy of this model's network, built on first use
    /// (`None` if the raster cannot build one). Exposed for the
    /// verification ladder and benches; production solves go through
    /// [`SolverKind::Multigrid`].
    pub fn mg_hierarchy(&self) -> Option<&Arc<MgHierarchy>> {
        match self.mg_precond() {
            Some(Preconditioner::Multigrid(h)) => Some(h),
            _ => None,
        }
    }

    /// The lazily-computed reference rise field (1 W per chiplet) matched
    /// to the requesting solve's tolerance, shared by every clone-free
    /// user of this model. `None` when the model has no chiplets or the
    /// reference solve fails — warm starting is an optimization, never a
    /// correctness requirement.
    fn reference_field(&self, rel_tol: f64) -> Option<&ReferenceField> {
        if rel_tol >= REFERENCE_SPLIT_TOL {
            self.solver_state
                .reference_loose
                .get_or_init(|| self.compute_reference_field(REFERENCE_REL_TOL_LOOSE))
                .as_ref()
        } else {
            self.solver_state
                .reference
                .get_or_init(|| self.compute_reference_field(REFERENCE_REL_TOL))
                .as_ref()
        }
    }

    fn compute_reference_field(&self, reference_tol: f64) -> Option<ReferenceField> {
        let sources: Vec<(Rect, f64)> = self.die_rects.iter().map(|r| (*r, 1.0)).collect();
        let (b, watts) = self.rhs_for(&sources).ok()?;
        if watts <= 0.0 {
            return None;
        }
        // The reference is only ever an initial *guess* — solves that use
        // it still converge to their own tolerance — so solving it beyond
        // `reference_tol` buys nothing: the guess error for a real power
        // map is dominated by the spatial-shape mismatch, not by the
        // reference's residual. Still a pure function of the model. Under
        // the multigrid tier this cold solve escalates like any other —
        // it is the one guess-less solve every model pays for, so on
        // mg-worthy grids it is exactly where the hierarchy earns its
        // refill.
        let rel_tol = self.config.rel_tol.max(reference_tol);
        let sol = match self.config.resolved_solver() {
            SolverKind::Multigrid => pcg_escalate(
                &self.net.matrix,
                &self.net.precond,
                MG_ESCALATION_ITERS,
                || self.mg_precond(),
                &b,
                None,
                rel_tol,
                self.config.max_iter,
                &mut SolveScratch::new(),
            ),
            _ => pcg_with(
                &self.net.matrix,
                &self.net.precond,
                &b,
                None,
                rel_tol,
                self.config.max_iter,
                &mut SolveScratch::new(),
            ),
        }
        .ok()?;
        if self.solver_state.cold_iterations.load(Ordering::Relaxed) == 0 {
            self.solver_state
                .cold_iterations
                .store(sol.iterations as u64, Ordering::Relaxed);
        }
        let ambient = self.config.ambient.value();
        Some(ReferenceField {
            rise: sol.x.iter().map(|t| t - ambient).collect(),
            watts,
        })
    }

    /// Unit-power thermal response: the steady state with 1 W spread
    /// uniformly over chiplet `idx` and every other source off. Because
    /// the network is linear, these solutions are the Green's-function
    /// kernels surrogate predictors superpose (rise fields scale with
    /// watts and add across sources).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::solve`].
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not a valid chiplet index of the modelled layout.
    pub fn unit_response(&self, idx: usize) -> Result<ThermalSolution, ThermalError> {
        assert!(
            idx < self.die_rects.len(),
            "chiplet index {idx} out of {}",
            self.die_rects.len()
        );
        self.solve(&[(self.die_rects[idx], 1.0)])
    }

    /// Access to the assembled network for the transient solver.
    pub(crate) fn network(&self) -> &Network {
        &self.net
    }

    /// Reference solve by dense Cholesky factorization — O(n³), intended
    /// only for validating the iterative solver on small grids (tests and
    /// debugging).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::solve`].
    #[doc(hidden)]
    pub fn solve_dense_reference(
        &self,
        sources: &[(Rect, f64)],
    ) -> Result<ThermalSolution, ThermalError> {
        let (b, total_power) = self.rhs_for(sources)?;
        let x = crate::sparse::dense_cholesky_solve(&self.net.matrix, &b)?;
        Ok(self.make_solution(x, total_power, 0))
    }

    /// Builds the steady-state right-hand side (power injection plus
    /// ambient boundary terms) for a validated source set injected into
    /// the topmost die tier; returns the vector and the total injected
    /// power.
    pub(crate) fn rhs_for(&self, sources: &[(Rect, f64)]) -> Result<(Vec<f64>, f64), ThermalError> {
        self.rhs_for_tiers(&[sources])
    }

    /// Multi-tier right-hand side: one source set per heat-source layer
    /// (top-down). Missing trailing tiers are treated as unpowered.
    pub(crate) fn rhs_for_tiers(
        &self,
        tiers: &[&[(Rect, f64)]],
    ) -> Result<(Vec<f64>, f64), ThermalError> {
        if tiers.len() > self.net.heat_bases.len() {
            return Err(ThermalError::InvalidPower {
                reason: format!(
                    "{} source tiers supplied but the stack has {} heat-source layers",
                    tiers.len(),
                    self.net.heat_bases.len()
                ),
            });
        }
        let n = self.config.grid;
        let fp_rect = Rect::from_corner(0.0, 0.0, self.footprint.value(), self.footprint.value());
        let mut b = vec![0.0; self.net.nodes];
        let mut total_power = 0.0;
        for (tier, sources) in tiers.iter().enumerate() {
            for (rect, w) in *sources {
                if !w.is_finite() || *w < 0.0 {
                    return Err(ThermalError::InvalidPower {
                        reason: format!("source power {w} at {rect:?} (tier {tier})"),
                    });
                }
                if *w > 0.0 && !fp_rect.contains_rect(rect) {
                    return Err(ThermalError::InvalidPower {
                        reason: format!(
                            "source {rect:?} outside footprint {fp_rect:?} (tier {tier})"
                        ),
                    });
                }
            }
            let pg = power_grid(self.footprint, n, n, sources);
            total_power += pg.sum();
            let base = self.net.heat_bases[tier];
            for iy in 0..n {
                for ix in 0..n {
                    b[base + iy * n + ix] += pg.get(ix, iy);
                }
            }
        }
        let t_amb = self.config.ambient.value();
        for &(node, g) in &self.net.conv {
            b[node] += g * t_amb;
        }
        Ok((b, total_power))
    }

    /// Steady-state solve for a multi-tier (3D) stack: one source list per
    /// heat-source layer, topmost first.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::solve`], plus an error when more tiers are
    /// supplied than the stack has heat-source layers.
    pub fn solve_tiers(&self, tiers: &[&[(Rect, f64)]]) -> Result<ThermalSolution, ThermalError> {
        let (b, total_power) = self.rhs_for_tiers(tiers)?;
        // A single-tier load has the reference field's spatial shape, so it
        // warm-starts exactly like `solve` (keeping both entry points
        // bit-identical); genuinely multi-tier loads start cold.
        let sol = self.run_pcg(
            &b,
            None,
            total_power,
            &mut SolveScratch::new(),
            tiers.len() == 1,
            self.config.rel_tol,
        )?;
        Ok(self.make_solution(sol.x, total_power, sol.iterations))
    }

    /// Wraps a raw temperature vector as a [`ThermalSolution`]. The
    /// energy-balance figure is only meaningful for steady states; for
    /// transient snapshots it reports the instantaneous imbalance (heat
    /// still flowing into thermal mass).
    pub(crate) fn make_solution(
        &self,
        temps: Vec<f64>,
        total_power: f64,
        iterations: usize,
    ) -> ThermalSolution {
        let t_amb = self.config.ambient.value();
        let heat_out: f64 = self
            .net
            .conv
            .iter()
            .map(|&(i, g)| g * (temps[i] - t_amb))
            .sum();
        let balance_error = if total_power > 0.0 {
            (heat_out - total_power).abs() / total_power
        } else {
            0.0
        };
        ThermalSolution {
            temps,
            die_base: self.net.die_base,
            die_bases: self.net.heat_bases.clone(),
            n: self.config.grid,
            footprint: self.footprint,
            total_power,
            balance_error,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac25d_floorplan::organization::Spacing;

    fn chip() -> ChipSpec {
        ChipSpec::scc_256()
    }

    fn rules() -> PackageRules {
        PackageRules::default()
    }

    fn cfg() -> ThermalConfig {
        ThermalConfig {
            grid: 24,
            rel_tol: 1e-9,
            ..ThermalConfig::default()
        }
    }

    fn single_chip_model() -> PackageModel {
        PackageModel::new(
            &chip(),
            &ChipletLayout::SingleChip,
            &rules(),
            &StackSpec::baseline_2d(),
            cfg(),
        )
        .unwrap()
    }

    #[test]
    fn zero_power_gives_ambient_everywhere() {
        let model = single_chip_model();
        let sol = model.solve(&[]).unwrap();
        assert!((sol.peak().value() - 45.0).abs() < 1e-6, "{}", sol.peak());
    }

    #[test]
    fn uniform_power_field_is_symmetric() {
        let model = single_chip_model();
        let die = Rect::from_corner(0.0, 0.0, 18.0, 18.0);
        let sol = model.solve(&[(die, 200.0)]).unwrap();
        let n = model.config().grid;
        for iy in 0..n {
            for ix in 0..n {
                let t = sol.die_cell(ix, iy).value();
                let t_mirror = sol.die_cell(n - 1 - ix, iy).value();
                let t_transpose = sol.die_cell(iy, ix).value();
                assert!(
                    (t - t_mirror).abs() < 1e-5,
                    "({ix},{iy}): {t} vs {t_mirror}"
                );
                assert!((t - t_transpose).abs() < 1e-5);
            }
        }
        assert!(sol.energy_balance_error() < 1e-6);
    }

    #[test]
    fn hot_corner_is_hotter_than_opposite_corner() {
        let model = single_chip_model();
        let src = Rect::from_corner(0.0, 0.0, 4.0, 4.0);
        let sol = model.solve(&[(src, 80.0)]).unwrap();
        let near = sol.rect_max(&src).value();
        let far = sol
            .rect_max(&Rect::from_corner(14.0, 14.0, 4.0, 4.0))
            .value();
        assert!(near > far + 5.0, "near {near}, far {far}");
    }

    #[test]
    fn more_power_means_higher_peak() {
        let model = single_chip_model();
        let die = Rect::from_corner(0.0, 0.0, 18.0, 18.0);
        let p1 = model.solve(&[(die, 100.0)]).unwrap().peak();
        let p2 = model.solve(&[(die, 200.0)]).unwrap().peak();
        assert!(p2 > p1);
        // Linearity: ΔT doubles with power.
        let d1 = p1.value() - 45.0;
        let d2 = p2.value() - 45.0;
        assert!((d2 / d1 - 2.0).abs() < 1e-6, "d2/d1 = {}", d2 / d1);
    }

    #[test]
    fn wider_spacing_lowers_peak() {
        // The paper's core thermal claim (Fig. 5): at equal total power,
        // bigger chiplet spacing ⇒ lower peak temperature.
        let total = 300.0;
        let peak_at = |gap: f64| {
            let layout = ChipletLayout::Uniform { r: 4, gap: Mm(gap) };
            let model =
                PackageModel::new(&chip(), &layout, &rules(), &StackSpec::system_25d(), cfg())
                    .unwrap();
            let rects = layout.chiplet_rects(&chip(), &rules());
            let per = total / rects.len() as f64;
            let sources: Vec<_> = rects.iter().map(|r| (*r, per)).collect();
            model.solve(&sources).unwrap().peak().value()
        };
        let tight = peak_at(0.5);
        let medium = peak_at(4.0);
        let wide = peak_at(8.0);
        assert!(
            tight > medium && medium > wide,
            "{tight} > {medium} > {wide}"
        );
    }

    #[test]
    fn more_chiplets_cooler_at_same_interposer_size() {
        // Fig. 3(b): for the same interposer size and power density, more
        // chiplets run cooler.
        let rules = rules();
        let density = 1.0; // W/mm²
        let peak_for_r = |r: u16| {
            // Choose gap so the interposer edge is 30 mm.
            let wc = 18.0 / f64::from(r);
            let gap = (30.0 - 2.0 - wc * f64::from(r)) / f64::from(r - 1);
            let layout = ChipletLayout::Uniform { r, gap: Mm(gap) };
            let model =
                PackageModel::new(&chip(), &layout, &rules, &StackSpec::system_25d(), cfg())
                    .unwrap();
            let rects = layout.chiplet_rects(&chip(), &rules);
            let sources: Vec<_> = rects
                .iter()
                .map(|r| (*r, density * r.area().value()))
                .collect();
            model.solve(&sources).unwrap().peak().value()
        };
        let p2 = peak_for_r(2);
        let p4 = peak_for_r(4);
        assert!(p4 < p2, "4x4 {p4} should be cooler than 2x2 {p2}");
    }

    #[test]
    fn negative_power_rejected() {
        let model = single_chip_model();
        let err = model
            .solve(&[(Rect::from_corner(0.0, 0.0, 1.0, 1.0), -5.0)])
            .unwrap_err();
        assert!(matches!(err, ThermalError::InvalidPower { .. }));
    }

    #[test]
    fn source_outside_footprint_rejected() {
        let model = single_chip_model();
        let err = model
            .solve(&[(Rect::from_corner(17.0, 17.0, 5.0, 5.0), 5.0)])
            .unwrap_err();
        assert!(matches!(err, ThermalError::InvalidPower { .. }));
    }

    #[test]
    fn warm_start_matches_cold_start() {
        // Pinned to the legacy Jacobi path, where a fresh solve really is
        // cold; the fast path warm-starts every solve from the reference
        // field (see reference_field_accelerates_fresh_solves).
        let model = PackageModel::new(
            &chip(),
            &ChipletLayout::SingleChip,
            &rules(),
            &StackSpec::baseline_2d(),
            ThermalConfig {
                solver: SolverKind::Jacobi,
                ..cfg()
            },
        )
        .unwrap();
        let die = Rect::from_corner(0.0, 0.0, 18.0, 18.0);
        let cold = model.solve(&[(die, 150.0)]).unwrap();
        let warm = model
            .solve_with_guess(&[(die, 151.0)], Some(&cold))
            .unwrap();
        let fresh = model.solve(&[(die, 151.0)]).unwrap();
        assert!((warm.peak().value() - fresh.peak().value()).abs() < 1e-4);
        assert!(warm.iterations() < fresh.iterations());
    }

    #[test]
    fn reference_field_accelerates_fresh_solves() {
        // Fast path: the first solve pays a loose (REFERENCE_REL_TOL)
        // reference solve, after which every guess-less solve starts from
        // the scaled reference field and converges in well under a cold
        // solve's iterations — the per-model reference cost amortizes
        // after one solve.
        let model = single_chip_model();
        assert_eq!(model.config().solver, SolverKind::Ic0);
        let die = Rect::from_corner(0.0, 0.0, 18.0, 18.0);
        let first = model.solve(&[(die, 150.0)]).unwrap();
        let second = model.solve(&[(die, 300.0)]).unwrap();
        // A genuinely cold IC(0) solve of the same system for comparison.
        let (b, _) = model.rhs_for(&[(die, 300.0)]).unwrap();
        let cold = pcg_with(
            &model.net.matrix,
            &model.net.precond,
            &b,
            None,
            model.config.rel_tol,
            model.config.max_iter,
            &mut SolveScratch::new(),
        )
        .unwrap();
        // On this same-shape load the warm start is limited only by the
        // reference's own residual (REFERENCE_REL_TOL), so "well under"
        // means a ≥1.5× saving; real power maps are shape-limited and see
        // the same benefit they did with a fully-converged reference.
        assert!(
            3 * first.iterations() <= 2 * cold.iterations
                && 3 * second.iterations() <= 2 * cold.iterations,
            "reference warm start: {} and {} vs cold {}",
            first.iterations(),
            second.iterations(),
            cold.iterations
        );
        // Linearity sanity: the warm-started 300 W solve still doubles the
        // 150 W rise.
        let d1 = first.peak().value() - 45.0;
        let d2 = second.peak().value() - 45.0;
        assert!((d2 / d1 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn jacobi_and_ic0_paths_agree() {
        // The differential contract the verify gate enforces at scale:
        // both solver paths at the same (tight) tolerance produce the same
        // temperature field to well under a microkelvin.
        let die = Rect::from_corner(0.0, 0.0, 18.0, 18.0);
        let solve_with = |solver: SolverKind| {
            let model = PackageModel::new(
                &chip(),
                &ChipletLayout::SingleChip,
                &rules(),
                &StackSpec::baseline_2d(),
                ThermalConfig {
                    grid: 16,
                    rel_tol: 1e-12,
                    solver,
                    ..ThermalConfig::default()
                },
            )
            .unwrap();
            model.solve(&[(die, 180.0)]).unwrap()
        };
        let jac = solve_with(SolverKind::Jacobi);
        let ic0 = solve_with(SolverKind::Ic0);
        let max_dt = jac
            .raw_temps()
            .iter()
            .zip(ic0.raw_temps())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_dt < 1e-6, "max |dT| = {max_dt:.3e}");
        assert!(ic0.iterations() <= jac.iterations());
    }

    #[test]
    fn multigrid_path_agrees_with_ic0() {
        // Same differential contract as the Jacobi/IC(0) pair, for the
        // multigrid tier — including the lumped periphery nodes of the
        // full package raster (spreader/sink overhang at grid 16).
        let die = Rect::from_corner(0.0, 0.0, 18.0, 18.0);
        let solve_with = |solver: SolverKind| {
            let model = PackageModel::new(
                &chip(),
                &ChipletLayout::SingleChip,
                &rules(),
                &StackSpec::baseline_2d(),
                ThermalConfig {
                    grid: 16,
                    rel_tol: 1e-12,
                    solver,
                    ..ThermalConfig::default()
                },
            )
            .unwrap();
            let sol = model.solve(&[(die, 180.0)]).unwrap();
            let mg_built = model.mg_hierarchy().is_some();
            (sol, mg_built)
        };
        let (ic0, _) = solve_with(SolverKind::Ic0);
        let (mg, mg_built) = solve_with(SolverKind::Multigrid);
        assert!(mg_built, "package raster must build a hierarchy");
        let max_dt = ic0
            .raw_temps()
            .iter()
            .zip(mg.raw_temps())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_dt < 1e-6, "max |dT| = {max_dt:.3e}");
    }

    #[test]
    fn solver_kind_env_parsing() {
        assert_eq!(SolverKind::Ic0.name(), "ic0");
        assert_eq!(SolverKind::Jacobi.name(), "jacobi");
        assert_eq!(SolverKind::Multigrid.name(), "mg");
        assert_eq!(SolverKind::Auto.name(), "auto");
    }

    #[test]
    fn auto_solver_resolution() {
        // The crossover decision itself.
        assert_eq!(
            SolverKind::Auto.resolve(AUTO_MG_MIN_GRID),
            SolverKind::Multigrid
        );
        assert_eq!(
            SolverKind::Auto.resolve(AUTO_MG_MIN_GRID - 1),
            SolverKind::Ic0
        );
        // Concrete kinds are unaffected by the grid.
        assert_eq!(SolverKind::Ic0.resolve(256), SolverKind::Ic0);
        assert_eq!(SolverKind::Multigrid.resolve(8), SolverKind::Multigrid);
    }

    #[test]
    fn auto_solver_selects_both_branches() {
        // Below the crossover `auto` must run the IC(0) path — observable
        // because a multigrid dispatch that escalates would populate the
        // lazy hierarchy cell; at/above it the multigrid path, whose
        // cold tight solve outruns the escalation checkpoint and does.
        let die = Rect::from_corner(0.0, 0.0, 18.0, 18.0);
        let model_with_grid = |grid: usize| {
            PackageModel::new(
                &chip(),
                &ChipletLayout::SingleChip,
                &rules(),
                &StackSpec::baseline_2d(),
                ThermalConfig {
                    grid,
                    rel_tol: 1e-10,
                    solver: SolverKind::Auto,
                    ..ThermalConfig::default()
                },
            )
            .unwrap()
        };
        let small = model_with_grid(AUTO_MG_MIN_GRID / 2);
        assert_eq!(small.config.resolved_solver(), SolverKind::Ic0);
        small.solve(&[(die, 150.0)]).unwrap();
        assert!(
            small.solver_state.mg_precond.get().is_none(),
            "below the crossover auto must not touch the multigrid tier"
        );
        let large = model_with_grid(AUTO_MG_MIN_GRID);
        assert_eq!(large.config.resolved_solver(), SolverKind::Multigrid);
        large.solve(&[(die, 150.0)]).unwrap();
        assert!(
            matches!(
                large.solver_state.mg_precond.get(),
                Some(Some(Preconditioner::Multigrid(_)))
            ),
            "at the crossover a cold tight solve must escalate to the multigrid tier"
        );
    }

    #[test]
    fn rect_queries_consistent() {
        let model = single_chip_model();
        let die = Rect::from_corner(0.0, 0.0, 18.0, 18.0);
        let sol = model.solve(&[(die, 200.0)]).unwrap();
        let avg = sol.rect_avg(&die).value();
        let max = sol.rect_max(&die).value();
        assert!(max >= avg);
        assert!((max - sol.peak().value()).abs() < 1e-9);
    }

    #[test]
    fn pcg_matches_dense_reference_on_package_model() {
        // Full-package validation of the iterative solver: a 12×12-grid
        // 2.5D model solved both ways must agree to solver tolerance.
        let layout = ChipletLayout::Symmetric4 { s3: Mm(6.0) };
        let model = PackageModel::new(
            &chip(),
            &layout,
            &rules(),
            &StackSpec::system_25d(),
            ThermalConfig {
                grid: 12,
                rel_tol: 1e-11,
                ..ThermalConfig::default()
            },
        )
        .unwrap();
        let rects = layout.chiplet_rects(&chip(), &rules());
        let sources: Vec<_> = rects.iter().map(|r| (*r, 80.0)).collect();
        let iterative = model.solve(&sources).unwrap();
        let dense = model.solve_dense_reference(&sources).unwrap();
        let n = model.config().grid;
        for iy in 0..n {
            for ix in 0..n {
                let a = iterative.die_cell(ix, iy).value();
                let b = dense.die_cell(ix, iy).value();
                assert!((a - b).abs() < 1e-5, "cell ({ix},{iy}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn nonlinear_silicon_runs_hotter_than_linear() {
        // k_Si falls with temperature, so accounting for it must raise the
        // predicted peak for a hot die.
        let die = Rect::from_corner(0.0, 0.0, 18.0, 18.0);
        let linear = single_chip_model().solve(&[(die, 350.0)]).unwrap();
        let model_nl = PackageModel::new(
            &chip(),
            &ChipletLayout::SingleChip,
            &rules(),
            &StackSpec::baseline_2d(),
            ThermalConfig {
                silicon_k_exponent: 1.3,
                ..cfg()
            },
        )
        .unwrap();
        let (nl, outer) = model_nl
            .solve_nonlinear(&[(die, 350.0)], Celsius(0.05), 20)
            .unwrap();
        assert!(outer >= 2, "nonlinearity must iterate");
        assert!(
            nl.peak() > linear.peak(),
            "nonlinear {} vs linear {}",
            nl.peak(),
            linear.peak()
        );
        // The correction is a perturbation, not a blow-up.
        assert!(nl.peak().value() - linear.peak().value() < 15.0);
    }

    #[test]
    fn nonlinear_with_zero_exponent_is_linear() {
        let die = Rect::from_corner(0.0, 0.0, 18.0, 18.0);
        let m = single_chip_model();
        let (nl, outer) = m
            .solve_nonlinear(&[(die, 200.0)], Celsius(0.1), 10)
            .unwrap();
        assert_eq!(outer, 1);
        let lin = m.solve(&[(die, 200.0)]).unwrap();
        assert!((nl.peak().value() - lin.peak().value()).abs() < 1e-12);
    }

    #[test]
    fn stacked_3d_runs_hotter_than_2d_at_equal_power() {
        // The paper's Sec. I claim: 3D stacking exacerbates thermal issues.
        // Same footprint, same total power: splitting the power over two
        // stacked tiers must end hotter than one tier, because the bottom
        // tier's heat crosses the whole top tier to reach the sink.
        let total = 300.0;
        let die = Rect::from_corner(0.0, 0.0, 18.0, 18.0);
        let flat = single_chip_model().solve(&[(die, total)]).unwrap();
        let m3d = PackageModel::new(
            &chip(),
            &ChipletLayout::SingleChip,
            &rules(),
            &StackSpec::stacked_3d(),
            cfg(),
        )
        .unwrap();
        let top = [(die, total / 2.0)];
        let bottom = [(die, total / 2.0)];
        let stacked = m3d.solve_tiers(&[&top, &bottom]).unwrap();
        assert_eq!(stacked.tier_count(), 2);
        assert!(
            stacked.peak() > flat.peak(),
            "3D {} vs 2D {}",
            stacked.peak(),
            flat.peak()
        );
        // The bottom tier (far from the sink) is the hotter one.
        assert!(stacked.tier_peak(1) >= stacked.tier_peak(0));
        assert!(stacked.energy_balance_error() < 1e-6);
    }

    #[test]
    fn solve_tiers_rejects_too_many_tiers() {
        let m = single_chip_model();
        let die = Rect::from_corner(0.0, 0.0, 18.0, 18.0);
        let a = [(die, 10.0)];
        let b = [(die, 10.0)];
        let err = m.solve_tiers(&[&a, &b]).unwrap_err();
        assert!(matches!(err, ThermalError::InvalidPower { .. }), "{err}");
    }

    #[test]
    fn single_tier_solve_tiers_matches_solve() {
        let m = single_chip_model();
        let die = Rect::from_corner(0.0, 0.0, 18.0, 18.0);
        let s1 = m.solve(&[(die, 120.0)]).unwrap();
        let binding = [(die, 120.0)];
        let s2 = m.solve_tiers(&[&binding]).unwrap();
        assert!((s1.peak().value() - s2.peak().value()).abs() < 1e-9);
    }

    #[test]
    fn unit_responses_superpose_to_the_direct_solve() {
        // Linearity check behind the Green's-function surrogate: scaling
        // and adding per-chiplet unit responses reproduces the full solve.
        let layout = ChipletLayout::Symmetric4 { s3: Mm(5.0) };
        let model = PackageModel::new(
            &chip(),
            &layout,
            &rules(),
            &StackSpec::system_25d(),
            ThermalConfig {
                grid: 16,
                rel_tol: 1e-11,
                ..ThermalConfig::default()
            },
        )
        .unwrap();
        let watts = [70.0, 30.0, 55.0, 90.0];
        let rects = model.chiplet_rects().to_vec();
        let sources: Vec<_> = rects.iter().zip(watts).map(|(r, w)| (*r, w)).collect();
        let direct = model.solve(&sources).unwrap();
        let kernels: Vec<_> = (0..rects.len())
            .map(|i| model.unit_response(i).unwrap())
            .collect();
        let ambient = model.config().ambient.value();
        let n = model.config().grid;
        for iy in 0..n {
            for ix in 0..n {
                let superposed = ambient
                    + kernels
                        .iter()
                        .zip(watts)
                        .map(|(k, w)| w * (k.die_cell(ix, iy).value() - ambient))
                        .sum::<f64>();
                let exact = direct.die_cell(ix, iy).value();
                assert!(
                    (superposed - exact).abs() < 1e-4,
                    "cell ({ix},{iy}): {superposed} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn invalid_layout_is_reported() {
        let layout = ChipletLayout::Symmetric16 {
            spacing: Spacing::new(0.0, 5.0, 0.0),
        };
        let err = PackageModel::new(&chip(), &layout, &rules(), &StackSpec::system_25d(), cfg())
            .unwrap_err();
        assert!(matches!(err, ThermalError::Layout(_)));
    }

    #[test]
    fn new_like_matches_full_build_bitwise() {
        let stack = StackSpec::system_25d();
        let base_layout = ChipletLayout::Symmetric16 {
            spacing: Spacing::new(2.0, 2.0, 3.0),
        };
        let base = PackageModel::new(&chip(), &base_layout, &rules(), &stack, cfg()).unwrap();
        // An s2-only move keeps the interposer edge (4w + 2s1 + s3 + 2g),
        // so the incremental path applies: only cells under the moved
        // inner chiplets change material.
        let moved = ChipletLayout::Symmetric16 {
            spacing: Spacing::new(2.0, 3.5, 3.0),
        };
        let patched = PackageModel::new_like(&base, &moved).unwrap();
        let full = PackageModel::new(&chip(), &moved, &rules(), &stack, cfg()).unwrap();
        assert_eq!(patched.footprint.value(), full.footprint.value());
        assert_eq!(
            patched.net.matrix.values(),
            full.net.matrix.values(),
            "incremental model must be bitwise identical to a full build"
        );
        assert_eq!(patched.net.cap, full.net.cap);
        assert_eq!(patched.die_rects, full.die_rects);
    }

    #[test]
    fn new_like_falls_back_across_different_footprints() {
        let stack = StackSpec::system_25d();
        let base_layout = ChipletLayout::Symmetric16 {
            spacing: Spacing::new(2.0, 2.0, 3.0),
        };
        let base = PackageModel::new(&chip(), &base_layout, &rules(), &stack, cfg()).unwrap();
        // s1/s3 changes alter the interposer edge: the scaffold cannot be
        // reused and new_like must silently fall back to a full assembly.
        let wider = ChipletLayout::Symmetric16 {
            spacing: Spacing::new(3.0, 3.0, 4.0),
        };
        let patched = PackageModel::new_like(&base, &wider).unwrap();
        let full = PackageModel::new(&chip(), &wider, &rules(), &stack, cfg()).unwrap();
        assert_eq!(patched.footprint.value(), full.footprint.value());
        assert_eq!(patched.net.matrix.values(), full.net.matrix.values());
    }
}
