//! Transient thermal simulation (backward Euler over the RC network).
//!
//! The paper's evaluation is steady-state, but its related-work discussion
//! contrasts against *computational sprinting* — deliberately exceeding the
//! steady-state power budget for short bursts. Transient simulation makes
//! that comparison quantitative: a package with more thermal capacitance
//! and better spreading sustains a sprint longer before crossing the
//! threshold.
//!
//! Discretization: implicit (backward) Euler,
//! `(G + C/Δt)·T(t+Δt) = q + C/Δt·T(t) + G_amb·T_amb`. The iteration
//! matrix is SPD whenever the steady-state matrix is, so the same PCG
//! solver applies; each step warm-starts from the previous temperatures.

use crate::model::{PackageModel, ThermalError, ThermalSolution};
use crate::sparse::pcg;
use tac25d_floorplan::geometry::Rect;
use tac25d_floorplan::units::Celsius;

/// One recorded step of a transient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientSample {
    /// Simulation time, seconds.
    pub time_s: f64,
    /// Peak die temperature at this time.
    pub peak: Celsius,
}

/// The result of a transient simulation.
#[derive(Debug, Clone)]
pub struct TransientTrace {
    /// Peak-temperature samples, one per step (after the step).
    pub samples: Vec<TransientSample>,
    /// The full temperature field at the end of the run.
    pub final_solution: ThermalSolution,
}

impl TransientTrace {
    /// The first time the peak temperature reaches `threshold`, if it does
    /// (linear interpolation between steps).
    pub fn time_to_reach(&self, threshold: Celsius) -> Option<f64> {
        let mut prev: Option<&TransientSample> = None;
        for s in &self.samples {
            if s.peak >= threshold {
                return Some(match prev {
                    None => s.time_s,
                    Some(p) => {
                        let frac = (threshold.value() - p.peak.value())
                            / (s.peak.value() - p.peak.value()).max(1e-12);
                        p.time_s + frac * (s.time_s - p.time_s)
                    }
                });
            }
            prev = Some(s);
        }
        None
    }
}

impl PackageModel {
    /// Simulates the transient response to a (possibly time-varying) power
    /// map, starting from thermal equilibrium at ambient (or from
    /// `initial` if provided).
    ///
    /// `power_at(step_index, time_s, previous)` supplies the power sources
    /// for each step; `previous` is the temperature field at the start of
    /// the step (`None` on the first step when no initial state was given),
    /// which enables closed-loop controllers (thermal governors, DTM).
    /// `dt_s` is the step size and `steps` the step count.
    ///
    /// # Errors
    ///
    /// Propagates solver failures and invalid power maps, exactly like
    /// [`PackageModel::solve`].
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not strictly positive or `steps` is zero.
    pub fn simulate_transient<F>(
        &self,
        initial: Option<&ThermalSolution>,
        mut power_at: F,
        dt_s: f64,
        steps: usize,
    ) -> Result<TransientTrace, ThermalError>
    where
        F: FnMut(usize, f64, Option<&ThermalSolution>) -> Vec<(Rect, f64)>,
    {
        assert!(dt_s > 0.0, "time step must be positive, got {dt_s}");
        assert!(steps > 0, "need at least one step");
        let net = self.network();
        let n_nodes = net.nodes;
        let t_amb = self.config().ambient.value();

        // Iteration matrix A = G + C/dt (diagonal augmentation of the CSR).
        let a = net
            .matrix
            .with_added_diagonal(&net.cap.iter().map(|c| c / dt_s).collect::<Vec<_>>());

        let mut temps: Vec<f64> = match initial {
            Some(s) => {
                assert_eq!(s.raw_temps().len(), n_nodes, "initial state mismatch");
                s.raw_temps().to_vec()
            }
            None => vec![t_amb; n_nodes],
        };
        let mut samples = Vec::with_capacity(steps);
        let mut last: Option<ThermalSolution> =
            initial.map(|s| self.make_solution(s.raw_temps().to_vec(), 0.0, 0));
        for step in 0..steps {
            let time = (step + 1) as f64 * dt_s;
            let sources = power_at(step, step as f64 * dt_s, last.as_ref());
            let (mut b, total_power) = self.rhs_for(&sources)?;
            for i in 0..n_nodes {
                b[i] += net.cap[i] / dt_s * temps[i];
            }
            let sol = pcg(
                &a,
                &b,
                Some(&temps),
                self.config().rel_tol,
                self.config().max_iter,
            )?;
            temps = sol.x;
            let snapshot = self.make_solution(temps.clone(), total_power, sol.iterations);
            samples.push(TransientSample {
                time_s: time,
                peak: snapshot.peak(),
            });
            last = Some(snapshot);
        }
        Ok(TransientTrace {
            samples,
            final_solution: last.expect("steps > 0"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ThermalConfig;
    use tac25d_floorplan::chip::ChipSpec;
    use tac25d_floorplan::layers::StackSpec;
    use tac25d_floorplan::organization::{ChipletLayout, PackageRules};

    fn model() -> PackageModel {
        PackageModel::new(
            &ChipSpec::scc_256(),
            &ChipletLayout::SingleChip,
            &PackageRules::default(),
            &StackSpec::baseline_2d(),
            ThermalConfig {
                grid: 12,
                ..ThermalConfig::default()
            },
        )
        .unwrap()
    }

    fn die() -> Rect {
        Rect::from_corner(0.0, 0.0, 18.0, 18.0)
    }

    #[test]
    fn transient_approaches_steady_state() {
        let m = model();
        let steady = m.solve(&[(die(), 300.0)]).unwrap().peak().value();
        let trace = m
            .simulate_transient(None, |_, _, _| vec![(die(), 300.0)], 2.0, 400)
            .unwrap();
        let last = trace.samples.last().unwrap().peak.value();
        assert!(
            (last - steady).abs() < 0.5,
            "transient end {last} vs steady {steady}"
        );
    }

    #[test]
    fn step_response_field_converges_to_steady_state() {
        // Step response: not just the peak but the whole temperature field
        // must settle onto the steady-state solution, and the gap must
        // shrink monotonically at the thermal time scale.
        let m = model();
        let steady = m.solve(&[(die(), 250.0)]).unwrap();
        let trace = m
            .simulate_transient(None, |_, _, _| vec![(die(), 250.0)], 5.0, 300)
            .unwrap();
        let max_gap = trace
            .final_solution
            .raw_temps()
            .iter()
            .zip(steady.raw_temps())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_gap < 0.5, "field gap to steady state: {max_gap}");
        // The approach is monotone up to inner-solver noise: each sample's
        // distance to the steady peak is no larger than the previous one's.
        let target = steady.peak().value();
        for w in trace.samples.windows(2) {
            let d0 = (w[0].peak.value() - target).abs();
            let d1 = (w[1].peak.value() - target).abs();
            assert!(d1 <= d0 + 1e-5, "{d1} > {d0}");
        }
    }

    #[test]
    fn smaller_time_steps_stay_below_steady_state() {
        // Backward Euler under-shoots a heating step from below: with half
        // the step the trajectory is resolved finer but still bounded by
        // the steady-state peak.
        let m = model();
        let steady = m.solve(&[(die(), 250.0)]).unwrap().peak().value();
        let coarse = m
            .simulate_transient(None, |_, _, _| vec![(die(), 250.0)], 2.0, 20)
            .unwrap();
        let fine = m
            .simulate_transient(None, |_, _, _| vec![(die(), 250.0)], 1.0, 40)
            .unwrap();
        for s in coarse.samples.iter().chain(&fine.samples) {
            assert!(
                s.peak.value() <= steady + 1e-6,
                "{} > {steady}",
                s.peak.value()
            );
        }
        // Same physical time, finer resolution: the end states agree to
        // the discretization error.
        let end_gap = (coarse.samples.last().unwrap().peak.value()
            - fine.samples.last().unwrap().peak.value())
        .abs();
        assert!(end_gap < 1.0, "dt-refinement gap {end_gap}");
    }

    #[test]
    fn temperature_rises_monotonically_under_constant_power() {
        let m = model();
        let trace = m
            .simulate_transient(None, |_, _, _| vec![(die(), 200.0)], 0.5, 50)
            .unwrap();
        for w in trace.samples.windows(2) {
            assert!(w[1].peak >= w[0].peak, "{:?}", w);
        }
        // And starts near ambient.
        assert!(trace.samples[0].peak.value() < 60.0);
    }

    #[test]
    fn cooling_after_power_off() {
        let m = model();
        let hot = m.solve(&[(die(), 300.0)]).unwrap();
        let trace = m
            .simulate_transient(Some(&hot), |_, _, _| vec![], 1.0, 100)
            .unwrap();
        let last = trace.samples.last().unwrap().peak.value();
        assert!(last < hot.peak().value() - 10.0, "cooled to {last}");
        for w in trace.samples.windows(2) {
            assert!(w[1].peak <= w[0].peak);
        }
    }

    #[test]
    fn time_to_reach_interpolates() {
        let m = model();
        let trace = m
            .simulate_transient(None, |_, _, _| vec![(die(), 500.0)], 0.5, 200)
            .unwrap();
        let t85 = trace
            .time_to_reach(Celsius(85.0))
            .expect("500 W must cross 85°C");
        assert!(t85 > 0.0);
        // Hotter sprint crosses sooner.
        let trace2 = m
            .simulate_transient(None, |_, _, _| vec![(die(), 800.0)], 0.5, 200)
            .unwrap();
        let t85_hot = trace2.time_to_reach(Celsius(85.0)).unwrap();
        assert!(t85_hot < t85, "{t85_hot} vs {t85}");
    }

    #[test]
    fn never_reaching_threshold_returns_none() {
        let m = model();
        let trace = m
            .simulate_transient(None, |_, _, _| vec![(die(), 50.0)], 1.0, 20)
            .unwrap();
        assert_eq!(trace.time_to_reach(Celsius(150.0)), None);
    }

    #[test]
    fn time_varying_power_tracks_bursts() {
        let m = model();
        // 10 steps on, 10 steps off.
        let trace = m
            .simulate_transient(
                None,
                |step, _, _| {
                    if step < 10 {
                        vec![(die(), 400.0)]
                    } else {
                        vec![]
                    }
                },
                1.0,
                20,
            )
            .unwrap();
        let peak_on = trace.samples[9].peak.value();
        let peak_end = trace.samples[19].peak.value();
        assert!(
            peak_on > peak_end,
            "burst peak {peak_on} then cools to {peak_end}"
        );
    }
}
