//! The temperature–leakage fixed-point loop.
//!
//! The paper implements a temperature-dependent leakage model and "re-run[s]
//! HotSpot to update the thermal profile until the temperature converges"
//! (Sec. IV). This module provides that outer loop generically: the caller
//! supplies a closure that maps the latest thermal solution to an updated
//! power map (dynamic power + temperature-dependent leakage per core), and
//! the loop iterates to a fixed point or detects thermal runaway.
//!
//! Two strategies drive the iteration:
//!
//! * [`CoupledStrategy::Picard`] — the plain successive-substitution loop,
//!   every inner solve at the model's full PCG tolerance. Byte-for-byte the
//!   pre-acceleration behavior; kept for differential verification and as
//!   an escape hatch (`TAC25D_FIXEDPOINT=picard`).
//! * [`CoupledStrategy::Anderson`] (the default) — an inexact outer loop
//!   with Eisenstat–Walker-style adaptive forcing terms plus safeguarded
//!   depth-2 Anderson mixing. Early iterations solve PCG only to a loose
//!   relative tolerance `η_k` (the outer residual is still far from
//!   converged, so extra inner digits are wasted work); `η` tightens
//!   geometrically with the observed contraction,
//!   `η_{k+1} = 0.9·(Δ_k/Δ_{k-1})²`, and is forced to the confirmation
//!   tolerance `tol·1e-4` once `Δ_k ≤ 10·tol`. Convergence is declared on
//!   a confirmation-tolerance solve — whose inexact-solve noise is a
//!   percent of `tol` — and the accepted field is then *polished* by one
//!   warm full-tolerance solve of the same power map, so the returned
//!   field is always a full-accuracy solve and the adaptive path lands on
//!   the same fixed point as the fixed-tolerance path (gated by `verify
//!   fixedpoint`). Anderson mixing
//!   (window 2: one secant pair) extrapolates through the contraction and
//!   typically removes one to two outer iterations; a monotone-residual
//!   safeguard falls back to the plain Picard step whenever the residual
//!   grew, so non-contractive maps cannot be destabilized.

use crate::model::{PackageModel, ThermalError, ThermalSolution};
use crate::sparse::SolveScratch;
use tac25d_floorplan::geometry::Rect;
use tac25d_floorplan::units::Celsius;
use tac25d_obs as obs;

/// Loosest PCG relative tolerance the adaptive forcing schedule may use
/// inside the loop. The inexact-solve error this admits (~0.1 °C of field
/// error on production systems) must stay below the endgame trigger
/// (`ENDGAME_FACTOR·tol`, 0.5 °C in production), or residual measurements
/// near the trigger turn to noise and the loop spends extra outer rounds;
/// measured at 3e-4 the added noise already cost ~15% more outer
/// iterations, while 1e-4 matches the fixed-tolerance path's outer count.
const ETA_LOOSE: f64 = 1e-4;

/// Forcing term for the very first solve of the loop. The cold-start
/// residual dwarfs any inexact-solve noise, so the opening solve can run
/// an order looser than the in-loop floor without touching the outer
/// convergence measurements that follow.
const ETA_FIRST: f64 = 1e-3;

/// Eisenstat–Walker (choice 2) safety factor on the squared contraction
/// ratio.
const EW_GAMMA: f64 = 0.9;

/// Once the outer residual is within this factor of the tolerance, every
/// remaining solve runs at the confirmation tolerance: the next iterate is
/// a convergence candidate, so its inner-solve slack must be small against
/// `tol` (see [`CONFIRM_ETA_PER_TOL`]).
const ENDGAME_FACTOR: f64 = 10.0;

/// Confirmation forcing term as a fraction of the outer tolerance:
/// convergence candidates solve to `η = tol·1e-4`, which keeps the
/// inexact-solve noise in the candidate's outer residual around a percent
/// of `tol` (measured ~1 °C of field error per 1e-3 of relative residual
/// on production systems). Declaring convergence at this tolerance and
/// then *polishing* the accepted field with one warm full-tolerance solve
/// is far cheaper than running every endgame solve at full tolerance —
/// the polish starts microdegrees from its answer.
const CONFIRM_ETA_PER_TOL: f64 = 1e-4;

/// Clamp on the Anderson mixing coefficient. Contractive maps produce
/// γ = q/(q−1) ∈ (−1, 0); the clamp keeps a noisy secant from
/// extrapolating wildly while still allowing useful acceleration.
const ANDERSON_CLAMP: f64 = 2.0;

/// How the coupled loop iterates to its fixed point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoupledStrategy {
    /// Plain successive substitution at full inner tolerance (the legacy
    /// path).
    Picard,
    /// Adaptive-tolerance inner solves + safeguarded Anderson mixing (the
    /// default).
    Anderson,
}

impl CoupledStrategy {
    /// The strategy selected by the `TAC25D_FIXEDPOINT` environment
    /// variable: `picard` (case-insensitive) forces the legacy loop,
    /// anything else — including unset — selects the accelerated path.
    /// Read per call (not cached) so verification harnesses can compare
    /// both paths in one process.
    pub fn from_env() -> Self {
        match std::env::var("TAC25D_FIXEDPOINT") {
            Ok(v) if v.eq_ignore_ascii_case("picard") => CoupledStrategy::Picard,
            _ => CoupledStrategy::Anderson,
        }
    }

    /// Stable lowercase name (`picard` / `anderson`) for reports.
    pub fn name(&self) -> &'static str {
        match self {
            CoupledStrategy::Picard => "picard",
            CoupledStrategy::Anderson => "anderson",
        }
    }
}

/// Options for the coupled solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoupledOptions {
    /// Convergence threshold on the maximum per-node temperature change.
    pub tol: Celsius,
    /// Maximum outer iterations.
    pub max_iter: usize,
    /// Peak temperature above which the loop aborts with
    /// [`ThermalError::Runaway`] (a diverging leakage feedback loop).
    pub runaway: Celsius,
    /// Iteration strategy (defaults to [`CoupledStrategy::from_env`]).
    pub strategy: CoupledStrategy,
    /// Wall-clock instant after which the outer loop aborts with
    /// [`ThermalError::DeadlineExpired`] instead of starting another
    /// iteration. `None` (the default) never aborts. The check sits
    /// *between* outer iterations — an in-flight inner solve always
    /// completes — so the abort leaves no half-updated state and the
    /// iteration count it reports is exact.
    pub deadline: Option<std::time::Instant>,
}

impl Default for CoupledOptions {
    fn default() -> Self {
        CoupledOptions {
            tol: Celsius(0.05),
            max_iter: 60,
            runaway: Celsius(400.0),
            strategy: CoupledStrategy::from_env(),
            deadline: None,
        }
    }
}

/// Whether the options' deadline has passed. Reads the clock only when a
/// deadline is set, so deadline-free callers (every batch driver) pay
/// nothing.
fn deadline_expired(opts: &CoupledOptions) -> bool {
    opts.deadline
        .is_some_and(|d| std::time::Instant::now() >= d)
}

/// Result of a converged (or stagnated) coupled solve.
#[derive(Debug, Clone)]
pub struct CoupledSolution {
    /// The final thermal solution.
    pub solution: ThermalSolution,
    /// Outer (power-update) iterations performed.
    pub outer_iterations: usize,
    /// Total inner PCG iterations across every solve of the loop — the
    /// quantity the adaptive forcing schedule economizes (`verify
    /// fixedpoint` gates the adaptive path on spending no more of these
    /// than the fixed-tolerance path).
    pub inner_iterations: usize,
    /// Whether the temperature change dropped below tolerance.
    pub converged: bool,
}

/// Iterates `power(T) → solve → power(T) → …` to a fixed point.
///
/// `power_map` receives `None` on the first call (use nominal/initial
/// temperatures) and the latest [`ThermalSolution`] afterwards; it returns
/// the rectangular power sources for the next solve.
///
/// # Errors
///
/// * [`ThermalError::Runaway`] if the peak temperature exceeds
///   `opts.runaway` — with a positive-feedback leakage model this is
///   genuine thermal runaway and the organization is infeasible;
/// * any solver/power error from the inner solves.
pub fn solve_coupled<F>(
    model: &PackageModel,
    power_map: F,
    opts: &CoupledOptions,
) -> Result<CoupledSolution, ThermalError>
where
    F: FnMut(Option<&ThermalSolution>) -> Vec<(Rect, f64)>,
{
    let _span = obs::span!("thermal.leakage_fixed_point");
    obs::counter!("thermal.coupled_solves").inc();
    let result = match opts.strategy {
        CoupledStrategy::Picard => solve_coupled_picard(model, power_map, opts),
        CoupledStrategy::Anderson => solve_coupled_anderson(model, power_map, opts),
    };
    if let Ok(c) = &result {
        obs::counter!("thermal.leakage_outer_iterations").add(c.outer_iterations as u64);
        obs::histogram!("thermal.leakage_outer_iterations_per_solve")
            .record(c.outer_iterations as u64);
    }
    result
}

fn solve_coupled_picard<F>(
    model: &PackageModel,
    mut power_map: F,
    opts: &CoupledOptions,
) -> Result<CoupledSolution, ThermalError>
where
    F: FnMut(Option<&ThermalSolution>) -> Vec<(Rect, f64)>,
{
    assert!(opts.max_iter > 0, "max_iter must be positive");
    if deadline_expired(opts) {
        obs::counter!("thermal.deadline_aborts").inc();
        return Err(ThermalError::DeadlineExpired {
            outer_iterations: 0,
        });
    }
    // One scratch for the whole fixed point: every inner solve reuses the
    // same PCG work vectors, and each iteration warm-starts from the
    // previous temperature field.
    let mut scratch = SolveScratch::new();
    let sources = power_map(None);
    let mut current = model.solve_with_scratch(&sources, None, &mut scratch)?;
    let mut inner = current.iterations();
    for it in 1..=opts.max_iter {
        if deadline_expired(opts) {
            obs::counter!("thermal.deadline_aborts").inc();
            return Err(ThermalError::DeadlineExpired {
                outer_iterations: it - 1,
            });
        }
        if current.peak() > opts.runaway {
            return Err(ThermalError::Runaway {
                peak: current.peak(),
            });
        }
        let sources = power_map(Some(&current));
        let next = model.solve_with_scratch(&sources, Some(&current), &mut scratch)?;
        inner += next.iterations();
        let delta = max_abs_delta(current.raw_temps(), next.raw_temps());
        current = next;
        if delta <= opts.tol.value() {
            return Ok(CoupledSolution {
                solution: current,
                outer_iterations: it,
                inner_iterations: inner,
                converged: true,
            });
        }
    }
    if current.peak() > opts.runaway {
        return Err(ThermalError::Runaway {
            peak: current.peak(),
        });
    }
    Ok(CoupledSolution {
        solution: current,
        outer_iterations: opts.max_iter,
        inner_iterations: inner,
        converged: false,
    })
}

/// The accelerated loop: inexact inner solves with Eisenstat–Walker
/// forcing terms and safeguarded Anderson(window 2) mixing. Converges to
/// the same fixed point as the Picard loop (the convergence candidate is
/// always a full-tolerance solve); `verify fixedpoint` enforces the
/// equivalence.
fn solve_coupled_anderson<F>(
    model: &PackageModel,
    mut power_map: F,
    opts: &CoupledOptions,
) -> Result<CoupledSolution, ThermalError>
where
    F: FnMut(Option<&ThermalSolution>) -> Vec<(Rect, f64)>,
{
    assert!(opts.max_iter > 0, "max_iter must be positive");
    if deadline_expired(opts) {
        obs::counter!("thermal.deadline_aborts").inc();
        return Err(ThermalError::DeadlineExpired {
            outer_iterations: 0,
        });
    }
    let full_tol = model.config().rel_tol;
    let eta_max = ETA_LOOSE.max(full_tol);
    let eta_conv = (opts.tol.value() * CONFIRM_ETA_PER_TOL).clamp(full_tol, eta_max);
    let mut eta = eta_max;
    let mut scratch = SolveScratch::new();
    let sources = power_map(None);
    // `x` is the current outer iterate (possibly an Anderson-mixed field);
    // each round solves g = G(x) and measures the residual f = g − x.
    let mut x =
        model.solve_with_scratch_tol(&sources, None, &mut scratch, ETA_FIRST.max(full_tol))?;
    let mut inner = x.iterations();
    let mut prev_delta = f64::INFINITY;
    // One secant pair of history: (f_{k-1}, g_{k-1}).
    let mut history: Option<(Vec<f64>, Vec<f64>)> = None;
    for it in 1..=opts.max_iter {
        if deadline_expired(opts) {
            obs::counter!("thermal.deadline_aborts").inc();
            return Err(ThermalError::DeadlineExpired {
                outer_iterations: it - 1,
            });
        }
        if x.peak() > opts.runaway {
            return Err(ThermalError::Runaway { peak: x.peak() });
        }
        let sources = power_map(Some(&x));
        let g = model.solve_with_scratch_tol(&sources, Some(&x), &mut scratch, eta)?;
        inner += g.iterations();
        let f: Vec<f64> = g
            .raw_temps()
            .iter()
            .zip(x.raw_temps())
            .map(|(gi, xi)| gi - xi)
            .collect();
        let delta = f.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if delta <= opts.tol.value() && eta <= eta_conv {
            // Accepted: polish the candidate to the full tolerance. The
            // solve repeats `g`'s own linear system (same power map), so
            // it starts within the confirmation slack of its answer and
            // the returned field is a full-accuracy solve — the same
            // contract a full-tolerance candidate would have carried, at
            // a fraction of the endgame cost.
            let solution = if eta <= full_tol {
                g
            } else {
                let polished =
                    model.solve_with_scratch_tol(&sources, Some(&g), &mut scratch, full_tol)?;
                inner += polished.iterations();
                polished
            };
            return Ok(CoupledSolution {
                solution,
                outer_iterations: it,
                inner_iterations: inner,
                converged: true,
            });
        }
        // Eisenstat–Walker choice 2: match the inner tolerance to the
        // observed outer contraction, then force the confirmation
        // tolerance in the endgame so a convergence candidate's residual
        // measurement carries only a small fraction of `tol` in noise.
        eta = if prev_delta.is_finite() && prev_delta > 0.0 && delta > 0.0 {
            (EW_GAMMA * (delta / prev_delta).powi(2)).clamp(full_tol, eta_max)
        } else {
            eta_max
        };
        if delta <= ENDGAME_FACTOR * opts.tol.value() {
            eta = eta_conv;
        }
        // Safeguarded Anderson(window 2) step: mix through the secant only
        // while the residual is shrinking; otherwise take the plain Picard
        // step (and let the fresh history rebuild the secant).
        let mut next = None;
        if delta <= prev_delta {
            if let Some((f_prev, g_prev)) = &history {
                let mut num = 0.0;
                let mut den = 0.0;
                for (fi, fpi) in f.iter().zip(f_prev) {
                    let d = fi - fpi;
                    num += fi * d;
                    den += d * d;
                }
                if den > 0.0 && num.is_finite() {
                    let gamma = (num / den).clamp(-ANDERSON_CLAMP, ANDERSON_CLAMP);
                    let mixed: Vec<f64> = g
                        .raw_temps()
                        .iter()
                        .zip(g_prev)
                        .map(|(gi, gpi)| gi - gamma * (gi - gpi))
                        .collect();
                    obs::counter!("thermal.anderson_accepted").inc();
                    next = Some(model.make_solution(mixed, g.total_power(), 0));
                }
            }
        }
        history = Some((f, g.raw_temps().to_vec()));
        prev_delta = delta;
        x = next.unwrap_or(g);
    }
    if x.peak() > opts.runaway {
        return Err(ThermalError::Runaway { peak: x.peak() });
    }
    Ok(CoupledSolution {
        solution: x,
        outer_iterations: opts.max_iter,
        inner_iterations: inner,
        converged: false,
    })
}

fn max_abs_delta(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PackageModel, ThermalConfig};
    use tac25d_floorplan::chip::ChipSpec;
    use tac25d_floorplan::layers::StackSpec;
    use tac25d_floorplan::organization::{ChipletLayout, PackageRules};

    fn model() -> PackageModel {
        PackageModel::new(
            &ChipSpec::scc_256(),
            &ChipletLayout::SingleChip,
            &PackageRules::default(),
            &StackSpec::baseline_2d(),
            ThermalConfig {
                grid: 16,
                ..ThermalConfig::default()
            },
        )
        .unwrap()
    }

    fn die() -> Rect {
        Rect::from_corner(0.0, 0.0, 18.0, 18.0)
    }

    fn picard_opts() -> CoupledOptions {
        CoupledOptions {
            strategy: CoupledStrategy::Picard,
            ..CoupledOptions::default()
        }
    }

    #[test]
    fn constant_power_converges_immediately() {
        // Pinned to Picard: with temperature-independent power the very
        // first re-solve reproduces the field exactly. (The adaptive path
        // needs one more outer iteration to confirm at full tolerance; see
        // constant_power_converges_quickly_with_anderson.)
        let m = model();
        let r = solve_coupled(&m, |_| vec![(die(), 100.0)], &picard_opts()).unwrap();
        assert!(r.converged);
        assert_eq!(r.outer_iterations, 1);
    }

    #[test]
    fn constant_power_converges_quickly_with_anderson() {
        let m = model();
        let opts = CoupledOptions {
            strategy: CoupledStrategy::Anderson,
            ..CoupledOptions::default()
        };
        let r = solve_coupled(&m, |_| vec![(die(), 100.0)], &opts).unwrap();
        assert!(r.converged);
        assert!(r.outer_iterations <= 3, "{}", r.outer_iterations);
        // And the returned field is the full-tolerance solve, matching the
        // Picard path on the same (temperature-independent) system.
        let picard = solve_coupled(&m, |_| vec![(die(), 100.0)], &picard_opts()).unwrap();
        let max_dt = max_abs_delta(r.solution.raw_temps(), picard.solution.raw_temps());
        assert!(max_dt < 1e-5, "max |dT| = {max_dt:.3e}");
    }

    #[test]
    fn leaky_power_converges_to_higher_temperature() {
        let m = model();
        let base = 150.0;
        // 1%/°C leakage growth above 45 °C — a contractive feedback.
        let coupled = solve_coupled(
            &m,
            |sol| {
                let t = sol.map_or(45.0, |s| s.rect_avg(&die()).value());
                vec![(die(), base * (1.0 + 0.01 * (t - 45.0)))]
            },
            &CoupledOptions::default(),
        )
        .unwrap();
        assert!(coupled.converged);
        assert!(coupled.outer_iterations >= 2);
        let flat = m.solve(&[(die(), base)]).unwrap();
        assert!(coupled.solution.peak() > flat.peak());
    }

    #[test]
    fn contractive_leakage_converges_monotonically() {
        // With a contractive positive feedback started from the cold state,
        // the fixed-point iterates approach the limit from below: each
        // observed die temperature is at least the previous one, and the
        // inter-iterate steps shrink geometrically. Pinned to Picard —
        // monotone approach from below is a successive-substitution
        // property; Anderson's secant extrapolation deliberately jumps
        // ahead of it.
        let m = model();
        let mut observed: Vec<f64> = Vec::new();
        let r = solve_coupled(
            &m,
            |sol| {
                let t = sol.map_or(45.0, |s| s.rect_avg(&die()).value());
                observed.push(t);
                vec![(die(), 180.0 * (1.0 + 0.012 * (t - 45.0)))]
            },
            &CoupledOptions {
                tol: Celsius(0.001),
                ..picard_opts()
            },
        )
        .unwrap();
        assert!(r.converged);
        assert!(observed.len() >= 4, "too few iterates: {observed:?}");
        for w in observed.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "non-monotone iterates: {observed:?}");
        }
        let steps: Vec<f64> = observed.windows(2).map(|w| w[1] - w[0]).collect();
        for w in steps.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "steps must contract: {steps:?}");
        }
        // And the limit is a genuine fixed point: re-solving with the
        // converged temperature's power map reproduces the solution.
        let t_final = r.solution.rect_avg(&die()).value();
        let re = m
            .solve(&[(die(), 180.0 * (1.0 + 0.012 * (t_final - 45.0)))])
            .unwrap();
        assert!((re.peak().value() - r.solution.peak().value()).abs() < 0.05);
    }

    #[test]
    fn anderson_matches_picard_fixed_point() {
        // The tentpole contract, in miniature: at a tight outer tolerance
        // both strategies land on the same fixed point (the adaptive path
        // always returns a full-tolerance solve), and Anderson does not
        // spend more outer iterations than Picard.
        let m = PackageModel::new(
            &ChipSpec::scc_256(),
            &ChipletLayout::SingleChip,
            &PackageRules::default(),
            &StackSpec::baseline_2d(),
            ThermalConfig {
                grid: 16,
                rel_tol: 1e-11,
                ..ThermalConfig::default()
            },
        )
        .unwrap();
        let run = |strategy: CoupledStrategy| {
            solve_coupled(
                &m,
                |sol| {
                    let t = sol.map_or(45.0, |s| s.rect_avg(&die()).value());
                    vec![(die(), 180.0 * (1.0 + 0.012 * (t - 45.0)))]
                },
                &CoupledOptions {
                    tol: Celsius(1e-6),
                    strategy,
                    ..CoupledOptions::default()
                },
            )
            .unwrap()
        };
        let picard = run(CoupledStrategy::Picard);
        let anderson = run(CoupledStrategy::Anderson);
        assert!(picard.converged && anderson.converged);
        assert!(
            anderson.outer_iterations <= picard.outer_iterations,
            "anderson {} vs picard {}",
            anderson.outer_iterations,
            picard.outer_iterations
        );
        let max_dt = max_abs_delta(anderson.solution.raw_temps(), picard.solution.raw_temps());
        assert!(
            max_dt < 1e-6,
            "fixed points diverge: max |dT| = {max_dt:.3e}"
        );
    }

    #[test]
    fn tighter_tolerance_needs_more_iterations() {
        let m = model();
        let run = |tol: f64| {
            solve_coupled(
                &m,
                |sol| {
                    let t = sol.map_or(45.0, |s| s.rect_avg(&die()).value());
                    vec![(die(), 180.0 * (1.0 + 0.012 * (t - 45.0)))]
                },
                &CoupledOptions {
                    tol: Celsius(tol),
                    ..CoupledOptions::default()
                },
            )
            .unwrap()
        };
        let loose = run(0.5);
        let tight = run(0.0005);
        assert!(loose.converged && tight.converged);
        assert!(
            tight.outer_iterations >= loose.outer_iterations,
            "{} < {}",
            tight.outer_iterations,
            loose.outer_iterations
        );
        // Both bracket the same fixed point.
        assert!((tight.solution.peak().value() - loose.solution.peak().value()).abs() < 1.0);
    }

    #[test]
    fn runaway_detected() {
        let m = model();
        // Absurd 40%/°C feedback: guaranteed divergence.
        let err = solve_coupled(
            &m,
            |sol| {
                let t = sol.map_or(45.0, |s| s.rect_avg(&die()).value());
                vec![(die(), 200.0 * (1.0 + 0.4 * (t - 45.0)))]
            },
            &CoupledOptions {
                max_iter: 100,
                ..CoupledOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, ThermalError::Runaway { .. }), "{err}");
    }

    #[test]
    fn warm_started_fixed_point_matches_cold_jacobi_path() {
        // The fast path (IC(0), scratch reuse, reference warm starts) and
        // the legacy cold Jacobi path must converge to the same leakage
        // fixed point; at a tight solver tolerance the fields agree to
        // well under a microkelvin. Pinned to Picard so only the solver
        // kind varies: the adaptive strategy's loose intermediate solves
        // are solver-path-dependent (each PCG stops anywhere inside its
        // η-ball), so its outer trajectory is not comparable across kinds.
        use crate::model::SolverKind;
        let build = |solver: SolverKind| {
            PackageModel::new(
                &ChipSpec::scc_256(),
                &ChipletLayout::SingleChip,
                &PackageRules::default(),
                &StackSpec::baseline_2d(),
                ThermalConfig {
                    grid: 16,
                    rel_tol: 1e-12,
                    solver,
                    ..ThermalConfig::default()
                },
            )
            .unwrap()
        };
        let run = |m: &PackageModel| {
            solve_coupled(
                m,
                |sol| {
                    let t = sol.map_or(45.0, |s| s.rect_avg(&die()).value());
                    vec![(die(), 160.0 * (1.0 + 0.012 * (t - 45.0)))]
                },
                &CoupledOptions {
                    tol: Celsius(0.001),
                    ..picard_opts()
                },
            )
            .unwrap()
        };
        let warm = run(&build(SolverKind::Ic0));
        let cold = run(&build(SolverKind::Jacobi));
        assert!(warm.converged && cold.converged);
        assert_eq!(warm.outer_iterations, cold.outer_iterations);
        let max_dt = warm
            .solution
            .raw_temps()
            .iter()
            .zip(cold.solution.raw_temps())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_dt < 1e-6,
            "fixed points diverge: max |dT| = {max_dt:.3e}"
        );
    }

    #[test]
    fn non_convergence_reported_without_error() {
        let m = model();
        let mut flip = false;
        // Oscillating power: never converges, but stays bounded — the
        // Anderson safeguard must not let the secant destabilize it.
        let r = solve_coupled(
            &m,
            |_| {
                flip = !flip;
                vec![(die(), if flip { 100.0 } else { 140.0 })]
            },
            &CoupledOptions {
                max_iter: 5,
                ..CoupledOptions::default()
            },
        )
        .unwrap();
        assert!(!r.converged);
        assert_eq!(r.outer_iterations, 5);
        assert!(r.solution.peak().value().is_finite());
    }

    #[test]
    fn strategy_env_parsing() {
        assert_eq!(CoupledStrategy::Picard.name(), "picard");
        assert_eq!(CoupledStrategy::Anderson.name(), "anderson");
    }

    #[test]
    fn expired_deadline_aborts_before_any_solve() {
        let m = model();
        for strategy in [CoupledStrategy::Picard, CoupledStrategy::Anderson] {
            let mut calls = 0usize;
            let err = solve_coupled(
                &m,
                |_| {
                    calls += 1;
                    vec![(die(), 100.0)]
                },
                &CoupledOptions {
                    deadline: Some(std::time::Instant::now() - std::time::Duration::from_secs(1)),
                    strategy,
                    ..CoupledOptions::default()
                },
            )
            .unwrap_err();
            assert!(
                matches!(
                    err,
                    ThermalError::DeadlineExpired {
                        outer_iterations: 0
                    }
                ),
                "{err}"
            );
            assert_eq!(
                calls, 0,
                "no power map evaluation after an expired deadline"
            );
        }
    }

    #[test]
    fn generous_deadline_does_not_perturb_the_solve() {
        let m = model();
        let map = |sol: Option<&ThermalSolution>| {
            let t = sol.map_or(45.0, |s| s.rect_avg(&die()).value());
            vec![(die(), 150.0 * (1.0 + 0.01 * (t - 45.0)))]
        };
        let plain = solve_coupled(&m, map, &picard_opts()).unwrap();
        let with_deadline = solve_coupled(
            &m,
            map,
            &CoupledOptions {
                deadline: Some(std::time::Instant::now() + std::time::Duration::from_secs(3600)),
                ..picard_opts()
            },
        )
        .unwrap();
        assert!(plain.converged && with_deadline.converged);
        assert_eq!(plain.outer_iterations, with_deadline.outer_iterations);
        let max_dt = max_abs_delta(
            plain.solution.raw_temps(),
            with_deadline.solution.raw_temps(),
        );
        assert_eq!(max_dt, 0.0, "deadline must not change the arithmetic");
    }
}
