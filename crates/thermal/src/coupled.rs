//! The temperature–leakage fixed-point loop.
//!
//! The paper implements a temperature-dependent leakage model and "re-run[s]
//! HotSpot to update the thermal profile until the temperature converges"
//! (Sec. IV). This module provides that outer loop generically: the caller
//! supplies a closure that maps the latest thermal solution to an updated
//! power map (dynamic power + temperature-dependent leakage per core), and
//! the loop iterates to a fixed point or detects thermal runaway.

use crate::model::{PackageModel, ThermalError, ThermalSolution};
use crate::sparse::SolveScratch;
use tac25d_floorplan::geometry::Rect;
use tac25d_floorplan::units::Celsius;
use tac25d_obs as obs;

/// Options for the coupled solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoupledOptions {
    /// Convergence threshold on the maximum per-node temperature change.
    pub tol: Celsius,
    /// Maximum outer iterations.
    pub max_iter: usize,
    /// Peak temperature above which the loop aborts with
    /// [`ThermalError::Runaway`] (a diverging leakage feedback loop).
    pub runaway: Celsius,
}

impl Default for CoupledOptions {
    fn default() -> Self {
        CoupledOptions {
            tol: Celsius(0.05),
            max_iter: 60,
            runaway: Celsius(400.0),
        }
    }
}

/// Result of a converged (or stagnated) coupled solve.
#[derive(Debug, Clone)]
pub struct CoupledSolution {
    /// The final thermal solution.
    pub solution: ThermalSolution,
    /// Outer (power-update) iterations performed.
    pub outer_iterations: usize,
    /// Whether the temperature change dropped below tolerance.
    pub converged: bool,
}

/// Iterates `power(T) → solve → power(T) → …` to a fixed point.
///
/// `power_map` receives `None` on the first call (use nominal/initial
/// temperatures) and the latest [`ThermalSolution`] afterwards; it returns
/// the rectangular power sources for the next solve.
///
/// # Errors
///
/// * [`ThermalError::Runaway`] if the peak temperature exceeds
///   `opts.runaway` — with a positive-feedback leakage model this is
///   genuine thermal runaway and the organization is infeasible;
/// * any solver/power error from the inner solves.
pub fn solve_coupled<F>(
    model: &PackageModel,
    power_map: F,
    opts: &CoupledOptions,
) -> Result<CoupledSolution, ThermalError>
where
    F: FnMut(Option<&ThermalSolution>) -> Vec<(Rect, f64)>,
{
    let _span = obs::span!("thermal.leakage_fixed_point");
    obs::counter!("thermal.coupled_solves").inc();
    let result = solve_coupled_inner(model, power_map, opts);
    if let Ok(c) = &result {
        obs::counter!("thermal.leakage_outer_iterations").add(c.outer_iterations as u64);
        obs::histogram!("thermal.leakage_outer_iterations_per_solve")
            .record(c.outer_iterations as u64);
    }
    result
}

fn solve_coupled_inner<F>(
    model: &PackageModel,
    mut power_map: F,
    opts: &CoupledOptions,
) -> Result<CoupledSolution, ThermalError>
where
    F: FnMut(Option<&ThermalSolution>) -> Vec<(Rect, f64)>,
{
    assert!(opts.max_iter > 0, "max_iter must be positive");
    // One scratch for the whole fixed point: every inner solve reuses the
    // same PCG work vectors, and each iteration warm-starts from the
    // previous temperature field.
    let mut scratch = SolveScratch::new();
    let sources = power_map(None);
    let mut current = model.solve_with_scratch(&sources, None, &mut scratch)?;
    for it in 1..=opts.max_iter {
        if current.peak() > opts.runaway {
            return Err(ThermalError::Runaway {
                peak: current.peak(),
            });
        }
        let sources = power_map(Some(&current));
        let next = model.solve_with_scratch(&sources, Some(&current), &mut scratch)?;
        let delta = max_abs_delta(current.raw_temps(), next.raw_temps());
        current = next;
        if delta <= opts.tol.value() {
            return Ok(CoupledSolution {
                solution: current,
                outer_iterations: it,
                converged: true,
            });
        }
    }
    if current.peak() > opts.runaway {
        return Err(ThermalError::Runaway {
            peak: current.peak(),
        });
    }
    Ok(CoupledSolution {
        solution: current,
        outer_iterations: opts.max_iter,
        converged: false,
    })
}

fn max_abs_delta(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PackageModel, ThermalConfig};
    use tac25d_floorplan::chip::ChipSpec;
    use tac25d_floorplan::layers::StackSpec;
    use tac25d_floorplan::organization::{ChipletLayout, PackageRules};

    fn model() -> PackageModel {
        PackageModel::new(
            &ChipSpec::scc_256(),
            &ChipletLayout::SingleChip,
            &PackageRules::default(),
            &StackSpec::baseline_2d(),
            ThermalConfig {
                grid: 16,
                ..ThermalConfig::default()
            },
        )
        .unwrap()
    }

    fn die() -> Rect {
        Rect::from_corner(0.0, 0.0, 18.0, 18.0)
    }

    #[test]
    fn constant_power_converges_immediately() {
        let m = model();
        let r = solve_coupled(&m, |_| vec![(die(), 100.0)], &CoupledOptions::default()).unwrap();
        assert!(r.converged);
        assert_eq!(r.outer_iterations, 1);
    }

    #[test]
    fn leaky_power_converges_to_higher_temperature() {
        let m = model();
        let base = 150.0;
        // 1%/°C leakage growth above 45 °C — a contractive feedback.
        let coupled = solve_coupled(
            &m,
            |sol| {
                let t = sol.map_or(45.0, |s| s.rect_avg(&die()).value());
                vec![(die(), base * (1.0 + 0.01 * (t - 45.0)))]
            },
            &CoupledOptions::default(),
        )
        .unwrap();
        assert!(coupled.converged);
        assert!(coupled.outer_iterations >= 2);
        let flat = m.solve(&[(die(), base)]).unwrap();
        assert!(coupled.solution.peak() > flat.peak());
    }

    #[test]
    fn contractive_leakage_converges_monotonically() {
        // With a contractive positive feedback started from the cold state,
        // the fixed-point iterates approach the limit from below: each
        // observed die temperature is at least the previous one, and the
        // inter-iterate steps shrink geometrically.
        let m = model();
        let mut observed: Vec<f64> = Vec::new();
        let r = solve_coupled(
            &m,
            |sol| {
                let t = sol.map_or(45.0, |s| s.rect_avg(&die()).value());
                observed.push(t);
                vec![(die(), 180.0 * (1.0 + 0.012 * (t - 45.0)))]
            },
            &CoupledOptions {
                tol: Celsius(0.001),
                ..CoupledOptions::default()
            },
        )
        .unwrap();
        assert!(r.converged);
        assert!(observed.len() >= 4, "too few iterates: {observed:?}");
        for w in observed.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "non-monotone iterates: {observed:?}");
        }
        let steps: Vec<f64> = observed.windows(2).map(|w| w[1] - w[0]).collect();
        for w in steps.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "steps must contract: {steps:?}");
        }
        // And the limit is a genuine fixed point: re-solving with the
        // converged temperature's power map reproduces the solution.
        let t_final = r.solution.rect_avg(&die()).value();
        let re = m
            .solve(&[(die(), 180.0 * (1.0 + 0.012 * (t_final - 45.0)))])
            .unwrap();
        assert!((re.peak().value() - r.solution.peak().value()).abs() < 0.05);
    }

    #[test]
    fn tighter_tolerance_needs_more_iterations() {
        let m = model();
        let run = |tol: f64| {
            solve_coupled(
                &m,
                |sol| {
                    let t = sol.map_or(45.0, |s| s.rect_avg(&die()).value());
                    vec![(die(), 180.0 * (1.0 + 0.012 * (t - 45.0)))]
                },
                &CoupledOptions {
                    tol: Celsius(tol),
                    ..CoupledOptions::default()
                },
            )
            .unwrap()
        };
        let loose = run(0.5);
        let tight = run(0.0005);
        assert!(loose.converged && tight.converged);
        assert!(
            tight.outer_iterations >= loose.outer_iterations,
            "{} < {}",
            tight.outer_iterations,
            loose.outer_iterations
        );
        // Both bracket the same fixed point.
        assert!((tight.solution.peak().value() - loose.solution.peak().value()).abs() < 1.0);
    }

    #[test]
    fn runaway_detected() {
        let m = model();
        // Absurd 40%/°C feedback: guaranteed divergence.
        let err = solve_coupled(
            &m,
            |sol| {
                let t = sol.map_or(45.0, |s| s.rect_avg(&die()).value());
                vec![(die(), 200.0 * (1.0 + 0.4 * (t - 45.0)))]
            },
            &CoupledOptions {
                max_iter: 100,
                ..CoupledOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, ThermalError::Runaway { .. }), "{err}");
    }

    #[test]
    fn warm_started_fixed_point_matches_cold_jacobi_path() {
        // The fast path (IC(0), scratch reuse, reference warm starts) and
        // the legacy cold Jacobi path must converge to the same leakage
        // fixed point; at a tight solver tolerance the fields agree to
        // well under a microkelvin.
        use crate::model::SolverKind;
        let build = |solver: SolverKind| {
            PackageModel::new(
                &ChipSpec::scc_256(),
                &ChipletLayout::SingleChip,
                &PackageRules::default(),
                &StackSpec::baseline_2d(),
                ThermalConfig {
                    grid: 16,
                    rel_tol: 1e-12,
                    solver,
                    ..ThermalConfig::default()
                },
            )
            .unwrap()
        };
        let run = |m: &PackageModel| {
            solve_coupled(
                m,
                |sol| {
                    let t = sol.map_or(45.0, |s| s.rect_avg(&die()).value());
                    vec![(die(), 160.0 * (1.0 + 0.012 * (t - 45.0)))]
                },
                &CoupledOptions {
                    tol: Celsius(0.001),
                    ..CoupledOptions::default()
                },
            )
            .unwrap()
        };
        let warm = run(&build(SolverKind::Ic0));
        let cold = run(&build(SolverKind::Jacobi));
        assert!(warm.converged && cold.converged);
        assert_eq!(warm.outer_iterations, cold.outer_iterations);
        let max_dt = warm
            .solution
            .raw_temps()
            .iter()
            .zip(cold.solution.raw_temps())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_dt < 1e-6,
            "fixed points diverge: max |dT| = {max_dt:.3e}"
        );
    }

    #[test]
    fn non_convergence_reported_without_error() {
        let m = model();
        let mut flip = false;
        // Oscillating power: never converges, but stays bounded.
        let r = solve_coupled(
            &m,
            |_| {
                flip = !flip;
                vec![(die(), if flip { 100.0 } else { 140.0 })]
            },
            &CoupledOptions {
                max_iter: 5,
                ..CoupledOptions::default()
            },
        )
        .unwrap();
        assert!(!r.converged);
        assert_eq!(r.outer_iterations, 5);
    }
}
