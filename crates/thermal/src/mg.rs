//! Geometric multigrid solver tier over the thermal raster.
//!
//! The package network ([`crate::network`]) is `layers` copies of an
//! `n × n` finite-volume grid stacked vertically, plus a handful of lumped
//! periphery nodes appended after the grid block. That raster structure is
//! exactly what geometric multigrid exploits: coarse problems are built by
//! halving the in-plane resolution level by level (layers are few and
//! strongly heterogeneous, so the hierarchy semicoarsens in-plane only and
//! keeps every layer at every level), while the lumped periphery nodes ride
//! along unchanged — the identity block of every transfer operator.
//!
//! * **Prolongation** `P` is cell-centered bilinear interpolation per layer
//!   (weights 3/4 / 1/4 per dimension, folded onto the boundary cell where a
//!   neighbor is missing), identity on the lumped nodes. Row sums are 1, so
//!   constants — the nullspace direction the ground links barely pin —
//!   prolongate exactly.
//! * **Restriction** is the adjoint `R = Pᵀ` (full weighting up to the
//!   scalar), which makes the Galerkin coarse operator `A_c = Pᵀ·A·P`
//!   symmetric and positive definite whenever `A` is: the hierarchy inherits
//!   SPD-ness all the way down, no rediscretization needed. The same raster
//!   arithmetic also covers irregular operators (periphery links, ground
//!   conductances) that a rediscretized coarse stencil would have to model
//!   by hand.
//! * **Smoothing** is red-black Gauss–Seidel in *f32* over a color-major
//!   layout: each level's sweep order, off-diagonal structure and value
//!   slots are precomputed per shape, so the inner loop is a straight zip
//!   over contiguous f32/column slices with no diagonal branch; the f32
//!   value copies are refilled alongside the operator, so smoothing
//!   allocates nothing per solve. Post-smoothing replays the exact reverse
//!   order so a (ν, ν) V-cycle is symmetric up to `f32` rounding.
//!   Residuals, transfers and corrections stay in f64 — the mixed-precision
//!   split of a defect-correction iteration, where the low-precision inner
//!   solve bounds the *convergence factor*, never the attainable accuracy.
//! * **Coarsest solve** is a dense Cholesky factorization, factored once
//!   per refill (the coarsest problem is a few dozen to a few hundred
//!   nodes).
//!
//! # Scaffold / refill split
//!
//! Everything shape-determined — the raster ladder, prolongation stencils,
//! coarse CSR patterns, the Galerkin triple-product scatter plans, and the
//! smoother orderings — lives in an [`MgScaffold`], a pure function of the
//! grid shape built once per shape and shared behind an `Arc` (the same
//! amortization [`crate::network::Scaffold`] applies to CSR assembly).
//! Per-model numeric state is produced by a cheap refill:
//! [`MgHierarchy::from_scaffold`] recomputes only the Galerkin values, the
//! f32 smoothing copies and the dense coarsest factor, and
//! [`MgHierarchy::refill_dirty`] further restricts the Galerkin work to the
//! coarse rows reachable from dirty fine rows (the provenance the
//! incremental network assembly already tracks). Both paths replay each
//! coarse slot's contributions in the same fixed order, so a refilled
//! hierarchy is bitwise identical to a from-scratch [`MgHierarchy::build`].
//!
//! The V-cycle is usable two ways: [`MgHierarchy::solve`] iterates
//! f64 defect correction to a relative-residual tolerance (the standalone
//! solver the MMS refinement ladder measures), and
//! [`crate::sparse::Preconditioner::Multigrid`] wraps one V-cycle as the
//! preconditioner of the existing PCG (`SolverKind::Multigrid` /
//! `TAC25D_SOLVER=mg`), which is what production solves use — CG
//! acceleration makes the iteration count even flatter in `h` and inherits
//! the warm-start and obs plumbing of the fast path.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::sparse::{CsrMatrix, PcgSolution, SolveError};
use tac25d_obs as obs;

/// The raster shape of a network: `layers` stacked `n × n` grids followed
/// by `extras` lumped (periphery) nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MgRaster {
    /// Grid cells per side.
    pub n: usize,
    /// Number of gridded layers.
    pub layers: usize,
    /// Lumped nodes appended after the grid block.
    pub extras: usize,
}

impl MgRaster {
    /// Total node count of this raster.
    pub fn nodes(&self) -> usize {
        self.layers * self.n * self.n + self.extras
    }

    /// Index of grid node `(ix, iy)` on layer `li` — the layout
    /// `crate::network` assembles.
    #[inline]
    fn node(&self, li: usize, ix: usize, iy: usize) -> usize {
        li * self.n * self.n + iy * self.n + ix
    }

    /// The next-coarser raster: in-plane cells halved (rounding up), layers
    /// and lumped nodes unchanged.
    fn coarsened(&self) -> MgRaster {
        MgRaster {
            n: self.n.div_ceil(2),
            ..*self
        }
    }
}

/// Cycle shape and stopping parameters.
#[derive(Debug, Clone, Copy)]
pub struct MgOptions {
    /// Red-black Gauss–Seidel sweeps before coarse-grid correction.
    pub pre_sweeps: usize,
    /// Sweeps after correction (reverse order, for symmetry).
    pub post_sweeps: usize,
    /// Stop coarsening once `n` is at or below this (the level is then
    /// solved directly).
    pub coarsest_n: usize,
    /// Defect-correction V-cycle budget of [`MgHierarchy::solve`].
    pub max_cycles: usize,
}

impl Default for MgOptions {
    fn default() -> Self {
        MgOptions {
            pre_sweeps: 2,
            post_sweeps: 2,
            coarsest_n: 4,
            max_cycles: 200,
        }
    }
}

/// Largest coarsest-level size the dense factorization accepts; a raster
/// that cannot coarsen below this (pathologically many layers or lumped
/// nodes) fails the hierarchy build and the caller falls back to IC(0).
const MAX_DIRECT_NODES: usize = 2048;

/// Cell-centered bilinear prolongation from a coarse raster to the fine
/// raster one level up, stored CSR-style with fine nodes as rows (≤ 4
/// grid entries per row, identity on lumped nodes). The adjoint scatter of
/// the same triplets is the restriction.
#[derive(Debug, Clone)]
struct Prolongation {
    row_ptr: Vec<u32>,
    col: Vec<u32>,
    w: Vec<f64>,
    /// Coarse node count (column dimension).
    nc: usize,
}

impl Prolongation {
    fn build(fine: &MgRaster, coarse: &MgRaster) -> Prolongation {
        // Per-dimension interpolation stencil of fine cell f: the covering
        // coarse cell plus (when present) the neighbor the fine cell center
        // leans toward, weighted 3/4 : 1/4. At the domain edge the missing
        // neighbor's weight folds onto the covering cell, preserving unit
        // row sums.
        let stencil_1d = |f: usize, nc: usize| -> [(usize, f64); 2] {
            let c = f / 2;
            let towards = if f.is_multiple_of(2) {
                c.checked_sub(1)
            } else {
                Some(c + 1).filter(|&x| x < nc)
            };
            match towards {
                Some(nb) => [(c, 0.75), (nb, 0.25)],
                None => [(c, 1.0), (c, 0.0)],
            }
        };
        let mut row_ptr = Vec::with_capacity(fine.nodes() + 1);
        let mut col = Vec::new();
        let mut w = Vec::new();
        row_ptr.push(0u32);
        for li in 0..fine.layers {
            for fy in 0..fine.n {
                let ys = stencil_1d(fy, coarse.n);
                for fx in 0..fine.n {
                    let xs = stencil_1d(fx, coarse.n);
                    for &(cy, wy) in &ys {
                        for &(cx, wx) in &xs {
                            let weight = wx * wy;
                            if weight > 0.0 {
                                col.push(coarse.node(li, cx, cy) as u32);
                                w.push(weight);
                            }
                        }
                    }
                    row_ptr.push(col.len() as u32);
                }
            }
        }
        let fine_grid = fine.layers * fine.n * fine.n;
        let coarse_grid = coarse.layers * coarse.n * coarse.n;
        for e in 0..fine.extras {
            debug_assert_eq!(fine_grid + e, row_ptr.len() - 1);
            col.push((coarse_grid + e) as u32);
            w.push(1.0);
            row_ptr.push(col.len() as u32);
        }
        Prolongation {
            row_ptr,
            col,
            w,
            nc: coarse.nodes(),
        }
    }

    /// `out = Pᵀ·v` (restriction; `v` lives on the fine level).
    fn restrict(&self, v: &[f64], out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.nc);
        out.fill(0.0);
        for (i, &vi) in v.iter().enumerate() {
            let lo = self.row_ptr[i] as usize;
            let hi = self.row_ptr[i + 1] as usize;
            for k in lo..hi {
                out[self.col[k] as usize] += self.w[k] * vi;
            }
        }
    }

    /// `out += P·v` (prolongated correction; `v` lives on the coarse level).
    fn prolong_add(&self, v: &[f64], out: &mut [f64]) {
        for (i, oi) in out.iter_mut().enumerate() {
            let lo = self.row_ptr[i] as usize;
            let hi = self.row_ptr[i + 1] as usize;
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.w[k] * v[self.col[k] as usize];
            }
            *oi += acc;
        }
    }
}

/// Precomputed scatter plan for the Galerkin triple product `Pᵀ·A·P` over
/// a fixed sparsity pattern: every contribution `w_i·w_j·a_k` is resolved
/// at scaffold-build time into (fine value index, destination coarse
/// slot, coefficient), grouped by coarse row with per-slot contributions
/// in ascending fine-entry order. The full refill and the dirty-row refill
/// both replay this order, which is what makes them bitwise identical.
#[derive(Debug)]
struct GalerkinPlan {
    /// Contribution range per coarse row (length `coarse n + 1`).
    rows: Vec<u32>,
    /// Fine CSR value index of each contribution.
    src: Vec<u32>,
    /// Destination slot in the coarse value array.
    slot: Vec<u32>,
    /// `w_i·w_j` — a pure function of the prolongation stencils.
    coeff: Vec<f64>,
}

/// Everything shape-determined about one level: the CSR pattern, the
/// color-major smoother structure, and (except on the coarsest level) the
/// prolongation and the Galerkin scatter plan down to the next level.
#[derive(Debug)]
struct LevelShape {
    raster: MgRaster,
    n: usize,
    row_ptr: Vec<u32>,
    col: Vec<u32>,
    /// Sweep order: red grid cells (`(ix+iy+layer)` even) first, then
    /// black cells, then lumped nodes — position `p` smooths row
    /// `order[p]`. Post-smoothing replays this order reversed.
    order: Vec<u32>,
    /// Inverse of `order`: the sweep position of each row.
    pos_of_row: Vec<u32>,
    /// Off-diagonal range per sweep position (length `n + 1`); laid out
    /// color-major so each color's entries are contiguous.
    off_ptr: Vec<u32>,
    /// Column of each off-diagonal entry, position-major.
    off_col: Vec<u32>,
    /// CSR value index feeding each off-diagonal f32 slot.
    off_src: Vec<u32>,
    /// CSR value index of the diagonal, per sweep position.
    diag_src: Vec<u32>,
    /// Prolongation from the next-coarser level (absent on the coarsest).
    p: Option<Prolongation>,
    /// Galerkin scatter plan to the next-coarser level.
    plan: Option<GalerkinPlan>,
}

impl LevelShape {
    /// Derives the smoother structure from a CSR pattern. `None` when some
    /// row has no stored diagonal (conductance assembly always stores it).
    fn new(raster: MgRaster, row_ptr: Vec<u32>, col: Vec<u32>) -> Option<LevelShape> {
        let n = raster.nodes();
        debug_assert_eq!(row_ptr.len(), n + 1, "pattern row count mismatch");
        let mut order = Vec::with_capacity(n);
        for color in 0..2usize {
            for li in 0..raster.layers {
                for iy in 0..raster.n {
                    for ix in 0..raster.n {
                        if (ix + iy + li) % 2 == color {
                            order.push(raster.node(li, ix, iy) as u32);
                        }
                    }
                }
            }
        }
        let grid = raster.layers * raster.n * raster.n;
        for e in 0..raster.extras {
            order.push((grid + e) as u32);
        }
        let mut pos_of_row = vec![0u32; n];
        for (p, &i) in order.iter().enumerate() {
            pos_of_row[i as usize] = p as u32;
        }
        let mut off_ptr = Vec::with_capacity(n + 1);
        off_ptr.push(0u32);
        let mut off_col = Vec::new();
        let mut off_src = Vec::new();
        let mut diag_src = Vec::with_capacity(n);
        for &i in &order {
            let i = i as usize;
            let mut diag = None;
            let lo = row_ptr[i] as usize;
            for (k, &c) in (lo..).zip(&col[lo..row_ptr[i + 1] as usize]) {
                if c as usize == i {
                    diag = Some(k as u32);
                } else {
                    off_col.push(c);
                    off_src.push(k as u32);
                }
            }
            diag_src.push(diag?);
            off_ptr.push(off_col.len() as u32);
        }
        Some(LevelShape {
            raster,
            n,
            row_ptr,
            col,
            order,
            pos_of_row,
            off_ptr,
            off_col,
            off_src,
            diag_src,
            p: None,
            plan: None,
        })
    }

    /// One Gauss–Seidel sweep in f32 over the color-major order (forward)
    /// or its reverse (backward):
    /// `x[i] ← (b[i] − Σ_{j≠i} a_ij·x[j]) / a_ii`. The diagonal is split
    /// out of the row at scaffold-build time, so the inner loop is a
    /// branch-free zip over the contiguous f32 value / column slices.
    /// Sequential and in fixed order — bit-for-bit deterministic.
    fn smooth(&self, vals: &LevelValues, b: &[f64], x: &mut [f64], backward: bool) {
        let mut sweep = |p: usize| {
            let i = self.order[p] as usize;
            let lo = self.off_ptr[p] as usize;
            let hi = self.off_ptr[p + 1] as usize;
            let mut sigma = 0.0f32;
            for (&a, &j) in vals.off_val[lo..hi].iter().zip(&self.off_col[lo..hi]) {
                sigma += a * x[j as usize] as f32;
            }
            x[i] = f64::from((b[i] as f32 - sigma) * vals.inv_diag32[p]);
        };
        if backward {
            for p in (0..self.order.len()).rev() {
                sweep(p);
            }
        } else {
            for p in 0..self.order.len() {
                sweep(p);
            }
        }
    }
}

/// Builds the coarse CSR pattern and the Galerkin scatter plan for one
/// level transition. Contributions are ordered by (coarse row, coarse col,
/// fine entry), so each coarse slot's terms replay in ascending fine-entry
/// order regardless of whether a refill walks every row or only dirty ones.
///
/// The order is established by a counting sort on the coarse row followed
/// by a per-row sort on the coarse column — not a global sort of every
/// contribution. Generation already visits fine entries in ascending
/// order, and within one fine entry a coarse pair is reached by at most
/// one stencil pair, so the stable bucket scatter leaves each (row, col)
/// group in ascending fine-entry order and the per-row sort (ties broken
/// by bucket position) reproduces the same total order as a global
/// (row, col, fine entry) sort at a fraction of the cost: the per-row
/// slices are a few hundred cache-hot elements instead of one
/// half-million-tuple sort.
fn build_transition(fine: &LevelShape, p: &Prolongation) -> (Vec<u32>, Vec<u32>, GalerkinPlan) {
    let nc = p.nc;
    let mut gen_ci: Vec<u32> = Vec::new();
    let mut gen_cj: Vec<u32> = Vec::new();
    let mut gen_k: Vec<u32> = Vec::new();
    let mut gen_w: Vec<f64> = Vec::new();
    let mut rows = vec![0u32; nc + 1];
    for i in 0..fine.n {
        let pi_lo = p.row_ptr[i] as usize;
        let pi_hi = p.row_ptr[i + 1] as usize;
        for k in fine.row_ptr[i] as usize..fine.row_ptr[i + 1] as usize {
            let j = fine.col[k] as usize;
            let pj_lo = p.row_ptr[j] as usize;
            let pj_hi = p.row_ptr[j + 1] as usize;
            for ki in pi_lo..pi_hi {
                let ci = p.col[ki];
                let wi = p.w[ki];
                rows[ci as usize + 1] += (pj_hi - pj_lo) as u32;
                for kj in pj_lo..pj_hi {
                    gen_ci.push(ci);
                    gen_cj.push(p.col[kj]);
                    gen_k.push(k as u32);
                    gen_w.push(wi * p.w[kj]);
                }
            }
        }
    }
    for ci in 0..nc {
        rows[ci + 1] += rows[ci];
    }
    let total = gen_ci.len();
    let mut bucket_cj = vec![0u32; total];
    let mut bucket_k = vec![0u32; total];
    let mut bucket_w = vec![0f64; total];
    let mut cursor: Vec<u32> = rows[..nc].to_vec();
    for idx in 0..total {
        let ci = gen_ci[idx] as usize;
        let at = cursor[ci] as usize;
        cursor[ci] += 1;
        bucket_cj[at] = gen_cj[idx];
        bucket_k[at] = gen_k[idx];
        bucket_w[at] = gen_w[idx];
    }
    drop(gen_ci);
    drop(gen_cj);
    drop(gen_k);
    drop(gen_w);
    let mut c_row_ptr = Vec::with_capacity(nc + 1);
    c_row_ptr.push(0u32);
    let mut c_col: Vec<u32> = Vec::new();
    let mut src = Vec::with_capacity(total);
    let mut slot = Vec::with_capacity(total);
    let mut coeff = Vec::with_capacity(total);
    let mut perm: Vec<u32> = Vec::new();
    for ci in 0..nc {
        let lo = rows[ci] as usize;
        let hi = rows[ci + 1] as usize;
        perm.clear();
        perm.extend(lo as u32..hi as u32);
        perm.sort_unstable_by_key(|&q| ((bucket_cj[q as usize] as u64) << 32) | q as u64);
        // Coarse columns never reach u32::MAX (they index a coarse level),
        // so it is a safe "no previous column" sentinel.
        let mut last_cj = u32::MAX;
        for &q in &perm {
            let q = q as usize;
            let cj = bucket_cj[q];
            if cj != last_cj {
                c_col.push(cj);
                last_cj = cj;
            }
            src.push(bucket_k[q]);
            slot.push(c_col.len() as u32 - 1);
            coeff.push(bucket_w[q]);
        }
        c_row_ptr.push(c_col.len() as u32);
    }
    (
        c_row_ptr,
        c_col,
        GalerkinPlan {
            rows,
            src,
            slot,
            coeff,
        },
    )
}

/// The symbolic half of a multigrid hierarchy: raster ladder, prolongation
/// stencils, coarse CSR patterns, Galerkin scatter plans and smoother
/// orderings — a pure function of the grid shape, built once per shape and
/// shared behind an `Arc` across every same-shape model (mirroring
/// [`crate::network::Scaffold`]). Numeric state lives in [`MgHierarchy`];
/// see [`MgHierarchy::from_scaffold`] for the refill.
#[derive(Debug)]
pub struct MgScaffold {
    shapes: Vec<LevelShape>,
    opts: MgOptions,
}

impl MgScaffold {
    /// Derives the full symbolic hierarchy from `a`'s sparsity pattern
    /// laid out on `raster` (values are ignored). Returns `None` on a
    /// dimension mismatch, a row without a stored diagonal, or a coarsest
    /// problem too large to factor densely.
    pub fn build(a: &CsrMatrix, raster: MgRaster, opts: MgOptions) -> Option<MgScaffold> {
        if raster.n == 0 || raster.layers == 0 || a.n() != raster.nodes() {
            return None;
        }
        let t0 = Instant::now();
        let (row_ptr, col, _) = a.parts();
        let mut shapes = Vec::new();
        let mut cur = raster;
        let mut fine = LevelShape::new(cur, row_ptr.to_vec(), col.to_vec())?;
        while cur.n > opts.coarsest_n && cur.coarsened().n < cur.n {
            let coarse_raster = cur.coarsened();
            let p = Prolongation::build(&cur, &coarse_raster);
            let (c_row_ptr, c_col, plan) = build_transition(&fine, &p);
            let next = LevelShape::new(coarse_raster, c_row_ptr, c_col)?;
            fine.p = Some(p);
            fine.plan = Some(plan);
            shapes.push(fine);
            fine = next;
            cur = coarse_raster;
        }
        if cur.nodes() > MAX_DIRECT_NODES {
            return None;
        }
        shapes.push(fine);
        obs::counter!("thermal.mg_build_us").add(t0.elapsed().as_micros() as u64);
        Some(MgScaffold { shapes, opts })
    }

    /// Number of levels the scaffold describes (finest included).
    pub fn levels(&self) -> usize {
        self.shapes.len()
    }

    /// The raster this scaffold was built for (finest level).
    pub fn raster(&self) -> MgRaster {
        self.shapes[0].raster
    }

    /// True when `a` has exactly the finest-level pattern this scaffold
    /// was derived from — the precondition of every refill.
    fn pattern_matches(&self, a: &CsrMatrix) -> bool {
        let s0 = &self.shapes[0];
        let (row_ptr, col, _) = a.parts();
        a.n() == s0.n && row_ptr == &s0.row_ptr[..] && col == &s0.col[..]
    }
}

/// The per-model numeric payload of one level: the operator values in the
/// scaffold's pattern order, plus the f32 smoothing copies (off-diagonal
/// values position-major, reciprocal diagonal per position) refilled
/// alongside them so a solve never converts or allocates.
#[derive(Debug, Clone)]
struct LevelValues {
    a: CsrMatrix,
    off_val: Vec<f32>,
    inv_diag32: Vec<f32>,
}

/// Builds a level's numeric payload from scratch. `None` when a diagonal
/// value is non-positive or non-finite.
fn fill_values_full(shape: &LevelShape, val: Vec<f64>) -> Option<LevelValues> {
    let mut off_val = vec![0.0f32; shape.off_col.len()];
    let mut inv_diag32 = vec![0.0f32; shape.order.len()];
    for p in 0..shape.order.len() {
        let d = val[shape.diag_src[p] as usize];
        if d <= 0.0 || !d.is_finite() {
            return None;
        }
        inv_diag32[p] = (1.0 / d) as f32;
        for k in shape.off_ptr[p] as usize..shape.off_ptr[p + 1] as usize {
            off_val[k] = val[shape.off_src[k] as usize] as f32;
        }
    }
    Some(LevelValues {
        a: CsrMatrix::from_parts(shape.n, shape.row_ptr.clone(), shape.col.clone(), val),
        off_val,
        inv_diag32,
    })
}

/// Builds a level's numeric payload by patching `base`'s f32 copies for
/// the dirty rows only; `val` must already hold the full updated value
/// array (clean rows bitwise equal to `base`'s). `None` when a dirty
/// diagonal went non-positive or non-finite.
fn fill_values_dirty(
    shape: &LevelShape,
    base: &LevelValues,
    val: Vec<f64>,
    dirty: &[bool],
) -> Option<LevelValues> {
    let mut off_val = base.off_val.clone();
    let mut inv_diag32 = base.inv_diag32.clone();
    for i in dirty
        .iter()
        .enumerate()
        .filter_map(|(i, &d)| d.then_some(i))
    {
        let p = shape.pos_of_row[i] as usize;
        let d = val[shape.diag_src[p] as usize];
        if d <= 0.0 || !d.is_finite() {
            return None;
        }
        inv_diag32[p] = (1.0 / d) as f32;
        for k in shape.off_ptr[p] as usize..shape.off_ptr[p + 1] as usize {
            off_val[k] = val[shape.off_src[k] as usize] as f32;
        }
    }
    Some(LevelValues {
        a: CsrMatrix::from_parts(shape.n, shape.row_ptr.clone(), shape.col.clone(), val),
        off_val,
        inv_diag32,
    })
}

/// Full Galerkin refill: replay every contribution of the scatter plan.
fn galerkin_full(plan: &GalerkinPlan, fine_val: &[f64], coarse_nnz: usize) -> Vec<f64> {
    let mut out = vec![0.0f64; coarse_nnz];
    for ((&s, &dst), &c) in plan.src.iter().zip(&plan.slot).zip(&plan.coeff) {
        out[dst as usize] += c * fine_val[s as usize];
    }
    out
}

/// Dirty Galerkin refill: start from `base_val` and replay only the rows
/// marked dirty, zeroing their slots first. Per-slot contribution order
/// matches [`galerkin_full`], so the result is bitwise identical to a full
/// refill of the same fine values.
fn galerkin_dirty(
    plan: &GalerkinPlan,
    coarse: &LevelShape,
    fine_val: &[f64],
    base_val: &[f64],
    dirty: &[bool],
) -> Vec<f64> {
    let mut out = base_val.to_vec();
    for r in dirty
        .iter()
        .enumerate()
        .filter_map(|(r, &d)| d.then_some(r))
    {
        out[coarse.row_ptr[r] as usize..coarse.row_ptr[r + 1] as usize].fill(0.0);
        for t in plan.rows[r] as usize..plan.rows[r + 1] as usize {
            out[plan.slot[t] as usize] += plan.coeff[t] * fine_val[plan.src[t] as usize];
        }
    }
    out
}

/// Dense Cholesky factor of the coarsest operator, factored once per
/// refill and reused by every cycle.
#[derive(Debug, Clone)]
struct DenseCholesky {
    n: usize,
    /// Lower-triangular factor, row-major `n × n` (upper part unused).
    l: Vec<f64>,
}

impl DenseCholesky {
    fn factor(a: &CsrMatrix) -> Option<DenseCholesky> {
        let n = a.n();
        let mut m = vec![0.0f64; n * n];
        let (row_ptr, col, val) = a.parts();
        for i in 0..n {
            for k in row_ptr[i] as usize..row_ptr[i + 1] as usize {
                m[i * n + col[k] as usize] = val[k];
            }
        }
        for j in 0..n {
            let mut d = m[j * n + j];
            for k in 0..j {
                d -= m[j * n + k] * m[j * n + k];
            }
            if d <= 0.0 || !d.is_finite() {
                return None;
            }
            let d = d.sqrt();
            m[j * n + j] = d;
            for i in (j + 1)..n {
                let mut s = m[i * n + j];
                for k in 0..j {
                    s -= m[i * n + k] * m[j * n + k];
                }
                m[i * n + j] = s / d;
            }
        }
        Some(DenseCholesky { n, l: m })
    }

    fn solve(&self, b: &[f64], x: &mut [f64]) {
        let n = self.n;
        // Forward substitution L·y = b (y stored in x) …
        for i in 0..n {
            let mut s = b[i];
            for (k, xk) in x[..i].iter().enumerate() {
                s -= self.l[i * n + k] * xk;
            }
            x[i] = s / self.l[i * n + i];
        }
        // … then back substitution Lᵀ·x = y.
        for i in (0..n).rev() {
            let mut s = x[i];
            for (k, xk) in x.iter().enumerate().skip(i + 1) {
                s -= self.l[k * n + i] * xk;
            }
            x[i] = s / self.l[i * n + i];
        }
    }
}

/// Per-level work vectors, reused across cycles behind a mutex so a shared
/// hierarchy (the factor-once/solve-many contract, including concurrent
/// serve evaluators) never allocates in steady state.
#[derive(Debug, Default)]
struct LevelScratch {
    b: Vec<f64>,
    x: Vec<f64>,
    r: Vec<f64>,
}

/// A built multigrid hierarchy: the per-model numeric state (Galerkin
/// values, f32 smoothing copies, dense coarsest factor) over a shared
/// [`MgScaffold`]. Factor-once state reused by every solve of the same
/// matrix, analogous to [`crate::sparse::Ic0`].
#[derive(Debug)]
pub struct MgHierarchy {
    scaffold: Arc<MgScaffold>,
    levels: Vec<LevelValues>,
    coarse: DenseCholesky,
    scratch: Mutex<Vec<LevelScratch>>,
}

impl MgHierarchy {
    /// Builds the hierarchy for `a` laid out on `raster`: scaffold plus a
    /// full numeric refill. Equivalent to [`MgScaffold::build`] followed by
    /// [`MgHierarchy::from_scaffold`] — callers that evaluate many
    /// same-shape models should do exactly that and share the scaffold.
    ///
    /// Returns `None` when the hierarchy cannot be built — dimension
    /// mismatch, a non-positive diagonal on some level, a coarsest problem
    /// too large to factor densely, or a coarsest factorization breakdown.
    /// Like IC(0)'s Jacobi fallback, `None` downgrades the caller to the
    /// existing preconditioner rather than failing the solve.
    pub fn build(a: &CsrMatrix, raster: MgRaster, opts: MgOptions) -> Option<MgHierarchy> {
        let scaffold = Arc::new(MgScaffold::build(a, raster, opts)?);
        MgHierarchy::from_scaffold(scaffold, a)
    }

    /// Numeric refill over a shared scaffold: recomputes the Galerkin
    /// values level by level through the precomputed scatter plans, the
    /// f32 smoothing copies, and the dense coarsest factor — no symbolic
    /// work. Bitwise identical to [`MgHierarchy::build`] on the same
    /// matrix (build is this refill over a fresh scaffold).
    ///
    /// Returns `None` when `a` does not have the scaffold's finest-level
    /// pattern, a diagonal goes non-positive on some level, or the
    /// coarsest factorization breaks down.
    pub fn from_scaffold(scaffold: Arc<MgScaffold>, a: &CsrMatrix) -> Option<MgHierarchy> {
        if !scaffold.pattern_matches(a) {
            return None;
        }
        let t0 = Instant::now();
        let mut levels = Vec::with_capacity(scaffold.shapes.len());
        let mut vals = a.values().to_vec();
        for (l, shape) in scaffold.shapes.iter().enumerate() {
            let lv = fill_values_full(shape, vals)?;
            vals = match &shape.plan {
                Some(plan) => galerkin_full(plan, lv.a.values(), scaffold.shapes[l + 1].col.len()),
                None => Vec::new(),
            };
            levels.push(lv);
        }
        MgHierarchy::finish(scaffold, levels, t0)
    }

    /// Incremental refill for a matrix that differs from `base`'s only in
    /// `dirty` rows (the mask the incremental network assembly produces —
    /// both ends of every changed link are dirty). Galerkin work is
    /// restricted to the coarse rows reachable from dirty fine rows
    /// through the prolongation stencils; everything else is copied from
    /// `base`. Bitwise identical to a full refill of `a`.
    ///
    /// Returns `None` when `base` was not refilled from this exact
    /// scaffold, the mask length is wrong, `a`'s pattern mismatches, a
    /// dirty diagonal goes non-positive, or the coarsest factorization
    /// breaks down — callers then fall back to [`MgHierarchy::from_scaffold`].
    pub fn refill_dirty(
        scaffold: Arc<MgScaffold>,
        a: &CsrMatrix,
        base: &MgHierarchy,
        dirty: &[bool],
    ) -> Option<MgHierarchy> {
        if !Arc::ptr_eq(&scaffold, &base.scaffold)
            || dirty.len() != scaffold.shapes[0].n
            || !scaffold.pattern_matches(a)
        {
            return None;
        }
        let t0 = Instant::now();
        let mut levels = Vec::with_capacity(scaffold.shapes.len());
        let mut vals = a.values().to_vec();
        let mut dirty_rows = dirty.to_vec();
        for (l, shape) in scaffold.shapes.iter().enumerate() {
            let lv = fill_values_dirty(shape, &base.levels[l], vals, &dirty_rows)?;
            if let Some(plan) = &shape.plan {
                let p = shape.p.as_ref().expect("non-coarsest level prolongates");
                let coarse_shape = &scaffold.shapes[l + 1];
                let mut dc = vec![false; coarse_shape.n];
                for i in dirty_rows
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &d)| d.then_some(i))
                {
                    for k in p.row_ptr[i] as usize..p.row_ptr[i + 1] as usize {
                        dc[p.col[k] as usize] = true;
                    }
                }
                vals = galerkin_dirty(
                    plan,
                    coarse_shape,
                    lv.a.values(),
                    base.levels[l + 1].a.values(),
                    &dc,
                );
                dirty_rows = dc;
            } else {
                vals = Vec::new();
            }
            levels.push(lv);
        }
        MgHierarchy::finish(scaffold, levels, t0)
    }

    /// Shared tail of both refill paths: coarsest factorization, scratch
    /// allocation, obs accounting.
    fn finish(
        scaffold: Arc<MgScaffold>,
        levels: Vec<LevelValues>,
        t0: Instant,
    ) -> Option<MgHierarchy> {
        let coarse = DenseCholesky::factor(&levels.last()?.a)?;
        let scratch = levels
            .iter()
            .map(|l| LevelScratch {
                b: vec![0.0; l.a.n()],
                x: vec![0.0; l.a.n()],
                r: vec![0.0; l.a.n()],
            })
            .collect();
        obs::gauge!("thermal.mg_levels").set(levels.len() as f64);
        obs::counter!("thermal.mg_refills").inc();
        obs::counter!("thermal.mg_build_us").add(t0.elapsed().as_micros() as u64);
        Some(MgHierarchy {
            scaffold,
            levels,
            coarse,
            scratch: Mutex::new(scratch),
        })
    }

    /// The shared symbolic scaffold this hierarchy was refilled over.
    pub fn scaffold(&self) -> &Arc<MgScaffold> {
        &self.scaffold
    }

    /// Number of levels (finest included).
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// The operator of level `l` (0 = finest; Galerkin products below).
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn level_matrix(&self, l: usize) -> &CsrMatrix {
        &self.levels[l].a
    }

    /// Restriction `Pᵀ·v` from level `l` to level `l + 1` (test hook for
    /// the transfer-operator invariants).
    ///
    /// # Panics
    ///
    /// Panics if `l` is the coarsest level or `v` has the wrong length.
    pub fn restrict(&self, l: usize, v: &[f64]) -> Vec<f64> {
        let p = self.scaffold.shapes[l]
            .p
            .as_ref()
            .expect("level has a coarser one");
        assert_eq!(v.len(), self.levels[l].a.n(), "fine vector length");
        let mut out = vec![0.0; p.nc];
        p.restrict(v, &mut out);
        out
    }

    /// Prolongation `P·v` from level `l + 1` to level `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is the coarsest level or `v` has the wrong length.
    pub fn prolong(&self, l: usize, v: &[f64]) -> Vec<f64> {
        let p = self.scaffold.shapes[l]
            .p
            .as_ref()
            .expect("level has a coarser one");
        assert_eq!(v.len(), p.nc, "coarse vector length");
        let mut out = vec![0.0; self.levels[l].a.n()];
        p.prolong_add(v, &mut out);
        out
    }

    /// One smoother sweep on level `l` — a criterion benchmark hook, not
    /// part of the solver API.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range or the vector lengths mismatch.
    #[doc(hidden)]
    pub fn smooth_once(&self, l: usize, b: &[f64], x: &mut [f64], backward: bool) {
        self.scaffold.shapes[l].smooth(&self.levels[l], b, x, backward);
    }

    /// One V-cycle on the error equation `A·z = r` from a zero initial
    /// guess — the preconditioner application of
    /// [`crate::sparse::Preconditioner::Multigrid`].
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match the finest level.
    pub fn precondition(&self, r: &[f64], z: &mut [f64]) {
        let mut scratch = self.scratch.lock().expect("mg scratch poisoned");
        scratch[0].b.copy_from_slice(r);
        self.vcycle(0, &mut scratch);
        z.copy_from_slice(&scratch[0].x);
        obs::counter!("thermal.mg_vcycles").inc();
    }

    fn vcycle(&self, l: usize, s: &mut [LevelScratch]) {
        if l + 1 == self.levels.len() {
            let LevelScratch { b, x, .. } = &mut s[l];
            self.coarse.solve(b, x);
            return;
        }
        let shape = &self.scaffold.shapes[l];
        let vals = &self.levels[l];
        obs::histogram!("thermal.mg_smooth_level").record(l as u64);
        {
            let LevelScratch { b, x, r } = &mut s[l];
            x.fill(0.0);
            for _ in 0..self.scaffold.opts.pre_sweeps {
                shape.smooth(vals, b, x, false);
            }
            vals.a.mul_vec(x, r);
            for (ri, bi) in r.iter_mut().zip(b.iter()) {
                *ri = bi - *ri;
            }
        }
        let p = shape.p.as_ref().expect("non-coarsest level prolongates");
        {
            let (fine, coarse) = s.split_at_mut(l + 1);
            p.restrict(&fine[l].r, &mut coarse[0].b);
        }
        self.vcycle(l + 1, s);
        {
            let (fine, coarse) = s.split_at_mut(l + 1);
            p.prolong_add(&coarse[0].x, &mut fine[l].x);
        }
        let LevelScratch { b, x, .. } = &mut s[l];
        for _ in 0..self.scaffold.opts.post_sweeps {
            shape.smooth(vals, b, x, true);
        }
    }

    /// Standalone multigrid solve of `A·x = b` by f64 defect correction:
    /// each iteration computes the full-precision residual and applies one
    /// V-cycle to it, so the f32 smoother bounds the convergence *rate*
    /// while the attainable accuracy matches the f64 PCG paths.
    /// `iterations` in the returned solution counts V-cycles.
    ///
    /// # Errors
    ///
    /// [`SolveError::NoConvergence`] when the relative residual has not
    /// reached `rel_tol` within the cycle budget, and
    /// [`SolveError::NumericalBreakdown`] on non-finite residuals.
    pub fn solve(
        &self,
        b: &[f64],
        x0: Option<&[f64]>,
        rel_tol: f64,
    ) -> Result<PcgSolution, SolveError> {
        let _span = obs::span!("thermal.mg_solve");
        let n = self.levels[0].a.n();
        assert_eq!(b.len(), n, "rhs length mismatch");
        let b_norm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        if b_norm == 0.0 {
            return Ok(PcgSolution {
                x: vec![0.0; n],
                iterations: 0,
                residual: 0.0,
            });
        }
        let mut x = match x0 {
            Some(x0) => {
                assert_eq!(x0.len(), n, "warm-start length mismatch");
                x0.to_vec()
            }
            None => vec![0.0; n],
        };
        let mut r = vec![0.0; n];
        let mut res = f64::INFINITY;
        let max_cycles = self.scaffold.opts.max_cycles;
        for cycles in 0..=max_cycles {
            self.levels[0].a.mul_vec(&x, &mut r);
            for (ri, bi) in r.iter_mut().zip(b.iter()) {
                *ri = bi - *ri;
            }
            res = r.iter().map(|v| v * v).sum::<f64>().sqrt() / b_norm;
            if !res.is_finite() {
                return Err(SolveError::NumericalBreakdown);
            }
            if res <= rel_tol {
                obs::gauge!("thermal.mg_final_residual").set(res);
                return Ok(PcgSolution {
                    x,
                    iterations: cycles,
                    residual: res,
                });
            }
            if cycles == max_cycles {
                break;
            }
            let mut scratch = self.scratch.lock().expect("mg scratch poisoned");
            scratch[0].b.copy_from_slice(&r);
            self.vcycle(0, &mut scratch);
            for (xi, ei) in x.iter_mut().zip(scratch[0].x.iter()) {
                *xi += ei;
            }
            drop(scratch);
            obs::counter!("thermal.mg_vcycles").inc();
        }
        Err(SolveError::NoConvergence {
            iterations: max_cycles,
            residual: res,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::{dense_cholesky_solve, TripletMatrix};

    /// A raster-shaped conductance network: 5/7-point grid couplings with
    /// mildly varying conductances plus a ground on every top-layer cell —
    /// the class of matrices `crate::network` assembles.
    fn raster_network(raster: &MgRaster, lat: f64, vert: f64, ground: f64) -> CsrMatrix {
        let mut t = TripletMatrix::new(raster.nodes());
        let vary = |i: usize| 1.0 + 0.25 * ((i % 7) as f64 - 3.0) / 3.0;
        for li in 0..raster.layers {
            for iy in 0..raster.n {
                for ix in 0..raster.n {
                    let a = raster.node(li, ix, iy);
                    if ix + 1 < raster.n {
                        t.add_conductance(a, raster.node(li, ix + 1, iy), lat * vary(a));
                    }
                    if iy + 1 < raster.n {
                        t.add_conductance(a, raster.node(li, ix, iy + 1), lat * vary(a + 1));
                    }
                    if li + 1 < raster.layers {
                        t.add_conductance(a, raster.node(li + 1, ix, iy), vert * vary(a + 2));
                    }
                    if li == 0 {
                        t.add_ground(a, ground);
                    }
                }
            }
        }
        let grid = raster.layers * raster.n * raster.n;
        for e in 0..raster.extras {
            // Each lumped node couples to a boundary cell and to ambient.
            t.add_conductance(grid + e, raster.node(0, 0, e % raster.n), 0.3);
            t.add_ground(grid + e, 0.2);
        }
        t.to_csr()
    }

    #[test]
    fn prolongation_rows_sum_to_one() {
        let fine = MgRaster {
            n: 9,
            layers: 2,
            extras: 3,
        };
        let p = Prolongation::build(&fine, &fine.coarsened());
        for i in 0..fine.nodes() {
            let lo = p.row_ptr[i] as usize;
            let hi = p.row_ptr[i + 1] as usize;
            let sum: f64 = p.w[lo..hi].iter().sum();
            assert!((sum - 1.0).abs() < 1e-15, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn vcycle_solves_to_dense_reference() {
        let raster = MgRaster {
            n: 12,
            layers: 2,
            extras: 2,
        };
        let a = raster_network(&raster, 1.0, 0.25, 0.05);
        let h = MgHierarchy::build(&a, raster, MgOptions::default()).expect("hierarchy builds");
        assert!(h.levels() >= 2, "n=12 must coarsen at least once");
        let b: Vec<f64> = (0..a.n()).map(|i| ((i % 11) as f64) - 5.0).collect();
        let dense = dense_cholesky_solve(&a, &b).unwrap();
        let sol = h.solve(&b, None, 1e-12).unwrap();
        for (i, d) in dense.iter().enumerate() {
            assert!((sol.x[i] - d).abs() < 1e-8, "node {i}: {} vs {d}", sol.x[i]);
        }
        assert!(sol.iterations > 0 && sol.iterations < 60);
    }

    #[test]
    fn zero_rhs_returns_zero_without_cycles() {
        let raster = MgRaster {
            n: 8,
            layers: 1,
            extras: 0,
        };
        let a = raster_network(&raster, 1.0, 0.1, 0.2);
        let h = MgHierarchy::build(&a, raster, MgOptions::default()).unwrap();
        let sol = h.solve(&vec![0.0; a.n()], None, 1e-12).unwrap();
        assert_eq!(sol.iterations, 0);
        assert!(sol.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn warm_start_converges_to_the_same_answer() {
        let raster = MgRaster {
            n: 8,
            layers: 2,
            extras: 1,
        };
        let a = raster_network(&raster, 0.8, 0.3, 0.1);
        let h = MgHierarchy::build(&a, raster, MgOptions::default()).unwrap();
        let b: Vec<f64> = (0..a.n()).map(|i| (i as f64).sin()).collect();
        let cold = h.solve(&b, None, 1e-12).unwrap();
        let x0: Vec<f64> = cold.x.iter().map(|v| v * 1.05).collect();
        let warm = h.solve(&b, Some(&x0), 1e-12).unwrap();
        for i in 0..a.n() {
            assert!((warm.x[i] - cold.x[i]).abs() < 1e-9);
        }
        assert!(warm.iterations <= cold.iterations);
    }

    #[test]
    fn mismatched_raster_fails_the_build() {
        let raster = MgRaster {
            n: 8,
            layers: 1,
            extras: 0,
        };
        let a = raster_network(&raster, 1.0, 0.1, 0.2);
        let wrong = MgRaster {
            n: 9,
            layers: 1,
            extras: 0,
        };
        assert!(MgHierarchy::build(&a, wrong, MgOptions::default()).is_none());
    }

    #[test]
    fn tiny_grids_collapse_to_a_direct_solve() {
        let raster = MgRaster {
            n: 3,
            layers: 2,
            extras: 1,
        };
        let a = raster_network(&raster, 1.0, 0.2, 0.1);
        let h = MgHierarchy::build(&a, raster, MgOptions::default()).unwrap();
        assert_eq!(h.levels(), 1, "n ≤ coarsest_n is a single direct level");
        let b: Vec<f64> = (0..a.n()).map(|i| i as f64 * 0.1 - 0.5).collect();
        let dense = dense_cholesky_solve(&a, &b).unwrap();
        let sol = h.solve(&b, None, 1e-12).unwrap();
        for (i, d) in dense.iter().enumerate() {
            assert!((sol.x[i] - d).abs() < 1e-9, "node {i}");
        }
    }

    /// Every operator level of `x` is bitwise equal to `y`'s.
    fn assert_levels_bitwise(x: &MgHierarchy, y: &MgHierarchy) {
        assert_eq!(x.levels(), y.levels());
        for l in 0..x.levels() {
            assert_eq!(
                x.level_matrix(l).values(),
                y.level_matrix(l).values(),
                "level {l} operator values diverge"
            );
            assert_eq!(x.levels[l].off_val, y.levels[l].off_val, "level {l} f32");
            assert_eq!(
                x.levels[l].inv_diag32, y.levels[l].inv_diag32,
                "level {l} diag"
            );
        }
        assert_eq!(x.coarse.l, y.coarse.l, "coarsest factor diverges");
    }

    #[test]
    fn refill_on_shared_scaffold_is_bitwise_identical_to_build() {
        let raster = MgRaster {
            n: 12,
            layers: 3,
            extras: 2,
        };
        let a1 = raster_network(&raster, 1.0, 0.25, 0.05);
        let h1 = MgHierarchy::build(&a1, raster, MgOptions::default()).unwrap();
        // Same shape, different values — the ~3k-models-per-shape case.
        let a2 = raster_network(&raster, 1.7, 0.4, 0.02);
        let fresh = MgHierarchy::build(&a2, raster, MgOptions::default()).unwrap();
        let refilled = MgHierarchy::from_scaffold(h1.scaffold().clone(), &a2).unwrap();
        assert_levels_bitwise(&fresh, &refilled);
        let b: Vec<f64> = (0..a2.n()).map(|i| ((i % 13) as f64) - 6.0).collect();
        let s1 = fresh.solve(&b, None, 1e-11).unwrap();
        let s2 = refilled.solve(&b, None, 1e-11).unwrap();
        assert_eq!(s1.iterations, s2.iterations);
        assert_eq!(s1.x, s2.x, "solutions must be bitwise identical");
    }

    #[test]
    fn dirty_refill_matches_full_refill_bitwise() {
        let raster = MgRaster {
            n: 10,
            layers: 2,
            extras: 1,
        };
        let base_m = raster_network(&raster, 1.0, 0.25, 0.05);
        let base = MgHierarchy::build(&base_m, raster, MgOptions::default()).unwrap();
        // Perturb one vertical link: both end rows go dirty, nothing else.
        let (i, j) = (raster.node(0, 3, 4), raster.node(1, 3, 4));
        let mut patched = base_m.clone();
        {
            let bump = |m: &mut CsrMatrix, r: usize, c: usize, dv: f64| {
                let (row_ptr, col, _) = m.parts();
                let k = (row_ptr[r] as usize..row_ptr[r + 1] as usize)
                    .find(|&k| col[k] as usize == c)
                    .unwrap();
                m.values_mut()[k] += dv;
            };
            let dg = 0.35;
            bump(&mut patched, i, i, dg);
            bump(&mut patched, j, j, dg);
            bump(&mut patched, i, j, -dg);
            bump(&mut patched, j, i, -dg);
        }
        let mut dirty = vec![false; patched.n()];
        dirty[i] = true;
        dirty[j] = true;
        let full = MgHierarchy::from_scaffold(base.scaffold().clone(), &patched).unwrap();
        let inc =
            MgHierarchy::refill_dirty(base.scaffold().clone(), &patched, &base, &dirty).unwrap();
        assert_levels_bitwise(&full, &inc);
    }

    #[test]
    fn refill_rejects_a_foreign_pattern() {
        let raster = MgRaster {
            n: 8,
            layers: 2,
            extras: 0,
        };
        let a = raster_network(&raster, 1.0, 0.25, 0.05);
        let h = MgHierarchy::build(&a, raster, MgOptions::default()).unwrap();
        let other_raster = MgRaster {
            n: 8,
            layers: 2,
            extras: 1,
        };
        let other = raster_network(&other_raster, 1.0, 0.25, 0.05);
        assert!(MgHierarchy::from_scaffold(h.scaffold().clone(), &other).is_none());
        let dirty = vec![false; other.n()];
        assert!(MgHierarchy::refill_dirty(h.scaffold().clone(), &other, &h, &dirty).is_none());
    }

    #[test]
    fn refill_dirty_requires_the_same_scaffold() {
        let raster = MgRaster {
            n: 8,
            layers: 2,
            extras: 0,
        };
        let a = raster_network(&raster, 1.0, 0.25, 0.05);
        let h = MgHierarchy::build(&a, raster, MgOptions::default()).unwrap();
        let foreign = Arc::new(MgScaffold::build(&a, raster, MgOptions::default()).unwrap());
        let dirty = vec![false; a.n()];
        assert!(MgHierarchy::refill_dirty(foreign, &a, &h, &dirty).is_none());
    }
}
