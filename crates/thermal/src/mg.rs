//! Geometric multigrid solver tier over the thermal raster.
//!
//! The package network ([`crate::network`]) is `layers` copies of an
//! `n × n` finite-volume grid stacked vertically, plus a handful of lumped
//! periphery nodes appended after the grid block. That raster structure is
//! exactly what geometric multigrid exploits: coarse problems are built by
//! halving the in-plane resolution level by level (layers are few and
//! strongly heterogeneous, so the hierarchy semicoarsens in-plane only and
//! keeps every layer at every level), while the lumped periphery nodes ride
//! along unchanged — the identity block of every transfer operator.
//!
//! * **Prolongation** `P` is cell-centered bilinear interpolation per layer
//!   (weights 3/4 / 1/4 per dimension, folded onto the boundary cell where a
//!   neighbor is missing), identity on the lumped nodes. Row sums are 1, so
//!   constants — the nullspace direction the ground links barely pin —
//!   prolongate exactly.
//! * **Restriction** is the adjoint `R = Pᵀ` (full weighting up to the
//!   scalar), which makes the Galerkin coarse operator `A_c = Pᵀ·A·P`
//!   symmetric and positive definite whenever `A` is: the hierarchy inherits
//!   SPD-ness all the way down, no rediscretization needed. The same raster
//!   arithmetic also covers irregular operators (periphery links, ground
//!   conductances) that a rediscretized coarse stencil would have to model
//!   by hand.
//! * **Smoothing** is red-black Gauss–Seidel in *f32*: each level keeps an
//!   `f32` copy of its matrix values and reciprocal diagonal, and sweeps
//!   red cells (`(ix+iy+layer)` even) then black; post-smoothing replays the
//!   exact reverse order so a (ν, ν) V-cycle is symmetric up to `f32`
//!   rounding. Residuals, transfers and corrections stay in f64 — the
//!   mixed-precision split of a defect-correction iteration, where the
//!   low-precision inner solve bounds the *convergence factor*, never the
//!   attainable accuracy.
//! * **Coarsest solve** is a dense Cholesky factorization, factored once at
//!   hierarchy build (the coarsest problem is a few dozen to a few hundred
//!   nodes).
//!
//! The V-cycle is usable two ways: [`MgHierarchy::solve`] iterates
//! f64 defect correction to a relative-residual tolerance (the standalone
//! solver the MMS refinement ladder measures), and
//! [`crate::sparse::Preconditioner::Multigrid`] wraps one V-cycle as the
//! preconditioner of the existing PCG (`SolverKind::Multigrid` /
//! `TAC25D_SOLVER=mg`), which is what production solves use — CG
//! acceleration makes the iteration count even flatter in `h` and inherits
//! the warm-start and obs plumbing of the fast path.

use std::sync::Mutex;

use crate::sparse::{CsrMatrix, PcgSolution, SolveError, TripletMatrix};
use tac25d_obs as obs;

/// The raster shape of a network: `layers` stacked `n × n` grids followed
/// by `extras` lumped (periphery) nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MgRaster {
    /// Grid cells per side.
    pub n: usize,
    /// Number of gridded layers.
    pub layers: usize,
    /// Lumped nodes appended after the grid block.
    pub extras: usize,
}

impl MgRaster {
    /// Total node count of this raster.
    pub fn nodes(&self) -> usize {
        self.layers * self.n * self.n + self.extras
    }

    /// Index of grid node `(ix, iy)` on layer `li` — the layout
    /// `crate::network` assembles.
    #[inline]
    fn node(&self, li: usize, ix: usize, iy: usize) -> usize {
        li * self.n * self.n + iy * self.n + ix
    }

    /// The next-coarser raster: in-plane cells halved (rounding up), layers
    /// and lumped nodes unchanged.
    fn coarsened(&self) -> MgRaster {
        MgRaster {
            n: self.n.div_ceil(2),
            ..*self
        }
    }
}

/// Cycle shape and stopping parameters.
#[derive(Debug, Clone, Copy)]
pub struct MgOptions {
    /// Red-black Gauss–Seidel sweeps before coarse-grid correction.
    pub pre_sweeps: usize,
    /// Sweeps after correction (reverse order, for symmetry).
    pub post_sweeps: usize,
    /// Stop coarsening once `n` is at or below this (the level is then
    /// solved directly).
    pub coarsest_n: usize,
    /// Defect-correction V-cycle budget of [`MgHierarchy::solve`].
    pub max_cycles: usize,
}

impl Default for MgOptions {
    fn default() -> Self {
        MgOptions {
            pre_sweeps: 2,
            post_sweeps: 2,
            coarsest_n: 4,
            max_cycles: 200,
        }
    }
}

/// Largest coarsest-level size the dense factorization accepts; a raster
/// that cannot coarsen below this (pathologically many layers or lumped
/// nodes) fails the hierarchy build and the caller falls back to IC(0).
const MAX_DIRECT_NODES: usize = 2048;

/// Cell-centered bilinear prolongation from a coarse raster to the fine
/// raster one level up, stored CSR-style with fine nodes as rows (≤ 4
/// grid entries per row, identity on lumped nodes). The adjoint scatter of
/// the same triplets is the restriction.
#[derive(Debug, Clone)]
struct Prolongation {
    row_ptr: Vec<u32>,
    col: Vec<u32>,
    w: Vec<f64>,
    /// Coarse node count (column dimension).
    nc: usize,
}

impl Prolongation {
    fn build(fine: &MgRaster, coarse: &MgRaster) -> Prolongation {
        // Per-dimension interpolation stencil of fine cell f: the covering
        // coarse cell plus (when present) the neighbor the fine cell center
        // leans toward, weighted 3/4 : 1/4. At the domain edge the missing
        // neighbor's weight folds onto the covering cell, preserving unit
        // row sums.
        let stencil_1d = |f: usize, nc: usize| -> [(usize, f64); 2] {
            let c = f / 2;
            let towards = if f.is_multiple_of(2) {
                c.checked_sub(1)
            } else {
                Some(c + 1).filter(|&x| x < nc)
            };
            match towards {
                Some(nb) => [(c, 0.75), (nb, 0.25)],
                None => [(c, 1.0), (c, 0.0)],
            }
        };
        let mut row_ptr = Vec::with_capacity(fine.nodes() + 1);
        let mut col = Vec::new();
        let mut w = Vec::new();
        row_ptr.push(0u32);
        for li in 0..fine.layers {
            for fy in 0..fine.n {
                let ys = stencil_1d(fy, coarse.n);
                for fx in 0..fine.n {
                    let xs = stencil_1d(fx, coarse.n);
                    for &(cy, wy) in &ys {
                        for &(cx, wx) in &xs {
                            let weight = wx * wy;
                            if weight > 0.0 {
                                col.push(coarse.node(li, cx, cy) as u32);
                                w.push(weight);
                            }
                        }
                    }
                    row_ptr.push(col.len() as u32);
                }
            }
        }
        let fine_grid = fine.layers * fine.n * fine.n;
        let coarse_grid = coarse.layers * coarse.n * coarse.n;
        for e in 0..fine.extras {
            debug_assert_eq!(fine_grid + e, row_ptr.len() - 1);
            col.push((coarse_grid + e) as u32);
            w.push(1.0);
            row_ptr.push(col.len() as u32);
        }
        Prolongation {
            row_ptr,
            col,
            w,
            nc: coarse.nodes(),
        }
    }

    /// `out = Pᵀ·v` (restriction; `v` lives on the fine level).
    fn restrict(&self, v: &[f64], out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.nc);
        out.fill(0.0);
        for (i, &vi) in v.iter().enumerate() {
            let lo = self.row_ptr[i] as usize;
            let hi = self.row_ptr[i + 1] as usize;
            for k in lo..hi {
                out[self.col[k] as usize] += self.w[k] * vi;
            }
        }
    }

    /// `out += P·v` (prolongated correction; `v` lives on the coarse level).
    fn prolong_add(&self, v: &[f64], out: &mut [f64]) {
        for (i, oi) in out.iter_mut().enumerate() {
            let lo = self.row_ptr[i] as usize;
            let hi = self.row_ptr[i + 1] as usize;
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.w[k] * v[self.col[k] as usize];
            }
            *oi += acc;
        }
    }

    /// The Galerkin triple product `Pᵀ·A·P` — the coarse operator. Scatter
    /// through a triplet accumulator; the pattern is a superset of the
    /// coarse raster stencil (9-point in-plane) and symmetric to rounding.
    fn galerkin(&self, a: &CsrMatrix) -> CsrMatrix {
        let (row_ptr, col, val) = a.parts();
        let mut t = TripletMatrix::new(self.nc);
        for i in 0..a.n() {
            let pi_lo = self.row_ptr[i] as usize;
            let pi_hi = self.row_ptr[i + 1] as usize;
            for k in row_ptr[i] as usize..row_ptr[i + 1] as usize {
                let j = col[k] as usize;
                let aij = val[k];
                let pj_lo = self.row_ptr[j] as usize;
                let pj_hi = self.row_ptr[j + 1] as usize;
                for ki in pi_lo..pi_hi {
                    let wi_aij = self.w[ki] * aij;
                    for kj in pj_lo..pj_hi {
                        t.add(
                            self.col[ki] as usize,
                            self.col[kj] as usize,
                            wi_aij * self.w[kj],
                        );
                    }
                }
            }
        }
        t.to_csr()
    }
}

/// One level of the hierarchy: the (Galerkin) operator, its f32 smoothing
/// copy, and the red-black sweep order.
#[derive(Debug, Clone)]
struct Level {
    a: CsrMatrix,
    /// f32 copy of the CSR values, same pattern order — the smoother's
    /// working precision.
    a32: Vec<f32>,
    /// Reciprocal diagonal in f32.
    inv_diag32: Vec<f32>,
    /// Red grid cells (`(ix+iy+layer)` even) first, then black cells and
    /// lumped nodes; post-smoothing replays this order reversed.
    order: Vec<u32>,
    /// Prolongation from the next-coarser level (absent on the coarsest).
    p: Option<Prolongation>,
}

impl Level {
    fn new(a: CsrMatrix, raster: &MgRaster) -> Option<Level> {
        let diag = a.diagonal();
        if diag.iter().any(|&d| d <= 0.0 || !d.is_finite()) {
            return None;
        }
        let a32: Vec<f32> = a.parts().2.iter().map(|&v| v as f32).collect();
        let inv_diag32: Vec<f32> = diag.iter().map(|&d| (1.0 / d) as f32).collect();
        let mut order = Vec::with_capacity(raster.nodes());
        for color in 0..2usize {
            for li in 0..raster.layers {
                for iy in 0..raster.n {
                    for ix in 0..raster.n {
                        if (ix + iy + li) % 2 == color {
                            order.push(raster.node(li, ix, iy) as u32);
                        }
                    }
                }
            }
        }
        let grid = raster.layers * raster.n * raster.n;
        for e in 0..raster.extras {
            order.push((grid + e) as u32);
        }
        Some(Level {
            a,
            a32,
            inv_diag32,
            order,
            p: None,
        })
    }

    /// One Gauss–Seidel sweep over `order` (forward) or its reverse
    /// (backward), in f32: `x[i] ← (b[i] − Σ_{j≠i} a_ij·x[j]) / a_ii`.
    /// Sequential and in fixed order — bit-for-bit deterministic.
    fn smooth(&self, b: &[f64], x: &mut [f64], backward: bool) {
        let (row_ptr, col, _) = self.a.parts();
        let mut sweep = |i: usize| {
            let lo = row_ptr[i] as usize;
            let hi = row_ptr[i + 1] as usize;
            let mut sigma = 0.0f32;
            for (&j, &a) in col[lo..hi].iter().zip(&self.a32[lo..hi]) {
                let j = j as usize;
                if j != i {
                    sigma += a * x[j] as f32;
                }
            }
            x[i] = f64::from((b[i] as f32 - sigma) * self.inv_diag32[i]);
        };
        if backward {
            for &i in self.order.iter().rev() {
                sweep(i as usize);
            }
        } else {
            for &i in &self.order {
                sweep(i as usize);
            }
        }
    }
}

/// Dense Cholesky factor of the coarsest operator, factored once at
/// hierarchy build and reused by every cycle.
#[derive(Debug, Clone)]
struct DenseCholesky {
    n: usize,
    /// Lower-triangular factor, row-major `n × n` (upper part unused).
    l: Vec<f64>,
}

impl DenseCholesky {
    fn factor(a: &CsrMatrix) -> Option<DenseCholesky> {
        let n = a.n();
        let mut m = vec![0.0f64; n * n];
        let (row_ptr, col, val) = a.parts();
        for i in 0..n {
            for k in row_ptr[i] as usize..row_ptr[i + 1] as usize {
                m[i * n + col[k] as usize] = val[k];
            }
        }
        for j in 0..n {
            let mut d = m[j * n + j];
            for k in 0..j {
                d -= m[j * n + k] * m[j * n + k];
            }
            if d <= 0.0 || !d.is_finite() {
                return None;
            }
            let d = d.sqrt();
            m[j * n + j] = d;
            for i in (j + 1)..n {
                let mut s = m[i * n + j];
                for k in 0..j {
                    s -= m[i * n + k] * m[j * n + k];
                }
                m[i * n + j] = s / d;
            }
        }
        Some(DenseCholesky { n, l: m })
    }

    fn solve(&self, b: &[f64], x: &mut [f64]) {
        let n = self.n;
        // Forward substitution L·y = b (y stored in x) …
        for i in 0..n {
            let mut s = b[i];
            for (k, xk) in x[..i].iter().enumerate() {
                s -= self.l[i * n + k] * xk;
            }
            x[i] = s / self.l[i * n + i];
        }
        // … then back substitution Lᵀ·x = y.
        for i in (0..n).rev() {
            let mut s = x[i];
            for (k, xk) in x.iter().enumerate().skip(i + 1) {
                s -= self.l[k * n + i] * xk;
            }
            x[i] = s / self.l[i * n + i];
        }
    }
}

/// Per-level work vectors, reused across cycles behind a mutex so a shared
/// hierarchy (the factor-once/solve-many contract, including concurrent
/// serve evaluators) never allocates in steady state.
#[derive(Debug, Default)]
struct LevelScratch {
    b: Vec<f64>,
    x: Vec<f64>,
    r: Vec<f64>,
}

/// A built multigrid hierarchy: factor-once state reused by every solve of
/// the same matrix, analogous to [`crate::sparse::Ic0`].
#[derive(Debug)]
pub struct MgHierarchy {
    levels: Vec<Level>,
    coarse: DenseCholesky,
    opts: MgOptions,
    scratch: Mutex<Vec<LevelScratch>>,
}

impl MgHierarchy {
    /// Builds the hierarchy for `a` laid out on `raster`: Galerkin coarse
    /// operators down to `coarsest_n`, f32 smoothing copies, and the dense
    /// coarsest factorization.
    ///
    /// Returns `None` when the hierarchy cannot be built — dimension
    /// mismatch, a non-positive diagonal on some level, a coarsest problem
    /// too large to factor densely, or a coarsest factorization breakdown.
    /// Like IC(0)'s Jacobi fallback, `None` downgrades the caller to the
    /// existing preconditioner rather than failing the solve.
    pub fn build(a: &CsrMatrix, raster: MgRaster, opts: MgOptions) -> Option<MgHierarchy> {
        if raster.n == 0 || raster.layers == 0 || a.n() != raster.nodes() {
            return None;
        }
        let mut levels = Vec::new();
        let mut cur = raster;
        let mut fine = Level::new(a.clone(), &cur)?;
        while cur.n > opts.coarsest_n && cur.coarsened().n < cur.n {
            let coarse_raster = cur.coarsened();
            let p = Prolongation::build(&cur, &coarse_raster);
            let ac = p.galerkin(&fine.a);
            let next = Level::new(ac, &coarse_raster)?;
            fine.p = Some(p);
            levels.push(fine);
            fine = next;
            cur = coarse_raster;
        }
        if cur.nodes() > MAX_DIRECT_NODES {
            return None;
        }
        let coarse = DenseCholesky::factor(&fine.a)?;
        levels.push(fine);
        let scratch = levels
            .iter()
            .map(|l| LevelScratch {
                b: vec![0.0; l.a.n()],
                x: vec![0.0; l.a.n()],
                r: vec![0.0; l.a.n()],
            })
            .collect();
        obs::gauge!("thermal.mg_levels").set(levels.len() as f64);
        Some(MgHierarchy {
            levels,
            coarse,
            opts,
            scratch: Mutex::new(scratch),
        })
    }

    /// Number of levels (finest included).
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// The operator of level `l` (0 = finest; Galerkin products below).
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn level_matrix(&self, l: usize) -> &CsrMatrix {
        &self.levels[l].a
    }

    /// Restriction `Pᵀ·v` from level `l` to level `l + 1` (test hook for
    /// the transfer-operator invariants).
    ///
    /// # Panics
    ///
    /// Panics if `l` is the coarsest level or `v` has the wrong length.
    pub fn restrict(&self, l: usize, v: &[f64]) -> Vec<f64> {
        let p = self.levels[l].p.as_ref().expect("level has a coarser one");
        assert_eq!(v.len(), self.levels[l].a.n(), "fine vector length");
        let mut out = vec![0.0; p.nc];
        p.restrict(v, &mut out);
        out
    }

    /// Prolongation `P·v` from level `l + 1` to level `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is the coarsest level or `v` has the wrong length.
    pub fn prolong(&self, l: usize, v: &[f64]) -> Vec<f64> {
        let p = self.levels[l].p.as_ref().expect("level has a coarser one");
        assert_eq!(v.len(), p.nc, "coarse vector length");
        let mut out = vec![0.0; self.levels[l].a.n()];
        p.prolong_add(v, &mut out);
        out
    }

    /// One V-cycle on the error equation `A·z = r` from a zero initial
    /// guess — the preconditioner application of
    /// [`crate::sparse::Preconditioner::Multigrid`].
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match the finest level.
    pub fn precondition(&self, r: &[f64], z: &mut [f64]) {
        let mut scratch = self.scratch.lock().expect("mg scratch poisoned");
        scratch[0].b.copy_from_slice(r);
        self.vcycle(0, &mut scratch);
        z.copy_from_slice(&scratch[0].x);
        obs::counter!("thermal.mg_vcycles").inc();
    }

    fn vcycle(&self, l: usize, s: &mut [LevelScratch]) {
        if l + 1 == self.levels.len() {
            let LevelScratch { b, x, .. } = &mut s[l];
            self.coarse.solve(b, x);
            return;
        }
        let lvl = &self.levels[l];
        obs::histogram!("thermal.mg_smooth_level").record(l as u64);
        {
            let LevelScratch { b, x, r } = &mut s[l];
            x.fill(0.0);
            for _ in 0..self.opts.pre_sweeps {
                lvl.smooth(b, x, false);
            }
            lvl.a.mul_vec(x, r);
            for (ri, bi) in r.iter_mut().zip(b.iter()) {
                *ri = bi - *ri;
            }
        }
        let p = lvl.p.as_ref().expect("non-coarsest level prolongates");
        {
            let (fine, coarse) = s.split_at_mut(l + 1);
            p.restrict(&fine[l].r, &mut coarse[0].b);
        }
        self.vcycle(l + 1, s);
        {
            let (fine, coarse) = s.split_at_mut(l + 1);
            p.prolong_add(&coarse[0].x, &mut fine[l].x);
        }
        let LevelScratch { b, x, .. } = &mut s[l];
        for _ in 0..self.opts.post_sweeps {
            lvl.smooth(b, x, true);
        }
    }

    /// Standalone multigrid solve of `A·x = b` by f64 defect correction:
    /// each iteration computes the full-precision residual and applies one
    /// V-cycle to it, so the f32 smoother bounds the convergence *rate*
    /// while the attainable accuracy matches the f64 PCG paths.
    /// `iterations` in the returned solution counts V-cycles.
    ///
    /// # Errors
    ///
    /// [`SolveError::NoConvergence`] when the relative residual has not
    /// reached `rel_tol` within the cycle budget, and
    /// [`SolveError::NumericalBreakdown`] on non-finite residuals.
    pub fn solve(
        &self,
        b: &[f64],
        x0: Option<&[f64]>,
        rel_tol: f64,
    ) -> Result<PcgSolution, SolveError> {
        let _span = obs::span!("thermal.mg_solve");
        let n = self.levels[0].a.n();
        assert_eq!(b.len(), n, "rhs length mismatch");
        let b_norm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        if b_norm == 0.0 {
            return Ok(PcgSolution {
                x: vec![0.0; n],
                iterations: 0,
                residual: 0.0,
            });
        }
        let mut x = match x0 {
            Some(x0) => {
                assert_eq!(x0.len(), n, "warm-start length mismatch");
                x0.to_vec()
            }
            None => vec![0.0; n],
        };
        let mut r = vec![0.0; n];
        let mut res = f64::INFINITY;
        for cycles in 0..=self.opts.max_cycles {
            self.levels[0].a.mul_vec(&x, &mut r);
            for (ri, bi) in r.iter_mut().zip(b.iter()) {
                *ri = bi - *ri;
            }
            res = r.iter().map(|v| v * v).sum::<f64>().sqrt() / b_norm;
            if !res.is_finite() {
                return Err(SolveError::NumericalBreakdown);
            }
            if res <= rel_tol {
                obs::gauge!("thermal.mg_final_residual").set(res);
                return Ok(PcgSolution {
                    x,
                    iterations: cycles,
                    residual: res,
                });
            }
            if cycles == self.opts.max_cycles {
                break;
            }
            let mut scratch = self.scratch.lock().expect("mg scratch poisoned");
            scratch[0].b.copy_from_slice(&r);
            self.vcycle(0, &mut scratch);
            for (xi, ei) in x.iter_mut().zip(scratch[0].x.iter()) {
                *xi += ei;
            }
            drop(scratch);
            obs::counter!("thermal.mg_vcycles").inc();
        }
        Err(SolveError::NoConvergence {
            iterations: self.opts.max_cycles,
            residual: res,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::dense_cholesky_solve;

    /// A raster-shaped conductance network: 5/7-point grid couplings with
    /// mildly varying conductances plus a ground on every top-layer cell —
    /// the class of matrices `crate::network` assembles.
    fn raster_network(raster: &MgRaster, lat: f64, vert: f64, ground: f64) -> CsrMatrix {
        let mut t = TripletMatrix::new(raster.nodes());
        let vary = |i: usize| 1.0 + 0.25 * ((i % 7) as f64 - 3.0) / 3.0;
        for li in 0..raster.layers {
            for iy in 0..raster.n {
                for ix in 0..raster.n {
                    let a = raster.node(li, ix, iy);
                    if ix + 1 < raster.n {
                        t.add_conductance(a, raster.node(li, ix + 1, iy), lat * vary(a));
                    }
                    if iy + 1 < raster.n {
                        t.add_conductance(a, raster.node(li, ix, iy + 1), lat * vary(a + 1));
                    }
                    if li + 1 < raster.layers {
                        t.add_conductance(a, raster.node(li + 1, ix, iy), vert * vary(a + 2));
                    }
                    if li == 0 {
                        t.add_ground(a, ground);
                    }
                }
            }
        }
        let grid = raster.layers * raster.n * raster.n;
        for e in 0..raster.extras {
            // Each lumped node couples to a boundary cell and to ambient.
            t.add_conductance(grid + e, raster.node(0, 0, e % raster.n), 0.3);
            t.add_ground(grid + e, 0.2);
        }
        t.to_csr()
    }

    #[test]
    fn prolongation_rows_sum_to_one() {
        let fine = MgRaster {
            n: 9,
            layers: 2,
            extras: 3,
        };
        let p = Prolongation::build(&fine, &fine.coarsened());
        for i in 0..fine.nodes() {
            let lo = p.row_ptr[i] as usize;
            let hi = p.row_ptr[i + 1] as usize;
            let sum: f64 = p.w[lo..hi].iter().sum();
            assert!((sum - 1.0).abs() < 1e-15, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn vcycle_solves_to_dense_reference() {
        let raster = MgRaster {
            n: 12,
            layers: 2,
            extras: 2,
        };
        let a = raster_network(&raster, 1.0, 0.25, 0.05);
        let h = MgHierarchy::build(&a, raster, MgOptions::default()).expect("hierarchy builds");
        assert!(h.levels() >= 2, "n=12 must coarsen at least once");
        let b: Vec<f64> = (0..a.n()).map(|i| ((i % 11) as f64) - 5.0).collect();
        let dense = dense_cholesky_solve(&a, &b).unwrap();
        let sol = h.solve(&b, None, 1e-12).unwrap();
        for (i, d) in dense.iter().enumerate() {
            assert!((sol.x[i] - d).abs() < 1e-8, "node {i}: {} vs {d}", sol.x[i]);
        }
        assert!(sol.iterations > 0 && sol.iterations < 60);
    }

    #[test]
    fn zero_rhs_returns_zero_without_cycles() {
        let raster = MgRaster {
            n: 8,
            layers: 1,
            extras: 0,
        };
        let a = raster_network(&raster, 1.0, 0.1, 0.2);
        let h = MgHierarchy::build(&a, raster, MgOptions::default()).unwrap();
        let sol = h.solve(&vec![0.0; a.n()], None, 1e-12).unwrap();
        assert_eq!(sol.iterations, 0);
        assert!(sol.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn warm_start_converges_to_the_same_answer() {
        let raster = MgRaster {
            n: 8,
            layers: 2,
            extras: 1,
        };
        let a = raster_network(&raster, 0.8, 0.3, 0.1);
        let h = MgHierarchy::build(&a, raster, MgOptions::default()).unwrap();
        let b: Vec<f64> = (0..a.n()).map(|i| (i as f64).sin()).collect();
        let cold = h.solve(&b, None, 1e-12).unwrap();
        let x0: Vec<f64> = cold.x.iter().map(|v| v * 1.05).collect();
        let warm = h.solve(&b, Some(&x0), 1e-12).unwrap();
        for i in 0..a.n() {
            assert!((warm.x[i] - cold.x[i]).abs() < 1e-9);
        }
        assert!(warm.iterations <= cold.iterations);
    }

    #[test]
    fn mismatched_raster_fails_the_build() {
        let raster = MgRaster {
            n: 8,
            layers: 1,
            extras: 0,
        };
        let a = raster_network(&raster, 1.0, 0.1, 0.2);
        let wrong = MgRaster {
            n: 9,
            layers: 1,
            extras: 0,
        };
        assert!(MgHierarchy::build(&a, wrong, MgOptions::default()).is_none());
    }

    #[test]
    fn tiny_grids_collapse_to_a_direct_solve() {
        let raster = MgRaster {
            n: 3,
            layers: 2,
            extras: 1,
        };
        let a = raster_network(&raster, 1.0, 0.2, 0.1);
        let h = MgHierarchy::build(&a, raster, MgOptions::default()).unwrap();
        assert_eq!(h.levels(), 1, "n ≤ coarsest_n is a single direct level");
        let b: Vec<f64> = (0..a.n()).map(|i| i as f64 * 0.1 - 0.5).collect();
        let dense = dense_cholesky_solve(&a, &b).unwrap();
        let sol = h.solve(&b, None, 1e-12).unwrap();
        for (i, d) in dense.iter().enumerate() {
            assert!((sol.x[i] - d).abs() < 1e-9, "node {i}");
        }
    }
}
