//! Criterion timing of the sparse-solver fast path on a fig8-sized
//! system: the raw SpMV, both PCG preconditioners (legacy Jacobi vs the
//! IC(0) fast path) and the bare IC(0) triangular-solve application.
//!
//! The system is the same shape the package models assemble — a layered
//! 3D conductance grid (32×32 nodes per layer, 8 layers, convective
//! ground on the top layer) built directly from `TripletMatrix`, so the
//! bench isolates solver cost from model construction.

use criterion::{criterion_group, criterion_main, Criterion};
use tac25d_thermal::sparse::{pcg, pcg_with, Preconditioner, SolveScratch, TripletMatrix};

const NX: usize = 32;
const NZ: usize = 8;

/// A layered 3D grid Laplacian with fig8-like conductance contrasts:
/// in-plane links of ~1 W/K, vertical links one order weaker, and a
/// convective ground over the whole top layer.
fn grid_system() -> (tac25d_thermal::sparse::CsrMatrix, Vec<f64>) {
    let n2 = NX * NX;
    let mut t = TripletMatrix::new(n2 * NZ);
    let idx = |x: usize, y: usize, z: usize| z * n2 + y * NX + x;
    for z in 0..NZ {
        for y in 0..NX {
            for x in 0..NX {
                if x + 1 < NX {
                    t.add_conductance(idx(x, y, z), idx(x + 1, y, z), 1.0);
                }
                if y + 1 < NX {
                    t.add_conductance(idx(x, y, z), idx(x, y + 1, z), 1.0);
                }
                if z + 1 < NZ {
                    t.add_conductance(idx(x, y, z), idx(x, y, z + 1), 0.1);
                }
            }
        }
    }
    for y in 0..NX {
        for x in 0..NX {
            t.add_ground(idx(x, y, NZ - 1), 0.05);
        }
    }
    let a = t.to_csr();
    // Heat injected over a quarter of the bottom layer, like one hot
    // chiplet of a 2×2 organization.
    let mut b = vec![0.0; n2 * NZ];
    for y in 0..NX / 2 {
        for x in 0..NX / 2 {
            b[idx(x, y, 0)] = 180.0 / (NX * NX / 4) as f64;
        }
    }
    (a, b)
}

fn bench_mul_vec(c: &mut Criterion) {
    let (a, b) = grid_system();
    let mut out = vec![0.0; b.len()];
    c.bench_function("sparse_mul_vec_32x32x8", |bench| {
        bench.iter(|| a.mul_vec(&b, &mut out))
    });
}

fn bench_jacobi_pcg(c: &mut Criterion) {
    let (a, b) = grid_system();
    c.bench_function("pcg_jacobi_32x32x8", |bench| {
        bench.iter(|| pcg(&a, &b, None, 1e-8, 100_000).expect("jacobi pcg"))
    });
}

fn bench_ic0_pcg(c: &mut Criterion) {
    let (a, b) = grid_system();
    let m = Preconditioner::ic0_or_jacobi(&a).expect("preconditioner");
    assert!(m.is_ic0(), "grid Laplacian must factor");
    let mut scratch = SolveScratch::new();
    c.bench_function("pcg_ic0_32x32x8", |bench| {
        bench.iter(|| pcg_with(&a, &m, &b, None, 1e-8, 100_000, &mut scratch).expect("ic0 pcg"))
    });
}

fn bench_triangular_solve(c: &mut Criterion) {
    let (a, b) = grid_system();
    let m = Preconditioner::ic0_or_jacobi(&a).expect("preconditioner");
    let Preconditioner::Ic0(ic) = m else {
        panic!("grid Laplacian must factor");
    };
    let mut z = vec![0.0; b.len()];
    c.bench_function("ic0_triangular_solve_32x32x8", |bench| {
        bench.iter(|| ic.apply(&b, &mut z))
    });
}

criterion_group!(
    benches,
    bench_mul_vec,
    bench_jacobi_pcg,
    bench_ic0_pcg,
    bench_triangular_solve
);
criterion_main!(benches);
