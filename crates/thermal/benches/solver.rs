//! Criterion timing of the sparse-solver fast path on a fig8-sized
//! system: the raw SpMV, both PCG preconditioners (legacy Jacobi vs the
//! IC(0) fast path), the bare IC(0) triangular-solve application, and the
//! multigrid tier (standalone V-cycle solve and MG-preconditioned PCG) at
//! two grid sizes to expose its h-scaling.
//!
//! The system is the same shape the package models assemble — a layered
//! 3D conductance grid (n×n nodes per layer, 8 layers, convective
//! ground on the top layer) built directly from `TripletMatrix`, so the
//! bench isolates solver cost from model construction.

use criterion::{criterion_group, criterion_main, Criterion};
use tac25d_thermal::mg::{MgHierarchy, MgOptions, MgRaster, MgScaffold};
use tac25d_thermal::sparse::{pcg, pcg_with, Preconditioner, SolveScratch, TripletMatrix};

const NX: usize = 32;
const NZ: usize = 8;

/// A layered 3D grid Laplacian with fig8-like conductance contrasts:
/// in-plane links of ~1 W/K, vertical links one order weaker, and a
/// convective ground over the whole top layer.
fn grid_system_sized(nx: usize) -> (tac25d_thermal::sparse::CsrMatrix, Vec<f64>) {
    let n2 = nx * nx;
    let mut t = TripletMatrix::new(n2 * NZ);
    let idx = |x: usize, y: usize, z: usize| z * n2 + y * nx + x;
    for z in 0..NZ {
        for y in 0..nx {
            for x in 0..nx {
                if x + 1 < nx {
                    t.add_conductance(idx(x, y, z), idx(x + 1, y, z), 1.0);
                }
                if y + 1 < nx {
                    t.add_conductance(idx(x, y, z), idx(x, y + 1, z), 1.0);
                }
                if z + 1 < NZ {
                    t.add_conductance(idx(x, y, z), idx(x, y, z + 1), 0.1);
                }
            }
        }
    }
    for y in 0..nx {
        for x in 0..nx {
            t.add_ground(idx(x, y, NZ - 1), 0.05);
        }
    }
    let a = t.to_csr();
    // Heat injected over a quarter of the bottom layer, like one hot
    // chiplet of a 2×2 organization.
    let mut b = vec![0.0; n2 * NZ];
    for y in 0..nx / 2 {
        for x in 0..nx / 2 {
            b[idx(x, y, 0)] = 180.0 / (nx * nx / 4) as f64;
        }
    }
    (a, b)
}

fn grid_system() -> (tac25d_thermal::sparse::CsrMatrix, Vec<f64>) {
    grid_system_sized(NX)
}

/// The raster the bench grids are laid out on. The bench index order is
/// `z·n² + y·n + x` — layer-major exactly like the package assembly, so
/// the hierarchy semicoarsens in-plane with no lumped extras.
fn bench_raster(nx: usize) -> MgRaster {
    MgRaster {
        n: nx,
        layers: NZ,
        extras: 0,
    }
}

fn bench_mul_vec(c: &mut Criterion) {
    let (a, b) = grid_system();
    let mut out = vec![0.0; b.len()];
    c.bench_function("sparse_mul_vec_32x32x8", |bench| {
        bench.iter(|| a.mul_vec(&b, &mut out))
    });
}

fn bench_jacobi_pcg(c: &mut Criterion) {
    let (a, b) = grid_system();
    c.bench_function("pcg_jacobi_32x32x8", |bench| {
        bench.iter(|| pcg(&a, &b, None, 1e-8, 100_000).expect("jacobi pcg"))
    });
}

fn bench_ic0_pcg(c: &mut Criterion) {
    let (a, b) = grid_system();
    let m = Preconditioner::ic0_or_jacobi(&a).expect("preconditioner");
    assert!(m.is_ic0(), "grid Laplacian must factor");
    let mut scratch = SolveScratch::new();
    c.bench_function("pcg_ic0_32x32x8", |bench| {
        bench.iter(|| pcg_with(&a, &m, &b, None, 1e-8, 100_000, &mut scratch).expect("ic0 pcg"))
    });
}

fn bench_triangular_solve(c: &mut Criterion) {
    let (a, b) = grid_system();
    let m = Preconditioner::ic0_or_jacobi(&a).expect("preconditioner");
    let Preconditioner::Ic0(ic) = m else {
        panic!("grid Laplacian must factor");
    };
    let mut z = vec![0.0; b.len()];
    c.bench_function("ic0_triangular_solve_32x32x8", |bench| {
        bench.iter(|| ic.apply(&b, &mut z))
    });
}

/// Standalone V-cycle solve (f64 defect correction) at two grid sizes:
/// h-independence means the time per size tracks the node count, not the
/// condition number.
fn bench_mg_solve(c: &mut Criterion) {
    for nx in [32usize, 64] {
        let (a, b) = grid_system_sized(nx);
        let h = MgHierarchy::build(&a, bench_raster(nx), MgOptions::default())
            .expect("bench hierarchy");
        c.bench_function(&format!("mg_vcycle_solve_{nx}x{nx}x8"), |bench| {
            bench.iter(|| h.solve(&b, None, 1e-8).expect("mg solve"))
        });
    }
}

/// MG-preconditioned PCG at two grid sizes — the production configuration
/// of `TAC25D_SOLVER=mg`.
fn bench_mg_pcg(c: &mut Criterion) {
    for nx in [32usize, 64] {
        let (a, b) = grid_system_sized(nx);
        let h = MgHierarchy::build(&a, bench_raster(nx), MgOptions::default())
            .expect("bench hierarchy");
        let m = Preconditioner::Multigrid(std::sync::Arc::new(h));
        let mut scratch = SolveScratch::new();
        c.bench_function(&format!("pcg_mg_{nx}x{nx}x8"), |bench| {
            bench.iter(|| pcg_with(&a, &m, &b, None, 1e-8, 100_000, &mut scratch).expect("mg pcg"))
        });
    }
}

/// The symbolic scaffold build alone — the once-per-shape cost the
/// amortization moves out of the per-model path.
fn bench_mg_scaffold_build(c: &mut Criterion) {
    for nx in [32usize, 64] {
        let (a, _) = grid_system_sized(nx);
        c.bench_function(&format!("mg_scaffold_build_{nx}x{nx}x8"), |bench| {
            bench.iter(|| {
                MgScaffold::build(&a, bench_raster(nx), MgOptions::default())
                    .expect("bench scaffold")
            })
        });
    }
}

/// The per-model numeric refill on a shared scaffold — Galerkin values,
/// f32 smoother copies and the dense coarsest factor. The amortization
/// claim is this being much cheaper than `mg_scaffold_build` plus refill
/// (what `MgHierarchy::build` pays).
fn bench_mg_refill(c: &mut Criterion) {
    for nx in [32usize, 64] {
        let (a, _) = grid_system_sized(nx);
        let scaffold = std::sync::Arc::new(
            MgScaffold::build(&a, bench_raster(nx), MgOptions::default()).expect("bench scaffold"),
        );
        c.bench_function(&format!("mg_refill_{nx}x{nx}x8"), |bench| {
            bench.iter(|| MgHierarchy::from_scaffold(scaffold.clone(), &a).expect("bench refill"))
        });
    }
}

/// One fine-level red-black sweep (forward) — the inner loop the
/// color-major f32 layout targets.
fn bench_mg_smooth_sweep(c: &mut Criterion) {
    for nx in [32usize, 64] {
        let (a, b) = grid_system_sized(nx);
        let h = MgHierarchy::build(&a, bench_raster(nx), MgOptions::default())
            .expect("bench hierarchy");
        let mut x = vec![0.0; b.len()];
        c.bench_function(&format!("mg_smooth_sweep_{nx}x{nx}x8"), |bench| {
            bench.iter(|| h.smooth_once(0, &b, &mut x, false))
        });
    }
}

criterion_group!(
    benches,
    bench_mul_vec,
    bench_jacobi_pcg,
    bench_ic0_pcg,
    bench_triangular_solve,
    bench_mg_solve,
    bench_mg_pcg,
    bench_mg_scaffold_build,
    bench_mg_refill,
    bench_mg_smooth_sweep
);
criterion_main!(benches);
