//! Property-based tests of the geometry substrate.

use proptest::prelude::*;
use tac25d_floorplan::prelude::*;

proptest! {
    /// Intersection area is symmetric and bounded by each rect's area.
    #[test]
    fn intersection_symmetric_and_bounded(
        ax in 0.0..50.0f64, ay in 0.0..50.0f64, aw in 0.0..30.0f64, ah in 0.0..30.0f64,
        bx in 0.0..50.0f64, by in 0.0..50.0f64, bw in 0.0..30.0f64, bh in 0.0..30.0f64,
    ) {
        let a = Rect::from_corner(ax, ay, aw, ah);
        let b = Rect::from_corner(bx, by, bw, bh);
        let ab = a.intersection_area(&b).value();
        let ba = b.intersection_area(&a).value();
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab <= a.area().value() + 1e-9);
        prop_assert!(ab <= b.area().value() + 1e-9);
        prop_assert!(ab >= 0.0);
    }

    /// Translation preserves area and relative intersections.
    #[test]
    fn translation_invariance(
        ax in 0.0..20.0f64, ay in 0.0..20.0f64, aw in 0.1..10.0f64, ah in 0.1..10.0f64,
        bx in 0.0..20.0f64, by in 0.0..20.0f64, bw in 0.1..10.0f64, bh in 0.1..10.0f64,
        dx in -5.0..5.0f64, dy in -5.0..5.0f64,
    ) {
        let a = Rect::from_corner(ax, ay, aw, ah);
        let b = Rect::from_corner(bx, by, bw, bh);
        let before = a.intersection_area(&b).value();
        let after = a
            .translated(Mm(dx), Mm(dy))
            .intersection_area(&b.translated(Mm(dx), Mm(dy)))
            .value();
        prop_assert!((before - after).abs() < 1e-9);
    }

    /// Eq. (9) holds for every valid 16-chiplet spacing: the realized
    /// chiplet rects always span exactly the interposer minus guard bands.
    #[test]
    fn eq9_consistency(
        s1 in 0.0..10.0f64,
        s2_frac in 0.0..1.0f64,
        s3 in 0.0..10.0f64,
    ) {
        let chip = ChipSpec::scc_256();
        let rules = PackageRules::default();
        // Choose s2 within the Eq. (10) bound so the layout is valid.
        let s2 = s2_frac * (2.0 * s1 + s3) / 2.0;
        let layout = ChipletLayout::Symmetric16 {
            spacing: Spacing::new(s1, s2, s3),
        };
        let edge = layout.interposer_edge(&chip, &rules).unwrap();
        prop_assume!(edge.value() <= rules.max_interposer.value());
        layout.validate(&chip, &rules).unwrap();
        let rects = layout.chiplet_rects(&chip, &rules);
        // Outer ring chiplets touch the guard band on all four sides.
        let min_x = rects.iter().map(|r| r.x0().value()).fold(f64::INFINITY, f64::min);
        let max_x = rects.iter().map(|r| r.x1().value()).fold(0.0, f64::max);
        prop_assert!((min_x - 1.0).abs() < 1e-9);
        prop_assert!((max_x - (edge.value() - 1.0)).abs() < 1e-9);
        // Total silicon is conserved: 16 chiplets = one 18x18 chip.
        let total: f64 = rects.iter().map(|r| r.area().value()).sum();
        prop_assert!((total - 324.0).abs() < 1e-6);
    }

    /// Rasterized power is conserved for sources inside the footprint,
    /// regardless of grid resolution.
    #[test]
    fn power_conservation(
        n in 8usize..64,
        x in 0.0..15.0f64, y in 0.0..15.0f64,
        w in 0.1..5.0f64, h in 0.1..5.0f64,
        watts in 0.0..500.0f64,
    ) {
        let rect = Rect::from_corner(x, y, w, h);
        let g = power_grid(Mm(20.0), n, n, &[(rect, watts)]);
        prop_assert!((g.sum() - watts).abs() < 1e-6 * watts.max(1.0));
    }

    /// Coverage fractions stay in [0, 1] and total covered area equals the
    /// chiplet area for valid layouts.
    #[test]
    fn coverage_conservation(gap in 0.0..4.0f64, r in 2u16..6) {
        let chip = ChipSpec::scc_256();
        let rules = PackageRules::default();
        let layout = ChipletLayout::Uniform { r, gap: Mm(gap) };
        let edge = layout.interposer_edge(&chip, &rules).unwrap();
        prop_assume!(edge.value() <= 50.0);
        let rects = layout.chiplet_rects(&chip, &rules);
        let g = coverage_grid(edge, 48, 48, &rects);
        prop_assert!(g.as_slice().iter().all(|&c| (-1e-9..=1.0 + 1e-9).contains(&c)));
        let cell = (edge.value() / 48.0).powi(2);
        let covered: f64 = g.as_slice().iter().map(|c| c * cell).sum();
        prop_assert!((covered - 324.0).abs() < 1e-6);
    }

    /// Core placement always lands every core inside its chiplet and
    /// conserves total tile area.
    #[test]
    fn cores_inside_chiplets(s1 in 0.0..6.0f64, s2 in 0.0..3.0f64, s3 in 0.0..6.0f64) {
        let chip = ChipSpec::scc_256();
        let rules = PackageRules::default();
        let sp = Spacing::new(s1, s2, s3);
        prop_assume!(sp.satisfies_overlap_rule());
        let layout = ChipletLayout::Symmetric16 { spacing: sp };
        prop_assume!(layout.validate(&chip, &rules).is_ok());
        let rects = layout.chiplet_rects(&chip, &rules);
        let placed = place_cores(&chip, &layout, &rules).unwrap();
        for pc in &placed {
            prop_assert!(rects[pc.chiplet].contains_rect(&pc.rect));
        }
        let total: f64 = placed.iter().map(|p| p.rect.area().value()).sum();
        prop_assert!((total - 324.0).abs() < 1e-6);
    }

    /// Snapping is idempotent and lands on the lattice.
    #[test]
    fn snap_idempotent(v in -100.0..100.0f64) {
        let snapped = Mm(v).snap_to(Mm(0.5));
        prop_assert_eq!(snapped.snap_to(Mm(0.5)), snapped);
        let units = snapped.value() / 0.5;
        prop_assert!((units - units.round()).abs() < 1e-9);
    }
}
