//! Rasterization of chiplet organizations onto the regular grid used by the
//! thermal solver.
//!
//! The paper treats each core as a single block of heat source and runs
//! HotSpot on a 64×64 grid (Sec. IV). This module produces the same inputs:
//! a *coverage grid* (what fraction of each cell lies under silicon) that the
//! thermal crate turns into per-cell effective materials, and a *power grid*
//! that conservatively (area-weighted, power-preserving) distributes each
//! core tile's watts over the cells it touches.

use crate::chip::{ChipSpec, CoreId};
use crate::geometry::Rect;
use crate::organization::{ChipletLayout, LayoutError, PackageRules};
use crate::units::Mm;
use serde::{Deserialize, Serialize};

/// A dense row-major scalar grid over the package footprint.
///
/// Cell `(ix, iy)` covers `[ix·dx, (ix+1)·dx] × [iy·dy, (iy+1)·dy]` in
/// footprint coordinates; `ix` advances along x, `iy` along y.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    nx: usize,
    ny: usize,
    cells: Vec<f64>,
}

impl Grid {
    /// Creates a grid of `nx × ny` cells filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(nx: usize, ny: usize, value: f64) -> Self {
        assert!(
            nx > 0 && ny > 0,
            "grid dimensions must be positive ({nx}x{ny})"
        );
        Grid {
            nx,
            ny,
            cells: vec![value; nx * ny],
        }
    }

    /// Cells along x.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Cells along y.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total cell count.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the grid has no cells (never true for constructed
    /// grids; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Flat row-major index of cell `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    #[inline]
    pub fn idx(&self, ix: usize, iy: usize) -> usize {
        assert!(
            ix < self.nx && iy < self.ny,
            "cell ({ix},{iy}) out of {}x{}",
            self.nx,
            self.ny
        );
        iy * self.nx + ix
    }

    /// Value at cell `(ix, iy)`.
    #[inline]
    pub fn get(&self, ix: usize, iy: usize) -> f64 {
        self.cells[self.idx(ix, iy)]
    }

    /// Mutable reference to cell `(ix, iy)`.
    #[inline]
    pub fn get_mut(&mut self, ix: usize, iy: usize) -> &mut f64 {
        let i = self.idx(ix, iy);
        &mut self.cells[i]
    }

    /// Flat view of all cells (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.cells
    }

    /// Sum of all cell values.
    pub fn sum(&self) -> f64 {
        self.cells.iter().sum()
    }

    /// Maximum cell value (NaN-free inputs assumed).
    pub fn max(&self) -> f64 {
        self.cells.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }
}

/// A core tile placed at its physical location in footprint coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacedCore {
    /// The core's id on the logical 16×16 grid.
    pub core: CoreId,
    /// Index of the chiplet hosting the core (row-major over the chiplet
    /// grid; 0 for the single-chip baseline).
    pub chiplet: usize,
    /// Physical tile rectangle.
    pub rect: Rect,
}

/// Computes the physical placement of every core tile for a layout.
///
/// Cores keep their logical chip position *within* their chiplet; the
/// chiplet itself moves per the layout. The result is ordered by core id.
///
/// # Errors
///
/// Returns [`LayoutError::IndivisibleCoreGrid`] if the layout's r does not
/// divide the chip's core grid (e.g. a 3×3 uniform layout of the 16×16-core
/// chip), in which case no core-accurate map exists.
pub fn place_cores(
    chip: &ChipSpec,
    layout: &ChipletLayout,
    rules: &PackageRules,
) -> Result<Vec<PlacedCore>, LayoutError> {
    let r = layout.r();
    if !chip.divisible_by(r) {
        return Err(LayoutError::IndivisibleCoreGrid {
            r,
            cores_per_row: chip.cores_per_row(),
        });
    }
    let rects = layout.chiplet_rects(chip, rules);
    let tile = chip.tile_edge().value();
    let mut placed = Vec::with_capacity(chip.core_count() as usize);
    for core in chip.cores() {
        let (chiplet, (lrow, lcol)) = chip.core_to_chiplet(r, core);
        let host = &rects[chiplet];
        let rect = Rect::from_corner(
            host.x0().value() + f64::from(lcol) * tile,
            host.y0().value() + f64::from(lrow) * tile,
            tile,
            tile,
        );
        placed.push(PlacedCore {
            core,
            chiplet,
            rect,
        });
    }
    Ok(placed)
}

/// Rasterizes the fraction of each grid cell covered by any chiplet.
///
/// Values are in `[0, 1]`; the thermal crate mixes the layer's
/// `under_chiplet` and `background` materials by this fraction.
pub fn coverage_grid(footprint_edge: Mm, nx: usize, ny: usize, chiplets: &[Rect]) -> Grid {
    let mut grid = Grid::filled(nx, ny, 0.0);
    let dx = footprint_edge.value() / nx as f64;
    let dy = footprint_edge.value() / ny as f64;
    let cell_area = dx * dy;
    for rect in chiplets {
        splat(&mut grid, rect, dx, dy, |frac_area, cell| {
            *cell = (*cell + frac_area / cell_area).min(1.0);
        });
    }
    grid
}

/// Rasterizes a set of rectangular power sources (watts) onto the grid,
/// distributing each source's power over the cells it overlaps in proportion
/// to overlap area. Power is conserved for sources fully inside the
/// footprint.
pub fn power_grid(footprint_edge: Mm, nx: usize, ny: usize, sources: &[(Rect, f64)]) -> Grid {
    let mut grid = Grid::filled(nx, ny, 0.0);
    let dx = footprint_edge.value() / nx as f64;
    let dy = footprint_edge.value() / ny as f64;
    for (rect, watts) in sources {
        let area = rect.area().value();
        if area <= 0.0 || *watts == 0.0 {
            continue;
        }
        let density = watts / area;
        splat(&mut grid, rect, dx, dy, |frac_area, cell| {
            *cell += density * frac_area;
        });
    }
    grid
}

/// Applies `f(overlap_area, cell)` to every grid cell the rectangle touches.
fn splat<F: FnMut(f64, &mut f64)>(grid: &mut Grid, rect: &Rect, dx: f64, dy: f64, mut f: F) {
    let (nx, ny) = (grid.nx(), grid.ny());
    let ix0 = ((rect.x0().value() / dx).floor().max(0.0)) as usize;
    let iy0 = ((rect.y0().value() / dy).floor().max(0.0)) as usize;
    let ix1 = (((rect.x1().value() / dx).ceil()) as usize).min(nx);
    let iy1 = (((rect.y1().value() / dy).ceil()) as usize).min(ny);
    for iy in iy0..iy1 {
        for ix in ix0..ix1 {
            let cell_rect = Rect::from_corner(ix as f64 * dx, iy as f64 * dy, dx, dy);
            let a = rect.intersection_area(&cell_rect).value();
            if a > 0.0 {
                f(a, grid.get_mut(ix, iy));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organization::Spacing;

    fn chip() -> ChipSpec {
        ChipSpec::scc_256()
    }

    fn rules() -> PackageRules {
        PackageRules::default()
    }

    #[test]
    fn place_cores_single_chip_tiles_the_die() {
        let placed = place_cores(&chip(), &ChipletLayout::SingleChip, &rules()).unwrap();
        assert_eq!(placed.len(), 256);
        let total_area: f64 = placed.iter().map(|p| p.rect.area().value()).sum();
        assert!((total_area - 324.0).abs() < 1e-6);
        // All tiles inside the 18x18 die.
        let die = Rect::from_corner(0.0, 0.0, 18.0, 18.0);
        assert!(placed.iter().all(|p| die.contains_rect(&p.rect)));
    }

    #[test]
    fn place_cores_respects_chiplet_motion() {
        let layout = ChipletLayout::Symmetric4 { s3: Mm(8.0) };
        let placed = place_cores(&chip(), &layout, &rules()).unwrap();
        let rects = layout.chiplet_rects(&chip(), &rules());
        for p in &placed {
            assert!(
                rects[p.chiplet].contains_rect(&p.rect),
                "{:?} escaped chiplet {}",
                p.rect,
                p.chiplet
            );
        }
        // Core 0 (lower-left) sits at the lower-left chiplet's corner.
        assert!((placed[0].rect.x0().value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn place_cores_rejects_indivisible() {
        let layout = ChipletLayout::Uniform { r: 3, gap: Mm(1.0) };
        assert!(matches!(
            place_cores(&chip(), &layout, &rules()),
            Err(LayoutError::IndivisibleCoreGrid { r: 3, .. })
        ));
    }

    #[test]
    fn grid_indexing_row_major() {
        let mut g = Grid::filled(4, 3, 0.0);
        *g.get_mut(1, 2) = 7.0;
        assert_eq!(g.as_slice()[2 * 4 + 1], 7.0);
        assert_eq!(g.get(1, 2), 7.0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn grid_rejects_out_of_range() {
        let g = Grid::filled(4, 3, 0.0);
        let _ = g.get(4, 0);
    }

    #[test]
    fn power_is_conserved() {
        let sources = vec![
            (Rect::from_corner(1.3, 1.7, 2.1, 2.9), 10.0),
            (Rect::from_corner(10.0, 10.0, 0.7, 0.7), 3.5),
        ];
        let g = power_grid(Mm(20.0), 64, 64, &sources);
        assert!((g.sum() - 13.5).abs() < 1e-9, "sum = {}", g.sum());
    }

    #[test]
    fn power_lands_in_the_right_cells() {
        // One 1x1 source exactly covering cell (2, 3) of a 10x10 grid over
        // a 10 mm footprint.
        let g = power_grid(
            Mm(10.0),
            10,
            10,
            &[(Rect::from_corner(2.0, 3.0, 1.0, 1.0), 5.0)],
        );
        assert!((g.get(2, 3) - 5.0).abs() < 1e-12);
        assert!((g.sum() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn power_splits_across_cells_by_area() {
        // A 1x1 source centred on the corner shared by 4 cells.
        let g = power_grid(
            Mm(10.0),
            10,
            10,
            &[(Rect::from_corner(1.5, 1.5, 1.0, 1.0), 4.0)],
        );
        for (ix, iy) in [(1, 1), (2, 1), (1, 2), (2, 2)] {
            assert!((g.get(ix, iy) - 1.0).abs() < 1e-12, "cell ({ix},{iy})");
        }
    }

    #[test]
    fn coverage_fraction_bounds_and_values() {
        let layout = ChipletLayout::Symmetric16 {
            spacing: Spacing::new(2.0, 1.0, 3.0),
        };
        let edge = layout.footprint_edge(&chip(), &rules());
        let rects = layout.chiplet_rects(&chip(), &rules());
        let g = coverage_grid(edge, 64, 64, &rects);
        assert!(g.as_slice().iter().all(|&c| (0.0..=1.0).contains(&c)));
        // Total covered area equals total chiplet area.
        let cell_area = (edge.value() / 64.0).powi(2);
        let covered: f64 = g.as_slice().iter().map(|c| c * cell_area).sum();
        let chiplet_area: f64 = rects.iter().map(|r| r.area().value()).sum();
        assert!(
            (covered - chiplet_area).abs() < 1e-6,
            "covered {covered} vs chiplets {chiplet_area}"
        );
    }

    #[test]
    fn coverage_of_single_chip_is_full_die() {
        let g = coverage_grid(Mm(18.0), 32, 32, &[Rect::from_corner(0.0, 0.0, 18.0, 18.0)]);
        assert!(g.as_slice().iter().all(|&c| (c - 1.0).abs() < 1e-12));
    }
}
