//! Planar geometry primitives (points, sizes, axis-aligned rectangles).
//!
//! All coordinates are in millimetres with the origin at the lower-left
//! corner of the outermost footprint under discussion (interposer for 2.5D
//! systems, chip for the single-chip baseline).

use crate::units::{Area, Mm};
use serde::{Deserialize, Serialize};

/// A point in the floorplan plane, in millimetres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Mm,
    /// Vertical coordinate.
    pub y: Mm,
}

impl Point {
    /// Creates a point from raw millimetre coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x: Mm(x), y: Mm(y) }
    }
}

/// A width × height extent, in millimetres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Size {
    /// Horizontal extent.
    pub w: Mm,
    /// Vertical extent.
    pub h: Mm,
}

impl Size {
    /// Creates a size from raw millimetre extents.
    pub fn new(w: f64, h: f64) -> Self {
        Size { w: Mm(w), h: Mm(h) }
    }

    /// Creates a square size with the given edge length.
    pub fn square(edge: Mm) -> Self {
        Size { w: edge, h: edge }
    }

    /// The enclosed area.
    pub fn area(self) -> Area {
        self.w * self.h
    }
}

/// An axis-aligned rectangle identified by its lower-left corner and size.
///
/// # Examples
///
/// ```
/// use tac25d_floorplan::geometry::Rect;
///
/// let a = Rect::from_corner(0.0, 0.0, 2.0, 2.0);
/// let b = Rect::from_corner(1.0, 1.0, 2.0, 2.0);
/// assert!(a.overlaps(&b));
/// assert_eq!(a.intersection_area(&b).value(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub origin: Point,
    /// Extent.
    pub size: Size,
}

impl Rect {
    /// Creates a rectangle from its lower-left corner `(x, y)` and extents
    /// `(w, h)`, all in millimetres.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `h` is negative.
    pub fn from_corner(x: f64, y: f64, w: f64, h: f64) -> Self {
        assert!(
            w >= 0.0 && h >= 0.0,
            "rect extents must be non-negative ({w} x {h})"
        );
        Rect {
            origin: Point::new(x, y),
            size: Size::new(w, h),
        }
    }

    /// Creates a rectangle centred at `(cx, cy)` with extents `(w, h)`.
    pub fn centered_at(cx: f64, cy: f64, w: f64, h: f64) -> Self {
        Rect::from_corner(cx - w / 2.0, cy - h / 2.0, w, h)
    }

    /// Left edge coordinate.
    pub fn x0(&self) -> Mm {
        self.origin.x
    }

    /// Bottom edge coordinate.
    pub fn y0(&self) -> Mm {
        self.origin.y
    }

    /// Right edge coordinate.
    pub fn x1(&self) -> Mm {
        self.origin.x + self.size.w
    }

    /// Top edge coordinate.
    pub fn y1(&self) -> Mm {
        self.origin.y + self.size.h
    }

    /// Centre point.
    pub fn center(&self) -> Point {
        Point {
            x: self.origin.x + self.size.w / 2.0,
            y: self.origin.y + self.size.h / 2.0,
        }
    }

    /// The enclosed area.
    pub fn area(&self) -> Area {
        self.size.area()
    }

    /// Returns `true` if the rectangles overlap with strictly positive area
    /// (touching edges do not count as overlap; the paper allows chiplets to
    /// abut at zero spacing).
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.intersection_area(other).value() > 1e-12
    }

    /// Area of the intersection of the two rectangles (zero when disjoint).
    pub fn intersection_area(&self, other: &Rect) -> Area {
        let w = (self.x1().min(other.x1()) - self.x0().max(other.x0())).max(Mm(0.0));
        let h = (self.y1().min(other.y1()) - self.y0().max(other.y0())).max(Mm(0.0));
        w * h
    }

    /// Returns `true` if `other` lies entirely inside `self` (touching edges
    /// allowed), within a small numerical tolerance.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        const EPS: f64 = 1e-9;
        other.x0().value() >= self.x0().value() - EPS
            && other.y0().value() >= self.y0().value() - EPS
            && other.x1().value() <= self.x1().value() + EPS
            && other.y1().value() <= self.y1().value() + EPS
    }

    /// Returns `true` if the point lies inside or on the boundary.
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.x0() && p.x <= self.x1() && p.y >= self.y0() && p.y <= self.y1()
    }

    /// Translates the rectangle by `(dx, dy)`.
    #[must_use]
    pub fn translated(&self, dx: Mm, dy: Mm) -> Rect {
        Rect {
            origin: Point {
                x: self.origin.x + dx,
                y: self.origin.y + dy,
            },
            size: self.size,
        }
    }

    /// Reflects the rectangle about the vertical line `x = axis`.
    #[must_use]
    pub fn mirrored_x(&self, axis: Mm) -> Rect {
        let new_x0 = axis * 2.0 - self.x1();
        Rect {
            origin: Point {
                x: new_x0,
                y: self.origin.y,
            },
            size: self.size,
        }
    }

    /// Reflects the rectangle about the horizontal line `y = axis`.
    #[must_use]
    pub fn mirrored_y(&self, axis: Mm) -> Rect {
        let new_y0 = axis * 2.0 - self.y1();
        Rect {
            origin: Point {
                x: self.origin.x,
                y: new_y0,
            },
            size: self.size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_edges_and_center() {
        let r = Rect::from_corner(1.0, 2.0, 3.0, 4.0);
        assert_eq!(r.x0(), Mm(1.0));
        assert_eq!(r.y0(), Mm(2.0));
        assert_eq!(r.x1(), Mm(4.0));
        assert_eq!(r.y1(), Mm(6.0));
        assert_eq!(r.center(), Point::new(2.5, 4.0));
        assert_eq!(r.area().value(), 12.0);
    }

    #[test]
    fn centered_at_positions_correctly() {
        let r = Rect::centered_at(5.0, 5.0, 2.0, 4.0);
        assert_eq!(r.x0(), Mm(4.0));
        assert_eq!(r.y1(), Mm(7.0));
    }

    #[test]
    fn overlap_detection() {
        let a = Rect::from_corner(0.0, 0.0, 2.0, 2.0);
        let b = Rect::from_corner(1.0, 1.0, 2.0, 2.0);
        let c = Rect::from_corner(2.0, 0.0, 2.0, 2.0); // abuts a
        let d = Rect::from_corner(3.0, 3.0, 1.0, 1.0); // disjoint
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "touching edges are not overlap");
        assert!(!a.overlaps(&d));
        assert_eq!(a.intersection_area(&b).value(), 1.0);
        assert_eq!(a.intersection_area(&d).value(), 0.0);
    }

    #[test]
    fn containment() {
        let outer = Rect::from_corner(0.0, 0.0, 10.0, 10.0);
        let inner = Rect::from_corner(1.0, 1.0, 2.0, 2.0);
        let edge = Rect::from_corner(0.0, 0.0, 10.0, 10.0);
        let out = Rect::from_corner(9.0, 9.0, 2.0, 2.0);
        assert!(outer.contains_rect(&inner));
        assert!(outer.contains_rect(&edge));
        assert!(!outer.contains_rect(&out));
        assert!(outer.contains_point(Point::new(10.0, 10.0)));
        assert!(!outer.contains_point(Point::new(10.1, 10.0)));
    }

    #[test]
    fn mirror_preserves_size_and_flips_position() {
        let r = Rect::from_corner(1.0, 1.0, 2.0, 1.0);
        let m = r.mirrored_x(Mm(5.0));
        assert_eq!(m.size, r.size);
        assert_eq!(m.x0(), Mm(7.0));
        assert_eq!(m.y0(), Mm(1.0));
        let my = r.mirrored_y(Mm(5.0));
        assert_eq!(my.y0(), Mm(8.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_extent_rejected() {
        let _ = Rect::from_corner(0.0, 0.0, -1.0, 1.0);
    }

    #[test]
    fn translate_moves_origin_only() {
        let r = Rect::from_corner(0.0, 0.0, 1.0, 1.0).translated(Mm(2.0), Mm(3.0));
        assert_eq!(r.origin, Point::new(2.0, 3.0));
        assert_eq!(r.size, Size::new(1.0, 1.0));
    }
}
