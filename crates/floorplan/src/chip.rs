//! The example manycore chip of the paper: a 256-core homogeneous system
//! based on the Intel SCC IA-32 core scaled to 22 nm.
//!
//! Each core together with its private L2 cache forms a square tile; 16×16
//! tiles make up the 18 mm × 18 mm single chip (paper Sec. III-A). When the
//! chip is "disintegrated" into an r×r grid of chiplets, each chiplet holds a
//! (16/r)×(16/r) sub-grid of core tiles, so core-accurate chipletization is
//! available for r ∈ {1, 2, 4, 8, 16} (the synthetic design-space sweeps of
//! Fig. 3(b) additionally use r values that do not divide 16; those use
//! uniform power densities and never need a core map).

use crate::units::{Area, Mm};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a core tile on the (virtual) monolithic chip, row-major:
/// `CoreId(0)` is the lower-left tile, ids increase left→right then
/// bottom→top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub u16);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Static description of the example manycore chip.
///
/// # Examples
///
/// ```
/// use tac25d_floorplan::chip::ChipSpec;
///
/// let chip = ChipSpec::scc_256();
/// assert_eq!(chip.core_count(), 256);
/// assert_eq!(chip.edge().value(), 18.0);
/// // Tile edge = 18 mm / 16 = 1.125 mm (paper: ≈1.13 mm, area ≈1.28 mm²).
/// assert!((chip.tile_edge().value() - 1.125).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipSpec {
    /// Number of core tiles along one chip edge (16 for the 256-core system).
    cores_per_row: u16,
    /// Physical edge length of the square chip.
    edge: Mm,
    /// Number of memory controllers, placed along two opposite chip edges.
    memory_controllers: u16,
}

impl ChipSpec {
    /// The paper's example system: 256 IA-32-class cores at 22 nm on an
    /// 18 mm × 18 mm die with 8 memory controllers.
    pub fn scc_256() -> Self {
        ChipSpec {
            cores_per_row: 16,
            edge: Mm(18.0),
            memory_controllers: 8,
        }
    }

    /// Creates a custom square chip with `cores_per_row`² cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores_per_row` is zero or `edge` is not strictly positive.
    pub fn new(cores_per_row: u16, edge: Mm, memory_controllers: u16) -> Self {
        assert!(cores_per_row > 0, "chip needs at least one core per row");
        assert!(edge.value() > 0.0, "chip edge must be positive, got {edge}");
        ChipSpec {
            cores_per_row,
            edge,
            memory_controllers,
        }
    }

    /// Number of core tiles along one edge.
    pub fn cores_per_row(&self) -> u16 {
        self.cores_per_row
    }

    /// Total core count (tiles per row squared).
    pub fn core_count(&self) -> u16 {
        self.cores_per_row * self.cores_per_row
    }

    /// Physical edge of the monolithic chip (`w_2D = h_2D` in Table II).
    pub fn edge(&self) -> Mm {
        self.edge
    }

    /// Total die area.
    pub fn area(&self) -> Area {
        self.edge * self.edge
    }

    /// Edge of one square core+L2 tile.
    pub fn tile_edge(&self) -> Mm {
        self.edge / f64::from(self.cores_per_row)
    }

    /// Area of one core+L2 tile.
    pub fn tile_area(&self) -> Area {
        self.tile_edge() * self.tile_edge()
    }

    /// Number of memory controllers (metadata; they sit along two opposite
    /// edges and DRAM is off-chip, so they do not enter the thermal map).
    pub fn memory_controllers(&self) -> u16 {
        self.memory_controllers
    }

    /// Iterates over all core ids in row-major order.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.core_count()).map(CoreId)
    }

    /// Grid position `(row, col)` of a core, rows counted from the bottom.
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range for this chip.
    pub fn core_position(&self, core: CoreId) -> (u16, u16) {
        assert!(
            core.0 < self.core_count(),
            "core id {core} out of range for a {}-core chip",
            self.core_count()
        );
        (core.0 / self.cores_per_row, core.0 % self.cores_per_row)
    }

    /// Core id at grid position `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn core_at(&self, row: u16, col: u16) -> CoreId {
        assert!(
            row < self.cores_per_row && col < self.cores_per_row,
            "({row}, {col}) out of range for a {}x{} core grid",
            self.cores_per_row,
            self.cores_per_row
        );
        CoreId(row * self.cores_per_row + col)
    }

    /// Returns `true` if the chip can be split into an r×r grid of chiplets
    /// along core-tile boundaries.
    pub fn divisible_by(&self, r: u16) -> bool {
        r > 0 && self.cores_per_row.is_multiple_of(r)
    }

    /// For an r×r chipletization, the chiplet index (row-major over the
    /// chiplet grid) and the core's local `(row, col)` within that chiplet.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not divide the core grid (see [`Self::divisible_by`])
    /// or if the core id is out of range.
    pub fn core_to_chiplet(&self, r: u16, core: CoreId) -> (usize, (u16, u16)) {
        assert!(
            self.divisible_by(r),
            "r = {r} does not divide the {}-wide core grid",
            self.cores_per_row
        );
        let per = self.cores_per_row / r;
        let (row, col) = self.core_position(core);
        let chiplet = (row / per) as usize * r as usize + (col / per) as usize;
        (chiplet, (row % per, col % per))
    }
}

impl Default for ChipSpec {
    fn default() -> Self {
        ChipSpec::scc_256()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scc_matches_paper_dimensions() {
        let chip = ChipSpec::scc_256();
        assert_eq!(chip.core_count(), 256);
        assert_eq!(chip.area().value(), 324.0);
        // Paper: tile ≈ 1.13 mm × 1.13 mm ≈ 1.28 mm²; our exact grid gives
        // 1.125 mm and 1.2656 mm².
        assert!((chip.tile_area().value() - 1.2656).abs() < 1e-3);
        assert_eq!(chip.memory_controllers(), 8);
    }

    #[test]
    fn core_position_roundtrip() {
        let chip = ChipSpec::scc_256();
        for core in chip.cores() {
            let (row, col) = chip.core_position(core);
            assert_eq!(chip.core_at(row, col), core);
        }
    }

    #[test]
    fn row_major_ordering() {
        let chip = ChipSpec::scc_256();
        assert_eq!(chip.core_position(CoreId(0)), (0, 0));
        assert_eq!(chip.core_position(CoreId(15)), (0, 15));
        assert_eq!(chip.core_position(CoreId(16)), (1, 0));
        assert_eq!(chip.core_position(CoreId(255)), (15, 15));
    }

    #[test]
    fn divisibility() {
        let chip = ChipSpec::scc_256();
        for r in [1u16, 2, 4, 8, 16] {
            assert!(chip.divisible_by(r), "r={r}");
        }
        for r in [0u16, 3, 5, 6, 7, 9, 10, 32] {
            assert!(!chip.divisible_by(r), "r={r}");
        }
    }

    #[test]
    fn chiplet_mapping_quadrants_r2() {
        let chip = ChipSpec::scc_256();
        // Lower-left core is in chiplet 0; upper-right in chiplet 3.
        assert_eq!(chip.core_to_chiplet(2, CoreId(0)).0, 0);
        assert_eq!(chip.core_to_chiplet(2, chip.core_at(0, 15)).0, 1);
        assert_eq!(chip.core_to_chiplet(2, chip.core_at(15, 0)).0, 2);
        assert_eq!(chip.core_to_chiplet(2, chip.core_at(15, 15)).0, 3);
        // Local coordinates wrap inside the 8×8 chiplet.
        let (_, (lr, lc)) = chip.core_to_chiplet(2, chip.core_at(9, 10));
        assert_eq!((lr, lc), (1, 2));
    }

    #[test]
    fn chiplet_mapping_counts_are_balanced() {
        let chip = ChipSpec::scc_256();
        for r in [2u16, 4, 8, 16] {
            let mut counts = vec![0u32; (r * r) as usize];
            for core in chip.cores() {
                counts[chip.core_to_chiplet(r, core).0] += 1;
            }
            let per = u32::from(chip.core_count()) / u32::from(r * r);
            assert!(counts.iter().all(|&c| c == per), "r={r}: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn chiplet_mapping_rejects_bad_r() {
        let chip = ChipSpec::scc_256();
        let _ = chip.core_to_chiplet(3, CoreId(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn core_position_rejects_out_of_range() {
        let chip = ChipSpec::scc_256();
        let _ = chip.core_position(CoreId(256));
    }
}
