//! Chiplet organizations: how the monolithic chip is split into chiplets and
//! where those chiplets sit on the interposer.
//!
//! Implements the paper's placement parameterization (Fig. 4(a)):
//!
//! * **Single chip** — the 2D baseline, no interposer.
//! * **Uniform r×r grid** — chiplets in "matrix fashion" with one uniform
//!   spacing between adjacent chiplets (Sec. III-C and Fig. 5).
//! * **Symmetric 4-chiplet** — 2×2 grid; s1 = s2 = 0, single central gap s3
//!   in both axes (Eq. (9) with r = 2).
//! * **Symmetric 16-chiplet** — 4×4 arrangement with independent spacings
//!   (s1, s2, s3): the outer ring of 12 chiplets sits on a symmetric grid
//!   with per-axis gaps `[s1, s3, s1]`, while the four centre chiplets are
//!   placed at distance s2 from the interposer centre lines (inner gap
//!   2·s2). The paper's overlap constraint 2·s1 + s3 − 2·s2 ≥ 0 (Eq. (10))
//!   is exactly the condition that the centre chiplets do not collide with
//!   the outer ring.
//!
//! All organizations are axially and diagonally symmetric, as the paper
//! requires.

use crate::chip::ChipSpec;
use crate::geometry::Rect;
use crate::units::Mm;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Packaging rules shared by every organization: guard band, the maximum
/// interposer edge admitted by the wafer stepper (Eq. (7)), and the search
/// lattice granularity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackageRules {
    /// Guard band along each interposer edge (`l_g`, paper: 1 mm).
    pub guard: Mm,
    /// Maximum interposer edge (paper: 50 mm, the 2X JetStep exposure field).
    pub max_interposer: Mm,
    /// Spacing granularity (paper: 0.5 mm).
    pub step: Mm,
}

impl Default for PackageRules {
    fn default() -> Self {
        PackageRules {
            guard: Mm(1.0),
            max_interposer: Mm(50.0),
            step: Mm(0.5),
        }
    }
}

/// The independent chiplet spacings of Fig. 4(a), in millimetres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Spacing {
    /// Outer-ring gap (between edge columns and their neighbours).
    pub s1: Mm,
    /// Distance from the interposer centre line to each centre chiplet
    /// (the gap between the two centre chiplets along an axis is 2·s2).
    pub s2: Mm,
    /// Central gap of the outer-ring grid.
    pub s3: Mm,
}

impl Spacing {
    /// Creates a spacing triple from raw millimetre values.
    pub fn new(s1: f64, s2: f64, s3: f64) -> Self {
        Spacing {
            s1: Mm(s1),
            s2: Mm(s2),
            s3: Mm(s3),
        }
    }

    /// The spacing triple that reproduces a uniform 4×4 matrix layout with
    /// gap `g` between all adjacent chiplets: s1 = s3 = g and s2 = g / 2.
    pub fn uniform(g: Mm) -> Self {
        Spacing {
            s1: g,
            s2: g / 2.0,
            s3: g,
        }
    }

    /// Returns `true` if all three spacings are non-negative and the paper's
    /// centre-chiplet overlap constraint 2·s1 + s3 − 2·s2 ≥ 0 (Eq. (10))
    /// holds.
    pub fn satisfies_overlap_rule(&self) -> bool {
        const EPS: f64 = 1e-9;
        self.s1.value() >= -EPS
            && self.s2.value() >= -EPS
            && self.s3.value() >= -EPS
            && 2.0 * self.s1.value() + self.s3.value() - 2.0 * self.s2.value() >= -EPS
    }
}

impl fmt::Display for Spacing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(s1={}, s2={}, s3={})", self.s1, self.s2, self.s3)
    }
}

/// A concrete chiplet organization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChipletLayout {
    /// The conventional 2D baseline: the whole chip on an organic substrate,
    /// no interposer.
    SingleChip,
    /// r×r chiplets in matrix fashion with one uniform `gap` between
    /// adjacent chiplets (used by the design-space exploration of Fig. 3(b)
    /// and the spacing sweep of Fig. 5).
    Uniform {
        /// Chiplets per row/column (r ≥ 2).
        r: u16,
        /// Uniform spacing between adjacent chiplets.
        gap: Mm,
    },
    /// The 4-chiplet organization: 2×2 grid with a single central gap `s3`
    /// (s1 = s2 = 0 per Table II).
    Symmetric4 {
        /// Central gap in both axes.
        s3: Mm,
    },
    /// The 16-chiplet organization with independent spacings (see module
    /// docs for the exact parameterization).
    Symmetric16 {
        /// The spacing triple (s1, s2, s3).
        spacing: Spacing,
    },
}

/// Errors produced when validating or realizing a [`ChipletLayout`].
#[derive(Debug, Clone, PartialEq)]
pub enum LayoutError {
    /// A spacing or gap was negative.
    NegativeSpacing {
        /// The offending layout.
        layout: String,
    },
    /// Eq. (10) violated: the centre chiplets would overlap the outer ring.
    CenterOverlap {
        /// The offending spacing triple.
        spacing: Spacing,
    },
    /// The interposer edge required by Eq. (9) exceeds the maximum (Eq. (7)).
    InterposerTooLarge {
        /// Required interposer edge.
        required: Mm,
        /// Maximum allowed edge.
        max: Mm,
    },
    /// The chip's core grid cannot be split into r×r chiplets along tile
    /// boundaries (only relevant when a core-accurate power map is needed).
    IndivisibleCoreGrid {
        /// Requested chiplets per row.
        r: u16,
        /// Core tiles per row of the chip.
        cores_per_row: u16,
    },
    /// `r` must be at least 2 for a multi-chiplet layout.
    DegenerateGrid {
        /// Requested chiplets per row.
        r: u16,
    },
    /// Two chiplet rectangles overlap (geometric defence-in-depth check;
    /// unreachable when the parameter constraints hold).
    ChipletsOverlap {
        /// Indices of the overlapping chiplets.
        a: usize,
        /// Indices of the overlapping chiplets.
        b: usize,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::NegativeSpacing { layout } => {
                write!(f, "negative chiplet spacing in {layout}")
            }
            LayoutError::CenterOverlap { spacing } => write!(
                f,
                "spacing {spacing} violates 2*s1 + s3 - 2*s2 >= 0 (Eq. (10))"
            ),
            LayoutError::InterposerTooLarge { required, max } => write!(
                f,
                "interposer edge {required} exceeds the maximum {max} (Eq. (7))"
            ),
            LayoutError::IndivisibleCoreGrid { r, cores_per_row } => write!(
                f,
                "cannot split a {cores_per_row}-wide core grid into {r}x{r} chiplets"
            ),
            LayoutError::DegenerateGrid { r } => {
                write!(f, "multi-chiplet layout needs r >= 2, got r = {r}")
            }
            LayoutError::ChipletsOverlap { a, b } => {
                write!(f, "chiplets {a} and {b} overlap")
            }
        }
    }
}

impl Error for LayoutError {}

impl ChipletLayout {
    /// Chiplets per row/column (1 for the single-chip baseline).
    pub fn r(&self) -> u16 {
        match self {
            ChipletLayout::SingleChip => 1,
            ChipletLayout::Uniform { r, .. } => *r,
            ChipletLayout::Symmetric4 { .. } => 2,
            ChipletLayout::Symmetric16 { .. } => 4,
        }
    }

    /// Total chiplet count n = r².
    pub fn chiplet_count(&self) -> usize {
        let r = self.r() as usize;
        r * r
    }

    /// Returns `true` for the 2D single-chip baseline.
    pub fn is_single_chip(&self) -> bool {
        matches!(self, ChipletLayout::SingleChip)
    }

    /// Edge length of each (square) chiplet: `w_c = w_2D / r` (Eq. (8)).
    pub fn chiplet_edge(&self, chip: &ChipSpec) -> Mm {
        chip.edge() / f64::from(self.r())
    }

    /// Interposer edge length per Eq. (9) (or the generalization for uniform
    /// r×r grids). Returns `None` for the single-chip baseline, which has no
    /// interposer.
    pub fn interposer_edge(&self, chip: &ChipSpec, rules: &PackageRules) -> Option<Mm> {
        let wc = self.chiplet_edge(chip);
        let guard2 = rules.guard * 2.0;
        match self {
            ChipletLayout::SingleChip => None,
            ChipletLayout::Uniform { r, gap } => {
                Some(wc * f64::from(*r) + *gap * f64::from(r - 1) + guard2)
            }
            ChipletLayout::Symmetric4 { s3 } => Some(wc * 2.0 + *s3 + guard2),
            ChipletLayout::Symmetric16 { spacing } => {
                Some(wc * 4.0 + spacing.s1 * 2.0 + spacing.s3 + guard2)
            }
        }
    }

    /// Edge of the package footprint the thermal model grids over: the
    /// interposer edge for 2.5D systems, the chip edge for the baseline.
    pub fn footprint_edge(&self, chip: &ChipSpec, rules: &PackageRules) -> Mm {
        self.interposer_edge(chip, rules)
            .unwrap_or_else(|| chip.edge())
    }

    /// Checks all organization constraints (non-negative spacings, Eq. (10),
    /// Eq. (7) interposer bound, geometric non-overlap).
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`LayoutError`].
    pub fn validate(&self, chip: &ChipSpec, rules: &PackageRules) -> Result<(), LayoutError> {
        match self {
            ChipletLayout::SingleChip => return Ok(()),
            ChipletLayout::Uniform { r, gap } => {
                if *r < 2 {
                    return Err(LayoutError::DegenerateGrid { r: *r });
                }
                if gap.value() < 0.0 {
                    return Err(LayoutError::NegativeSpacing {
                        layout: format!("{self:?}"),
                    });
                }
            }
            ChipletLayout::Symmetric4 { s3 } => {
                if s3.value() < 0.0 {
                    return Err(LayoutError::NegativeSpacing {
                        layout: format!("{self:?}"),
                    });
                }
            }
            ChipletLayout::Symmetric16 { spacing } => {
                if spacing.s1.value() < 0.0 || spacing.s2.value() < 0.0 || spacing.s3.value() < 0.0
                {
                    return Err(LayoutError::NegativeSpacing {
                        layout: format!("{self:?}"),
                    });
                }
                if !spacing.satisfies_overlap_rule() {
                    return Err(LayoutError::CenterOverlap { spacing: *spacing });
                }
            }
        }
        let edge = self
            .interposer_edge(chip, rules)
            .expect("multi-chiplet layouts have an interposer");
        if edge.value() > rules.max_interposer.value() + 1e-9 {
            return Err(LayoutError::InterposerTooLarge {
                required: edge,
                max: rules.max_interposer,
            });
        }
        // Defence-in-depth: verify the realized rectangles are disjoint.
        let rects = self.chiplet_rects(chip, rules);
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                if rects[i].overlaps(&rects[j]) {
                    return Err(LayoutError::ChipletsOverlap { a: i, b: j });
                }
            }
        }
        Ok(())
    }

    /// Physical rectangles of all chiplets, row-major over the chiplet grid
    /// (chiplet 0 is lower-left), in footprint coordinates (origin at the
    /// lower-left interposer corner, or chip corner for the baseline).
    ///
    /// The returned order matches [`ChipSpec::core_to_chiplet`]'s chiplet
    /// indices so power maps can be assembled per chiplet.
    pub fn chiplet_rects(&self, chip: &ChipSpec, rules: &PackageRules) -> Vec<Rect> {
        let wc = self.chiplet_edge(chip).value();
        let lg = rules.guard.value();
        match self {
            ChipletLayout::SingleChip => {
                vec![Rect::from_corner(
                    0.0,
                    0.0,
                    chip.edge().value(),
                    chip.edge().value(),
                )]
            }
            ChipletLayout::Uniform { r, gap } => {
                let r = *r as usize;
                let pitch = wc + gap.value();
                let mut rects = Vec::with_capacity(r * r);
                for row in 0..r {
                    for col in 0..r {
                        rects.push(Rect::from_corner(
                            lg + col as f64 * pitch,
                            lg + row as f64 * pitch,
                            wc,
                            wc,
                        ));
                    }
                }
                rects
            }
            ChipletLayout::Symmetric4 { s3 } => {
                let s3 = s3.value();
                let xs = [lg, lg + wc + s3];
                let mut rects = Vec::with_capacity(4);
                for &y in &xs {
                    for &x in &xs {
                        rects.push(Rect::from_corner(x, y, wc, wc));
                    }
                }
                rects
            }
            ChipletLayout::Symmetric16 { spacing } => {
                let (s1, s2, s3) = (spacing.s1.value(), spacing.s2.value(), spacing.s3.value());
                let edge = 4.0 * wc + 2.0 * s1 + s3 + 2.0 * lg;
                let c = edge / 2.0;
                // Outer-ring grid coordinates per axis: [s1, s3, s1] gaps.
                let grid = [
                    lg,
                    lg + wc + s1,
                    lg + 2.0 * wc + s1 + s3,
                    lg + 3.0 * wc + 2.0 * s1 + s3,
                ];
                // Centre-block coordinates per axis (lower edges).
                let inner = [c - s2 - wc, c + s2];
                let mut rects = Vec::with_capacity(16);
                for row in 0..4usize {
                    for col in 0..4usize {
                        let is_inner_row = row == 1 || row == 2;
                        let is_inner_col = col == 1 || col == 2;
                        let (x, y) = if is_inner_row && is_inner_col {
                            (inner[col - 1], inner[row - 1])
                        } else {
                            (grid[col], grid[row])
                        };
                        rects.push(Rect::from_corner(x, y, wc, wc));
                    }
                }
                rects
            }
        }
    }

    /// The footprint rectangle (interposer or baseline chip) at the origin.
    pub fn footprint_rect(&self, chip: &ChipSpec, rules: &PackageRules) -> Rect {
        let e = self.footprint_edge(chip, rules).value();
        Rect::from_corner(0.0, 0.0, e, e)
    }
}

impl fmt::Display for ChipletLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChipletLayout::SingleChip => write!(f, "single-chip 2D baseline"),
            ChipletLayout::Uniform { r, gap } => {
                write!(f, "{r}x{r} uniform grid, gap {gap}")
            }
            ChipletLayout::Symmetric4 { s3 } => write!(f, "4-chiplet, s3={s3}"),
            ChipletLayout::Symmetric16 { spacing } => {
                write!(f, "16-chiplet, {spacing}")
            }
        }
    }
}

/// Enumerates every valid 16-chiplet spacing triple whose interposer edge is
/// exactly `edge` on the `rules.step` lattice (the per-(f, p, cost) search
/// space of the paper's optimizer).
///
/// Returns an empty vector when `edge` is smaller than the minimum
/// (zero-spacing) interposer or is off-lattice.
pub fn enumerate_symmetric16(chip: &ChipSpec, rules: &PackageRules, edge: Mm) -> Vec<Spacing> {
    let wc = chip.edge().value() / 4.0;
    let free = edge.value() - 4.0 * wc - 2.0 * rules.guard.value(); // = 2*s1 + s3
    let step = rules.step.value();
    if free < -1e-9 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let n1 = (free / 2.0 / step + 1e-9).floor() as i64;
    for i in 0..=n1 {
        let s1 = i as f64 * step;
        let s3 = free - 2.0 * s1;
        if s3 < -1e-9 {
            break;
        }
        // Eq. (10): s2 <= s1 + s3/2 = free/2 - ... actually 2*s1+s3 = free,
        // so s2 ranges over [0, free/2].
        let n2 = (free / 2.0 / step + 1e-9).floor() as i64;
        for j in 0..=n2 {
            let s2 = j as f64 * step;
            let sp = Spacing::new(s1, s2, s3.max(0.0));
            if sp.satisfies_overlap_rule() {
                out.push(sp);
            }
        }
    }
    out
}

/// The 4-chiplet spacing (single value s3) whose interposer edge is exactly
/// `edge`, if it is non-negative.
pub fn symmetric4_for_edge(chip: &ChipSpec, rules: &PackageRules, edge: Mm) -> Option<Mm> {
    let wc = chip.edge().value() / 2.0;
    let s3 = edge.value() - 2.0 * wc - 2.0 * rules.guard.value();
    (s3 >= -1e-9).then(|| Mm(s3.max(0.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> ChipSpec {
        ChipSpec::scc_256()
    }

    fn rules() -> PackageRules {
        PackageRules::default()
    }

    #[test]
    fn eq9_holds_for_symmetric4() {
        let l = ChipletLayout::Symmetric4 { s3: Mm(8.0) };
        // w_int = 2*9 + 8 + 2*1 = 28
        assert_eq!(l.interposer_edge(&chip(), &rules()), Some(Mm(28.0)));
        assert_eq!(l.chiplet_edge(&chip()), Mm(9.0));
    }

    #[test]
    fn eq9_holds_for_symmetric16() {
        let l = ChipletLayout::Symmetric16 {
            spacing: Spacing::new(2.0, 1.0, 3.0),
        };
        // w_int = 4*4.5 + 2*2 + 3 + 2 = 27
        assert_eq!(l.interposer_edge(&chip(), &rules()), Some(Mm(27.0)));
    }

    #[test]
    fn uniform_edge_formula() {
        let l = ChipletLayout::Uniform { r: 4, gap: Mm(2.0) };
        // 4*4.5 + 3*2 + 2 = 26
        assert_eq!(l.interposer_edge(&chip(), &rules()), Some(Mm(26.0)));
    }

    #[test]
    fn single_chip_has_no_interposer() {
        let l = ChipletLayout::SingleChip;
        assert_eq!(l.interposer_edge(&chip(), &rules()), None);
        assert_eq!(l.footprint_edge(&chip(), &rules()), Mm(18.0));
        assert_eq!(l.chiplet_rects(&chip(), &rules()).len(), 1);
    }

    #[test]
    fn rect_count_matches_chiplet_count() {
        for l in [
            ChipletLayout::Uniform { r: 3, gap: Mm(1.0) },
            ChipletLayout::Symmetric4 { s3: Mm(2.0) },
            ChipletLayout::Symmetric16 {
                spacing: Spacing::new(1.0, 0.5, 2.0),
            },
        ] {
            assert_eq!(l.chiplet_rects(&chip(), &rules()).len(), l.chiplet_count());
        }
    }

    #[test]
    fn all_rects_inside_interposer_and_disjoint() {
        let l = ChipletLayout::Symmetric16 {
            spacing: Spacing::new(2.0, 2.0, 1.5),
        };
        l.validate(&chip(), &rules()).unwrap();
        let fp = l.footprint_rect(&chip(), &rules());
        let rects = l.chiplet_rects(&chip(), &rules());
        for r in &rects {
            assert!(fp.contains_rect(r), "{r:?} outside {fp:?}");
        }
    }

    #[test]
    fn symmetric16_is_diagonally_symmetric() {
        let l = ChipletLayout::Symmetric16 {
            spacing: Spacing::new(1.5, 1.0, 3.0),
        };
        let rects = l.chiplet_rects(&chip(), &rules());
        // Transposing (row, col) must map chiplet rect (x, y) -> (y, x).
        for row in 0..4usize {
            for col in 0..4usize {
                let a = rects[row * 4 + col];
                let b = rects[col * 4 + row];
                assert!((a.x0().value() - b.y0().value()).abs() < 1e-9);
                assert!((a.y0().value() - b.x0().value()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn symmetric16_is_axially_symmetric() {
        let l = ChipletLayout::Symmetric16 {
            spacing: Spacing::new(1.5, 1.0, 3.0),
        };
        let edge = l.footprint_edge(&chip(), &rules());
        let rects = l.chiplet_rects(&chip(), &rules());
        for row in 0..4usize {
            for col in 0..4usize {
                let a = rects[row * 4 + col];
                let b = rects[row * 4 + (3 - col)].mirrored_x(edge / 2.0);
                assert!(
                    (a.x0().value() - b.x0().value()).abs() < 1e-9,
                    "row {row} col {col}"
                );
            }
        }
    }

    #[test]
    fn eq10_violation_detected() {
        let l = ChipletLayout::Symmetric16 {
            // 2*0 + 1 - 2*2 = -3 < 0
            spacing: Spacing::new(0.0, 2.0, 1.0),
        };
        assert!(matches!(
            l.validate(&chip(), &rules()),
            Err(LayoutError::CenterOverlap { .. })
        ));
    }

    #[test]
    fn eq10_boundary_is_feasible_and_touching() {
        // 2*s1 + s3 = 2*s2 exactly: centre chiplets touch the ring.
        let l = ChipletLayout::Symmetric16 {
            spacing: Spacing::new(1.0, 2.0, 2.0),
        };
        l.validate(&chip(), &rules()).unwrap();
    }

    #[test]
    fn interposer_bound_enforced() {
        let l = ChipletLayout::Symmetric4 { s3: Mm(40.0) };
        assert!(matches!(
            l.validate(&chip(), &rules()),
            Err(LayoutError::InterposerTooLarge { .. })
        ));
    }

    #[test]
    fn negative_spacing_rejected() {
        let l = ChipletLayout::Symmetric4 { s3: Mm(-1.0) };
        assert!(matches!(
            l.validate(&chip(), &rules()),
            Err(LayoutError::NegativeSpacing { .. })
        ));
    }

    #[test]
    fn uniform_spacing_special_case_matches_uniform_layout() {
        // Symmetric16 with Spacing::uniform(g) must produce the same rects
        // as Uniform { r: 4, gap: g }.
        let g = Mm(3.0);
        let a = ChipletLayout::Symmetric16 {
            spacing: Spacing::uniform(g),
        };
        let b = ChipletLayout::Uniform { r: 4, gap: g };
        assert_eq!(
            a.interposer_edge(&chip(), &rules()),
            b.interposer_edge(&chip(), &rules())
        );
        let ra = a.chiplet_rects(&chip(), &rules());
        let rb = b.chiplet_rects(&chip(), &rules());
        for (x, y) in ra.iter().zip(rb.iter()) {
            assert!(
                (x.x0().value() - y.x0().value()).abs() < 1e-9,
                "{x:?} vs {y:?}"
            );
            assert!((x.y0().value() - y.y0().value()).abs() < 1e-9);
        }
    }

    #[test]
    fn enumerate_symmetric16_respects_edge_and_eq10() {
        let edge = Mm(30.0);
        let sps = enumerate_symmetric16(&chip(), &rules(), edge);
        assert!(!sps.is_empty());
        for sp in &sps {
            let l = ChipletLayout::Symmetric16 { spacing: *sp };
            assert_eq!(l.interposer_edge(&chip(), &rules()).unwrap(), edge);
            l.validate(&chip(), &rules()).unwrap();
        }
    }

    #[test]
    fn enumerate_symmetric16_empty_below_minimum() {
        // Minimum edge = 18 + 2 = 20 mm; below that no placement exists.
        assert!(enumerate_symmetric16(&chip(), &rules(), Mm(19.5)).is_empty());
        assert_eq!(enumerate_symmetric16(&chip(), &rules(), Mm(20.0)).len(), 1);
    }

    #[test]
    fn symmetric4_for_edge_inverts_eq9() {
        let s3 = symmetric4_for_edge(&chip(), &rules(), Mm(28.0)).unwrap();
        assert_eq!(s3, Mm(8.0));
        assert!(symmetric4_for_edge(&chip(), &rules(), Mm(19.0)).is_none());
    }

    #[test]
    fn display_is_informative() {
        let l = ChipletLayout::Symmetric16 {
            spacing: Spacing::new(1.0, 0.5, 2.0),
        };
        let s = l.to_string();
        assert!(s.contains("16-chiplet"));
        assert!(s.contains("s2=0.5mm"));
    }
}
