//! SVG rendering of chiplet organizations (and optional per-core shading),
//! for documentation and visual debugging — no external dependencies, just
//! hand-assembled SVG 1.1.

use crate::chip::ChipSpec;
use crate::organization::{ChipletLayout, LayoutError, PackageRules};
use crate::raster::place_cores;
use std::fmt::Write as _;

/// Per-core fill intensities in `[0, 1]` (e.g. normalized temperature or
/// power), indexed by core id. `None` renders cores uniformly.
pub type CoreShading<'a> = Option<&'a [f64]>;

/// Renders a layout as an SVG document: interposer outline, chiplet
/// outlines, core tiles (shaded if `shading` is given).
///
/// # Errors
///
/// Returns [`LayoutError`] if the layout has no core-accurate mapping.
///
/// # Panics
///
/// Panics if `shading` is provided with the wrong length or values outside
/// `[0, 1]`.
pub fn render_layout_svg(
    chip: &ChipSpec,
    layout: &ChipletLayout,
    rules: &PackageRules,
    shading: CoreShading<'_>,
) -> Result<String, LayoutError> {
    const SCALE: f64 = 16.0; // px per mm
    let edge = layout.footprint_edge(chip, rules).value();
    let px = (edge * SCALE).ceil();
    let mut svg = String::new();
    writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{px:.0}" height="{px:.0}" viewBox="0 0 {edge} {edge}">"#
    )
    .expect("infallible");
    // Interposer / die background.
    writeln!(
        svg,
        r##"<rect x="0" y="0" width="{edge}" height="{edge}" fill="#d8e2dc" stroke="#555" stroke-width="0.15"/>"##
    )
    .expect("infallible");
    // Chiplets.
    for rect in layout.chiplet_rects(chip, rules) {
        writeln!(
            svg,
            r##"<rect x="{:.3}" y="{:.3}" width="{:.3}" height="{:.3}" fill="#9db4c0" stroke="#333" stroke-width="0.1"/>"##,
            rect.x0().value(),
            edge - rect.y1().value(), // SVG y grows downward
            rect.size.w.value(),
            rect.size.h.value()
        )
        .expect("infallible");
    }
    // Core tiles.
    let placed = place_cores(chip, layout, rules)?;
    if let Some(values) = shading {
        assert_eq!(
            values.len(),
            placed.len(),
            "one shading value per core required"
        );
        assert!(
            values.iter().all(|v| (0.0..=1.0).contains(v)),
            "shading values must be in [0, 1]"
        );
    }
    for pc in &placed {
        let fill = match shading {
            None => "#5c7a8a".to_owned(),
            Some(values) => {
                // Cold steel-blue → hot red ramp.
                let v = values[pc.core.0 as usize];
                let red = (40.0 + 215.0 * v) as u8;
                let green = (70.0 + 40.0 * (1.0 - v)) as u8;
                let blue = (160.0 * (1.0 - v) + 40.0) as u8;
                format!("#{red:02x}{green:02x}{blue:02x}")
            }
        };
        writeln!(
            svg,
            r##"<rect x="{:.3}" y="{:.3}" width="{:.3}" height="{:.3}" fill="{fill}" stroke="#222" stroke-width="0.02"/>"##,
            pc.rect.x0().value(),
            edge - pc.rect.y1().value(),
            pc.rect.size.w.value(),
            pc.rect.size.h.value()
        )
        .expect("infallible");
    }
    svg.push_str("</svg>\n");
    Ok(svg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organization::Spacing;

    fn chip() -> ChipSpec {
        ChipSpec::scc_256()
    }

    fn rules() -> PackageRules {
        PackageRules::default()
    }

    #[test]
    fn svg_contains_all_elements() {
        let layout = ChipletLayout::Symmetric16 {
            spacing: Spacing::new(2.0, 1.0, 3.0),
        };
        let svg = render_layout_svg(&chip(), &layout, &rules(), None).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // 1 background + 16 chiplets + 256 cores = 273 rects.
        assert_eq!(svg.matches("<rect").count(), 273);
    }

    #[test]
    fn shading_changes_fill_colors() {
        let layout = ChipletLayout::SingleChip;
        let mut shade = vec![0.0; 256];
        shade[0] = 1.0;
        let svg = render_layout_svg(&chip(), &layout, &rules(), Some(&shade)).unwrap();
        // The hot core renders pure-red-ish, distinct from the cold ones.
        assert!(svg.contains("#ff"), "a hot fill exists");
    }

    #[test]
    #[should_panic(expected = "one shading value per core")]
    fn wrong_shading_length_rejected() {
        let _ = render_layout_svg(
            &chip(),
            &ChipletLayout::SingleChip,
            &rules(),
            Some(&[0.5; 3]),
        );
    }

    #[test]
    fn viewbox_matches_interposer() {
        let layout = ChipletLayout::Symmetric4 { s3: Mm(8.0) };
        let svg = render_layout_svg(&chip(), &layout, &rules(), None).unwrap();
        assert!(svg.contains(r#"viewBox="0 0 28 28""#), "{}", &svg[..200]);
    }

    use crate::units::Mm;
}
