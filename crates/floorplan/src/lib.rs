#![warn(missing_docs)]

//! # tac25d-floorplan
//!
//! Geometry substrate for the `tac25d` reproduction of *"Leveraging
//! Thermally-Aware Chiplet Organization in 2.5D Systems to Reclaim Dark
//! Silicon"* (DATE 2018).
//!
//! This crate owns everything spatial:
//!
//! * [`chip`] — the example 256-core chip (Intel-SCC-derived, 22 nm,
//!   18 mm × 18 mm) and its core-tile grid;
//! * [`organization`] — chiplet organizations: the single-chip baseline,
//!   uniform r×r matrix layouts, and the paper's symmetric 4-/16-chiplet
//!   placements parameterized by the independent spacings (s1, s2, s3)
//!   (Fig. 4(a), Eqs. (8)–(10));
//! * [`layers`] — the vertical package stacks of Table I;
//! * [`raster`] — rasterization of organizations into the coverage and
//!   power grids consumed by the thermal solver;
//! * [`svg`] — dependency-free SVG rendering of organizations;
//! * [`hotspot`] — export to HotSpot 6.0 file formats (`.flp`, `.lcf`,
//!   `.ptrace`) for cross-validation against the paper's simulator;
//! * [`units`], [`geometry`] — millimetre-typed quantities and planar
//!   primitives.
//!
//! # Examples
//!
//! ```
//! use tac25d_floorplan::prelude::*;
//!
//! let chip = ChipSpec::scc_256();
//! let rules = PackageRules::default();
//! let layout = ChipletLayout::Symmetric16 {
//!     spacing: Spacing::new(2.0, 1.0, 3.0),
//! };
//! layout.validate(&chip, &rules)?;
//! // Eq. (9): 4·4.5 + 2·2 + 3 + 2·1 = 27 mm interposer edge.
//! assert_eq!(layout.interposer_edge(&chip, &rules), Some(Mm(27.0)));
//! # Ok::<(), tac25d_floorplan::organization::LayoutError>(())
//! ```

pub mod chip;
pub mod geometry;
pub mod hotspot;
pub mod layers;
pub mod organization;
pub mod raster;
pub mod svg;
pub mod units;

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::chip::{ChipSpec, CoreId};
    pub use crate::geometry::{Point, Rect, Size};
    pub use crate::layers::{LayerRole, LayerSpec, Material, StackSpec};
    pub use crate::organization::{
        enumerate_symmetric16, symmetric4_for_edge, ChipletLayout, LayoutError, PackageRules,
        Spacing,
    };
    pub use crate::raster::{coverage_grid, place_cores, power_grid, Grid, PlacedCore};
    pub use crate::units::{Area, Celsius, Mm, Watts, WattsPerMm2};
}
