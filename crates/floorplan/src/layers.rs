//! The vertical layer stack of the 2.5D package and the single-chip
//! baseline, following Table I of the paper.
//!
//! The stack is described top-down (heat sink first). Material *identities*
//! live here; their thermal properties (conductivity, volumetric heat
//! capacity) are owned by the thermal crate, which maps each [`Material`] to
//! physical constants.

use crate::units::Mm;
use serde::{Deserialize, Serialize};

/// Identity of the material filling a region of a layer.
///
/// Composite materials (microbump, TSV, C4 layers) model the
/// copper-plus-epoxy or silicon-plus-copper mixtures of Table I as
/// effective media; the thermal crate computes their effective
/// conductivities from the bump/TSV geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Material {
    /// Bulk silicon (chiplet dies).
    Silicon,
    /// Epoxy resin underfill (between chiplets, between bumps).
    Epoxy,
    /// Copper (spreader, heat sink base).
    Copper,
    /// FR-4 organic substrate.
    Fr4,
    /// Thermal interface material between chiplets and spreader.
    InterfaceMaterial,
    /// Microbump layer under a chiplet: copper bumps in epoxy
    /// (Ø25 µm, 50 µm pitch per Table I).
    MicrobumpComposite,
    /// Silicon interposer with copper TSVs (Ø10 µm, 50 µm pitch).
    TsvSilicon,
    /// C4 bump layer: copper bumps in epoxy (Ø250 µm, 600 µm pitch).
    C4Composite,
    /// Thin air/filler gap (used for regions of the TIM layer beyond any
    /// die in the baseline package).
    Filler,
}

/// The structural role of a layer in the package stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerRole {
    /// Finned aluminium/copper heat sink (modelled with lumped periphery).
    HeatSink,
    /// Copper heat spreader.
    Spreader,
    /// Thermal interface material.
    Tim,
    /// Active CMOS chiplet layer (silicon dies + epoxy fill).
    Die,
    /// Microbump layer between chiplets and interposer.
    Microbump,
    /// Passive silicon interposer with TSVs.
    Interposer,
    /// C4 bump layer between interposer (or die) and substrate.
    C4,
    /// Organic package substrate.
    Substrate,
}

/// One layer of the package stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// The layer's structural role.
    pub role: LayerRole,
    /// Layer thickness.
    pub thickness: Mm,
    /// Material filling the layer *outside* chiplet footprints (the
    /// background); the die layer's background is epoxy, for instance.
    pub background: Material,
    /// Material filling the layer *under/inside* chiplet footprints.
    pub under_chiplet: Material,
    /// Whether this layer dissipates the core power map (only the die layer).
    pub is_heat_source: bool,
}

/// An ordered package stack, listed top (heat sink side) to bottom
/// (board side).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackSpec {
    layers: Vec<LayerSpec>,
}

impl StackSpec {
    /// The paper's 2.5D package (Table I): sink / spreader / TIM / chiplet
    /// layer (Si + epoxy) / microbumps / interposer (Si + TSV) / C4 /
    /// organic substrate.
    pub fn system_25d() -> Self {
        StackSpec {
            layers: vec![
                LayerSpec {
                    role: LayerRole::HeatSink,
                    thickness: Mm(6.9),
                    background: Material::Copper,
                    under_chiplet: Material::Copper,
                    is_heat_source: false,
                },
                LayerSpec {
                    role: LayerRole::Spreader,
                    thickness: Mm(1.0),
                    background: Material::Copper,
                    under_chiplet: Material::Copper,
                    is_heat_source: false,
                },
                LayerSpec {
                    role: LayerRole::Tim,
                    thickness: Mm::from_um(20.0),
                    background: Material::InterfaceMaterial,
                    under_chiplet: Material::InterfaceMaterial,
                    is_heat_source: false,
                },
                LayerSpec {
                    role: LayerRole::Die,
                    thickness: Mm::from_um(150.0),
                    background: Material::Epoxy,
                    under_chiplet: Material::Silicon,
                    is_heat_source: true,
                },
                LayerSpec {
                    role: LayerRole::Microbump,
                    thickness: Mm::from_um(10.0),
                    background: Material::Epoxy,
                    under_chiplet: Material::MicrobumpComposite,
                    is_heat_source: false,
                },
                LayerSpec {
                    role: LayerRole::Interposer,
                    thickness: Mm::from_um(110.0),
                    background: Material::TsvSilicon,
                    under_chiplet: Material::TsvSilicon,
                    is_heat_source: false,
                },
                LayerSpec {
                    role: LayerRole::C4,
                    thickness: Mm::from_um(70.0),
                    background: Material::C4Composite,
                    under_chiplet: Material::C4Composite,
                    is_heat_source: false,
                },
                LayerSpec {
                    role: LayerRole::Substrate,
                    thickness: Mm::from_um(200.0),
                    background: Material::Fr4,
                    under_chiplet: Material::Fr4,
                    is_heat_source: false,
                },
            ],
        }
    }

    /// A two-tier 3D stack (for the paper's Sec. I contrast: 3D integration
    /// "exacerbates the thermal issues"): sink / spreader / TIM / top die /
    /// inter-tier bond (microbump-class) / bottom die / C4 / substrate.
    /// Both die layers are heat sources; the bottom tier is insulated from
    /// the sink by the whole top tier.
    pub fn stacked_3d() -> Self {
        StackSpec {
            layers: vec![
                LayerSpec {
                    role: LayerRole::HeatSink,
                    thickness: Mm(6.9),
                    background: Material::Copper,
                    under_chiplet: Material::Copper,
                    is_heat_source: false,
                },
                LayerSpec {
                    role: LayerRole::Spreader,
                    thickness: Mm(1.0),
                    background: Material::Copper,
                    under_chiplet: Material::Copper,
                    is_heat_source: false,
                },
                LayerSpec {
                    role: LayerRole::Tim,
                    thickness: Mm::from_um(20.0),
                    background: Material::InterfaceMaterial,
                    under_chiplet: Material::InterfaceMaterial,
                    is_heat_source: false,
                },
                LayerSpec {
                    role: LayerRole::Die,
                    thickness: Mm::from_um(150.0),
                    background: Material::Epoxy,
                    under_chiplet: Material::Silicon,
                    is_heat_source: true,
                },
                LayerSpec {
                    role: LayerRole::Microbump,
                    thickness: Mm::from_um(10.0),
                    background: Material::Epoxy,
                    under_chiplet: Material::MicrobumpComposite,
                    is_heat_source: false,
                },
                LayerSpec {
                    role: LayerRole::Die,
                    thickness: Mm::from_um(150.0),
                    background: Material::Epoxy,
                    under_chiplet: Material::Silicon,
                    is_heat_source: true,
                },
                LayerSpec {
                    role: LayerRole::C4,
                    thickness: Mm::from_um(70.0),
                    background: Material::C4Composite,
                    under_chiplet: Material::C4Composite,
                    is_heat_source: false,
                },
                LayerSpec {
                    role: LayerRole::Substrate,
                    thickness: Mm::from_um(200.0),
                    background: Material::Fr4,
                    under_chiplet: Material::Fr4,
                    is_heat_source: false,
                },
            ],
        }
    }

    /// The conventional single-chip baseline: the 256-core chip placed
    /// directly on the organic substrate with C4 bumps (paper Sec. III-A) —
    /// no interposer, no microbump layer.
    pub fn baseline_2d() -> Self {
        StackSpec {
            layers: vec![
                LayerSpec {
                    role: LayerRole::HeatSink,
                    thickness: Mm(6.9),
                    background: Material::Copper,
                    under_chiplet: Material::Copper,
                    is_heat_source: false,
                },
                LayerSpec {
                    role: LayerRole::Spreader,
                    thickness: Mm(1.0),
                    background: Material::Copper,
                    under_chiplet: Material::Copper,
                    is_heat_source: false,
                },
                LayerSpec {
                    role: LayerRole::Tim,
                    thickness: Mm::from_um(20.0),
                    background: Material::InterfaceMaterial,
                    under_chiplet: Material::InterfaceMaterial,
                    is_heat_source: false,
                },
                LayerSpec {
                    role: LayerRole::Die,
                    thickness: Mm::from_um(150.0),
                    background: Material::Epoxy,
                    under_chiplet: Material::Silicon,
                    is_heat_source: true,
                },
                LayerSpec {
                    role: LayerRole::C4,
                    thickness: Mm::from_um(70.0),
                    background: Material::C4Composite,
                    under_chiplet: Material::C4Composite,
                    is_heat_source: false,
                },
                LayerSpec {
                    role: LayerRole::Substrate,
                    thickness: Mm::from_um(200.0),
                    background: Material::Fr4,
                    under_chiplet: Material::Fr4,
                    is_heat_source: false,
                },
            ],
        }
    }

    /// The layers, top (sink) to bottom (substrate).
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// The layer playing a given role, if present.
    pub fn layer(&self, role: LayerRole) -> Option<&LayerSpec> {
        self.layers.iter().find(|l| l.role == role)
    }

    /// Index of the topmost heat-source (die) layer.
    ///
    /// # Panics
    ///
    /// Panics if the stack has no heat-source layer (every constructor
    /// provides one).
    pub fn heat_source_index(&self) -> usize {
        self.layers
            .iter()
            .position(|l| l.is_heat_source)
            .expect("stack must contain a heat-source layer")
    }

    /// Indices of all heat-source layers, top-down ("tiers"; 3D stacks
    /// have more than one).
    pub fn heat_source_indices(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.is_heat_source.then_some(i))
            .collect()
    }

    /// Total stack thickness (excluding spreader/sink overhang geometry).
    pub fn total_thickness(&self) -> Mm {
        self.layers
            .iter()
            .map(|l| l.thickness)
            .fold(Mm(0.0), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_thicknesses() {
        let s = StackSpec::system_25d();
        assert_eq!(s.layers().len(), 8);
        assert_eq!(s.layer(LayerRole::HeatSink).unwrap().thickness, Mm(6.9));
        assert_eq!(s.layer(LayerRole::Spreader).unwrap().thickness, Mm(1.0));
        assert!((s.layer(LayerRole::Tim).unwrap().thickness.value() - 0.02).abs() < 1e-12);
        assert!((s.layer(LayerRole::Die).unwrap().thickness.value() - 0.15).abs() < 1e-12);
        assert!((s.layer(LayerRole::Microbump).unwrap().thickness.value() - 0.01).abs() < 1e-12);
        assert!((s.layer(LayerRole::Interposer).unwrap().thickness.value() - 0.11).abs() < 1e-12);
        assert!((s.layer(LayerRole::C4).unwrap().thickness.value() - 0.07).abs() < 1e-12);
        assert!((s.layer(LayerRole::Substrate).unwrap().thickness.value() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn baseline_has_no_interposer_layers() {
        let s = StackSpec::baseline_2d();
        assert!(s.layer(LayerRole::Interposer).is_none());
        assert!(s.layer(LayerRole::Microbump).is_none());
        assert!(s.layer(LayerRole::Die).is_some());
    }

    #[test]
    fn exactly_one_heat_source() {
        for s in [StackSpec::system_25d(), StackSpec::baseline_2d()] {
            assert_eq!(s.layers().iter().filter(|l| l.is_heat_source).count(), 1);
            assert_eq!(s.layers()[s.heat_source_index()].role, LayerRole::Die);
        }
    }

    #[test]
    fn stacked_3d_has_two_tiers() {
        let s = StackSpec::stacked_3d();
        let tiers = s.heat_source_indices();
        assert_eq!(tiers.len(), 2);
        // Top tier sits above the inter-tier bond, bottom below.
        assert!(tiers[0] < tiers[1]);
        assert_eq!(s.layers()[tiers[0]].role, LayerRole::Die);
        assert_eq!(s.layers()[tiers[1]].role, LayerRole::Die);
        assert_eq!(s.heat_source_index(), tiers[0]);
        assert!(s.layer(LayerRole::Interposer).is_none());
    }

    #[test]
    fn layers_ordered_top_down() {
        let s = StackSpec::system_25d();
        assert_eq!(s.layers().first().unwrap().role, LayerRole::HeatSink);
        assert_eq!(s.layers().last().unwrap().role, LayerRole::Substrate);
    }

    #[test]
    fn die_layer_distinguishes_chiplet_from_fill() {
        let s = StackSpec::system_25d();
        let die = s.layer(LayerRole::Die).unwrap();
        assert_eq!(die.under_chiplet, Material::Silicon);
        assert_eq!(die.background, Material::Epoxy);
    }

    #[test]
    fn total_thickness_sums() {
        let s = StackSpec::system_25d();
        let expect = 6.9 + 1.0 + 0.02 + 0.15 + 0.01 + 0.11 + 0.07 + 0.2;
        assert!((s.total_thickness().value() - expect).abs() < 1e-9);
    }
}
