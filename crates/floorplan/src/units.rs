//! Strongly-typed physical quantities used across the workspace.
//!
//! The models in this repository mix lengths (mm and µm), powers, power
//! densities and temperatures in the same expressions; the paper's equations
//! (Eqs. (1)–(10)) are notorious for unit slips (wafer diameters in mm, die
//! areas in mm², costs in dollars). These thin newtypes make the intended
//! interpretation part of each public signature while remaining free to
//! convert to `f64` for inner numeric loops.
//!
//! # Examples
//!
//! ```
//! use tac25d_floorplan::units::Mm;
//!
//! let chip = Mm(18.0);
//! let guard = Mm(1.0);
//! assert_eq!(chip + guard * 2.0, Mm(20.0));
//! assert!((chip.to_meters() - 0.018).abs() < 1e-12);
//! ```

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(
            Debug,
            Clone,
            Copy,
            PartialEq,
            PartialOrd,
            Default,
            serde::Serialize,
            serde::Deserialize,
        )]
        pub struct $name(pub f64);

        impl $name {
            /// Returns the raw `f64` magnitude in the quantity's base unit.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value of the quantity.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the component-wise minimum of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the component-wise maximum of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns `true` if the magnitude is finite (not NaN or ±∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", self.0, $unit)
            }
        }
    };
}

quantity!(
    /// A length in millimetres — the natural unit of the paper's geometry
    /// (chip edges, interposer edges, chiplet spacings, guard bands).
    Mm,
    "mm"
);

quantity!(
    /// A power in watts.
    Watts,
    "W"
);

quantity!(
    /// A temperature in degrees Celsius (the paper reports all temperatures
    /// and thresholds in °C; ambient is 45 °C).
    Celsius,
    "°C"
);

quantity!(
    /// A power density in watts per square millimetre, as used by the
    /// paper's synthetic design-space exploration (0.5–2.0 W/mm²).
    WattsPerMm2,
    "W/mm²"
);

impl Mm {
    /// Converts to metres (SI), the unit used internally by the thermal
    /// solver's conductance formulas.
    #[inline]
    pub fn to_meters(self) -> f64 {
        self.0 * 1e-3
    }

    /// Creates a length from a value in metres.
    #[inline]
    pub fn from_meters(m: f64) -> Self {
        Mm(m * 1e3)
    }

    /// Creates a length from a value in micrometres (Table I layer
    /// thicknesses are specified in µm).
    #[inline]
    pub fn from_um(um: f64) -> Self {
        Mm(um * 1e-3)
    }

    /// Rounds the length to the nearest multiple of `step`.
    ///
    /// The paper discretizes all spacings at a 0.5 mm granularity; the
    /// optimizer uses this to snap continuous candidates onto the search
    /// lattice.
    #[inline]
    pub fn snap_to(self, step: Mm) -> Self {
        Mm((self.0 / step.0).round() * step.0)
    }
}

impl Watts {
    /// Converts a power spread uniformly over `area` into a power density.
    ///
    /// # Panics
    ///
    /// Panics if `area` is not strictly positive.
    #[inline]
    pub fn over_area(self, area: Area) -> WattsPerMm2 {
        assert!(area.value() > 0.0, "area must be positive, got {area}");
        WattsPerMm2(self.0 / area.value())
    }
}

quantity!(
    /// An area in square millimetres.
    Area,
    "mm²"
);

impl Mul for Mm {
    type Output = Area;
    #[inline]
    fn mul(self, rhs: Mm) -> Area {
        Area(self.0 * rhs.0)
    }
}

impl Mul<Area> for WattsPerMm2 {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Area) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl core::iter::Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        Watts(iter.map(|w| w.0).sum())
    }
}

impl core::iter::Sum for Area {
    fn sum<I: Iterator<Item = Area>>(iter: I) -> Area {
        Area(iter.map(|a| a.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm_arithmetic_behaves_like_f64() {
        assert_eq!(Mm(1.5) + Mm(0.5), Mm(2.0));
        assert_eq!(Mm(1.5) - Mm(0.5), Mm(1.0));
        assert_eq!(Mm(1.5) * 2.0, Mm(3.0));
        assert_eq!(Mm(3.0) / 2.0, Mm(1.5));
        assert_eq!(Mm(3.0) / Mm(1.5), 2.0);
        assert_eq!(-Mm(3.0), Mm(-3.0));
    }

    #[test]
    fn mm_conversions_roundtrip() {
        assert!((Mm(18.0).to_meters() - 0.018).abs() < 1e-15);
        assert_eq!(
            Mm::from_meters(0.018),
            Mm(18.000000000000002).min(Mm(18.0)).max(Mm(17.999999))
        );
        assert!((Mm::from_um(150.0).value() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn snap_to_rounds_to_lattice() {
        assert_eq!(Mm(1.26).snap_to(Mm(0.5)), Mm(1.5));
        assert_eq!(Mm(1.24).snap_to(Mm(0.5)), Mm(1.0));
        assert_eq!(Mm(-0.3).snap_to(Mm(0.5)), Mm(-0.5));
    }

    #[test]
    fn area_from_length_product() {
        let a = Mm(18.0) * Mm(18.0);
        assert_eq!(a, Area(324.0));
    }

    #[test]
    fn power_density_roundtrip() {
        let p = Watts(324.0);
        let rho = p.over_area(Area(324.0));
        assert_eq!(rho, WattsPerMm2(1.0));
        assert_eq!(rho * Area(2.0), Watts(2.0));
    }

    #[test]
    #[should_panic(expected = "area must be positive")]
    fn power_density_rejects_zero_area() {
        let _ = Watts(1.0).over_area(Area(0.0));
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Mm(2.5).to_string(), "2.5mm");
        assert_eq!(Celsius(85.0).to_string(), "85°C");
        assert_eq!(Watts(3.9).to_string(), "3.9W");
        assert_eq!(WattsPerMm2(1.5).to_string(), "1.5W/mm²");
    }

    #[test]
    fn sums_accumulate() {
        let total: Watts = [Watts(1.0), Watts(2.5)].into_iter().sum();
        assert_eq!(total, Watts(3.5));
        let area: Area = [Area(1.0), Area(2.0)].into_iter().sum();
        assert_eq!(area, Area(3.0));
    }
}
