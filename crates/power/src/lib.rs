#![warn(missing_docs)]

//! # tac25d-power
//!
//! Performance and power models (Sniper + McPAT substitutes) for the
//! `tac25d` reproduction of *"Leveraging Thermally-Aware Chiplet
//! Organization in 2.5D Systems to Reclaim Dark Silicon"* (DATE 2018):
//!
//! * [`dvfs`] — the paper's five voltage/frequency levels and eight
//!   active-core counts (Table II);
//! * [`benchmarks`] — analytic profiles of the eight SPLASH-2 / PARSEC /
//!   HPCCG / UHPC benchmarks, calibrated to the behaviors the paper
//!   reports;
//! * [`perf`] — aggregate IPS as a function of (benchmark, f, p);
//! * [`corepower`] — per-core dynamic power plus the temperature-dependent
//!   linear leakage model ("30% of power is leakage at 60 °C");
//! * [`reliability`] — Arrhenius / Coffin–Manson lifetime factors for the
//!   paper's "lower temperature improves reliability" observation.
//!
//! # Examples
//!
//! ```
//! use tac25d_power::prelude::*;
//! use tac25d_floorplan::units::Celsius;
//!
//! let profile = Benchmark::Cholesky.profile();
//! let table = VfTable::paper();
//! let ips = system_ips(&profile, table.nominal(), 256);
//! let watts = CorePowerModel::default()
//!     .active_power(&profile, table.nominal(), Celsius(60.0));
//! assert!(ips.gips() > 0.0 && watts > 0.0);
//! ```

pub mod benchmarks;
pub mod corepower;
pub mod dvfs;
pub mod perf;
pub mod phases;
pub mod reliability;

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::benchmarks::{Benchmark, BenchmarkProfile};
    pub use crate::corepower::{CorePowerModel, LeakageModel};
    pub use crate::dvfs::{paper_core_counts, OperatingPoint, VfTable};
    pub use crate::perf::{system_ips, Ips};
    pub use crate::phases::{PhasedWorkload, WorkloadPhase};
    pub use crate::reliability::ReliabilityModel;
}
