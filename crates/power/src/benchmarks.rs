//! The eight multithreaded benchmarks of the paper's evaluation
//! (SPLASH-2, PARSEC, HPCCG and UHPC suites) as analytic profiles.
//!
//! The paper characterizes each benchmark with Sniper (performance) and
//! McPAT calibrated to Intel SCC measurements (power). Neither tool can run
//! here, so each benchmark becomes a [`BenchmarkProfile`] whose constants
//! are calibrated against the *behaviors the paper reports*:
//!
//! * shock, blackscholes and cholesky are the high-power benchmarks,
//!   canneal and swaptions the low-power ones (Sec. V-A);
//! * canneal's performance saturates at 192 active cores and lu.cont's at
//!   96 (Sec. V-B) — encoded in the USL scalability constants;
//! * cholesky gains ≈80% going 533 MHz → 1 GHz (Fig. 8) — encoded in the
//!   frequency-scaling exponent;
//! * hpccg gains ≈40% going 160 → 256 cores (Fig. 8) — near-linear
//!   scaling.
//!
//! See DESIGN.md §1 ("Substitutions") for the full rationale.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The benchmark programs evaluated in the paper (Sec. IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Benchmark {
    /// SPLASH-2 `cholesky` — high power, compute bound.
    Cholesky,
    /// SPLASH-2 `lu.cont` — medium power, saturates at 96 cores.
    LuCont,
    /// PARSEC `blackscholes` — high power, compute bound.
    Blackscholes,
    /// PARSEC `swaptions` — low-medium power.
    Swaptions,
    /// PARSEC `streamcluster` — memory bound.
    Streamcluster,
    /// PARSEC `canneal` — low power, memory bound, saturates at 192 cores.
    Canneal,
    /// Mantevo `hpccg` — medium power, near-linear scaling.
    Hpccg,
    /// UHPC `shock` — the highest-power benchmark.
    Shock,
}

impl Benchmark {
    /// All eight benchmarks, in the paper's listing order.
    pub fn all() -> [Benchmark; 8] {
        [
            Benchmark::Cholesky,
            Benchmark::LuCont,
            Benchmark::Blackscholes,
            Benchmark::Swaptions,
            Benchmark::Streamcluster,
            Benchmark::Canneal,
            Benchmark::Hpccg,
            Benchmark::Shock,
        ]
    }

    /// The canonical lowercase name used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Cholesky => "cholesky",
            Benchmark::LuCont => "lu.cont",
            Benchmark::Blackscholes => "blackscholes",
            Benchmark::Swaptions => "swaptions",
            Benchmark::Streamcluster => "streamcluster",
            Benchmark::Canneal => "canneal",
            Benchmark::Hpccg => "hpccg",
            Benchmark::Shock => "shock",
        }
    }

    /// The suite the benchmark comes from.
    pub fn suite(&self) -> &'static str {
        match self {
            Benchmark::Cholesky | Benchmark::LuCont => "SPLASH-2",
            Benchmark::Blackscholes
            | Benchmark::Swaptions
            | Benchmark::Streamcluster
            | Benchmark::Canneal => "PARSEC",
            Benchmark::Hpccg => "HPCCG",
            Benchmark::Shock => "UHPC",
        }
    }

    /// The analytic profile of this benchmark.
    pub fn profile(&self) -> BenchmarkProfile {
        // Per-core total power at the nominal point (1 GHz, 0.9 V) and
        // 60 °C, split 70% dynamic / 30% leakage (paper Sec. IV); IPC and
        // scaling constants per the calibration notes in the module docs.
        match self {
            Benchmark::Shock => BenchmarkProfile::new(*self, 1.34, 1.5, 0.99, 0.001, 1.0e-7, 0.9),
            Benchmark::Blackscholes => {
                BenchmarkProfile::new(*self, 1.30, 1.4, 0.89, 0.001, 1.0e-7, 0.5)
            }
            Benchmark::Cholesky => {
                BenchmarkProfile::new(*self, 1.25, 1.2, 0.93, 0.001, 1.0e-7, 0.8)
            }
            Benchmark::Hpccg => BenchmarkProfile::new(*self, 1.00, 1.0, 0.75, 0.002, 1.0e-7, 0.7),
            Benchmark::LuCont => {
                // USL peak at p* = sqrt((1-σ)/κ) ≈ 96.
                BenchmarkProfile::new(*self, 0.95, 1.1, 0.80, 0.020, 1.063e-4, 0.6)
            }
            Benchmark::Streamcluster => {
                BenchmarkProfile::new(*self, 0.85, 0.8, 0.60, 0.008, 1.0e-6, 1.0)
            }
            Benchmark::Swaptions => {
                BenchmarkProfile::new(*self, 0.80, 1.3, 0.90, 0.004, 5.0e-7, 0.4)
            }
            Benchmark::Canneal => {
                // USL peak at p* ≈ 192.
                BenchmarkProfile::new(*self, 0.65, 0.6, 0.50, 0.030, 2.63e-5, 1.0)
            }
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Analytic performance/power profile of one benchmark (the interface
/// Sniper + McPAT provided the paper's authors).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Which benchmark this profiles.
    pub benchmark: Benchmark,
    /// Total per-core power at (1 GHz, 0.9 V, 60 °C), watts. 70% of this is
    /// dynamic, 30% leakage (paper Sec. IV: "30% of power is leakage at
    /// 60 °C").
    pub core_power_nominal: f64,
    /// Average instructions per cycle of one core in the region of
    /// interest.
    pub ipc: f64,
    /// Frequency-scaling exponent `e` of performance: IPS ∝ f^e (1 for a
    /// perfectly compute-bound code, <1 when memory-bound).
    pub freq_exponent: f64,
    /// Universal-Scalability-Law contention coefficient σ.
    pub usl_sigma: f64,
    /// Universal-Scalability-Law coherence coefficient κ.
    pub usl_kappa: f64,
    /// NoC activity factor in [0, 1] (fraction of peak network load;
    /// memory-bound codes stress the mesh more).
    pub noc_activity: f64,
}

impl BenchmarkProfile {
    fn new(
        benchmark: Benchmark,
        core_power_nominal: f64,
        ipc: f64,
        freq_exponent: f64,
        usl_sigma: f64,
        usl_kappa: f64,
        noc_activity: f64,
    ) -> Self {
        assert!(core_power_nominal > 0.0);
        assert!(ipc > 0.0);
        assert!((0.0..=1.0).contains(&freq_exponent));
        assert!(usl_sigma >= 0.0 && usl_kappa >= 0.0);
        assert!((0.0..=1.0).contains(&noc_activity));
        BenchmarkProfile {
            benchmark,
            core_power_nominal,
            ipc,
            freq_exponent,
            usl_sigma,
            usl_kappa,
            noc_activity,
        }
    }

    /// Dynamic share of the nominal per-core power (70%).
    pub fn dynamic_nominal(&self) -> f64 {
        0.7 * self.core_power_nominal
    }

    /// Leakage share of the nominal per-core power at 60 °C (30%).
    pub fn leakage_nominal_60c(&self) -> f64 {
        0.3 * self.core_power_nominal
    }

    /// Strong-scaling speedup at `p` cores (Universal Scalability Law):
    /// `S(p) = p / (1 + σ·(p−1) + κ·p·(p−1))`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero.
    pub fn speedup(&self, p: u16) -> f64 {
        assert!(p > 0, "speedup needs at least one core");
        let p = f64::from(p);
        p / (1.0 + self.usl_sigma * (p - 1.0) + self.usl_kappa * p * (p - 1.0))
    }

    /// The core count (within 1..=max) that maximizes speedup.
    pub fn saturation_point(&self, max: u16) -> u16 {
        (1..=max)
            .max_by(|&a, &b| {
                self.speedup(a)
                    .partial_cmp(&self.speedup(b))
                    .expect("speedup is finite")
            })
            .expect("non-empty range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_benchmarks_with_unique_names() {
        let all = Benchmark::all();
        assert_eq!(all.len(), 8);
        let mut names: Vec<&str> = all.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn power_classes_match_paper() {
        // Sec. V-A: shock, blackscholes, cholesky are high-power;
        // canneal and swaptions low-power.
        let p = |b: Benchmark| b.profile().core_power_nominal;
        for hi in [
            Benchmark::Shock,
            Benchmark::Blackscholes,
            Benchmark::Cholesky,
        ] {
            for lo in [Benchmark::Canneal, Benchmark::Swaptions] {
                assert!(p(hi) > p(lo), "{hi} should out-consume {lo}");
            }
        }
        // shock is the hottest of all.
        assert!(Benchmark::all()
            .iter()
            .all(|b| p(*b) <= p(Benchmark::Shock)));
    }

    #[test]
    fn canneal_saturates_near_192_cores() {
        let sat = Benchmark::Canneal.profile().saturation_point(256);
        assert!(
            (176..=208).contains(&sat),
            "canneal saturation at {sat}, expected ≈192"
        );
    }

    #[test]
    fn lu_cont_saturates_near_96_cores() {
        let sat = Benchmark::LuCont.profile().saturation_point(256);
        assert!(
            (88..=104).contains(&sat),
            "lu.cont saturation at {sat}, expected ≈96"
        );
    }

    #[test]
    fn compute_bound_benchmarks_scale_to_256() {
        for b in [
            Benchmark::Cholesky,
            Benchmark::Blackscholes,
            Benchmark::Shock,
            Benchmark::Hpccg,
            Benchmark::Swaptions,
        ] {
            let prof = b.profile();
            assert!(
                prof.speedup(256) > prof.speedup(224),
                "{b} should still gain at 256 cores"
            );
        }
    }

    #[test]
    fn hpccg_gains_about_40_percent_from_160_to_256() {
        let prof = Benchmark::Hpccg.profile();
        let gain = prof.speedup(256) / prof.speedup(160);
        assert!(
            (1.30..=1.50).contains(&gain),
            "hpccg 160→256 gain {gain:.3}, paper reports ≈1.4"
        );
    }

    #[test]
    fn speedup_of_one_core_is_one() {
        for b in Benchmark::all() {
            assert!((b.profile().speedup(1) - 1.0).abs() < 1e-12, "{b}");
        }
    }

    #[test]
    fn speedup_never_exceeds_core_count() {
        for b in Benchmark::all() {
            let prof = b.profile();
            for p in [2u16, 32, 96, 192, 256] {
                assert!(prof.speedup(p) <= f64::from(p) + 1e-12, "{b} at {p}");
            }
        }
    }

    #[test]
    fn dynamic_leakage_split_is_70_30() {
        for b in Benchmark::all() {
            let prof = b.profile();
            assert!(
                (prof.dynamic_nominal() + prof.leakage_nominal_60c() - prof.core_power_nominal)
                    .abs()
                    < 1e-12
            );
            assert!((prof.leakage_nominal_60c() / prof.core_power_nominal - 0.3).abs() < 1e-12);
        }
    }

    #[test]
    fn suites_match_paper() {
        assert_eq!(Benchmark::Cholesky.suite(), "SPLASH-2");
        assert_eq!(Benchmark::Canneal.suite(), "PARSEC");
        assert_eq!(Benchmark::Hpccg.suite(), "HPCCG");
        assert_eq!(Benchmark::Shock.suite(), "UHPC");
    }
}
