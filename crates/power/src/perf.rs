//! The performance model (Sniper substitute): aggregate instructions per
//! second as a function of benchmark, operating point and active core count.

use crate::benchmarks::BenchmarkProfile;
use crate::dvfs::OperatingPoint;
use serde::{Deserialize, Serialize};

/// Aggregate system performance in instructions per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Ips(pub f64);

impl Ips {
    /// Giga-instructions per second.
    pub fn gips(self) -> f64 {
        self.0 / 1e9
    }
}

impl std::fmt::Display for Ips {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}GIPS", self.gips())
    }
}

/// Computes the aggregate IPS of `p` active cores at operating point `op`:
///
/// `IPS(f, p) = IPC · f₀ · (f/f₀)^e · S(p)`
///
/// where `S(p)` is the benchmark's USL speedup and `e` its
/// frequency-scaling exponent (<1 for memory-bound codes, whose performance
/// degrades less than linearly when clocked down).
///
/// # Panics
///
/// Panics if `p` is zero.
pub fn system_ips(profile: &BenchmarkProfile, op: OperatingPoint, p: u16) -> Ips {
    assert!(p > 0, "need at least one active core");
    let f0_hz = 1e9;
    let per_core_nominal = profile.ipc * f0_hz;
    Ips(per_core_nominal * op.freq_ratio().powf(profile.freq_exponent) * profile.speedup(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;
    use crate::dvfs::VfTable;

    #[test]
    fn ips_increases_with_cores_until_saturation() {
        let prof = Benchmark::Cholesky.profile();
        let op = VfTable::paper().nominal();
        let mut prev = 0.0;
        for p in [32u16, 64, 96, 128, 160, 192, 224, 256] {
            let ips = system_ips(&prof, op, p).0;
            assert!(ips > prev, "cholesky should scale to 256 cores");
            prev = ips;
        }
    }

    #[test]
    fn canneal_ips_drops_past_saturation() {
        let prof = Benchmark::Canneal.profile();
        let op = VfTable::paper().nominal();
        let at_192 = system_ips(&prof, op, 192).0;
        let at_256 = system_ips(&prof, op, 256).0;
        assert!(
            at_192 > at_256,
            "canneal saturates at 192: {at_192} vs {at_256}"
        );
    }

    #[test]
    fn cholesky_gains_about_80_percent_from_533_to_1000() {
        // Fig. 8: cholesky improves 80% by raising frequency 533 MHz → 1 GHz.
        let prof = Benchmark::Cholesky.profile();
        let t = VfTable::paper();
        let lo = system_ips(&prof, t.at_frequency(533.0).unwrap(), 256).0;
        let hi = system_ips(&prof, t.at_frequency(1000.0).unwrap(), 256).0;
        let gain = hi / lo;
        assert!(
            (1.70..=1.90).contains(&gain),
            "cholesky 533→1000 gain {gain:.3}, paper reports ≈1.8"
        );
    }

    #[test]
    fn memory_bound_codes_lose_less_at_low_frequency() {
        let t = VfTable::paper();
        let slow = t.at_frequency(320.0).unwrap();
        let fast = t.nominal();
        let penalty = |b: Benchmark| {
            let prof = b.profile();
            system_ips(&prof, slow, 256).0 / system_ips(&prof, fast, 256).0
        };
        // canneal (e=0.5) retains more of its performance than
        // blackscholes (e=0.95).
        assert!(penalty(Benchmark::Canneal) > penalty(Benchmark::Blackscholes));
    }

    #[test]
    fn ips_magnitude_is_plausible() {
        // 256 compute-bound cores at 1 GHz with IPC>1 ⇒ hundreds of GIPS.
        let prof = Benchmark::Blackscholes.profile();
        let ips = system_ips(&prof, VfTable::paper().nominal(), 256);
        assert!(ips.gips() > 100.0 && ips.gips() < 1000.0, "{ips}");
    }

    #[test]
    fn display_in_gips() {
        assert_eq!(Ips(2.5e9).to_string(), "2.50GIPS");
    }
}
