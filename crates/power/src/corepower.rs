//! The per-core power model (McPAT substitute) with temperature-dependent
//! leakage.
//!
//! Dynamic power follows the classic CV²f scaling from each benchmark's
//! calibrated nominal value; leakage is linear in temperature, anchored at
//! the paper's "30% of power is leakage at 60 °C" (Sec. IV), with a slope
//! extracted in the paper from published Intel 22 nm data — we use
//! 1.2 %/°C, a standard figure for that node. Idle cores enter sleep mode
//! and consume ≈0 W (paper Sec. IV).

use crate::benchmarks::BenchmarkProfile;
use crate::dvfs::OperatingPoint;
use serde::{Deserialize, Serialize};
use tac25d_floorplan::units::Celsius;

/// Linear temperature-dependent leakage model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageModel {
    /// Reference temperature at which the nominal leakage is specified.
    pub reference: Celsius,
    /// Fractional leakage growth per °C above the reference (default
    /// 0.012 = 1.2 %/°C for 22 nm).
    pub slope_per_c: f64,
    /// Exponent of the supply-voltage dependence (leakage ∝ V^n; n = 1
    /// captures the dominant linear DIBL term at these voltages).
    pub voltage_exponent: f64,
}

impl Default for LeakageModel {
    fn default() -> Self {
        LeakageModel {
            reference: Celsius(60.0),
            slope_per_c: 0.012,
            voltage_exponent: 1.0,
        }
    }
}

impl LeakageModel {
    /// Leakage power of one core at voltage `v` (volts) and temperature `t`,
    /// given its nominal leakage `leak_ref` at (0.9 V, reference
    /// temperature). Clamped at zero for very cold (extrapolated)
    /// temperatures.
    pub fn leakage(&self, leak_ref: f64, op: OperatingPoint, t: Celsius) -> f64 {
        let thermal = 1.0 + self.slope_per_c * (t.value() - self.reference.value());
        let v_scale = op.voltage_ratio().powf(self.voltage_exponent);
        (leak_ref * v_scale * thermal).max(0.0)
    }
}

/// The complete per-core power model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CorePowerModel {
    /// The leakage sub-model.
    pub leakage: LeakageModel,
}

impl CorePowerModel {
    /// Dynamic power of one active core: `P_dyn = P_dyn,nom · (V/V₀)² · (f/f₀)`.
    pub fn dynamic(&self, profile: &BenchmarkProfile, op: OperatingPoint) -> f64 {
        profile.dynamic_nominal() * op.voltage_ratio().powi(2) * op.freq_ratio()
    }

    /// Total power of one *active* core at temperature `t`.
    pub fn active_power(&self, profile: &BenchmarkProfile, op: OperatingPoint, t: Celsius) -> f64 {
        self.dynamic(profile, op) + self.leakage.leakage(profile.leakage_nominal_60c(), op, t)
    }

    /// Power of an idle (sleeping) core — ≈0 W per the paper.
    pub fn idle_power(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;
    use crate::dvfs::VfTable;

    fn nominal() -> OperatingPoint {
        VfTable::paper().nominal()
    }

    #[test]
    fn thirty_percent_leakage_at_60c() {
        let m = CorePowerModel::default();
        for b in Benchmark::all() {
            let prof = b.profile();
            let total = m.active_power(&prof, nominal(), Celsius(60.0));
            let leak = m
                .leakage
                .leakage(prof.leakage_nominal_60c(), nominal(), Celsius(60.0));
            assert!(
                (leak / total - 0.3).abs() < 1e-9,
                "{b}: leak fraction {}",
                leak / total
            );
        }
    }

    #[test]
    fn leakage_grows_linearly_with_temperature() {
        let m = LeakageModel::default();
        let at = |t: f64| m.leakage(1.0, nominal(), Celsius(t));
        let l60 = at(60.0);
        let l85 = at(85.0);
        let l110 = at(110.0);
        assert!((l85 - l60 - (l110 - l85)).abs() < 1e-12, "linear slope");
        assert!((l85 / l60 - 1.3).abs() < 1e-9, "1.2%/°C over 25°C = +30%");
    }

    #[test]
    fn leakage_clamped_nonnegative() {
        let m = LeakageModel::default();
        assert_eq!(m.leakage(1.0, nominal(), Celsius(-100.0)), 0.0);
    }

    #[test]
    fn dynamic_power_scales_with_v2f() {
        let m = CorePowerModel::default();
        let prof = Benchmark::Cholesky.profile();
        let t = VfTable::paper();
        let p_nom = m.dynamic(&prof, t.nominal());
        let p_533 = m.dynamic(&prof, t.at_frequency(533.0).unwrap());
        let expect = p_nom * (0.71f64 / 0.9).powi(2) * 0.533;
        assert!((p_533 - expect).abs() < 1e-12);
        assert!(p_533 < p_nom * 0.4, "DVFS saves >60% dynamic power");
    }

    #[test]
    fn active_power_at_nominal_matches_profile() {
        let m = CorePowerModel::default();
        for b in Benchmark::all() {
            let prof = b.profile();
            let p = m.active_power(&prof, nominal(), Celsius(60.0));
            assert!(
                (p - prof.core_power_nominal).abs() < 1e-9,
                "{b}: {p} vs {}",
                prof.core_power_nominal
            );
        }
    }

    #[test]
    fn idle_cores_are_dark() {
        assert_eq!(CorePowerModel::default().idle_power(), 0.0);
    }

    #[test]
    fn hotter_core_consumes_more() {
        let m = CorePowerModel::default();
        let prof = Benchmark::Shock.profile();
        let p60 = m.active_power(&prof, nominal(), Celsius(60.0));
        let p100 = m.active_power(&prof, nominal(), Celsius(100.0));
        assert!(
            p100 > p60 * 1.1,
            "leakage feedback visible: {p60} -> {p100}"
        );
    }
}
