//! Temperature-driven reliability models.
//!
//! The paper's Sec. V-B observes that even when a 2.5D organization brings
//! no performance gain (lu.cont), the lower operating temperature "improves
//! transistor lifetime and reliability". This module quantifies that with
//! the standard models:
//!
//! * **electromigration / TDDB** — Black's-equation Arrhenius factor,
//!   `MTTF ∝ exp(E_a / (k·T))` with T in kelvin, so relative lifetime
//!   between two operating temperatures is
//!   `exp(E_a/k · (1/T₁ − 1/T₂))`;
//! * **thermal cycling** — Coffin–Manson, `N_f ∝ ΔT^(−q)` for the
//!   excursion above ambient experienced at every power cycle.

use serde::{Deserialize, Serialize};
use tac25d_floorplan::units::Celsius;

/// Boltzmann constant in eV/K.
const K_B_EV: f64 = 8.617_333e-5;

/// Reliability model constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityModel {
    /// Electromigration activation energy, eV (0.7 eV for Cu interconnect).
    pub activation_energy_ev: f64,
    /// Coffin–Manson exponent for solder/low-k fatigue (typically 2–2.5).
    pub coffin_manson_exponent: f64,
}

impl Default for ReliabilityModel {
    fn default() -> Self {
        ReliabilityModel {
            activation_energy_ev: 0.7,
            coffin_manson_exponent: 2.35,
        }
    }
}

impl ReliabilityModel {
    /// Relative mean-time-to-failure of operating at `t` versus at
    /// `t_ref`: values above 1 mean running at `t` lasts longer.
    ///
    /// # Panics
    ///
    /// Panics if either temperature is at or below absolute zero.
    pub fn relative_mttf(&self, t: Celsius, t_ref: Celsius) -> f64 {
        let tk = to_kelvin(t);
        let tk_ref = to_kelvin(t_ref);
        (self.activation_energy_ev / K_B_EV * (1.0 / tk - 1.0 / tk_ref)).exp()
    }

    /// Relative thermal-cycling life for peak-to-ambient excursions `dt`
    /// versus `dt_ref` (Coffin–Manson): above 1 means `dt` cycles last
    /// longer.
    ///
    /// # Panics
    ///
    /// Panics if either excursion is not strictly positive.
    pub fn relative_cycle_life(&self, dt: f64, dt_ref: f64) -> f64 {
        assert!(dt > 0.0 && dt_ref > 0.0, "excursions must be positive");
        (dt_ref / dt).powf(self.coffin_manson_exponent)
    }
}

fn to_kelvin(t: Celsius) -> f64 {
    let k = t.value() + 273.15;
    assert!(k > 0.0, "temperature {t} below absolute zero");
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cooler_lasts_longer() {
        let m = ReliabilityModel::default();
        let r = m.relative_mttf(Celsius(65.0), Celsius(85.0));
        assert!(r > 1.0, "20°C cooler must extend lifetime, got {r}");
        // Rule of thumb: ~2x per 10-15°C near these temperatures.
        assert!((2.0..=8.0).contains(&r), "20°C gives {r:.2}x");
    }

    #[test]
    fn identity_at_equal_temperature() {
        let m = ReliabilityModel::default();
        assert!((m.relative_mttf(Celsius(85.0), Celsius(85.0)) - 1.0).abs() < 1e-12);
        assert!((m.relative_cycle_life(40.0, 40.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mttf_ratio_is_reciprocal() {
        let m = ReliabilityModel::default();
        let a = m.relative_mttf(Celsius(70.0), Celsius(90.0));
        let b = m.relative_mttf(Celsius(90.0), Celsius(70.0));
        assert!((a * b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smaller_excursions_extend_cycle_life() {
        let m = ReliabilityModel::default();
        // Halving the thermal swing gives 2^2.35 ≈ 5.1x cycles.
        let r = m.relative_cycle_life(20.0, 40.0);
        assert!((r - 2f64.powf(2.35)).abs() < 1e-9);
    }

    #[test]
    fn higher_activation_energy_amplifies_sensitivity() {
        let lo = ReliabilityModel {
            activation_energy_ev: 0.5,
            ..ReliabilityModel::default()
        };
        let hi = ReliabilityModel {
            activation_energy_ev: 0.9,
            ..ReliabilityModel::default()
        };
        let t = Celsius(65.0);
        let tr = Celsius(85.0);
        assert!(hi.relative_mttf(t, tr) > lo.relative_mttf(t, tr));
    }

    #[test]
    #[should_panic(expected = "below absolute zero")]
    fn absolute_zero_rejected() {
        let m = ReliabilityModel::default();
        let _ = m.relative_mttf(Celsius(-300.0), Celsius(85.0));
    }
}
