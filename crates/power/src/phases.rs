//! Time-varying (phased) workloads.
//!
//! The paper collects per-core statistics every 1 ms from Sniper
//! (Sec. IV) — real benchmarks are not constant-power. A
//! [`PhasedWorkload`] models that as a repeating sequence of phases, each
//! scaling the benchmark's dynamic power and NoC utilization. Combined
//! with the thermal crate's transient solver this answers a question the
//! steady-state flow cannot: how much hotter than its *average* does a
//! bursty workload actually run, and how much thermal headroom does its
//! duty cycle buy back?

use crate::benchmarks::Benchmark;
use serde::{Deserialize, Serialize};

/// One phase of a workload: a duration during which the benchmark's
/// dynamic power and network load are scaled by `activity`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadPhase {
    /// Phase length, seconds.
    pub duration_s: f64,
    /// Dynamic-power scale in `[0, 1]` (1 = the profile's nominal
    /// activity; 0 = stalled/idle phase — leakage still burns).
    pub activity: f64,
}

/// A benchmark plus its repeating phase sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasedWorkload {
    /// The underlying benchmark profile.
    pub benchmark: Benchmark,
    phases: Vec<WorkloadPhase>,
}

impl PhasedWorkload {
    /// A constant-activity workload (one phase) — equivalent to the
    /// steady-state evaluation.
    pub fn steady(benchmark: Benchmark) -> Self {
        PhasedWorkload {
            benchmark,
            phases: vec![WorkloadPhase {
                duration_s: 1.0,
                activity: 1.0,
            }],
        }
    }

    /// A square-wave workload: `duty` fraction of each `period_s` at full
    /// activity, the rest at `idle_activity`.
    ///
    /// # Panics
    ///
    /// Panics unless `period_s > 0` and `duty`, `idle_activity` ∈ [0, 1].
    pub fn bursty(benchmark: Benchmark, period_s: f64, duty: f64, idle_activity: f64) -> Self {
        assert!(period_s > 0.0, "period must be positive");
        assert!((0.0..=1.0).contains(&duty), "duty must be in [0,1]");
        assert!(
            (0.0..=1.0).contains(&idle_activity),
            "idle activity must be in [0,1]"
        );
        PhasedWorkload {
            benchmark,
            phases: vec![
                WorkloadPhase {
                    duration_s: period_s * duty,
                    activity: 1.0,
                },
                WorkloadPhase {
                    duration_s: period_s * (1.0 - duty),
                    activity: idle_activity,
                },
            ],
        }
    }

    /// Builds a workload from explicit phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, a duration is not positive, or an
    /// activity is outside [0, 1].
    pub fn from_phases(benchmark: Benchmark, phases: Vec<WorkloadPhase>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        for p in &phases {
            assert!(p.duration_s > 0.0, "phase duration must be positive");
            assert!(
                (0.0..=1.0).contains(&p.activity),
                "activity must be in [0,1]"
            );
        }
        PhasedWorkload { benchmark, phases }
    }

    /// The phase list.
    pub fn phases(&self) -> &[WorkloadPhase] {
        &self.phases
    }

    /// Length of one full period.
    pub fn period(&self) -> f64 {
        self.phases.iter().map(|p| p.duration_s).sum()
    }

    /// Duration-weighted average activity.
    pub fn average_activity(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| p.duration_s * p.activity)
            .sum::<f64>()
            / self.period()
    }

    /// The activity at absolute time `t` (periodic extension).
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative.
    pub fn activity_at(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "time must be non-negative");
        let mut t = t % self.period();
        for p in &self.phases {
            if t < p.duration_s {
                return p.activity;
            }
            t -= p.duration_s;
        }
        self.phases.last().expect("non-empty").activity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_is_constant_one() {
        let w = PhasedWorkload::steady(Benchmark::Hpccg);
        assert_eq!(w.average_activity(), 1.0);
        assert_eq!(w.activity_at(0.0), 1.0);
        assert_eq!(w.activity_at(123.456), 1.0);
    }

    #[test]
    fn bursty_square_wave() {
        let w = PhasedWorkload::bursty(Benchmark::Shock, 10.0, 0.3, 0.1);
        assert!((w.period() - 10.0).abs() < 1e-12);
        assert!((w.average_activity() - (0.3 + 0.7 * 0.1)).abs() < 1e-12);
        assert_eq!(w.activity_at(1.0), 1.0);
        assert_eq!(w.activity_at(5.0), 0.1);
        // Periodicity.
        assert_eq!(w.activity_at(11.0), 1.0);
        assert_eq!(w.activity_at(25.0), 0.1);
    }

    #[test]
    fn custom_phases_lookup() {
        let w = PhasedWorkload::from_phases(
            Benchmark::Canneal,
            vec![
                WorkloadPhase {
                    duration_s: 1.0,
                    activity: 0.2,
                },
                WorkloadPhase {
                    duration_s: 2.0,
                    activity: 0.8,
                },
                WorkloadPhase {
                    duration_s: 1.0,
                    activity: 0.5,
                },
            ],
        );
        assert_eq!(w.activity_at(0.5), 0.2);
        assert_eq!(w.activity_at(1.5), 0.8);
        assert_eq!(w.activity_at(3.5), 0.5);
        assert!((w.average_activity() - (0.2 + 1.6 + 0.5) / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duty must be in [0,1]")]
    fn bad_duty_rejected() {
        let _ = PhasedWorkload::bursty(Benchmark::Shock, 1.0, 1.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_rejected() {
        let _ = PhasedWorkload::from_phases(Benchmark::Shock, vec![]);
    }
}
