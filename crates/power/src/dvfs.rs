//! The DVFS operating points of the example system (Table II).
//!
//! The paper evaluates five frequency/voltage levels:
//! F = {1000, 800, 533, 400, 320} MHz with
//! V = {0.90, 0.87, 0.71, 0.63, 0.63} V, and eight active-core counts
//! p ∈ {32, 64, …, 256}.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One frequency/voltage operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Core clock in MHz.
    pub freq_mhz: f64,
    /// Supply voltage in volts.
    pub voltage: f64,
}

impl OperatingPoint {
    /// Creates an operating point.
    ///
    /// # Panics
    ///
    /// Panics if frequency or voltage is not strictly positive.
    pub fn new(freq_mhz: f64, voltage: f64) -> Self {
        assert!(freq_mhz > 0.0, "frequency must be positive, got {freq_mhz}");
        assert!(voltage > 0.0, "voltage must be positive, got {voltage}");
        OperatingPoint { freq_mhz, voltage }
    }

    /// Frequency relative to the nominal 1 GHz point.
    pub fn freq_ratio(&self) -> f64 {
        self.freq_mhz / 1000.0
    }

    /// Voltage relative to the nominal 0.9 V point.
    pub fn voltage_ratio(&self) -> f64 {
        self.voltage / 0.9
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}MHz@{:.2}V", self.freq_mhz, self.voltage)
    }
}

/// The voltage/frequency table of the example system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VfTable {
    points: Vec<OperatingPoint>,
}

impl VfTable {
    /// The paper's five levels (Table II), fastest first.
    pub fn paper() -> Self {
        VfTable {
            points: vec![
                OperatingPoint::new(1000.0, 0.90),
                OperatingPoint::new(800.0, 0.87),
                OperatingPoint::new(533.0, 0.71),
                OperatingPoint::new(400.0, 0.63),
                OperatingPoint::new(320.0, 0.63),
            ],
        }
    }

    /// Creates a custom table.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty or not sorted fastest-first.
    pub fn new(points: Vec<OperatingPoint>) -> Self {
        assert!(!points.is_empty(), "VF table must not be empty");
        assert!(
            points.windows(2).all(|w| w[0].freq_mhz > w[1].freq_mhz),
            "VF table must be strictly decreasing in frequency"
        );
        VfTable { points }
    }

    /// The operating points, fastest first.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// The nominal (fastest) point.
    pub fn nominal(&self) -> OperatingPoint {
        self.points[0]
    }

    /// Looks up the point with the given frequency, if present.
    pub fn at_frequency(&self, freq_mhz: f64) -> Option<OperatingPoint> {
        self.points
            .iter()
            .copied()
            .find(|p| (p.freq_mhz - freq_mhz).abs() < 1e-9)
    }
}

/// The paper's active-core-count sweep: {32, 64, 96, 128, 160, 192, 224, 256}.
pub fn paper_core_counts() -> Vec<u16> {
    (1..=8).map(|i| i * 32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_matches_table2() {
        let t = VfTable::paper();
        assert_eq!(t.points().len(), 5);
        assert_eq!(t.nominal(), OperatingPoint::new(1000.0, 0.9));
        let v: Vec<f64> = t.points().iter().map(|p| p.voltage).collect();
        assert_eq!(v, vec![0.90, 0.87, 0.71, 0.63, 0.63]);
    }

    #[test]
    fn at_frequency_lookup() {
        let t = VfTable::paper();
        assert_eq!(t.at_frequency(533.0).unwrap().voltage, 0.71);
        assert!(t.at_frequency(600.0).is_none());
    }

    #[test]
    fn ratios_are_relative_to_nominal() {
        let p = OperatingPoint::new(533.0, 0.71);
        assert!((p.freq_ratio() - 0.533).abs() < 1e-12);
        assert!((p.voltage_ratio() - 0.71 / 0.9).abs() < 1e-12);
    }

    #[test]
    fn paper_core_counts_are_multiples_of_32() {
        let p = paper_core_counts();
        assert_eq!(p, vec![32, 64, 96, 128, 160, 192, 224, 256]);
    }

    #[test]
    #[should_panic(expected = "strictly decreasing")]
    fn unsorted_table_rejected() {
        let _ = VfTable::new(vec![
            OperatingPoint::new(500.0, 0.7),
            OperatingPoint::new(800.0, 0.8),
        ]);
    }

    #[test]
    fn display_format() {
        assert_eq!(OperatingPoint::new(533.0, 0.71).to_string(), "533MHz@0.71V");
    }
}
