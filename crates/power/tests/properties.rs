//! Property-based tests of the performance and power models.

use proptest::prelude::*;
use tac25d_floorplan::units::Celsius;
use tac25d_power::prelude::*;

fn any_benchmark() -> impl Strategy<Value = Benchmark> {
    prop::sample::select(Benchmark::all().to_vec())
}

proptest! {
    /// Speedup is bounded by the core count and positive.
    #[test]
    fn speedup_bounds(b in any_benchmark(), p in 1u16..=256) {
        let s = b.profile().speedup(p);
        prop_assert!(s > 0.0);
        prop_assert!(s <= f64::from(p) + 1e-12);
    }

    /// IPS is monotone in frequency at fixed core count.
    #[test]
    fn ips_monotone_in_frequency(b in any_benchmark(), p in 1u16..=256) {
        let prof = b.profile();
        let table = VfTable::paper();
        let mut prev = f64::INFINITY;
        for &op in table.points() {
            let ips = system_ips(&prof, op, p).0;
            prop_assert!(ips <= prev + 1e-9, "{b} at {op}");
            prev = ips;
        }
    }

    /// Active power decomposes into dynamic + leakage, and both parts are
    /// non-negative at any realistic temperature.
    #[test]
    fn power_decomposition(
        b in any_benchmark(),
        t in -20.0..150.0f64,
        op_idx in 0usize..5,
    ) {
        let prof = b.profile();
        let op = VfTable::paper().points()[op_idx];
        let m = CorePowerModel::default();
        let dynamic = m.dynamic(&prof, op);
        let total = m.active_power(&prof, op, Celsius(t));
        prop_assert!(dynamic >= 0.0);
        prop_assert!(total >= dynamic - 1e-12, "leakage must be non-negative");
    }

    /// DVFS never increases power: slower points consume less per core at
    /// equal temperature.
    #[test]
    fn dvfs_monotone_power(b in any_benchmark(), t in 40.0..110.0f64) {
        let prof = b.profile();
        let m = CorePowerModel::default();
        let table = VfTable::paper();
        let mut prev = f64::INFINITY;
        for &op in table.points() {
            let p = m.active_power(&prof, op, Celsius(t));
            prop_assert!(p <= prev + 1e-12, "{b} at {op}");
            prev = p;
        }
    }

    /// The leakage model is exactly linear in temperature.
    #[test]
    fn leakage_linearity(leak_ref in 0.01..2.0f64, t1 in 0.0..120.0f64, t2 in 0.0..120.0f64) {
        let m = LeakageModel::default();
        let op = VfTable::paper().nominal();
        let mid = (t1 + t2) / 2.0;
        let l1 = m.leakage(leak_ref, op, Celsius(t1));
        let l2 = m.leakage(leak_ref, op, Celsius(t2));
        let lm = m.leakage(leak_ref, op, Celsius(mid));
        // Only valid away from the zero clamp.
        prop_assume!(l1 > 0.0 && l2 > 0.0 && lm > 0.0);
        prop_assert!((lm - (l1 + l2) / 2.0).abs() < 1e-9);
    }
}
