//! Cross-crate verification subsystem.
//!
//! Three pillars, one per module:
//!
//! * [`mms`] — method-of-manufactured-solutions checks for the thermal
//!   solver: cosine-mode fin fields with measured spatial convergence
//!   order, closed-form 1D resistance chains and two-path energy-split
//!   invariants, all through the `tac25d_thermal::slab` hooks.
//! * [`differential`] — the same organization corpus through the exact RC
//!   solver, the surrogate and the coupled leakage fixed point, with
//!   per-chiplet |ΔT| distributions and executable re-checks of the PR-1
//!   screening guarantees.
//! * [`golden`] — golden-trace regression over the `crates/bench`
//!   binaries: pinned-seed runs diffed cell-by-cell against snapshots in
//!   `tests/golden/` with per-column numeric tolerances, regenerated via
//!   `verify golden --bless`.
//! * [`obsguard`] — observability determinism guard: enabling
//!   `TAC25D_OBS` must change no CSV byte, and the emitted JSONL/profile
//!   artifacts must be valid and complete.
//! * [`solvercheck`] — solver fast-path equivalence: the IC(0) + warm
//!   start PCG path against the legacy cold Jacobi path over a small
//!   organization corpus, max |ΔT| ≤ 1e-6 °C at tight tolerance.
//! * [`solvermg`] — the same gate one tier up: the geometric multigrid
//!   path (`TAC25D_SOLVER=mg`) against IC(0), plus the h-refinement
//!   ladder asserting flat V-cycle counts with observed order ≥ 1.8.
//! * [`fixedpoint`] — fixed-point equivalence: the adaptive Anderson
//!   outer loop against the Picard loop, symmetry-canonical cache-key
//!   aliases evaluated independently, and the Fig. 8 organizer's
//!   decisions under both strategies.
//! * [`seedcheck`] — analytic seeding gate: exact-gradient consistency
//!   against central finite differences, descend-and-snap determinism,
//!   and seeded-vs-unseeded decision parity of the screened organizer
//!   over the Fig. 8 corpus.
//! * [`servecheck`] — daemon byte-identity: a pinned request corpus
//!   against a fresh local engine, sequentially and under concurrent
//!   keep-alive clients.
//! * [`tracecheck`] — request-scoped tracing: wire-invisibility
//!   (traced vs untraced daemons vs local engine), exact concurrent
//!   counter attribution, and a ≤2% traced-overhead bound.
//!
//! The `verify` binary drives all of these from the command line (and
//! from the CI `verify` job).

pub mod differential;
pub mod fixedpoint;
pub mod golden;
pub mod mms;
pub mod obsguard;
pub mod seedcheck;
pub mod servecheck;
pub mod solvercheck;
pub mod solvermg;
pub mod tracecheck;

pub use differential::{DiffPoint, DiffRecord, Fig8Case};
pub use fixedpoint::{AliasCase, DecisionCase, StrategyCase};
pub use golden::{GoldenOutcome, GoldenSpec};
pub use mms::{FinCase, MgMmsSample, MmsSample, SplitResult};
pub use seedcheck::{GradientCase, ParityCase, SnapCase};
pub use solvercheck::SolverCase;
pub use solvermg::{MgRefillCase, MgSolverCase};
pub use tracecheck::{IsolationCase, TraceIdentityCase, TraceReport};
