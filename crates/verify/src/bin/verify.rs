//! Command-line driver for the verification subsystem.
//!
//! ```text
//! verify mms                 # manufactured-solution suite
//! verify solver              # IC(0) fast path vs legacy Jacobi path
//! verify solver-mg           # multigrid tier vs IC(0) + h-refinement ladder
//! verify fixedpoint [--fast] # Anderson-vs-Picard + canonical-key gate
//! verify seed [--fast]       # analytic seeding: gradients, snap, parity
//! verify diff [--fast]       # differential corpus + Fig. 8 guarantees
//! verify golden [--bless] [--only <bin>]
//! verify obs                 # observability determinism guard
//! verify serve               # daemon byte-identity vs one-shot engine
//! verify trace               # request tracing: identity, isolation, overhead
//! verify all [--fast]        # everything above (golden without bless)
//! ```
//!
//! `--fast` runs the differential suite on the coarse smoke-test spec,
//! checking only the structural guarantees (organization match, energy
//! balance); the 1 °C surrogate error bound is calibrated to the paper
//! grid and enforced only on full runs.
//!
//! Every run appends a human-readable report to
//! `target/verify-report.txt` (CI uploads it as an artifact on failure)
//! and exits non-zero on any violated invariant.

use std::fmt::Write as _;
use std::process::ExitCode;

use tac25d_core::prelude::*;
use tac25d_floorplan::units::Mm;
use tac25d_verify::differential::{default_corpus, fig8_guarantees, run_point};
use tac25d_verify::fixedpoint::{
    alias_cases, decision_cases, strategy_equivalence_cases, MAX_FIXEDPOINT_DT_C,
};
use tac25d_verify::golden::{golden_dir, manifest, run_spec, workspace_root};
use tac25d_verify::mms::{chain_error, observed_orders, path_split, vcycle_spread, FinCase};
use tac25d_verify::obsguard::{obs_manifest, run_obs_determinism};
use tac25d_verify::seedcheck::{
    decision_parity_cases, gradient_cases, snap_cases, MAX_GRAD_REL_ERR,
};
use tac25d_verify::servecheck::{serve_equivalence_report, CONCURRENT_CLIENTS};
use tac25d_verify::solvercheck::{solver_equivalence_cases, MAX_SOLVER_DT_C};
use tac25d_verify::solvermg::{mg_equivalence_cases, mg_refill_cases};
use tac25d_verify::tracecheck::{
    trace_report, ISOLATION_CLIENTS, MAX_ABS_OVERHEAD_US, MAX_OVERHEAD_RATIO,
};

/// Acceptance thresholds, mirrored by the in-crate tests.
const MIN_ORDER: f64 = 1.8;
/// Maximum V-cycle-count spread across the multigrid refinement ladder:
/// h-independence means the count stays flat (±2) as the grid doubles.
const MAX_VCYCLE_SPREAD: usize = 2;
const MAX_CHAIN_REL_ERR: f64 = 1e-6;
const MAX_SPLIT_REL_ERR: f64 = 0.02;
const MAX_BALANCE_ERR: f64 = 1e-3;
const MAX_VERIFIED_ERR_C: f64 = 1.0;

/// The spec the PR-1 screening guarantees were established on: the full
/// paper configuration. `--fast` swaps in the coarse smoke-test spec,
/// where only the structural guarantees (organization match, energy
/// balance) hold — the surrogate error bound is calibrated to the paper
/// grid.
fn verification_spec(fast: bool) -> SystemSpec {
    if fast {
        let mut spec = SystemSpec::fast();
        spec.thermal.grid = 16;
        spec.edge_step = Mm(2.0);
        spec
    } else {
        SystemSpec::paper()
    }
}

fn run_mms(report: &mut String) -> bool {
    let mut ok = true;
    let samples = FinCase::default().refine(&[12, 24, 48, 96]);
    let orders = observed_orders(&samples);
    let _ = writeln!(report, "MMS fin-mode refinement:");
    for s in &samples {
        let _ = writeln!(
            report,
            "  n={:<3} dx={:.3e}  max_err={:.3e}  rms={:.3e}",
            s.n, s.dx_m, s.max_abs_err, s.rms_err
        );
    }
    let _ = writeln!(report, "  observed orders: {orders:.3?}");
    for p in &orders {
        if *p < MIN_ORDER {
            ok = false;
            let _ = writeln!(report, "  FAIL: order {p:.3} < {MIN_ORDER}");
        }
    }

    let _ = writeln!(report, "1D resistance chain:");
    for n in [8usize, 16, 32] {
        let e = chain_error(n, 60.0);
        let _ = writeln!(report, "  n={n:<3} rel_err={e:.3e}");
        if e > MAX_CHAIN_REL_ERR {
            ok = false;
            let _ = writeln!(
                report,
                "  FAIL: chain error {e:.3e} > {MAX_CHAIN_REL_ERR:.0e}"
            );
        }
    }

    let _ = writeln!(report, "Two-path energy split:");
    for n in [8usize, 16, 32] {
        let s = path_split(n, 40.0);
        let rel = (s.solved_sink_share - s.analytic_sink_share).abs() / s.analytic_sink_share;
        let _ = writeln!(
            report,
            "  n={n:<3} sink_share={:.4} (analytic {:.4})  balance_err={:.3e}",
            s.solved_sink_share, s.analytic_sink_share, s.balance_error
        );
        if rel > MAX_SPLIT_REL_ERR || s.balance_error > MAX_BALANCE_ERR {
            ok = false;
            let _ = writeln!(
                report,
                "  FAIL: split rel_err={rel:.3e} balance={:.3e}",
                s.balance_error
            );
        }
    }
    ok
}

fn run_solver(report: &mut String) -> bool {
    let mut ok = true;
    let _ = writeln!(
        report,
        "Solver fast-path equivalence (IC(0)+warm start vs cold Jacobi):"
    );
    match solver_equivalence_cases() {
        Ok(cases) => {
            for c in &cases {
                let status = if c.passed() {
                    "ok"
                } else {
                    ok = false;
                    "FAIL"
                };
                let _ = writeln!(
                    report,
                    "  {:<18} max|dT|={:.3e} C  iters ic0={:<6} jacobi={:<6} outer_match={} {status}",
                    c.name, c.max_abs_dt_c, c.ic0_iterations, c.jacobi_iterations, c.outer_match
                );
                if !c.passed() {
                    let _ = writeln!(
                        report,
                        "  FAIL: paths must agree to {MAX_SOLVER_DT_C:.0e} C with ic0 iters <= jacobi iters"
                    );
                }
            }
        }
        Err(e) => {
            ok = false;
            let _ = writeln!(report, "  ERROR: {e}");
        }
    }
    ok
}

fn run_solver_mg(report: &mut String) -> bool {
    let mut ok = true;
    let _ = writeln!(
        report,
        "Multigrid tier equivalence (MG-preconditioned PCG vs IC(0)):"
    );
    match mg_equivalence_cases() {
        Ok(cases) => {
            for c in &cases {
                let status = if c.passed() {
                    "ok"
                } else {
                    ok = false;
                    "FAIL"
                };
                let _ = writeln!(
                    report,
                    "  {:<18} max|dT|={:.3e} C  iters mg={:<6} ic0={:<6} outer_match={} mg_active={} {status}",
                    c.name, c.max_abs_dt_c, c.mg_iterations, c.ic0_iterations, c.outer_match, c.mg_active
                );
                if !c.passed() {
                    let _ = writeln!(
                        report,
                        "  FAIL: paths must agree to {MAX_SOLVER_DT_C:.0e} C with the hierarchy active and matching outer counts"
                    );
                }
            }
        }
        Err(e) => {
            ok = false;
            let _ = writeln!(report, "  ERROR: {e}");
        }
    }

    let _ = writeln!(
        report,
        "Multigrid refill equivalence (shared-scaffold refill vs from-scratch build):"
    );
    match mg_refill_cases() {
        Ok(cases) => {
            for c in &cases {
                let status = if c.passed() {
                    "ok"
                } else {
                    ok = false;
                    "FAIL"
                };
                let _ = writeln!(
                    report,
                    "  {:<18} bitwise_equal={} iterations_match={} scaffold_shared={} {status}",
                    c.name, c.bitwise_equal, c.iterations_match, c.scaffold_shared
                );
                if !c.passed() {
                    let _ = writeln!(
                        report,
                        "  FAIL: the refilled hierarchy must reproduce the from-scratch build bitwise on the shared scaffold"
                    );
                }
            }
        }
        Err(e) => {
            ok = false;
            let _ = writeln!(report, "  ERROR: {e}");
        }
    }

    let _ = writeln!(
        report,
        "Multigrid h-refinement ladder (standalone V-cycle):"
    );
    let ladder = FinCase::default().refine_mg(&[32, 64, 128, 256]);
    for s in &ladder {
        let _ = writeln!(
            report,
            "  n={:<3} dx={:.3e}  max_err={:.3e}  rms={:.3e}  vcycles={}",
            s.sample.n, s.sample.dx_m, s.sample.max_abs_err, s.sample.rms_err, s.vcycles
        );
    }
    let spread = vcycle_spread(&ladder);
    let _ = writeln!(report, "  vcycle spread (max-min): {spread}");
    if spread > MAX_VCYCLE_SPREAD {
        ok = false;
        let _ = writeln!(
            report,
            "  FAIL: vcycle spread {spread} > {MAX_VCYCLE_SPREAD} — the cycle is not h-independent"
        );
    }
    let samples: Vec<_> = ladder.iter().map(|s| s.sample).collect();
    let orders = observed_orders(&samples);
    let _ = writeln!(report, "  observed orders: {orders:.3?}");
    for p in &orders {
        if *p < MIN_ORDER {
            ok = false;
            let _ = writeln!(report, "  FAIL: order {p:.3} < {MIN_ORDER}");
        }
    }
    ok
}

fn run_fixedpoint(report: &mut String, fast: bool) -> bool {
    let mut ok = true;
    let _ = writeln!(
        report,
        "Fixed-point strategy equivalence (Anderson vs Picard, rel_tol 1e-11):"
    );
    match strategy_equivalence_cases() {
        Ok(cases) => {
            for c in &cases {
                let status = if c.passed() {
                    "ok"
                } else {
                    ok = false;
                    "FAIL"
                };
                let _ = writeln!(
                    report,
                    "  {:<18} max|dT|={:.3e} C  inner_pcg anderson={:<5} picard={:<5} converged={} {status}",
                    c.name, c.max_abs_dt_c, c.anderson_inner, c.picard_inner, c.both_converged
                );
                if !c.passed() {
                    let _ = writeln!(
                        report,
                        "  FAIL: strategies must agree to {MAX_FIXEDPOINT_DT_C:.0e} C with anderson inner PCG iters <= picard's"
                    );
                }
            }
        }
        Err(e) => {
            ok = false;
            let _ = writeln!(report, "  ERROR: {e}");
        }
    }

    let spec = verification_spec(fast);
    let _ = writeln!(
        report,
        "Canonical cache-key aliases (independent evaluators):"
    );
    match alias_cases(&spec) {
        Ok(cases) => {
            for c in &cases {
                let status = if c.passed() {
                    "ok"
                } else {
                    ok = false;
                    "FAIL"
                };
                let _ = writeln!(
                    report,
                    "  {:<20} keys_match={} max|dT|={:.3e} C decisions_match={} {status}",
                    c.name, c.keys_match, c.max_abs_dt_c, c.decisions_match
                );
            }
        }
        Err(e) => {
            ok = false;
            let _ = writeln!(report, "  ERROR: {e}");
        }
    }

    let _ = writeln!(
        report,
        "Fig. 8 decisions under both strategies (seed 42, signature-level):"
    );
    let cases = decision_cases(&spec, 42);
    let mut matched = 0usize;
    for c in &cases {
        let status = if c.matched() {
            matched += 1;
            "ok"
        } else {
            ok = false;
            "FAIL"
        };
        let _ = writeln!(
            report,
            "  {:<14} picard {:<40} anderson {:<40} sig={} cross_feasible={} {status}",
            c.benchmark.name(),
            c.picard_desc,
            c.anderson_desc,
            c.signatures_match,
            c.cross_feasible
        );
    }
    let _ = writeln!(report, "  decision match: {matched}/{}", cases.len());
    if matched != cases.len() {
        let _ = writeln!(
            report,
            "  FAIL: the organizer's decisions must not depend on the fixed-point strategy"
        );
    }
    ok
}

fn run_seed(report: &mut String, fast: bool) -> bool {
    let mut ok = true;
    let _ = writeln!(
        report,
        "Analytic gradient vs central differences (deterministic corpus, rel err <= {MAX_GRAD_REL_ERR:.0e}):"
    );
    for c in gradient_cases() {
        let status = if c.passed() {
            "ok"
        } else {
            ok = false;
            "FAIL"
        };
        let _ = writeln!(
            report,
            "  {:<16} points={} max_rel_err={:.3e} {status}",
            c.name, c.points, c.max_rel_err
        );
    }

    let _ = writeln!(report, "Descend-and-snap determinism:");
    for c in snap_cases() {
        let status = if c.passed() {
            "ok"
        } else {
            ok = false;
            "FAIL"
        };
        let _ = writeln!(
            report,
            "  {:<16} seeds={:?} deterministic={} {status}",
            c.name, c.seeds, c.deterministic
        );
    }

    let spec = verification_spec(fast);
    let _ = writeln!(
        report,
        "Fig. 8 decisions, seeded vs unseeded screened organizer (seed 42, signature-level):"
    );
    let cases = decision_parity_cases(&spec, 42);
    let (mut matched, mut seeded, mut unseeded) = (0usize, 0usize, 0usize);
    for c in &cases {
        let status = if c.matched() {
            matched += 1;
            "ok"
        } else {
            ok = false;
            "FAIL"
        };
        seeded += c.seeded_solves;
        unseeded += c.unseeded_solves;
        let _ = writeln!(
            report,
            "  {:<14} seeded {:<22} ({:>3} solves) unseeded {:<22} ({:>3} solves) {status}",
            c.benchmark.name(),
            c.seeded_desc,
            c.seeded_solves,
            c.unseeded_desc,
            c.unseeded_solves
        );
    }
    let _ = writeln!(
        report,
        "  decision match: {matched}/{}  exact solves: seeded {seeded} vs unseeded {unseeded}",
        cases.len()
    );
    if matched != cases.len() {
        let _ = writeln!(
            report,
            "  FAIL: seeding must not change the organizer's decisions"
        );
    }
    if seeded > unseeded {
        ok = false;
        let _ = writeln!(
            report,
            "  FAIL: seeding must not cost extra exact solves ({seeded} > {unseeded})"
        );
    }
    ok
}

fn run_diff(report: &mut String, fast: bool) -> bool {
    let mut ok = true;
    let spec = verification_spec(fast);
    let cases = fig8_guarantees(&spec, 42);
    let _ = writeln!(
        report,
        "Fig. 8 screened-vs-exact guarantees (seed 42):\n  {:<14} {:>7} {:<20} {:<20} {:>10} {:>12} {:>10}",
        "benchmark", "match", "exact", "screened", "max_err_C", "balance_err", "max_dT_C"
    );
    let mut matched = 0usize;
    for c in &cases {
        let (balance, max_dt) = c.record.as_ref().map_or((f64::NAN, f64::NAN), |r| {
            (r.energy_balance_error, r.max_chiplet_dt())
        });
        let _ = writeln!(
            report,
            "  {:<14} {:>7} {:<20} {:<20} {:>10.3} {:>12.3e} {:>10.2}",
            c.benchmark.name(),
            c.matched,
            c.exact_desc,
            c.screened_desc,
            c.max_verified_err_c,
            balance,
            max_dt
        );
        if c.matched {
            matched += 1;
        }
        if !fast && c.max_verified_err_c > MAX_VERIFIED_ERR_C {
            ok = false;
            let _ = writeln!(
                report,
                "  FAIL: verified-prediction error > {MAX_VERIFIED_ERR_C} C"
            );
        }
        if balance.is_nan() || balance > MAX_BALANCE_ERR {
            ok = false;
            let _ = writeln!(
                report,
                "  FAIL: energy balance {balance:.3e} > {MAX_BALANCE_ERR:.0e}"
            );
        }
    }
    let _ = writeln!(report, "  organization match: {matched}/{}", cases.len());
    if matched != cases.len() {
        ok = false;
        let _ = writeln!(report, "  FAIL: screened organizer diverged from exact");
    }

    // Corpus sweep: per-chiplet |ΔT| (linear RC vs coupled fixed point)
    // distributions over the fixed multi-layout corpus.
    let ev = Evaluator::new(spec.clone());
    let mut all_dt: Vec<f64> = Vec::new();
    let _ = writeln!(report, "Differential corpus (linear RC vs coupled):");
    for point in default_corpus(&spec) {
        match run_point(&ev, &point) {
            Ok(r) => {
                if r.energy_balance_error > MAX_BALANCE_ERR {
                    ok = false;
                    let _ = writeln!(
                        report,
                        "  FAIL: {} {:?} balance {:.3e}",
                        point.benchmark.name(),
                        point.layout,
                        r.energy_balance_error
                    );
                }
                all_dt.extend_from_slice(&r.chiplet_abs_dt);
            }
            Err(e) => {
                ok = false;
                let _ = writeln!(
                    report,
                    "  FAIL: {} {:?}: {e}",
                    point.benchmark.name(),
                    point.layout
                );
            }
        }
    }
    if !all_dt.is_empty() {
        all_dt.sort_by(|a, b| a.partial_cmp(b).expect("finite dT"));
        let q = |f: f64| all_dt[((all_dt.len() - 1) as f64 * f) as usize];
        let mean = all_dt.iter().sum::<f64>() / all_dt.len() as f64;
        let _ = writeln!(
            report,
            "  {} chiplet samples: mean {:.2}  p50 {:.2}  p90 {:.2}  max {:.2} C",
            all_dt.len(),
            mean,
            q(0.5),
            q(0.9),
            all_dt[all_dt.len() - 1]
        );
    }
    ok
}

fn run_golden(report: &mut String, bless: bool, only: Option<&str>) -> bool {
    let mut ok = true;
    let _ = writeln!(
        report,
        "Golden traces ({}) against {}:",
        if bless { "bless" } else { "diff" },
        golden_dir().display()
    );
    for spec in manifest() {
        if only.is_some_and(|o| o != spec.bin) {
            continue;
        }
        match run_spec(&spec, bless) {
            Ok(outcome) => {
                let status = if outcome.blessed {
                    "blessed"
                } else if outcome.passed() {
                    "ok"
                } else {
                    ok = false;
                    "FAIL"
                };
                let _ = writeln!(report, "  {:<22} {status}", outcome.bin);
                for m in &outcome.mismatches {
                    let _ = writeln!(report, "    {m}");
                }
            }
            Err(e) => {
                ok = false;
                let _ = writeln!(report, "  {:<22} ERROR: {e}", spec.bin);
            }
        }
    }
    ok
}

fn run_obs(report: &mut String) -> bool {
    let mut ok = true;
    let _ = writeln!(report, "Observability determinism guard:");
    for spec in obs_manifest() {
        match run_obs_determinism(&spec) {
            Ok(outcome) => {
                let status = if outcome.passed() {
                    "ok"
                } else {
                    ok = false;
                    "FAIL"
                };
                let _ = writeln!(report, "  {:<22} {status}", outcome.bin);
                for f in &outcome.failures {
                    let _ = writeln!(report, "    {f}");
                }
            }
            Err(e) => {
                ok = false;
                let _ = writeln!(report, "  {:<22} ERROR: {e}", spec.bin);
            }
        }
    }
    ok
}

fn run_serve(report: &mut String) -> bool {
    let mut ok = true;
    // Always the coarse grid-16 spec: byte-identity between the daemon
    // and a one-shot engine is a transport/determinism contract, not a
    // physics-resolution one, and the coarse spec keeps the corpus +
    // 8-client contention pass tractable.
    let spec = verification_spec(true);
    let _ = writeln!(
        report,
        "Serve byte-identity (daemon vs one-shot engine, {CONCURRENT_CLIENTS} concurrent clients):"
    );
    match serve_equivalence_report(&spec) {
        Ok(outcome) => {
            for c in &outcome.cases {
                let status = if c.passed() {
                    "ok"
                } else {
                    ok = false;
                    "FAIL"
                };
                let _ = writeln!(
                    report,
                    "  {:<22} http={} sequential_match={} concurrent={}/{} {status}",
                    c.name, c.status, c.sequential_match, c.concurrent_matches, c.concurrent_total
                );
            }
            let _ = writeln!(
                report,
                "  healthz={} metrics={}",
                outcome.healthz_ok, outcome.metrics_ok
            );
            if !outcome.healthz_ok || !outcome.metrics_ok {
                ok = false;
                let _ = writeln!(report, "  FAIL: endpoint probe failed");
            }
        }
        Err(e) => {
            ok = false;
            let _ = writeln!(report, "  ERROR: {e}");
        }
    }
    ok
}

fn run_trace(report: &mut String) -> bool {
    let mut ok = true;
    // The coarse grid-16 spec, like `verify serve`: tracing contracts
    // (wire invisibility, attribution, overhead) are transport
    // properties, not physics-resolution ones.
    let spec = verification_spec(true);
    let _ = writeln!(
        report,
        "Trace gate (traced vs untraced daemons, {ISOLATION_CLIENTS} concurrent clients):"
    );
    match trace_report(&spec) {
        Ok(outcome) => {
            for c in &outcome.identity {
                let status = if c.passed() {
                    "ok"
                } else {
                    ok = false;
                    "FAIL"
                };
                let _ = writeln!(
                    report,
                    "  {:<22} traced http={} match={} untraced http={} match={} ids={} {status}",
                    c.name,
                    c.traced_status,
                    c.traced_match,
                    c.untraced_status,
                    c.untraced_match,
                    c.ids_echoed
                );
            }
            let _ = writeln!(
                report,
                "  custom_id_echoed={} minted_id_present={}",
                outcome.custom_id_echoed, outcome.minted_id_present
            );
            if !outcome.custom_id_echoed || !outcome.minted_id_present {
                ok = false;
                let _ = writeln!(report, "  FAIL: X-Request-Id header contract violated");
            }

            let iso = &outcome.isolation;
            let _ = writeln!(report, "Isolation (per-request counter attribution):");
            for c in &iso.cases {
                let status = if c.passed() {
                    "ok"
                } else {
                    ok = false;
                    "FAIL"
                };
                let _ = writeln!(
                    report,
                    "  {:<14} {:<12} http={} pcg_delta={:<6} exact={} rooted={} {status}",
                    c.id, c.layout, c.status, c.pcg_delta, c.exact_delta, c.rooted
                );
            }
            let _ = writeln!(
                report,
                "  sum(per-request pcg)={} global pcg delta={}",
                iso.sum_pcg, iso.global_pcg_delta
            );
            if !iso.passed() {
                ok = false;
                let _ = writeln!(
                    report,
                    "  FAIL: per-request deltas must partition the global counter delta exactly"
                );
            }

            let ov = &outcome.overhead;
            let _ = writeln!(
                report,
                "Overhead (best-round cache hits): traced={}us untraced={}us ratio={:.4} per_request={:+.2}us",
                ov.best_traced_us, ov.best_untraced_us, ov.ratio, ov.per_request_overhead_us
            );
            if !ov.passed() {
                ok = false;
                let _ = writeln!(
                    report,
                    "  FAIL: tracing must cost <= {:.0}% (or <= {MAX_ABS_OVERHEAD_US} us/request)",
                    (MAX_OVERHEAD_RATIO - 1.0) * 100.0
                );
            }
        }
        Err(e) => {
            ok = false;
            let _ = writeln!(report, "  ERROR: {e}");
        }
    }
    ok
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("all");
    let bless = args.iter().any(|a| a == "--bless");
    let fast = args.iter().any(|a| a == "--fast");
    let only = args
        .windows(2)
        .find(|w| w[0] == "--only")
        .map(|w| w[1].clone());

    let mut report = String::new();
    let ok = match mode {
        "mms" => run_mms(&mut report),
        "solver" => run_solver(&mut report),
        "solver-mg" => run_solver_mg(&mut report),
        "fixedpoint" => run_fixedpoint(&mut report, fast),
        "seed" => run_seed(&mut report, fast),
        "diff" => run_diff(&mut report, fast),
        "golden" => run_golden(&mut report, bless, only.as_deref()),
        "obs" => run_obs(&mut report),
        "serve" => run_serve(&mut report),
        "trace" => run_trace(&mut report),
        "all" => {
            let a = run_mms(&mut report);
            let s = run_solver(&mut report);
            let m = run_solver_mg(&mut report);
            let f = run_fixedpoint(&mut report, fast);
            let sd = run_seed(&mut report, fast);
            let b = run_diff(&mut report, fast);
            let c = run_golden(&mut report, bless, only.as_deref());
            let d = run_obs(&mut report);
            let e = run_serve(&mut report);
            let t = run_trace(&mut report);
            a && s && m && f && sd && b && c && d && e && t
        }
        other => {
            eprintln!(
                "unknown mode {other:?}; use mms | solver | solver-mg | fixedpoint | seed | diff | golden | obs | serve | trace | all"
            );
            return ExitCode::FAILURE;
        }
    };

    print!("{report}");
    let report_path = workspace_root().join("target").join("verify-report.txt");
    if let Err(e) = std::fs::write(&report_path, &report) {
        eprintln!("warning: could not write {}: {e}", report_path.display());
    }
    if ok {
        println!("verify: PASS");
        ExitCode::SUCCESS
    } else {
        println!("verify: FAIL");
        ExitCode::FAILURE
    }
}
