//! Fixed-point equivalence gate (`verify fixedpoint`): the adaptive
//! Anderson outer loop and the symmetry-canonical cache keys must be
//! behavior-preserving refinements of the legacy Picard path.
//!
//! Three contracts, one per section of the report:
//!
//! * **strategy equivalence** — on the solver-gate corpus at tight
//!   tolerance, the adaptive-tolerance Anderson loop must land on the
//!   same temperature field as the fixed-tolerance Picard loop
//!   (max |ΔT| ≤ [`MAX_FIXEDPOINT_DT_C`]), both must converge, and at
//!   the production tolerance Anderson may not spend more inner PCG
//!   iterations than Picard;
//! * **canonical aliases** — layout parameterizations folded onto one
//!   cache key (`Symmetric4 { s3 } ≡ Uniform { 2, s3 }`, uniform-spaced
//!   `Symmetric16 ≡ Uniform { 4, g }`) describe the same physical
//!   package, so evaluating each *independently* (separate evaluators,
//!   no shared cache) must agree on the field and on feasibility;
//! * **organization decisions** — the Fig. 8 organizer run end-to-end
//!   under both strategies (pinned per evaluator, not via the
//!   process-global `TAC25D_FIXEDPOINT` override) must choose the same
//!   organization decision for every benchmark: identical candidate
//!   signature (frequency/cores/edge/layout class) with each winner's
//!   placement feasible under the other strategy. Spacing is reported
//!   but not compared — see [`DecisionCase`] for why.

use tac25d_core::evaluator::layout_key;
use tac25d_core::prelude::*;
use tac25d_floorplan::chip::ChipSpec;
use tac25d_floorplan::layers::StackSpec;
use tac25d_floorplan::organization::{ChipletLayout, PackageRules, Spacing};
use tac25d_floorplan::units::{Celsius, Mm};
use tac25d_thermal::coupled::{solve_coupled, CoupledOptions, CoupledStrategy};
use tac25d_thermal::model::{PackageModel, ThermalConfig, ThermalError};

/// Maximum tolerated |ΔT| between equivalent paths, in °C.
pub const MAX_FIXEDPOINT_DT_C: f64 = 1e-6;

/// PCG relative tolerance for the strategy-equivalence runs: both loops
/// must be converged far below the 1e-6 °C comparison threshold for the
/// gap to measure the *strategy*, not leftover solver residual.
pub const FIXEDPOINT_REL_TOL: f64 = 1e-11;

/// Feasibility slack for the cross-strategy decision check, °C. At the
/// production outer tolerance the Picard and Anderson fixed points agree
/// only to a few millidegrees (the [`MAX_FIXEDPOINT_DT_C`] bound is
/// established at [`FIXEDPOINT_REL_TOL`]), so a winner within that noise
/// of the threshold may read as infeasible-by-millidegrees under the
/// other strategy. 1e-2 °C covers the observed ~6e-3 °C disagreement
/// with margin while staying three orders of magnitude below the 5 °C
/// surrogate guard band — a genuine decision divergence cannot hide in
/// it.
pub const CROSS_FEASIBLE_SLACK_C: f64 = 1e-2;

/// One organization's Picard-vs-Anderson comparison.
///
/// The two claims are measured at the tolerances where they hold by
/// design: *field agreement* at a microdegree outer tolerance (both
/// loops fully converged, so the gap measures the strategy alone), and
/// *iteration economy* at the production tolerance, counted in inner PCG
/// iterations — the quantity the adaptive forcing schedule actually
/// saves. (Outer counts alone would mis-measure it: Anderson's
/// convergence candidate must be re-confirmed at full inner tolerance,
/// which can cost one extra — cheap — outer on lightly-coupled systems.)
#[derive(Debug, Clone)]
pub struct StrategyCase {
    /// Corpus point name.
    pub name: &'static str,
    /// Max |ΔT| over every node of the two converged fixed points at the
    /// microdegree outer tolerance.
    pub max_abs_dt_c: f64,
    /// Inner PCG iterations of the Picard loop at the production
    /// tolerance.
    pub picard_inner: usize,
    /// Inner PCG iterations of the Anderson loop at the production
    /// tolerance.
    pub anderson_inner: usize,
    /// Whether both loops reported convergence at both tolerances.
    pub both_converged: bool,
}

impl StrategyCase {
    /// Whether the case satisfies the equivalence contract.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.max_abs_dt_c <= MAX_FIXEDPOINT_DT_C
            && self.both_converged
            && self.anderson_inner <= self.picard_inner
    }
}

/// One alias pair's independent-evaluation comparison.
#[derive(Debug, Clone)]
pub struct AliasCase {
    /// Pair name.
    pub name: &'static str,
    /// Whether the two parameterizations share a canonical cache key.
    pub keys_match: bool,
    /// Max |ΔT| over the peak and the per-chiplet peaks.
    pub max_abs_dt_c: f64,
    /// Whether both evaluations agree on feasibility at the spec
    /// threshold (and on convergence).
    pub decisions_match: bool,
}

impl AliasCase {
    /// Whether the pair satisfies the canonical-folding contract.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.keys_match && self.max_abs_dt_c <= MAX_FIXEDPOINT_DT_C && self.decisions_match
    }
}

/// One benchmark's Fig. 8 decision under both strategies.
///
/// Decisions are compared at the *candidate signature* level (frequency,
/// active cores, interposer edge, layout class), not on the full layout
/// string. The Eq. (5) objective is spacing-independent, so a candidate
/// can have several equally-optimal feasible spacings; microdegree-level
/// Picard-vs-Anderson differences can flip which of those the greedy's
/// descent reaches first (observed on blackscholes: same
/// 1000 MHz/256c/34 mm 16-chiplet winner, different spacing). That is
/// not a decision divergence — both placements are exact-solver-verified
/// feasible — so the gate pins the signature and additionally
/// cross-checks that each strategy's chosen placement is feasible under
/// the *other* strategy's evaluator, up to
/// [`CROSS_FEASIBLE_SLACK_C`]: at the *production* outer tolerance the
/// two strategies' converged fields differ by a few millidegrees
/// (measured ~6e-3 °C on the blackscholes winners; the 1e-6 °C
/// equivalence bound holds at the tight 1e-11 gate tolerance), so a
/// winner sitting within that noise of the threshold can legitimately
/// flip the hard feasibility bit under the other solver without either
/// decision being wrong. The full spacing strings stay in the report as
/// information.
#[derive(Debug, Clone)]
pub struct DecisionCase {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Full `freq/cores/edge/[layout]` description of the Picard winner
    /// (spacing included — informational).
    pub picard_desc: String,
    /// Description of the Anderson winner.
    pub anderson_desc: String,
    /// Whether the candidate signatures (freq/cores/edge/layout class)
    /// agree.
    pub signatures_match: bool,
    /// Whether each strategy's chosen placement is feasible when
    /// evaluated under the other strategy (vacuously true when neither
    /// found a winner).
    pub cross_feasible: bool,
}

impl DecisionCase {
    /// Whether both strategies chose the same organization decision.
    #[must_use]
    pub fn matched(&self) -> bool {
        self.signatures_match && self.cross_feasible
    }
}

/// The same corpus as the solver gate: representative 2D and 2.5D
/// organizations.
fn corpus() -> Vec<(&'static str, ChipletLayout, StackSpec)> {
    vec![
        (
            "single_chip_2d",
            ChipletLayout::SingleChip,
            StackSpec::baseline_2d(),
        ),
        (
            "uniform_4x4_25d",
            ChipletLayout::Uniform { r: 4, gap: Mm(4.0) },
            StackSpec::system_25d(),
        ),
        (
            "symmetric4_25d",
            ChipletLayout::Symmetric4 { s3: Mm(6.0) },
            StackSpec::system_25d(),
        ),
    ]
}

fn build(layout: &ChipletLayout, stack: &StackSpec) -> PackageModel {
    PackageModel::new(
        &ChipSpec::scc_256(),
        layout,
        &PackageRules::default(),
        stack,
        ThermalConfig {
            grid: 16,
            rel_tol: FIXEDPOINT_REL_TOL,
            ..ThermalConfig::default()
        },
    )
    .expect("corpus organization must build")
}

/// Runs one contractive leakage fixed point under the given strategy and
/// returns the converged field plus the inner PCG iteration total.
fn run_strategy(
    model: &PackageModel,
    strategy: CoupledStrategy,
    tol: Celsius,
) -> Result<(Vec<f64>, usize, bool), ThermalError> {
    // The solver gate's asymmetric per-chiplet powers with a 1.2 %/°C
    // leakage feedback — contractive, converges in a handful of outers.
    let rects = model.chiplet_rects().to_vec();
    let total = 180.0;
    let n = rects.len() as f64;
    let sources: Vec<_> = rects
        .iter()
        .enumerate()
        .map(|(i, r)| (*r, total * (0.6 + 0.8 * i as f64 / n.max(1.0)) / n))
        .collect();
    let coupled = solve_coupled(
        model,
        |sol| {
            let scale = sol.map_or(1.0, |s| 1.0 + 0.012 * (s.peak().value() - 45.0));
            sources.iter().map(|(r, w)| (*r, w * scale)).collect()
        },
        &CoupledOptions {
            tol,
            strategy,
            ..CoupledOptions::default()
        },
    )?;
    Ok((
        coupled.solution.raw_temps().to_vec(),
        coupled.inner_iterations,
        coupled.converged,
    ))
}

/// Runs the corpus under both strategies and returns the comparison
/// records.
///
/// # Errors
///
/// Propagates thermal build/solve errors — regressions of the corpus, not
/// equivalence measurements.
pub fn strategy_equivalence_cases() -> Result<Vec<StrategyCase>, ThermalError> {
    corpus()
        .into_iter()
        .map(|(name, layout, stack)| {
            let model = build(&layout, &stack);
            // Field agreement at a microdegree outer tolerance…
            let tight = Celsius(MAX_FIXEDPOINT_DT_C);
            let (p_field, _, p_conv) = run_strategy(&model, CoupledStrategy::Picard, tight)?;
            let (a_field, _, a_conv) = run_strategy(&model, CoupledStrategy::Anderson, tight)?;
            let max_abs_dt_c = p_field
                .iter()
                .zip(&a_field)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max);
            // …and inner-iteration economy at the production tolerance.
            let prod = CoupledOptions::default().tol;
            let (_, p_inner, pp_conv) = run_strategy(&model, CoupledStrategy::Picard, prod)?;
            let (_, a_inner, ap_conv) = run_strategy(&model, CoupledStrategy::Anderson, prod)?;
            Ok(StrategyCase {
                name,
                max_abs_dt_c,
                picard_inner: p_inner,
                anderson_inner: a_inner,
                both_converged: p_conv && a_conv && pp_conv && ap_conv,
            })
        })
        .collect()
}

/// Runs each canonical alias pair through *independent* evaluators (so
/// the shared key cannot short-circuit the comparison) and records the
/// field and decision agreement.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn alias_cases(spec: &SystemSpec) -> Result<Vec<AliasCase>, EvalError> {
    let pairs: Vec<(&'static str, ChipletLayout, ChipletLayout)> = vec![
        (
            "sym4_vs_uniform2",
            ChipletLayout::Symmetric4 { s3: Mm(6.0) },
            ChipletLayout::Uniform { r: 2, gap: Mm(6.0) },
        ),
        (
            "sym16u_vs_uniform4",
            ChipletLayout::Symmetric16 {
                spacing: Spacing::uniform(Mm(4.0)),
            },
            ChipletLayout::Uniform { r: 4, gap: Mm(4.0) },
        ),
    ];
    let op = spec.vf.nominal();
    pairs
        .into_iter()
        .map(|(name, a, b)| {
            let ev_a = Evaluator::new(spec.clone());
            let ev_b = Evaluator::new(spec.clone());
            let ea = ev_a.evaluate(&a, Benchmark::Cholesky, op, 256)?;
            let eb = ev_b.evaluate(&b, Benchmark::Cholesky, op, 256)?;
            let mut max_abs_dt_c = (ea.peak.value() - eb.peak.value()).abs();
            for (pa, pb) in ea.chiplet_peaks.iter().zip(&eb.chiplet_peaks) {
                max_abs_dt_c = max_abs_dt_c.max((pa.value() - pb.value()).abs());
            }
            Ok(AliasCase {
                name,
                keys_match: layout_key(&a) == layout_key(&b),
                max_abs_dt_c,
                decisions_match: ea.feasible(spec.threshold) == eb.feasible(spec.threshold)
                    && ea.converged == eb.converged
                    && ea.chiplet_peaks.len() == eb.chiplet_peaks.len(),
            })
        })
        .collect()
}

fn describe(r: &OptimizeResult) -> String {
    r.best.as_ref().map_or_else(
        || "-".to_owned(),
        |o| {
            format!(
                "{:.0}MHz/{}c/{:.0}mm [{}]",
                o.candidate.op.freq_mhz,
                o.candidate.active_cores,
                o.candidate.edge.value(),
                o.layout
            )
        },
    )
}

/// The spacing-free candidate signature the decision gate compares on.
fn signature(r: &OptimizeResult) -> Option<(u64, u16, u64, &'static str)> {
    r.best.as_ref().map(|o| {
        let class = match o.layout {
            ChipletLayout::SingleChip => "1c",
            ChipletLayout::Uniform { .. } => "uniform",
            ChipletLayout::Symmetric4 { .. } => "4c",
            ChipletLayout::Symmetric16 { .. } => "16c",
        };
        (
            o.candidate.op.freq_mhz.to_bits(),
            o.candidate.active_cores,
            o.candidate.edge.value().to_bits(),
            class,
        )
    })
}

/// Runs the Fig. 8 organizer per benchmark under both strategies — pinned
/// through [`Evaluator::with_coupled_options`], never the process-global
/// environment override — and records the chosen organizations, their
/// signature agreement and the cross-strategy feasibility of each winner.
///
/// # Panics
///
/// Panics if an optimize or cross-evaluation run fails outright (solver
/// error, no baseline).
pub fn decision_cases(spec: &SystemSpec, seed: u64) -> Vec<DecisionCase> {
    Benchmark::all()
        .into_iter()
        .map(|b| {
            let run = |strategy: CoupledStrategy| {
                let ev = Evaluator::with_coupled_options(
                    spec.clone(),
                    CoupledOptions {
                        strategy,
                        ..CoupledOptions::default()
                    },
                );
                let r = optimize(&ev, b, &OptimizerConfig::with_seed(seed)).expect("optimize");
                (r, ev)
            };
            let (picard, picard_ev) = run(CoupledStrategy::Picard);
            let (anderson, anderson_ev) = run(CoupledStrategy::Anderson);
            // Each winner must also be feasible under the other strategy:
            // this is what licenses signature-level comparison — any
            // equally-signed placement is a valid witness only if its
            // feasibility claim is strategy-independent.
            let cross = |o: &Organization, ev: &Evaluator| {
                let e = ev
                    .evaluate(&o.layout, b, o.candidate.op, o.candidate.active_cores)
                    .expect("cross-evaluate");
                e.converged && e.peak.value() <= spec.threshold.value() + CROSS_FEASIBLE_SLACK_C
            };
            let cross_feasible = match (&picard.best, &anderson.best) {
                (Some(p), Some(a)) => cross(p, &anderson_ev) && cross(a, &picard_ev),
                (None, None) => true,
                _ => false,
            };
            DecisionCase {
                benchmark: b,
                signatures_match: signature(&picard) == signature(&anderson),
                cross_feasible,
                picard_desc: describe(&picard),
                anderson_desc: describe(&anderson),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac25d_core::system::SystemSpec;

    #[test]
    fn corpus_passes_strategy_equivalence_gate() {
        for case in strategy_equivalence_cases().unwrap() {
            assert!(
                case.passed(),
                "{}: max|dT| = {:.3e} C, anderson {} vs picard {} inner PCG iters, converged {}",
                case.name,
                case.max_abs_dt_c,
                case.anderson_inner,
                case.picard_inner,
                case.both_converged
            );
        }
    }

    #[test]
    fn canonical_alias_pairs_evaluate_identically() {
        let mut spec = SystemSpec::fast();
        spec.thermal.grid = 16;
        for case in alias_cases(&spec).unwrap() {
            assert!(
                case.passed(),
                "{}: keys_match {}, max|dT| = {:.3e} C, decisions_match {}",
                case.name,
                case.keys_match,
                case.max_abs_dt_c,
                case.decisions_match
            );
        }
    }
}
