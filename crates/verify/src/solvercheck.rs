//! Solver fast-path equivalence gate: the IC(0)-preconditioned PCG with
//! warm starts (the default `SolverKind::Ic0`) must reproduce the legacy
//! cold-started Jacobi path on representative package models.
//!
//! Both solver kinds run the same corpus — a 2D single chip, a uniform
//! 4×4 2.5D organization and the symmetric 4-chiplet organization — at a
//! tight PCG tolerance (`SOLVER_REL_TOL`), through both a fixed-power
//! steady solve and a temperature–leakage fixed point. At that tolerance
//! each path lands within its own discretization-independent residual of
//! the exact solution, so the two temperature fields must agree to well
//! under [`MAX_SOLVER_DT_C`] (1e-6 °C); a larger gap means the fast path
//! changed the *answer*, not just the iteration count. The gate also
//! asserts the point of the exercise: the fast path may not spend more
//! PCG iterations than the legacy path.

use tac25d_floorplan::chip::ChipSpec;
use tac25d_floorplan::layers::StackSpec;
use tac25d_floorplan::organization::{ChipletLayout, PackageRules};
use tac25d_floorplan::units::{Celsius, Mm};
use tac25d_thermal::coupled::{solve_coupled, CoupledOptions, CoupledStrategy};
use tac25d_thermal::model::{PackageModel, SolverKind, ThermalConfig, ThermalError};

/// Maximum tolerated |ΔT| between the IC(0) and Jacobi paths, in °C.
pub const MAX_SOLVER_DT_C: f64 = 1e-6;

/// PCG relative tolerance for the equivalence runs. The production
/// tolerance (1e-8/1e-9) only bounds each path's *residual*; byte-level
/// field agreement needs both paths converged far below the 1e-6 °C
/// comparison threshold.
pub const SOLVER_REL_TOL: f64 = 1e-11;

/// One organization's differential comparison of the two solver paths.
#[derive(Debug, Clone)]
pub struct SolverCase {
    /// Corpus point name.
    pub name: &'static str,
    /// Max |ΔT| over every node of the steady solve *and* every node of
    /// the converged leakage fixed point.
    pub max_abs_dt_c: f64,
    /// PCG iterations of the fast path's steady solve.
    pub ic0_iterations: usize,
    /// PCG iterations of the legacy path's steady solve.
    pub jacobi_iterations: usize,
    /// Outer fixed-point iterations (must match between paths).
    pub outer_match: bool,
}

impl SolverCase {
    /// Whether the case satisfies the equivalence contract.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.max_abs_dt_c <= MAX_SOLVER_DT_C
            && self.ic0_iterations <= self.jacobi_iterations
            && self.outer_match
    }
}

fn corpus() -> Vec<(&'static str, ChipletLayout, StackSpec)> {
    vec![
        (
            "single_chip_2d",
            ChipletLayout::SingleChip,
            StackSpec::baseline_2d(),
        ),
        (
            "uniform_4x4_25d",
            ChipletLayout::Uniform { r: 4, gap: Mm(4.0) },
            StackSpec::system_25d(),
        ),
        (
            "symmetric4_25d",
            ChipletLayout::Symmetric4 { s3: Mm(6.0) },
            StackSpec::system_25d(),
        ),
    ]
}

fn build(layout: &ChipletLayout, stack: &StackSpec, solver: SolverKind) -> PackageModel {
    PackageModel::new(
        &ChipSpec::scc_256(),
        layout,
        &PackageRules::default(),
        stack,
        ThermalConfig {
            grid: 16,
            rel_tol: SOLVER_REL_TOL,
            solver,
            ..ThermalConfig::default()
        },
    )
    .expect("corpus organization must build")
}

/// The per-model run under one solver kind: a fixed-power steady solve
/// plus a contractive leakage fixed point on the same sources.
fn run_one(model: &PackageModel) -> Result<(Vec<f64>, usize, Vec<f64>, usize), ThermalError> {
    // Deliberately non-uniform per-chiplet powers so the two paths are
    // compared on an asymmetric field, not just a scaled reference.
    let rects = model.chiplet_rects().to_vec();
    let total = 180.0;
    let n = rects.len() as f64;
    let sources: Vec<_> = rects
        .iter()
        .enumerate()
        .map(|(i, r)| (*r, total * (0.6 + 0.8 * i as f64 / n.max(1.0)) / n))
        .collect();
    let steady = model.solve(&sources)?;
    let steady_field = steady.raw_temps().to_vec();
    let steady_iters = steady.iterations();

    // 1.2 %/°C leakage growth above 45 °C: contractive, converges in a
    // handful of outer iterations. Pinned to the Picard strategy so the
    // solver kind is the only variable: the adaptive loop's loose
    // intermediate solves are solver-path-dependent, so its outer
    // trajectory is not comparable across kinds (the strategy-vs-strategy
    // contract is `verify fixedpoint`'s job).
    let coupled = solve_coupled(
        model,
        |sol| {
            let scale = sol.map_or(1.0, |s| 1.0 + 0.012 * (s.peak().value() - 45.0));
            sources.iter().map(|(r, w)| (*r, w * scale)).collect()
        },
        &CoupledOptions {
            tol: Celsius(0.001),
            strategy: CoupledStrategy::Picard,
            ..CoupledOptions::default()
        },
    )?;
    assert!(coupled.converged, "leakage fixed point must converge");
    Ok((
        steady_field,
        steady_iters,
        coupled.solution.raw_temps().to_vec(),
        coupled.outer_iterations,
    ))
}

fn max_abs_dt(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Runs the whole corpus under both solver kinds and returns the
/// per-organization comparison records.
///
/// # Errors
///
/// Propagates thermal build/solve errors — those are regressions of the
/// corpus itself, not equivalence measurements.
///
/// # Panics
///
/// Panics if a leakage fixed point fails to converge (contractive by
/// construction).
pub fn solver_equivalence_cases() -> Result<Vec<SolverCase>, ThermalError> {
    corpus()
        .into_iter()
        .map(|(name, layout, stack)| {
            let fast = build(&layout, &stack, SolverKind::Ic0);
            let legacy = build(&layout, &stack, SolverKind::Jacobi);
            let (f_steady, f_iters, f_fixed, f_outer) = run_one(&fast)?;
            let (l_steady, l_iters, l_fixed, l_outer) = run_one(&legacy)?;
            let max_abs_dt_c = max_abs_dt(&f_steady, &l_steady).max(max_abs_dt(&f_fixed, &l_fixed));
            Ok(SolverCase {
                name,
                max_abs_dt_c,
                ic0_iterations: f_iters,
                jacobi_iterations: l_iters,
                outer_match: f_outer == l_outer,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_passes_equivalence_gate() {
        for case in solver_equivalence_cases().unwrap() {
            assert!(
                case.passed(),
                "{}: max|dT| = {:.3e} C, ic0 {} vs jacobi {} iters, outer_match {}",
                case.name,
                case.max_abs_dt_c,
                case.ic0_iterations,
                case.jacobi_iterations,
                case.outer_match
            );
        }
    }

    #[test]
    fn fast_path_actually_saves_iterations() {
        // The gate's ≤ comparison would pass on a no-op; the fast path
        // must beat the legacy path by a wide margin on at least the
        // steady solves (reference warm start + IC(0) vs cold Jacobi).
        let cases = solver_equivalence_cases().unwrap();
        let ic0: usize = cases.iter().map(|c| c.ic0_iterations).sum();
        let jac: usize = cases.iter().map(|c| c.jacobi_iterations).sum();
        assert!(
            ic0 * 4 <= jac,
            "expected >=4x fewer iterations, got {ic0} vs {jac}"
        );
    }
}
