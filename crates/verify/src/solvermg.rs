//! Multigrid solver-tier equivalence gate: the MG-preconditioned PCG
//! (`SolverKind::Multigrid` / `TAC25D_SOLVER=mg`) must reproduce the
//! default IC(0) fast path on representative package models.
//!
//! Mirrors [`crate::solvercheck`] one tier up the ladder: both solver
//! kinds run the same corpus — a 2D single chip, a uniform 4×4 2.5D
//! organization and the symmetric 4-chiplet organization — at a tight PCG
//! tolerance, through a fixed-power steady solve and a temperature–leakage
//! fixed point. The two temperature fields must agree to well under
//! [`MAX_SOLVER_DT_C`] (1e-6 °C); a larger gap means the multigrid tier
//! changed the *answer*, not just the iteration count. Each case also
//! asserts the hierarchy actually built (`mg_active`) — without that check
//! a silent fallback to IC(0) would pass the gate vacuously.

use crate::solvercheck::{MAX_SOLVER_DT_C, SOLVER_REL_TOL};
use tac25d_floorplan::chip::ChipSpec;
use tac25d_floorplan::layers::StackSpec;
use tac25d_floorplan::organization::{ChipletLayout, PackageRules, Spacing};
use tac25d_floorplan::units::{Celsius, Mm};
use tac25d_thermal::coupled::{solve_coupled, CoupledOptions, CoupledStrategy};
use tac25d_thermal::model::{PackageModel, SolverKind, ThermalConfig, ThermalError};

/// One organization's differential comparison of the multigrid and IC(0)
/// solver paths.
#[derive(Debug, Clone)]
pub struct MgSolverCase {
    /// Corpus point name.
    pub name: &'static str,
    /// Max |ΔT| over every node of the steady solve *and* every node of
    /// the converged leakage fixed point.
    pub max_abs_dt_c: f64,
    /// PCG iterations of the multigrid path's steady solve.
    pub mg_iterations: usize,
    /// PCG iterations of the IC(0) path's steady solve.
    pub ic0_iterations: usize,
    /// Outer fixed-point iterations (must match between paths).
    pub outer_match: bool,
    /// Whether the multigrid hierarchy actually built for this model (a
    /// failed build falls back to IC(0), which would pass vacuously).
    pub mg_active: bool,
}

impl MgSolverCase {
    /// Whether the case satisfies the equivalence contract.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.max_abs_dt_c <= MAX_SOLVER_DT_C && self.outer_match && self.mg_active
    }
}

fn corpus() -> Vec<(&'static str, ChipletLayout, StackSpec)> {
    vec![
        (
            "single_chip_2d",
            ChipletLayout::SingleChip,
            StackSpec::baseline_2d(),
        ),
        (
            "uniform_4x4_25d",
            ChipletLayout::Uniform { r: 4, gap: Mm(4.0) },
            StackSpec::system_25d(),
        ),
        (
            "symmetric4_25d",
            ChipletLayout::Symmetric4 { s3: Mm(6.0) },
            StackSpec::system_25d(),
        ),
    ]
}

fn build(layout: &ChipletLayout, stack: &StackSpec, solver: SolverKind) -> PackageModel {
    PackageModel::new(
        &ChipSpec::scc_256(),
        layout,
        &PackageRules::default(),
        stack,
        ThermalConfig {
            grid: 16,
            rel_tol: SOLVER_REL_TOL,
            solver,
            ..ThermalConfig::default()
        },
    )
    .expect("corpus organization must build")
}

/// The per-model run under one solver kind: a fixed-power steady solve
/// plus a contractive leakage fixed point on the same sources — identical
/// exercise to the IC(0)-vs-Jacobi gate so the tiers stay comparable.
fn run_one(model: &PackageModel) -> Result<(Vec<f64>, usize, Vec<f64>, usize), ThermalError> {
    let rects = model.chiplet_rects().to_vec();
    let total = 180.0;
    let n = rects.len() as f64;
    let sources: Vec<_> = rects
        .iter()
        .enumerate()
        .map(|(i, r)| (*r, total * (0.6 + 0.8 * i as f64 / n.max(1.0)) / n))
        .collect();
    let steady = model.solve(&sources)?;
    let steady_field = steady.raw_temps().to_vec();
    let steady_iters = steady.iterations();

    // Pinned to the Picard strategy so the solver kind is the only
    // variable (see solvercheck for the rationale).
    let coupled = solve_coupled(
        model,
        |sol| {
            let scale = sol.map_or(1.0, |s| 1.0 + 0.012 * (s.peak().value() - 45.0));
            sources.iter().map(|(r, w)| (*r, w * scale)).collect()
        },
        &CoupledOptions {
            tol: Celsius(0.001),
            strategy: CoupledStrategy::Picard,
            ..CoupledOptions::default()
        },
    )?;
    assert!(coupled.converged, "leakage fixed point must converge");
    Ok((
        steady_field,
        steady_iters,
        coupled.solution.raw_temps().to_vec(),
        coupled.outer_iterations,
    ))
}

fn max_abs_dt(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Runs the whole corpus under both solver kinds and returns the
/// per-organization comparison records.
///
/// # Errors
///
/// Propagates thermal build/solve errors — those are regressions of the
/// corpus itself, not equivalence measurements.
///
/// # Panics
///
/// Panics if a leakage fixed point fails to converge (contractive by
/// construction).
pub fn mg_equivalence_cases() -> Result<Vec<MgSolverCase>, ThermalError> {
    corpus()
        .into_iter()
        .map(|(name, layout, stack)| {
            let mg = build(&layout, &stack, SolverKind::Multigrid);
            let ic0 = build(&layout, &stack, SolverKind::Ic0);
            let mg_active = mg.mg_hierarchy().is_some();
            let (m_steady, m_iters, m_fixed, m_outer) = run_one(&mg)?;
            let (i_steady, i_iters, i_fixed, i_outer) = run_one(&ic0)?;
            let max_abs_dt_c = max_abs_dt(&m_steady, &i_steady).max(max_abs_dt(&m_fixed, &i_fixed));
            Ok(MgSolverCase {
                name,
                max_abs_dt_c,
                mg_iterations: m_iters,
                ic0_iterations: i_iters,
                outer_match: m_outer == i_outer,
                mg_active,
            })
        })
        .collect()
}

/// One refill-vs-rebuild equivalence record: a same-footprint spacing
/// move applied through [`PackageModel::new_like`] — whose multigrid
/// hierarchy is *refilled* on the scaffold shared with the base model —
/// against a from-scratch [`PackageModel::new`] of the identical layout,
/// whose hierarchy is built from nothing.
#[derive(Debug, Clone)]
pub struct MgRefillCase {
    /// Corpus point name.
    pub name: &'static str,
    /// Whether every node temperature of the steady solve is
    /// byte-identical between the refilled and rebuilt models.
    pub bitwise_equal: bool,
    /// Whether both paths took the identical PCG iteration count.
    pub iterations_match: bool,
    /// Whether the derived model's hierarchy really shares the base
    /// model's scaffold `Arc` — without this the gate could pass while
    /// silently rebuilding the symbolic hierarchy per model.
    pub scaffold_shared: bool,
}

impl MgRefillCase {
    /// Whether the case satisfies the refill-equivalence contract.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.bitwise_equal && self.iterations_match && self.scaffold_shared
    }
}

/// Runs the refill-equivalence corpus: same-footprint `Symmetric16`
/// spacing moves (the incremental-assembly class), solved under the
/// multigrid tier through the shared-scaffold refill path and through a
/// from-scratch build.
///
/// # Errors
///
/// Propagates thermal build/solve errors.
///
/// # Panics
///
/// Panics if a corpus model fails the layout rules or cannot build a
/// multigrid hierarchy (both would be corpus regressions, not
/// equivalence measurements).
pub fn mg_refill_cases() -> Result<Vec<MgRefillCase>, ThermalError> {
    let moves: Vec<(&'static str, Spacing, Spacing)> = vec![
        (
            "sym16_s2_widen",
            Spacing::new(2.0, 2.0, 3.0),
            Spacing::new(2.0, 3.5, 3.0),
        ),
        (
            "sym16_s2_narrow",
            Spacing::new(2.0, 3.0, 4.0),
            Spacing::new(2.0, 1.5, 4.0),
        ),
    ];
    let stack = StackSpec::system_25d();
    moves
        .into_iter()
        .map(|(name, from, to)| {
            let base_layout = ChipletLayout::Symmetric16 { spacing: from };
            let moved = ChipletLayout::Symmetric16 { spacing: to };
            let base = build(&base_layout, &stack, SolverKind::Multigrid);
            let rects = base.chiplet_rects().to_vec();
            let n = rects.len() as f64;
            let sources: Vec<_> = rects.iter().map(|r| (*r, 180.0 / n)).collect();
            // Solve the base first so its hierarchy exists and the
            // derived model can take the dirty-refill path.
            base.solve(&sources)?;
            assert!(
                base.mg_hierarchy().is_some(),
                "{name}: base model must build a hierarchy"
            );
            let derived = PackageModel::new_like(&base, &moved)?;
            let rebuilt = build(&moved, &stack, SolverKind::Multigrid);
            let moved_rects = derived.chiplet_rects().to_vec();
            let moved_sources: Vec<_> = moved_rects.iter().map(|r| (*r, 180.0 / n)).collect();
            let d_sol = derived.solve(&moved_sources)?;
            let r_sol = rebuilt.solve(&moved_sources)?;
            let bitwise_equal = d_sol.raw_temps().len() == r_sol.raw_temps().len()
                && d_sol
                    .raw_temps()
                    .iter()
                    .zip(r_sol.raw_temps())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            let scaffold_shared = match (base.mg_hierarchy(), derived.mg_hierarchy()) {
                (Some(b), Some(d)) => std::sync::Arc::ptr_eq(b.scaffold(), d.scaffold()),
                _ => false,
            };
            Ok(MgRefillCase {
                name,
                bitwise_equal,
                iterations_match: d_sol.iterations() == r_sol.iterations(),
                scaffold_shared,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_passes_mg_refill_gate() {
        for case in mg_refill_cases().unwrap() {
            assert!(
                case.passed(),
                "{}: bitwise_equal {}, iterations_match {}, scaffold_shared {}",
                case.name,
                case.bitwise_equal,
                case.iterations_match,
                case.scaffold_shared
            );
        }
    }

    #[test]
    fn corpus_passes_mg_equivalence_gate() {
        for case in mg_equivalence_cases().unwrap() {
            assert!(
                case.passed(),
                "{}: max|dT| = {:.3e} C, mg {} vs ic0 {} iters, outer_match {}, mg_active {}",
                case.name,
                case.max_abs_dt_c,
                case.mg_iterations,
                case.ic0_iterations,
                case.outer_match,
                case.mg_active
            );
        }
    }

    #[test]
    fn mg_preconditioner_is_competitive() {
        // The V-cycle is a stronger preconditioner than IC(0); with shared
        // warm starts it must not spend more than a small factor of the
        // IC(0) iterations on any corpus steady solve.
        for case in mg_equivalence_cases().unwrap() {
            assert!(
                case.mg_iterations <= case.ic0_iterations.max(2) * 2,
                "{}: mg {} vs ic0 {}",
                case.name,
                case.mg_iterations,
                case.ic0_iterations
            );
        }
    }
}
