//! Serve-layer equivalence gate: the long-running daemon must answer a
//! pinned request corpus **byte-identically** to a fresh local engine —
//! the one-shot CLI semantics — both sequentially and under concurrent
//! keep-alive clients hammering the shared warm caches.
//!
//! The corpus covers every layout grammar form, off-nominal operating
//! points, partial core occupation, a custom feasibility threshold and
//! seeded optimize searches. The gate runs on the coarse grid-16 spec
//! regardless of `--fast`: serving correctness is a transport-and-
//! determinism property, not a physics-resolution property, and the
//! contract must hold on any spec.

use std::sync::Arc;

use tac25d_core::prelude::SystemSpec;
use tac25d_serve::client::Client;
use tac25d_serve::engine::EngineState;
use tac25d_serve::protocol::{EvaluateRequest, OptimizeRequest};
use tac25d_serve::server::{start, ServerConfig};

/// Concurrent keep-alive clients in the contention phase.
pub const CONCURRENT_CLIENTS: usize = 8;

/// One pinned request.
#[derive(Debug, Clone, Copy)]
pub struct CorpusRequest {
    /// Short case name for the report.
    pub name: &'static str,
    /// Endpoint path (`/v1/evaluate` or `/v1/optimize`).
    pub path: &'static str,
    /// JSON request body.
    pub body: &'static str,
}

/// The pinned corpus: every layout grammar form, off-nominal VF points,
/// partial occupation, custom thresholds, and seeded optimize runs.
pub fn corpus() -> Vec<CorpusRequest> {
    let eval = |name, body| CorpusRequest {
        name,
        path: "/v1/evaluate",
        body,
    };
    let opt = |name, body| CorpusRequest {
        name,
        path: "/v1/optimize",
        body,
    };
    vec![
        eval(
            "hpccg_uniform4",
            r#"{"benchmark": "hpccg", "layout": "uniform:4,6"}"#,
        ),
        eval(
            "shock_uniform4",
            r#"{"benchmark": "shock", "layout": "uniform:4,6"}"#,
        ),
        eval(
            "cholesky_uniform2",
            r#"{"benchmark": "cholesky", "layout": "uniform:2,4"}"#,
        ),
        eval(
            "hpccg_sym4",
            r#"{"benchmark": "hpccg", "layout": "sym4:5"}"#,
        ),
        eval(
            "canneal_800mhz",
            r#"{"benchmark": "canneal", "layout": "uniform:4,6", "freq_mhz": 800}"#,
        ),
        eval("shock_2d", r#"{"benchmark": "shock", "layout": "2d"}"#),
        eval(
            "swaptions_sym16",
            r#"{"benchmark": "swaptions", "layout": "sym16:4,2,5"}"#,
        ),
        eval(
            "streamcluster_192c",
            r#"{"benchmark": "streamcluster", "layout": "uniform:2,4", "cores": 192}"#,
        ),
        eval(
            "lucont_533mhz",
            r#"{"benchmark": "lu.cont", "layout": "uniform:4,6", "freq_mhz": 533}"#,
        ),
        eval(
            "blackscholes_t80",
            r#"{"benchmark": "blackscholes", "layout": "sym4:5", "threshold_c": 80}"#,
        ),
        opt(
            "optimize_hpccg_s42",
            r#"{"benchmark": "hpccg", "starts": 3, "seed": 42}"#,
        ),
        opt(
            "optimize_shock_s7",
            r#"{"benchmark": "shock", "starts": 2, "seed": 7, "alpha": 1, "beta": 0.2}"#,
        ),
    ]
}

/// One corpus request's comparison between the daemon and a fresh local
/// engine.
#[derive(Debug, Clone)]
pub struct ServeCase {
    /// Corpus case name.
    pub name: &'static str,
    /// HTTP status the daemon returned sequentially.
    pub status: u16,
    /// Whether the sequential daemon response matched the local engine
    /// byte-for-byte.
    pub sequential_match: bool,
    /// Concurrent responses (across all clients) matching byte-for-byte.
    pub concurrent_matches: usize,
    /// Concurrent responses expected ([`CONCURRENT_CLIENTS`]).
    pub concurrent_total: usize,
}

impl ServeCase {
    /// Whether the case satisfies the byte-identity contract.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.status == 200
            && self.sequential_match
            && self.concurrent_matches == self.concurrent_total
    }
}

/// The full gate outcome: per-request cases plus endpoint probes.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-corpus-request comparisons.
    pub cases: Vec<ServeCase>,
    /// `GET /healthz` returned the exact health body.
    pub healthz_ok: bool,
    /// `GET /metrics` rendered Prometheus text with serve counters.
    pub metrics_ok: bool,
}

impl ServeReport {
    /// Whether every case and probe passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.healthz_ok && self.metrics_ok && self.cases.iter().all(ServeCase::passed)
    }
}

/// The expected response body for one corpus request, computed by a
/// local engine — exactly what the one-shot CLI (`tac25d query --local`)
/// prints.
pub(crate) fn local_expected(engine: &EngineState, req: &CorpusRequest) -> Result<String, String> {
    let v = tac25d_obs::json::parse(req.body).map_err(|e| format!("{}: {e}", req.name))?;
    let result = match req.path {
        "/v1/evaluate" => engine.evaluate(
            &EvaluateRequest::from_json(&v).map_err(|e| format!("{}: {e}", req.name))?,
            None,
        ),
        "/v1/optimize" => engine.optimize(
            &OptimizeRequest::from_json(&v).map_err(|e| format!("{}: {e}", req.name))?,
            None,
        ),
        other => return Err(format!("{}: unknown path {other}", req.name)),
    };
    if result.status != 200 {
        return Err(format!(
            "{}: local engine returned {}: {}",
            req.name, result.status, result.body
        ));
    }
    Ok(result.body)
}

/// Runs the pinned corpus against a freshly booted daemon and compares
/// every response byte-for-byte with a fresh local engine, sequentially
/// and then with [`CONCURRENT_CLIENTS`] clients at once.
///
/// # Errors
///
/// Returns transport or harness failures (bind, connect, local-engine
/// errors) — those are environment problems, not equivalence
/// measurements.
pub fn serve_equivalence_report(spec: &SystemSpec) -> Result<ServeReport, String> {
    let requests = corpus();

    // The reference: a fresh (cold) local engine, the one-shot CLI path.
    let local = EngineState::new(spec.clone());
    let expected: Vec<String> = requests
        .iter()
        .map(|r| local_expected(&local, r))
        .collect::<Result<_, _>>()?;

    // The daemon under test, on its own engine.
    let engine = Arc::new(EngineState::new(spec.clone()));
    let handle = start(ServerConfig::default(), engine).map_err(|e| format!("bind: {e}"))?;
    let addr = handle.local_addr().to_string();

    let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
    let healthz_ok = client
        .get("/healthz")
        .map(|r| r.status == 200 && r.text() == r#"{"status":"ok"}"#)
        .unwrap_or(false);

    // Sequential pass over one keep-alive connection.
    let mut cases: Vec<ServeCase> = Vec::with_capacity(requests.len());
    for (req, want) in requests.iter().zip(&expected) {
        let r = client
            .post(req.path, req.body)
            .map_err(|e| format!("{}: {e}", req.name))?;
        cases.push(ServeCase {
            name: req.name,
            status: r.status,
            sequential_match: r.text() == *want,
            concurrent_matches: 0,
            concurrent_total: CONCURRENT_CLIENTS,
        });
    }

    // Contention pass: every client replays the whole corpus against the
    // now-warm shared caches; warmth must not change a single byte.
    let workers: Vec<_> = (0..CONCURRENT_CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            let requests = requests.clone();
            let expected = expected.clone();
            std::thread::spawn(move || -> Result<Vec<bool>, String> {
                let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
                requests
                    .iter()
                    .zip(&expected)
                    .map(|(req, want)| {
                        client
                            .post(req.path, req.body)
                            .map(|r| r.status == 200 && r.text() == *want)
                            .map_err(|e| format!("{}: {e}", req.name))
                    })
                    .collect()
            })
        })
        .collect();
    for worker in workers {
        let matches = worker.join().map_err(|_| "client thread panicked")??;
        for (case, matched) in cases.iter_mut().zip(matches) {
            case.concurrent_matches += usize::from(matched);
        }
    }

    let metrics_ok = client
        .get("/metrics")
        .map(|r| {
            let text = r.text();
            r.status == 200
                && text.contains("serve_requests")
                && text.contains("evaluator_cache_hits")
        })
        .unwrap_or(false);

    handle.shutdown();
    Ok(ServeReport {
        cases,
        healthz_ok,
        metrics_ok,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac25d_floorplan::units::Mm;

    fn gate_spec() -> SystemSpec {
        let mut spec = SystemSpec::fast();
        spec.thermal.grid = 16;
        spec.edge_step = Mm(2.0);
        spec
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow under the debug profile; validated by the release suite"
    )]
    fn corpus_passes_byte_identity_gate() {
        let report = serve_equivalence_report(&gate_spec()).unwrap();
        assert!(report.healthz_ok, "healthz probe failed");
        assert!(report.metrics_ok, "metrics probe failed");
        for case in &report.cases {
            assert!(
                case.passed(),
                "{}: status {}, sequential_match {}, concurrent {}/{}",
                case.name,
                case.status,
                case.sequential_match,
                case.concurrent_matches,
                case.concurrent_total
            );
        }
    }

    #[test]
    fn corpus_is_nonempty_and_well_formed() {
        let requests = corpus();
        assert!(requests.len() >= 10, "corpus too small: {}", requests.len());
        assert!(requests.iter().any(|r| r.path == "/v1/optimize"));
        for r in requests {
            tac25d_obs::json::parse(r.body).expect("corpus body parses");
        }
    }
}
