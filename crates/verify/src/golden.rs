//! Golden-trace regression harness for the `crates/bench` binaries.
//!
//! Every bench binary writes its figure/table as CSV (and, under
//! `TAC25D_TRACE=1`, echoes the same records to stdout between trace
//! markers). This module pins those outputs: a manifest lists each binary
//! with its arguments, the CSV reports it produces and the numeric
//! tolerances its columns are held to. `verify golden` re-runs every
//! manifest entry with results redirected into a scratch directory
//! (`TAC25D_RESULTS_DIR`), then diffs cell-by-cell against the snapshots
//! under `tests/golden/`; `verify golden --bless` regenerates them.
//!
//! Cells that parse as numbers on both sides compare with
//! `|a − b| ≤ abs_tol + rel_tol · max(|a|, |b|)`; everything else must
//! match exactly. Columns named in `ignore_cols` (wall-clock artifacts
//! like speedup ratios) are skipped entirely.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// One pinned bench binary run.
#[derive(Debug, Clone, Copy)]
pub struct GoldenSpec {
    /// Binary name under `crates/bench/src/bin`.
    pub bin: &'static str,
    /// Arguments of the pinned run (seeds fixed, `--fast` where the full
    /// sweep would dominate CI time).
    pub args: &'static [&'static str],
    /// CSV report stems the run produces.
    pub reports: &'static [&'static str],
    /// Absolute tolerance for numeric cells.
    pub abs_tol: f64,
    /// Relative tolerance for numeric cells.
    pub rel_tol: f64,
    /// Column names excluded from comparison (wall-clock artifacts).
    pub ignore_cols: &'static [&'static str],
}

/// Default numeric tolerances: tight enough to catch any algorithmic
/// change, loose enough to absorb cross-platform libm noise in printed
/// 2-decimal values.
const ABS_TOL: f64 = 5e-3;
const REL_TOL: f64 = 1e-4;

const fn spec(
    bin: &'static str,
    args: &'static [&'static str],
    reports: &'static [&'static str],
) -> GoldenSpec {
    GoldenSpec {
        bin,
        args,
        reports,
        abs_tol: ABS_TOL,
        rel_tol: REL_TOL,
        ignore_cols: &[],
    }
}

/// The pinned manifest. Entries must stay deterministic under the default
/// seed: anything order- or wall-clock-dependent either pins its seed,
/// ignores the offending column, or stays out.
pub fn manifest() -> Vec<GoldenSpec> {
    vec![
        spec("fig3a", &["--fast"], &["fig3a"]),
        spec("fig3b", &["--fast"], &["fig3b"]),
        spec("fig5", &["--fast"], &["fig5"]),
        spec("grid_convergence", &["--fast"], &["grid_convergence"]),
        spec("dimension_compare", &["--fast"], &["dimension_compare"]),
        spec("duty_cycle", &["--fast"], &["duty_cycle"]),
        spec("noc_performance", &["--fast"], &["noc_performance"]),
        spec("sprinting", &["--fast"], &["sprinting"]),
        spec("dtm_compare", &["--fast"], &["dtm_compare"]),
        spec("allocation_ablation", &["--fast"], &["allocation_ablation"]),
        spec("pdn_droop", &["--fast"], &["pdn_droop"]),
        spec("fig8", &["--fast"], &["fig8"]),
        spec("fig6", &["--fast"], &["fig6"]),
        spec("fig7", &["--fast"], &["fig7"]),
        spec("reliability_gain", &["--fast"], &["reliability_gain"]),
    ]
}

/// Where the snapshots live: `tests/golden/` at the workspace root.
pub fn golden_dir() -> PathBuf {
    workspace_root().join("tests").join("golden")
}

/// The workspace root (two levels above this crate's manifest).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// The directory holding the compiled bench binaries: next to the running
/// `verify` binary (both live in the same cargo target profile dir).
///
/// # Errors
///
/// Io error when the current executable cannot be resolved.
pub fn bin_dir() -> std::io::Result<PathBuf> {
    let exe = std::env::current_exe()?;
    Ok(exe
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from(".")))
}

/// The outcome of one manifest entry.
#[derive(Debug, Clone)]
pub struct GoldenOutcome {
    /// The binary.
    pub bin: String,
    /// Mismatch descriptions; empty means the entry passed.
    pub mismatches: Vec<String>,
    /// Whether snapshots were (re)written.
    pub blessed: bool,
}

impl GoldenOutcome {
    /// True when the entry matched its snapshots (or was just blessed).
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Runs one manifest entry and diffs (or blesses) its reports.
///
/// # Errors
///
/// Io errors from spawning the binary or reading/writing snapshots. A
/// failing diff is NOT an error — it is reported in the outcome.
pub fn run_spec(spec: &GoldenSpec, bless: bool) -> std::io::Result<GoldenOutcome> {
    let scratch = workspace_root()
        .join("target")
        .join("golden-scratch")
        .join(spec.bin);
    if scratch.exists() {
        fs::remove_dir_all(&scratch)?;
    }
    fs::create_dir_all(&scratch)?;

    let bin_path = bin_dir()?.join(spec.bin);
    let output = Command::new(&bin_path)
        .args(spec.args)
        .env("TAC25D_RESULTS_DIR", &scratch)
        .env("TAC25D_TRACE", "1")
        .output()?;
    let mut mismatches = Vec::new();
    if !output.status.success() {
        mismatches.push(format!(
            "{} exited with {}: {}",
            spec.bin,
            output.status,
            String::from_utf8_lossy(&output.stderr)
        ));
        return Ok(GoldenOutcome {
            bin: spec.bin.to_owned(),
            mismatches,
            blessed: false,
        });
    }

    let golden = golden_dir().join(spec.bin);
    let mut blessed = false;
    for report in spec.reports {
        let actual_path = scratch.join(format!("{report}.csv"));
        let actual = fs::read_to_string(&actual_path)?;
        let expected_path = golden.join(format!("{report}.csv"));
        if bless {
            fs::create_dir_all(&golden)?;
            fs::write(&expected_path, &actual)?;
            blessed = true;
            continue;
        }
        if !expected_path.exists() {
            mismatches.push(format!(
                "{}: no golden snapshot at {} (run `verify golden --bless`)",
                report,
                expected_path.display()
            ));
            continue;
        }
        let expected = fs::read_to_string(&expected_path)?;
        mismatches.extend(
            diff_csv(&expected, &actual, spec)
                .into_iter()
                .map(|m| format!("{report}: {m}")),
        );
    }
    Ok(GoldenOutcome {
        bin: spec.bin.to_owned(),
        mismatches,
        blessed,
    })
}

/// Diffs two CSV documents cell-by-cell under the spec's tolerances.
/// Returns human-readable mismatch lines (empty = equal).
pub fn diff_csv(expected: &str, actual: &str, spec: &GoldenSpec) -> Vec<String> {
    let exp_rows: Vec<Vec<String>> = expected.lines().map(parse_csv_line).collect();
    let act_rows: Vec<Vec<String>> = actual.lines().map(parse_csv_line).collect();
    let mut out = Vec::new();
    if exp_rows.len() != act_rows.len() {
        out.push(format!(
            "row count {} != golden {}",
            act_rows.len(),
            exp_rows.len()
        ));
        return out;
    }
    let Some(header) = exp_rows.first() else {
        return out;
    };
    if act_rows[0] != *header {
        out.push(format!("header {:?} != golden {:?}", act_rows[0], header));
        return out;
    }
    for (row_idx, (exp, act)) in exp_rows.iter().zip(&act_rows).enumerate().skip(1) {
        if exp.len() != act.len() {
            out.push(format!(
                "row {row_idx}: width {} != {}",
                act.len(),
                exp.len()
            ));
            continue;
        }
        for (col, (e, a)) in exp.iter().zip(act).enumerate() {
            let col_name = header.get(col).map(String::as_str).unwrap_or("");
            if spec.ignore_cols.contains(&col_name) {
                continue;
            }
            if !cells_match(e, a, spec.abs_tol, spec.rel_tol) {
                out.push(format!(
                    "row {row_idx}, column {col_name:?}: {a:?} != golden {e:?}"
                ));
            }
        }
    }
    out
}

/// Numeric-tolerance cell comparison; falls back to exact string equality
/// for non-numeric cells.
pub fn cells_match(expected: &str, actual: &str, abs_tol: f64, rel_tol: f64) -> bool {
    if expected == actual {
        return true;
    }
    match (expected.parse::<f64>(), actual.parse::<f64>()) {
        (Ok(e), Ok(a)) => {
            if e.is_nan() && a.is_nan() {
                return true;
            }
            (e - a).abs() <= abs_tol + rel_tol * e.abs().max(a.abs())
        }
        _ => false,
    }
}

/// Minimal CSV record parser matching `tac25d_bench::csv_line`: comma
/// separation with `"`-quoted cells and doubled-quote escapes.
pub fn parse_csv_line(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' if cur.is_empty() => quoted = true,
            ',' if !quoted => {
                cells.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    cells.push(cur);
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tol_spec() -> GoldenSpec {
        GoldenSpec {
            bin: "x",
            args: &[],
            reports: &[],
            abs_tol: 1e-2,
            rel_tol: 1e-3,
            ignore_cols: &["speedup"],
        }
    }

    #[test]
    fn parse_round_trips_quoted_cells() {
        assert_eq!(
            parse_csv_line("plain,\"a,b\",\"say \"\"hi\"\"\""),
            vec!["plain", "a,b", "say \"hi\""]
        );
    }

    #[test]
    fn numeric_cells_compare_with_tolerance() {
        assert!(cells_match("1.23", "1.235", 1e-2, 0.0));
        assert!(!cells_match("1.23", "1.35", 1e-2, 0.0));
        assert!(cells_match("1000", "1000.5", 0.0, 1e-3));
        assert!(cells_match("nan", "NaN", 0.0, 0.0));
        assert!(!cells_match("abc", "abd", 1.0, 1.0));
    }

    #[test]
    fn diff_flags_value_and_shape_changes() {
        let s = tol_spec();
        let golden = "a,b,speedup\n1.0,x,9.9\n";
        assert!(diff_csv(golden, "a,b,speedup\n1.005,x,2.2\n", &s).is_empty());
        assert_eq!(diff_csv(golden, "a,b,speedup\n1.5,x,9.9\n", &s).len(), 1);
        assert_eq!(diff_csv(golden, "a,b,speedup\n", &s).len(), 1);
        assert_eq!(diff_csv(golden, "a,c,speedup\n1.0,x,9.9\n", &s).len(), 1);
    }

    #[test]
    fn manifest_covers_at_least_ten_bins() {
        assert!(manifest().len() >= 10, "golden manifest shrank");
    }
}
