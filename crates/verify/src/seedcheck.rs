//! Seeding gate (`verify seed`): the analytic-gradient placement seeding
//! and its draft-then-verify search must be a decision-preserving
//! acceleration of the screened organizer.
//!
//! Three contracts, one per section of the report:
//!
//! * **gradient consistency** — on a deterministic corpus of random
//!   manifolds and power maps, the proxy's exact analytic gradient must
//!   agree with central finite differences to [`MAX_GRAD_REL_ERR`]
//!   relative error (a wrong gradient would still "work" — descent with
//!   a bad direction just wastes evaluations — so only a direct check
//!   catches it);
//! * **snap determinism** — descending and lattice-snapping the same
//!   manifold twice must produce bit-identical seed points (the seeds
//!   feed a seeded RNG search, so any wobble would break run-to-run
//!   reproducibility of the organizer);
//! * **decision parity** — the full organizer over the Fig. 8 benchmark
//!   corpus, seeded versus unseeded (both under surrogate screening,
//!   independent evaluators), must pick the same organization signature
//!   (frequency / cores / interposer edge / layout class) for every
//!   benchmark, while the seeded run spends no more exact coupled solves
//!   in total. Spacing within the winning candidate is *not* part of the
//!   signature: the Eq. (5) objective is spacing-independent, so any
//!   exact-verified feasible spacing is an equally valid witness.

use tac25d_core::optimizer::SeedMode;
use tac25d_core::prelude::*;
use tac25d_floorplan::organization::ChipletLayout;
use tac25d_surrogate::analytic::{snap_to_lattice, AnalyticConfig, Manifold16};

/// Maximum tolerated relative error between the analytic gradient and a
/// central finite difference (floored at 1e-3 °C/mm, below which the
/// difference quotient itself is cancellation noise).
pub const MAX_GRAD_REL_ERR: f64 = 1e-5;

/// One manifold's gradient-vs-finite-difference comparison.
#[derive(Debug, Clone)]
pub struct GradientCase {
    /// Corpus point name.
    pub name: String,
    /// Worst relative error over both components at every probe point.
    pub max_rel_err: f64,
    /// Probe points checked.
    pub points: usize,
}

impl GradientCase {
    /// Whether the analytic gradient is finite-difference-consistent.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.max_rel_err <= MAX_GRAD_REL_ERR
    }
}

/// One manifold's descend-and-snap determinism check.
#[derive(Debug, Clone)]
pub struct SnapCase {
    /// Corpus point name.
    pub name: String,
    /// Seed points of the first run (lattice units), for the report.
    pub seeds: Vec<(i64, i64)>,
    /// Whether two independent runs agreed bit-for-bit.
    pub deterministic: bool,
}

impl SnapCase {
    /// Whether the seeding pipeline is reproducible on this manifold.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.deterministic
    }
}

/// One benchmark's seeded-vs-unseeded organizer comparison.
#[derive(Debug, Clone)]
pub struct ParityCase {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Signature of the seeded winner (`freq/cores/edge/class`).
    pub seeded_desc: String,
    /// Signature of the unseeded winner.
    pub unseeded_desc: String,
    /// Exact coupled solves the seeded run spent.
    pub seeded_solves: usize,
    /// Exact coupled solves the unseeded run spent.
    pub unseeded_solves: usize,
}

impl ParityCase {
    /// Whether both searches chose the same organization signature.
    #[must_use]
    pub fn matched(&self) -> bool {
        self.seeded_desc == self.unseeded_desc
    }
}

/// Splitmix64 step: the deterministic corpus generator (no RNG crate —
/// the corpus must be identical on every platform and in every run).
fn splitmix(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// The deterministic manifold corpus: paper chiplet geometry, a spread of
/// manifold constants, power maps drawn from a fixed splitmix64 stream.
fn manifold_corpus() -> Vec<(String, Manifold16)> {
    let mut state = 0x5eed_c0de_u64;
    [2.0f64, 5.0, 9.5, 14.0, 18.0]
        .iter()
        .enumerate()
        .map(|(i, &free)| {
            let mut watts = [0.0f64; 16];
            for w in &mut watts {
                *w = 6.0 + 18.0 * splitmix(&mut state);
            }
            (
                format!("free={free}mm#{i}"),
                Manifold16 {
                    wc: 4.5,
                    guard: 1.0,
                    free,
                    watts,
                },
            )
        })
        .collect()
}

/// Runs the gradient-vs-central-difference comparison over the corpus.
#[must_use]
pub fn gradient_cases() -> Vec<GradientCase> {
    let cfg = AnalyticConfig::default();
    let probes = [
        (0.1, 0.1),
        (0.5, 0.5),
        (0.85, 0.2),
        (0.3, 0.75),
        (0.65, 0.65),
    ];
    manifold_corpus()
        .into_iter()
        .map(|(name, m)| {
            let hi = m.half_free();
            let h = 1e-5;
            let mut max_rel_err = 0.0f64;
            for &(f1, f2) in &probes {
                let (s1, s2) = (f1 * hi, f2 * hi);
                let (_, g1, g2) = m.objective_grad(&cfg, s1, s2);
                let fd1 = (m.objective_grad(&cfg, s1 + h, s2).0
                    - m.objective_grad(&cfg, s1 - h, s2).0)
                    / (2.0 * h);
                let fd2 = (m.objective_grad(&cfg, s1, s2 + h).0
                    - m.objective_grad(&cfg, s1, s2 - h).0)
                    / (2.0 * h);
                let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(b.abs()).max(1e-3);
                max_rel_err = max_rel_err.max(rel(g1, fd1)).max(rel(g2, fd2));
            }
            GradientCase {
                name,
                max_rel_err,
                points: probes.len(),
            }
        })
        .collect()
}

/// Runs the descend-and-snap pipeline twice per corpus manifold and
/// compares the seed points bit-for-bit.
#[must_use]
pub fn snap_cases() -> Vec<SnapCase> {
    let cfg = AnalyticConfig::default();
    manifold_corpus()
        .into_iter()
        .map(|(name, m)| {
            let step = 0.5;
            let max_units = (m.half_free() / step).floor() as i64;
            let run = || {
                let out = m.descend(&cfg);
                snap_to_lattice(&out.optima, step, max_units, max_units, 4)
            };
            let a = run();
            let b = run();
            SnapCase {
                deterministic: a == b,
                seeds: a,
                name,
            }
        })
        .collect()
}

/// `freq/cores/edge/layout-class` signature of an organizer result. The
/// class collapses spacing detail (`4c`, `16c`, …): the objective is
/// spacing-independent, so equally-feasible spacings are interchangeable
/// witnesses of the same decision.
fn signature(r: &OptimizeResult) -> String {
    r.best.as_ref().map_or_else(
        || "-".to_owned(),
        |o| {
            let class = match o.layout {
                ChipletLayout::SingleChip => "1c".to_owned(),
                ChipletLayout::Symmetric4 { .. } => "4c".to_owned(),
                ChipletLayout::Symmetric16 { .. } => "16c".to_owned(),
                ChipletLayout::Uniform { r, .. } => format!("u{}", u32::from(r) * u32::from(r)),
            };
            format!(
                "{:.0}MHz/{}c/{:.0}mm/{class}",
                o.candidate.op.freq_mhz,
                o.candidate.active_cores,
                o.candidate.edge.value(),
            )
        },
    )
}

/// Runs the screened organizer over the Fig. 8 corpus with seeding
/// forced on and forced off (fresh, independent evaluators — the modes
/// must not share corrector state) and records the decision signatures
/// and exact-solve spend.
///
/// # Panics
///
/// Panics if an optimize run fails outright (solver error, no baseline).
pub fn decision_parity_cases(spec: &SystemSpec, seed: u64) -> Vec<ParityCase> {
    Benchmark::all()
        .into_iter()
        .map(|b| {
            let run = |mode: SeedMode| {
                let ev = Evaluator::with_surrogate(spec.clone(), SurrogateConfig::default());
                let cfg = OptimizerConfig {
                    fidelity: Fidelity::surrogate_default(),
                    seeding: mode,
                    ..OptimizerConfig::with_seed(seed)
                };
                let r = optimize(&ev, b, &cfg).expect("optimize");
                (signature(&r), ev.thermal_sims())
            };
            let (seeded_desc, seeded_solves) = run(SeedMode::On);
            let (unseeded_desc, unseeded_solves) = run(SeedMode::Off);
            ParityCase {
                benchmark: b,
                seeded_desc,
                unseeded_desc,
                seeded_solves,
                unseeded_solves,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tac25d_core::system::SystemSpec;
    use tac25d_floorplan::units::Mm;

    #[test]
    fn gradient_corpus_is_consistent() {
        for c in gradient_cases() {
            assert!(c.passed(), "{}: max rel err {:.3e}", c.name, c.max_rel_err);
        }
    }

    #[test]
    fn snapping_is_deterministic() {
        for c in snap_cases() {
            assert!(c.passed(), "{}: seeds diverged", c.name);
        }
    }

    #[test]
    fn seeded_and_unseeded_decisions_agree_on_the_smoke_spec() {
        let mut spec = SystemSpec::fast();
        spec.thermal.grid = 16;
        spec.edge_step = Mm(2.0);
        let cases = decision_parity_cases(&spec, 42);
        let (mut seeded, mut unseeded) = (0, 0);
        for c in &cases {
            assert!(
                c.matched(),
                "{}: seeded {} vs unseeded {}",
                c.benchmark.name(),
                c.seeded_desc,
                c.unseeded_desc
            );
            seeded += c.seeded_solves;
            unseeded += c.unseeded_solves;
        }
        assert!(
            seeded <= unseeded,
            "seeding must not cost extra exact solves: {seeded} vs {unseeded}"
        );
    }
}
